"""Bench harness: profiles, reporting, workload runners, motivation helpers."""

import numpy as np
import pytest

from repro.bench import (
    PROFILES,
    active_profile,
    ascii_table,
    box_stats,
    build_dataset,
    fig1a_latency_distributions,
    format_box_row,
    format_series,
    make_initial_model,
    run_method,
)
from repro.bench.profiles import DATASETS


class TestProfiles:
    def test_all_profiles_cover_all_datasets(self):
        for name, table in PROFILES.items():
            assert set(table) == set(DATASETS), name

    def test_active_profile_default_tiny(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert active_profile("femnist_like").name == "tiny"

    def test_active_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "default")
        assert active_profile("femnist_like").name == "default"

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="unknown profile"):
            active_profile("femnist_like", override="nope")

    def test_unknown_dataset_raises(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            active_profile("nope")

    def test_with_override(self):
        p = active_profile("femnist_like").with_(rounds=7)
        assert p.rounds == 7

    def test_paper_profile_matches_table7_scale(self):
        p = PROFILES["paper"]["femnist_like"]
        assert p.clients_per_round == 100
        assert p.rounds == 2000
        assert p.delta == 30


class TestReporting:
    def test_ascii_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 223, "b": "z"}]
        out = ascii_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert all(len(l) == len(lines[1]) for l in lines[1:])

    def test_ascii_table_empty(self):
        assert "empty" in ascii_table([])

    def test_ascii_table_ragged_rows(self):
        rows = [{"a": 1}, {"b": 2}]
        out = ascii_table(rows)
        assert "a" in out and "b" in out

    def test_box_stats_values(self):
        s = box_stats(np.array([0.0, 0.25, 0.5, 0.75, 1.0]))
        assert s["min"] == 0.0
        assert s["median"] == 0.5
        assert s["max"] == 1.0
        assert s["mean"] == 0.5

    def test_format_box_row_percent(self):
        row = format_box_row("m", np.array([0.5, 0.5]))
        assert row["median%"] == 50.0

    def test_format_series(self):
        s = format_series("m", [1, 2], [0.1, 0.2], "cost", "acc")
        assert "m [cost -> acc]" in s
        assert "(1, 0.1)" in s


class TestWorkloads:
    def test_build_dataset_scales(self):
        p = active_profile("femnist_like")
        ds = build_dataset(p, seed=0)
        assert ds.num_clients == max(8, int(3400 * p.scale))

    def test_make_initial_model_kinds(self, rng):
        p = active_profile("femnist_like")
        ds = build_dataset(p, seed=0)
        m = make_initial_model(ds, p, rng)
        assert m.macs() > 0
        p_img = p.with_(image=True, model_kind="cnn", init_width=4)
        ds_img = build_dataset(p_img, seed=0)
        m2 = make_initial_model(ds_img, p_img, rng)
        assert m2.input_shape == ds_img.input_shape

    def test_make_initial_model_vit(self, rng):
        p = active_profile("femnist_like").with_(image=True, model_kind="vit", init_width=8)
        ds = build_dataset(p, seed=0)
        m = make_initial_model(ds, p, rng)
        assert m.macs() > 0

    def test_unknown_model_kind_raises(self, rng):
        p = active_profile("femnist_like").with_(model_kind="nope")
        ds = build_dataset(p, seed=0)
        with pytest.raises(ValueError, match="unknown model kind"):
            make_initial_model(ds, p, rng)

    def test_run_method_unknown_raises(self):
        p = active_profile("femnist_like")
        ds = build_dataset(p, seed=0)
        with pytest.raises(ValueError, match="unknown method"):
            run_method("nope", ds, p)

    def test_subnet_methods_require_global(self):
        p = active_profile("femnist_like")
        ds = build_dataset(p, seed=0)
        with pytest.raises(ValueError, match="need the large global model"):
            run_method("heterofl", ds, p)

    def test_run_method_smoke(self):
        p = active_profile("femnist_like").with_(rounds=6, eval_every=3)
        ds = build_dataset(p, seed=0)
        res = run_method("fedtrans", ds, p, seed=0)
        assert res.method == "fedtrans"
        assert res.summary.rounds_run == 6

    def test_fedprox_uses_prox_trainer(self):
        p = active_profile("femnist_like").with_(rounds=4, eval_every=2)
        ds = build_dataset(p, seed=0)
        res = run_method("fedprox", ds, p, seed=0)
        assert res.summary.strategy == "fedprox"


class TestMotivation:
    def test_fig1a_shapes(self):
        lat = fig1a_latency_distributions(num_devices=64, seed=0)
        assert len(lat) == 3
        assert all(len(v) == 64 for v in lat.values())
        assert all((v > 0).all() for v in lat.values())
