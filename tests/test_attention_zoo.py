"""Attention blocks and the model zoo."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadSelfAttention, PatchEmbed
from repro.nn.gradcheck import max_relative_grad_error
from repro.nn.zoo import (
    complexity_ladder,
    mlp,
    reference_device_models,
    small_cnn,
    small_resnet,
    vit_tiny,
)


class TestMultiHeadAttention:
    def test_shape(self, rng):
        mha = MultiHeadSelfAttention(8, 2, rng)
        x = rng.normal(size=(2, 5, 8))
        assert mha.forward(x).shape == x.shape

    def test_heads_must_divide(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(8, 3, rng)

    def test_gradcheck(self, rng):
        mha = MultiHeadSelfAttention(6, 2, rng)
        x = rng.normal(size=(2, 3, 6))
        target = rng.normal(size=(2, 3, 6))

        def loss_fn():
            return float((mha.forward(x) * target).sum())

        mha.zero_grad()
        mha.forward(x)
        mha.backward(target)
        assert max_relative_grad_error(loss_fn, mha.params(), mha.grads(), rng) < 1e-5

    def test_input_grad_numeric(self, rng):
        mha = MultiHeadSelfAttention(4, 2, rng)
        x = rng.normal(size=(1, 3, 4))
        target = rng.normal(size=(1, 3, 4))
        mha.forward(x)
        dx = mha.backward(target)
        eps = 1e-6
        for idx in [(0, 0, 0), (0, 2, 3)]:
            x2 = x.copy()
            x2[idx] += eps
            up = (mha.forward(x2) * target).sum()
            x2[idx] -= 2 * eps
            down = (mha.forward(x2) * target).sum()
            assert abs((up - down) / (2 * eps) - dx[idx]) < 1e-6

    def test_permutation_equivariance(self, rng):
        """Self-attention without masks commutes with token permutation
        once positional information is absent."""
        mha = MultiHeadSelfAttention(6, 2, rng)
        x = rng.normal(size=(1, 4, 6))
        perm = np.array([2, 0, 3, 1])
        out1 = mha.forward(x)[:, perm]
        out2 = mha.forward(x[:, perm])
        assert np.allclose(out1, out2, atol=1e-10)


class TestPatchEmbed:
    def test_token_count(self, rng):
        pe = PatchEmbed(3, 8, 4, 16, rng)
        x = rng.normal(size=(2, 3, 8, 8))
        assert pe.forward(x).shape == (2, 4, 16)

    def test_indivisible_patch_raises(self, rng):
        with pytest.raises(ValueError, match="divide"):
            PatchEmbed(3, 9, 4, 16, rng)

    def test_gradcheck(self, rng):
        pe = PatchEmbed(2, 4, 2, 6, rng)
        x = rng.normal(size=(2, 2, 4, 4))
        target = rng.normal(size=(2, 4, 6))

        def loss_fn():
            return float((pe.forward(x) * target).sum())

        pe.zero_grad()
        pe.forward(x)
        pe.backward(target)
        assert max_relative_grad_error(loss_fn, pe.params(), pe.grads(), rng) < 1e-5

    def test_backward_input_shape(self, rng):
        pe = PatchEmbed(3, 8, 4, 16, rng)
        x = rng.normal(size=(2, 3, 8, 8))
        y = pe.forward(x)
        assert pe.backward(np.ones_like(y)).shape == x.shape


class TestZoo:
    def test_families_produce_valid_models(self, rng):
        models = [
            mlp((10,), 5, rng),
            small_cnn((3, 8, 8), 5, rng),
            small_resnet((1, 8, 8), 5, rng),
            vit_tiny((1, 8, 8), 5, rng, dim=8, heads=2, mlp_hidden=12, patch=4),
        ]
        for m in models:
            assert m.macs() > 0
            assert m.num_params() > 0

    def test_ladder_roughly_doubles(self, rng):
        ladder = complexity_ladder((16,), 4, rng, levels=6, base_width=8, kind="mlp")
        macs = [m.macs() for m in ladder]
        assert all(b > a for a, b in zip(macs, macs[1:]))
        ratios = [b / a for a, b in zip(macs, macs[1:])]
        # compound scaling: each level multiplies width by sqrt(2) => MACs ~2x
        assert all(1.3 < r < 3.0 for r in ratios)

    def test_ladder_cnn_kind_auto(self, rng):
        ladder = complexity_ladder((1, 8, 8), 4, rng, levels=3)
        assert ladder[0].input_shape == (1, 8, 8)

    def test_reference_models_strictly_ordered(self, rng):
        refs = reference_device_models((3, 8, 8), 10, rng)
        macs = [
            refs["mobilenet_v2_like"].macs(),
            refs["mobilenet_v3_like"].macs(),
            refs["efficientnet_b4_like"].macs(),
        ]
        assert macs[0] < macs[1] < macs[2]

    def test_vit_square_input_required(self, rng):
        with pytest.raises(ValueError, match="square"):
            vit_tiny((1, 8, 4), 5, rng)

    def test_stem_not_transformable(self, rng):
        for m in (
            mlp((6,), 3, rng),
            small_cnn((1, 8, 8), 3, rng),
            small_resnet((1, 8, 8), 3, rng),
        ):
            assert not m.cells[0].transformable
            assert not m.cells[-1].transformable
