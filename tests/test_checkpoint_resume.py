"""Durable runs: payload codec, crash-consistent writer, registry, resume.

In-process side: the flatten/unflatten codec and the single-``.npz``
payload files round-trip bit-exactly (including PCG64's 128-bit state
ints), the manifest pointer protocol prunes and verifies hashes, the run
registry hashes exactly the trajectory-relevant knobs, the sparse client
store survives eviction + compaction, and RNG capture/restore obeys
restore-then-draw == continue-then-draw.  A crash/resume matrix over
every (mode, executor) combination asserts the headline contract: a run
killed mid-training and resumed produces a bit-identical TrainingLog
(CONTRACTS.md I9 on top of I1/I2).

Subprocess side: a kill chain driven by ``REPRO_CKPT_CRASH_POINT``
SIGKILLs a real run inside every window of the checkpoint write protocol
(before payload / between payload and manifest / after manifest) and
asserts the directory always holds a loadable last-good checkpoint and
that the final resumed export matches the uninterrupted run exactly.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import sanitize
from repro.atomicio import atomic_write
from repro.baselines import fedavg
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import Coordinator, CoordinatorConfig, FLClient, LocalTrainerConfig
from repro.fl.checkpoint import (
    CHECKPOINT_FORMAT,
    MANIFEST_NAME,
    CheckpointWriter,
    flatten_payload,
    load_checkpoint,
    read_payload,
    unflatten_payload,
    write_payload,
)
from repro.fl.export import log_to_dict
from repro.fl.registry import RunRegistry, fleet_fingerprint, run_hash
from repro.fl.scheduling.store import ClientStateStore
from repro.nn import mlp
from repro.nn.cells import set_cell_id_counter
from repro.nn.model import set_model_id_counter

REPO = Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def _sanitizer_state():
    """Never leak sanitizer state (module flag or env var) across tests."""
    prev_enabled = sanitize.sanitizer_enabled()
    prev_env = os.environ.get("REPRO_SANITIZE")
    yield
    sanitize.set_sanitizer(prev_enabled)
    if prev_env is None:
        os.environ.pop("REPRO_SANITIZE", None)
    else:
        os.environ["REPRO_SANITIZE"] = prev_env


# ----------------------------------------------------------------------
# payload codec
# ----------------------------------------------------------------------
class TestPayloadCodec:
    PAYLOAD = {
        "schema": "Thing/v1",
        "n": 3,
        "f": 0.1 + 0.2,  # not shortest-decimal-trivial; must survive JSON
        "flag": True,
        "none": None,
        "nested": {"w": np.arange(6, dtype=np.float64).reshape(2, 3)},
        "seq": [1, {"x": np.ones(2, dtype=np.float32)}, "s"],
    }

    def test_flatten_unflatten_round_trip(self):
        skeleton, arrays = flatten_payload(self.PAYLOAD)
        json.dumps(skeleton)  # skeleton must be pure JSON
        back = unflatten_payload(skeleton, arrays)
        assert back["n"] == 3 and back["f"] == self.PAYLOAD["f"]
        assert back["flag"] is True and back["none"] is None
        np.testing.assert_array_equal(back["nested"]["w"], self.PAYLOAD["nested"]["w"])
        assert back["seq"][2] == "s"

    def test_numpy_scalars_become_native(self):
        skeleton, _ = flatten_payload(
            {"i": np.int64(7), "f": np.float64(1.5), "b": np.bool_(True)}
        )
        assert skeleton == {"i": 7, "f": 1.5, "b": True}
        assert type(skeleton["i"]) is int and type(skeleton["b"]) is bool

    def test_non_str_key_rejected(self):
        with pytest.raises(TypeError, match="keys must be str"):
            flatten_payload({3: "x"})

    def test_reserved_key_rejected(self):
        with pytest.raises(TypeError, match="reserved"):
            flatten_payload({"__array__": 1})

    def test_unsupported_leaf_rejected(self):
        with pytest.raises(TypeError, match="cannot checkpoint"):
            flatten_payload({"bad": object()})

    def test_file_round_trip_is_bit_exact(self, tmp_path):
        rng = np.random.default_rng(0)
        payload = {
            "a": rng.standard_normal((4, 5)),
            "b": {"c": rng.integers(0, 10, 7)},
            "f32": rng.standard_normal(3).astype(np.float32),
        }
        path = tmp_path / "p.npz"
        write_payload(path, payload)
        back = read_payload(path)
        for key in ("a", "f32"):
            assert back[key].dtype == payload[key].dtype
            np.testing.assert_array_equal(back[key], payload[key])
        np.testing.assert_array_equal(back["b"]["c"], payload["b"]["c"])

    def test_pcg64_state_ints_survive(self, tmp_path):
        # The bit generator's 128-bit state words overflow every fixed-width
        # container; they must round-trip through the JSON skeleton exactly.
        state = np.random.default_rng(123).bit_generator.state
        path = tmp_path / "rng.npz"
        write_payload(path, {"rng": state})
        back = read_payload(path)["rng"]
        assert back == state
        rng = np.random.default_rng(0)
        rng.bit_generator.state = back
        ref = np.random.default_rng(123)
        assert list(rng.integers(0, 2**62, 5)) == list(ref.integers(0, 2**62, 5))


# ----------------------------------------------------------------------
# writer / loader / registry
# ----------------------------------------------------------------------
class TestWriterAndLoader:
    def test_write_then_load(self, tmp_path):
        w = CheckpointWriter(tmp_path, "abc123")
        payload = {"schema": "RunCheckpoint/v1", "x": np.arange(3)}
        w.write(4, payload, completed=False)
        found = load_checkpoint(tmp_path, "abc123")
        assert found["manifest"]["round"] == 4
        assert found["manifest"]["completed"] is False
        assert found["manifest"]["format"] == CHECKPOINT_FORMAT
        assert "RunCheckpoint/v1" in found["manifest"]["schemas"]
        np.testing.assert_array_equal(found["payload"]["x"], np.arange(3))

    def test_superseded_checkpoints_pruned(self, tmp_path):
        w = CheckpointWriter(tmp_path, "h")
        w.write(1, {"r": 1}, completed=False)
        w.write(3, {"r": 3}, completed=False)
        npz = sorted(p.name for p in tmp_path.glob("ckpt-*.npz"))
        assert npz == ["ckpt-000003.npz"]
        assert load_checkpoint(tmp_path)["payload"]["r"] == 3

    def test_no_manifest_means_fresh_start(self, tmp_path):
        assert load_checkpoint(tmp_path) is None

    def test_run_hash_mismatch_raises(self, tmp_path):
        CheckpointWriter(tmp_path, "aaa").write(0, {"r": 0}, completed=False)
        with pytest.raises(ValueError, match="different run"):
            load_checkpoint(tmp_path, "bbb")

    def test_format_mismatch_raises(self, tmp_path):
        CheckpointWriter(tmp_path, "h").write(0, {"r": 0}, completed=False)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["format"] = CHECKPOINT_FORMAT + 1
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format"):
            load_checkpoint(tmp_path)


def _tiny_fleet(n=4, seed=0):
    cfg = SyntheticTaskConfig(
        num_classes=3, input_shape=(6,), latent_dim=4, teacher_width=8, seed=seed
    )
    ds = build_federated_dataset(cfg, n, mean_samples=10, seed=seed)
    return [
        FLClient(c.client_id, c, DeviceTrace(c.client_id, 1e9, 1e6, 1e12))
        for c in ds.clients
    ]


class TestRunRegistry:
    def _cfg(self, **kw):
        base = dict(rounds=4, clients_per_round=2, seed=0)
        base.update(kw)
        return CoordinatorConfig(**base)

    def test_hash_is_stable_and_neutral_to_backend_knobs(self):
        fleet = _tiny_fleet()
        base = run_hash("fedavg", self._cfg(), fleet)
        assert base == run_hash("fedavg", self._cfg(), fleet)
        assert base == run_hash("fedavg", self._cfg(executor="process"), fleet)
        assert base == run_hash("fedavg", self._cfg(sanitize=True), fleet)
        assert base == run_hash(
            "fedavg",
            self._cfg(checkpoint_dir="/tmp/x", checkpoint_every=2, resume=True),
            fleet,
        )

    def test_trajectory_knobs_change_the_hash(self):
        fleet = _tiny_fleet()
        base = run_hash("fedavg", self._cfg(), fleet)
        assert base != run_hash("fedavg", self._cfg(seed=1), fleet)
        assert base != run_hash("fedavg", self._cfg(rounds=5), fleet)
        assert base != run_hash("fedprox", self._cfg(), fleet)
        assert base != run_hash("fedavg", self._cfg(), _tiny_fleet(seed=1))

    def test_fingerprint_covers_data_and_capacity(self):
        fleet = _tiny_fleet()
        fp = fleet_fingerprint(fleet)
        assert len(fp) == len(fleet)
        assert fp[0][0] == fleet[0].client_id
        assert fp[0][3] == fleet[0].capacity_macs

    def test_run_dir_layout(self, tmp_path):
        fleet = _tiny_fleet()
        reg = RunRegistry(tmp_path)
        d = reg.run_dir("fedavg", self._cfg(), fleet)
        assert d.is_dir() and d.parent == tmp_path
        assert d.name == f"fedavg-{run_hash('fedavg', self._cfg(), fleet)}"
        assert reg.runs() == [d.name]


# ----------------------------------------------------------------------
# component round-trips that need more than generic Stateful plumbing
# ----------------------------------------------------------------------
class TestClientStateStoreDurability:
    def test_round_trip_after_eviction_and_compaction(self):
        store = ClientStateStore(evict_after=2)
        for cid in range(6):
            store.materialize(cid)["utility"] = float(cid)
        store.advance(1)
        # Re-touch a subset (stamped at round 1), then advance far enough
        # to evict the round-0 rest — which also triggers the container
        # compaction rebuild.
        for cid in (1, 4):
            store.materialize(cid)
        store.advance(3)
        assert store.evicted_total == 4 and len(store) == 2

        restored = ClientStateStore()
        restored.load_state_dict(store.state_dict())
        assert restored.evict_after == 2
        assert restored.evicted_total == 4
        assert sorted(restored.data) == [1, 4]
        assert restored.get(1) == {"utility": 1.0}
        assert restored.state_dict() == store.state_dict()

    def test_restored_store_keeps_evicting_identically(self):
        store = ClientStateStore(evict_after=1)
        store.materialize(0)
        store.advance(0)
        twin = ClientStateStore()
        twin.load_state_dict(store.state_dict())
        assert store.advance(3) == twin.advance(3) == [0]
        assert store.evicted_total == twin.evicted_total == 1


class TestRngCaptureRestore:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_restore_then_draw_equals_continue_then_draw(self, seed):
        rng = np.random.default_rng(seed)
        rng.standard_normal(17)  # mid-round: some entropy already consumed
        snapshot = rng.bit_generator.state
        continued = rng.standard_normal(29)

        fresh = np.random.default_rng(0)  # wrong seed on purpose
        fresh.bit_generator.state = snapshot
        restored = fresh.standard_normal(29)
        np.testing.assert_array_equal(continued, restored)

    def test_snapshot_is_inert(self):
        # Capturing must not perturb the stream (a draw-to-inspect bug
        # would silently shift every post-checkpoint round).
        a = np.random.default_rng(3)
        b = np.random.default_rng(3)
        _ = a.bit_generator.state
        np.testing.assert_array_equal(a.standard_normal(8), b.standard_normal(8))


# ----------------------------------------------------------------------
# end-to-end crash/resume matrix (in-process crash injection)
# ----------------------------------------------------------------------
def _build(ckpt_dir=None, resume=False, mode="sync", executor="serial",
           sanitize_run=False):
    # Each build simulates a fresh process: both process-global id
    # counters restart so lineage names are reproducible.
    set_model_id_counter(0)
    set_cell_id_counter(0)
    cfg = SyntheticTaskConfig(
        num_classes=4, input_shape=(8,), latent_dim=6, teacher_width=12,
        class_sep=3.0, seed=0,
    )
    ds = build_federated_dataset(cfg, 8, mean_samples=20, seed=0)
    clients = [
        FLClient(c.client_id, c, DeviceTrace(c.client_id, 1e9, 1e6, 1e12))
        for c in ds.clients
    ]
    rng = np.random.default_rng(0)
    strat = fedavg(mlp(ds.input_shape, ds.num_classes, rng, width=8))
    kw = dict(
        rounds=6, clients_per_round=4,
        trainer=LocalTrainerConfig(batch_size=8, local_steps=3, lr=0.2),
        eval_every=2, seed=0, mode=mode, executor=executor,
    )
    if mode == "async":
        kw.update(buffer_k=2)
    if sanitize_run:
        kw.update(sanitize=True)
    if ckpt_dir is not None:
        kw.update(checkpoint_every=2, checkpoint_dir=str(ckpt_dir), resume=resume)
    return Coordinator(strat, clients, CoordinatorConfig(**kw))


def _crash_at(coord, crash_round):
    real = coord._run_round

    def boom(round_idx, log):
        if round_idx == crash_round:
            raise RuntimeError("injected crash")
        return real(round_idx, log)

    coord._run_round = boom


def _dumps(log):
    return json.dumps(log_to_dict(log), sort_keys=True)


class TestResumeBitIdentity:
    @pytest.mark.parametrize("mode", ["sync", "async"])
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_resume_matches_uninterrupted(self, tmp_path, mode, executor):
        ref = _dumps(_build(mode=mode, executor=executor).run())
        coord = _build(tmp_path, mode=mode, executor=executor)
        _crash_at(coord, crash_round=4)  # after the round-3 checkpoint
        with pytest.raises(RuntimeError, match="injected"):
            coord.run()
        resumed = _build(tmp_path, resume=True, mode=mode, executor=executor).run()
        assert _dumps(resumed) == ref

    def test_resume_under_different_backend(self, tmp_path):
        ref = _dumps(_build().run())
        coord = _build(tmp_path)
        _crash_at(coord, crash_round=4)
        with pytest.raises(RuntimeError):
            coord.run()
        resumed = _build(tmp_path, resume=True, executor="thread").run()
        assert _dumps(resumed) == ref

    def test_resume_with_sanitizer(self, tmp_path):
        ref = _dumps(_build().run())  # sanitizer never changes results
        coord = _build(tmp_path, sanitize_run=True)
        _crash_at(coord, crash_round=4)
        with pytest.raises(RuntimeError):
            coord.run()
        resumed = _build(tmp_path, resume=True, sanitize_run=True).run()
        assert _dumps(resumed) == ref

    def test_resume_of_completed_run_is_idempotent(self, tmp_path):
        first = _dumps(_build(tmp_path).run())
        again = _dumps(_build(tmp_path, resume=True).run())
        assert again == first

    def test_resume_with_no_checkpoint_is_fresh_start(self, tmp_path):
        ref = _dumps(_build().run())
        assert _dumps(_build(tmp_path, resume=True).run()) == ref

    def test_mode_mismatch_raises(self, tmp_path):
        coord = _build(tmp_path)
        _crash_at(coord, crash_round=4)
        with pytest.raises(RuntimeError):
            coord.run()
        # Same trajectory knobs except mode => different run hash, so the
        # sync checkpoint is simply invisible to an async run (fresh dir).
        async_coord = _build(tmp_path, resume=True, mode="async")
        log = async_coord.run()
        assert log.mode == "async"


# ----------------------------------------------------------------------
# SIGKILL torture: every window of the write protocol, in a real process
# ----------------------------------------------------------------------
_RUNNER = """\
import json, sys
import numpy as np
from repro.baselines import fedavg
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import Coordinator, CoordinatorConfig, FLClient, LocalTrainerConfig
from repro.fl.export import log_to_dict
from repro.nn import mlp

ckpt_dir, resume, out = sys.argv[1], sys.argv[2] == "resume", sys.argv[3]
cfg = SyntheticTaskConfig(num_classes=4, input_shape=(8,), latent_dim=6,
                          teacher_width=12, class_sep=3.0, seed=0)
ds = build_federated_dataset(cfg, 8, mean_samples=20, seed=0)
clients = [FLClient(c.client_id, c, DeviceTrace(c.client_id, 1e9, 1e6, 1e12))
           for c in ds.clients]
rng = np.random.default_rng(0)
strat = fedavg(mlp(ds.input_shape, ds.num_classes, rng, width=8))
kw = dict(rounds=6, clients_per_round=4,
          trainer=LocalTrainerConfig(batch_size=8, local_steps=3, lr=0.2),
          eval_every=2, seed=0)
if ckpt_dir != "-":
    kw.update(checkpoint_every=2, checkpoint_dir=ckpt_dir, resume=resume)
log = Coordinator(strat, clients, CoordinatorConfig(**kw)).run()
with open(out, "w") as f:
    json.dump(log_to_dict(log), f, sort_keys=True)
"""


class TestSigkillResume:
    def _run(self, tmp_path, ckpt_dir, resume, crash_point=None):
        out = tmp_path / "out.json"
        out.unlink(missing_ok=True)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env.pop("REPRO_CKPT_CRASH_POINT", None)
        if crash_point is not None:
            env["REPRO_CKPT_CRASH_POINT"] = crash_point
        proc = subprocess.run(
            [sys.executable, "-c", _RUNNER, str(ckpt_dir),
             "resume" if resume else "fresh", str(out)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        return proc, out

    def test_kill_chain_recovers_bit_identically(self, tmp_path):
        proc, out = self._run(tmp_path, "-", resume=False)
        assert proc.returncode == 0, proc.stderr
        ref = out.read_text()

        run_root = tmp_path / "runs"
        # 1. SIGKILL right after the first manifest move: last-good is the
        #    round-1 checkpoint.
        proc, _ = self._run(tmp_path, run_root, resume=False,
                            crash_point="after-manifest")
        assert proc.returncode == -9
        (run_dir,) = [p for p in run_root.iterdir() if p.is_dir()]
        found = load_checkpoint(run_dir)
        assert found["manifest"]["round"] == 1
        assert found["manifest"]["completed"] is False

        # 2. Resume, then SIGKILL between payload and manifest: the new
        #    payload file is on disk but the pointer still names round 1 —
        #    and that checkpoint must still load (never a torn manifest).
        proc, _ = self._run(tmp_path, run_root, resume=True,
                            crash_point="after-payload")
        assert proc.returncode == -9
        names = sorted(p.name for p in run_dir.glob("ckpt-*.npz"))
        assert "ckpt-000003.npz" in names  # orphaned newer payload
        found = load_checkpoint(run_dir)
        assert found["manifest"]["round"] == 1
        assert found["payload"]["next_round"] == 2

        # 3. Resume, then SIGKILL before anything is written: no change.
        proc, _ = self._run(tmp_path, run_root, resume=True,
                            crash_point="before-payload")
        assert proc.returncode == -9
        assert load_checkpoint(run_dir)["manifest"]["round"] == 1

        # 4. Final resume with no crash hook: run completes and the export
        #    is byte-identical to the uninterrupted run's.
        proc, out = self._run(tmp_path, run_root, resume=True)
        assert proc.returncode == 0, proc.stderr
        assert out.read_text() == ref
        assert load_checkpoint(run_dir)["manifest"]["completed"] is True


# ----------------------------------------------------------------------
# atomic_write failure paths (repro.atomicio)
# ----------------------------------------------------------------------
class TestAtomicWriteFailurePaths:
    """A failed atomic_write must leave the previous file intact — never
    torn, never half-replaced — and clean up its temp file."""

    @staticmethod
    def _no_tmp_litter(tmp_path, allow=0):
        return len(list(tmp_path.glob("*.tmp-*"))) == allow

    def test_fsync_failure_leaves_old_file(self, tmp_path, monkeypatch):
        target = tmp_path / "out.json"
        target.write_text("old complete content")
        real_fsync = os.fsync

        def failing_fsync(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "fsync", failing_fsync)
        with pytest.raises(OSError, match="No space left"):
            with atomic_write(target, "w", encoding="utf-8") as f:
                f.write("new content that must not land")
        monkeypatch.setattr(os, "fsync", real_fsync)
        assert target.read_text() == "old complete content"
        assert self._no_tmp_litter(tmp_path)

    def test_replace_failure_leaves_old_file(self, tmp_path, monkeypatch):
        target = tmp_path / "out.json"
        target.write_text("old complete content")

        def failing_replace(src, dst):
            raise PermissionError(13, "Permission denied")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(PermissionError):
            with atomic_write(target, "w", encoding="utf-8") as f:
                f.write("new content that must not land")
        assert target.read_text() == "old complete content"
        assert self._no_tmp_litter(tmp_path)

    def test_exception_in_body_leaves_old_file(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old bytes")
        with pytest.raises(RuntimeError, match="mid-write"):
            with atomic_write(target) as f:
                f.write(b"half of the new")
                raise RuntimeError("producer died mid-write")
        assert target.read_bytes() == b"old bytes"
        assert self._no_tmp_litter(tmp_path)

    def test_failure_with_no_previous_file(self, tmp_path, monkeypatch):
        """First-ever write failing must not conjure a partial target."""
        target = tmp_path / "fresh.json"

        def failing_replace(src, dst):
            raise OSError(5, "I/O error")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError):
            with atomic_write(target, "w", encoding="utf-8") as f:
                f.write("never lands")
        assert not target.exists()
        assert self._no_tmp_litter(tmp_path)

    def test_property_old_or_new_never_torn(self, tmp_path, monkeypatch):
        """Inject a failure at every step of every write in a chain of
        versions: after each attempt the file holds exactly one previous
        *complete* version — the invariant checkpoint resume rides on."""
        target = tmp_path / "versioned.txt"
        contents = [f"version {i:03d} " + "x" * (20 * (i + 1)) for i in range(8)]
        committed = None
        real_fsync, real_replace = os.fsync, os.replace
        rng = np.random.default_rng(42)
        fail_steps = ["fsync", "replace", "body", None]
        for i, content in enumerate(contents):
            step = fail_steps[int(rng.integers(len(fail_steps)))] if i < len(
                contents
            ) - 1 else None  # last write always succeeds
            if step == "fsync":
                monkeypatch.setattr(
                    os, "fsync", lambda fd: (_ for _ in ()).throw(OSError("disk"))
                )
            elif step == "replace":
                monkeypatch.setattr(
                    os,
                    "replace",
                    lambda s, d: (_ for _ in ()).throw(OSError("denied")),
                )
            try:
                with atomic_write(target, "w", encoding="utf-8") as f:
                    f.write(content)
                    if step == "body":
                        raise RuntimeError("producer died")
            except (OSError, RuntimeError):
                assert step is not None
            else:
                assert step is None
                committed = content
            finally:
                monkeypatch.setattr(os, "fsync", real_fsync)
                monkeypatch.setattr(os, "replace", real_replace)
            if committed is None:
                assert not target.exists()
            else:
                assert target.read_text() == committed  # old-or-new, never torn
            assert self._no_tmp_litter(tmp_path)
        assert committed == contents[-1]
