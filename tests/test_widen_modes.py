"""Both widening schemes: duplication (paper rule) and zero-expansion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import mlp, small_cnn, small_resnet, vit_tiny
from repro.nn.cells import make_widen_mapping
from repro.nn.optim import SGD


class TestMakeWidenMapping:
    def test_zero_mode_flag(self, rng):
        wm = make_widen_mapping(4, 2.0, rng, mode="zero")
        assert wm.zero_new
        assert not make_widen_mapping(4, 2.0, rng, mode="dup").zero_new

    def test_unknown_mode(self, rng):
        with pytest.raises(ValueError, match="unknown widen mode"):
            make_widen_mapping(4, 2.0, rng, mode="nope")


@pytest.mark.parametrize("mode", ["dup", "zero"])
@pytest.mark.parametrize(
    "maker,shape",
    [
        (lambda r: mlp((6,), 4, r, width=8), (6,)),
        (lambda r: small_cnn((1, 8, 8), 4, r, width=4), (1, 8, 8)),
        (lambda r: small_resnet((1, 8, 8), 4, r, width=4), (1, 8, 8)),
        (
            lambda r: vit_tiny((1, 8, 8), 4, r, dim=8, heads=2, mlp_hidden=12, patch=4),
            (1, 8, 8),
        ),
    ],
)
def test_both_modes_function_preserving(mode, maker, shape, rng):
    m = maker(rng)
    x = rng.normal(size=(4,) + shape)
    before = m.predict(x)
    for cell in m.transformable_cells():
        m.widen_cell(cell.cell_id, 2.0, rng, noise=0.0, mode=mode)
    assert np.allclose(before, m.predict(x), atol=1e-8)


class TestZeroModeCapacity:
    def test_new_channels_are_fresh_not_duplicates(self, rng):
        m = mlp((6,), 3, rng, width=4)
        cell = m.transformable_cells()[0]
        m.widen_cell(cell.cell_id, 2.0, rng, mode="zero")
        w = cell.params()["fc.w"]
        for j in range(4, 8):
            for i in range(4):
                assert not np.allclose(w[:, j], w[:, i])

    def test_consumer_new_columns_zero(self, rng):
        m = mlp((6,), 3, rng, width=4)
        cell = m.transformable_cells()[0]
        idx = m.cell_index(cell.cell_id)
        m.widen_cell(cell.cell_id, 2.0, rng, mode="zero")
        consumer = m.cells[idx + 1]
        key = "fc.w" if "fc.w" in consumer.params() else "head.w"
        assert np.all(consumer.params()[key][4:] == 0.0)

    def test_new_pathway_trains_immediately(self, rng):
        """Unlike exact duplicates, zero-expanded channels get nonzero
        outgoing-weight gradients from step one."""
        m = mlp((6,), 3, rng, width=4)
        cell = m.transformable_cells()[0]
        idx = m.cell_index(cell.cell_id)
        m.widen_cell(cell.cell_id, 2.0, rng, mode="zero")
        x = rng.normal(size=(16, 6))
        y = rng.integers(0, 3, 16)
        m.zero_grad()
        m.loss_and_grad(x, y)
        consumer = m.cells[idx + 1]
        key = "fc.w" if "fc.w" in consumer.grads() else "head.w"
        g_new = consumer.grads()[key][4:]
        assert np.abs(g_new).max() > 0

    def test_zero_mode_outgrows_duplication(self, rng):
        """The reason zero is the default: after brief training, the widened
        model's new capacity is used (consumer columns leave zero), whereas
        exact duplicates remain redundant."""
        m = mlp((6,), 3, rng, width=4)
        cell = m.transformable_cells()[0]
        idx = m.cell_index(cell.cell_id)
        m.widen_cell(cell.cell_id, 2.0, rng, mode="zero")
        consumer = m.cells[idx + 1]
        key = "fc.w" if "fc.w" in consumer.params() else "head.w"
        x = rng.normal(size=(64, 6))
        y = ((x[:, 0] > 0) & (x[:, 1] > 0)).astype(int)
        opt = SGD(0.2)
        for _ in range(40):
            m.zero_grad()
            m.loss_and_grad(x, y)
            opt.step(m.params(), m.grads())
        assert np.abs(consumer.params()[key][4:]).max() > 1e-3

    def test_bn_rows_for_new_channels(self, rng):
        m = small_cnn((1, 8, 8), 3, rng, width=4)
        cell = m.transformable_cells()[0]
        m.widen_cell(cell.cell_id, 2.0, rng, mode="zero")
        assert np.all(cell.bn.gamma[4:] == 1.0)
        assert np.all(cell.bn.beta[4:] == 0.0)
        assert np.all(cell.bn.running_var[4:] == 1.0)


@given(seed=st.integers(0, 300), mode=st.sampled_from(["dup", "zero"]))
@settings(max_examples=20, deadline=None)
def test_property_widen_modes_preserve_any_model(seed, mode):
    rng = np.random.default_rng(seed)
    m = mlp((5,), 3, rng, width=4, depth=2)
    x = rng.normal(size=(6, 5))
    before = m.predict(x)
    cells = m.transformable_cells()
    target = cells[seed % len(cells)]
    m.widen_cell(target.cell_id, 2.0, rng, mode=mode)
    assert np.allclose(before, m.predict(x), atol=1e-8)
