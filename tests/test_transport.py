"""Transport codec subsystem: spec grammar, primitives, wire contracts.

The heart of the suite is CONTRACTS.md I11: lossless codec paths
(``update:rle``, ``snapshot:rle``) must replay the golden scheduling
fixture bit-identically on every backend x mode combination — compression
may only change the *byte accounting*, never the trajectory — while lossy
paths (int8/bf16/topk) must be deterministic across backends and must
declare themselves in the config.  The shm wire-format version tag (I2's
publish chain, now versioned) and the error-feedback residuals' Stateful
contract (I9) are covered here too.
"""

import json
import re
import struct
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import fedavg
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import (
    Coordinator,
    CoordinatorConfig,
    FLClient,
    LocalTrainerConfig,
    SnapshotFormatError,
    TransportCodec,
    TransportConfig,
    log_to_dict,
    transport_to_dict,
)
from repro.fl import shm as shm_mod
from repro.fl.export import log_from_state, log_state_dict, save_transport
from repro.fl.transport import (
    bf16_decode,
    bf16_encode,
    decode_indices,
    dequantize_int8,
    encode_indices,
    quantize_int8,
    rle_decode_bytes,
    rle_encode_bytes,
)
from repro.fl.types import ClientUpdate
from repro.nn import mlp
from repro.nn.cells import set_cell_id_counter
from repro.nn.model import set_model_id_counter

GOLDEN = Path(__file__).parent / "data" / "golden_prerefactor_scheduling.json"

TRAINER = LocalTrainerConfig(batch_size=8, local_steps=5, lr=0.2)


# ----------------------------------------------------------------------
# spec grammar
# ----------------------------------------------------------------------
class TestSpecGrammar:
    def test_parse_full_chain(self):
        cfg = TransportConfig.parse("update:int8+topk0.01,snapshot:rle")
        assert cfg.update_quantizer == "int8"
        assert cfg.update_topk == 0.01
        assert cfg.snapshot_rle and not cfg.update_rle
        assert not cfg.lossless and cfg.has_update

    def test_canonical_spec_is_stable(self):
        a = TransportConfig.parse("update:int8+topk0.01")
        b = TransportConfig.parse("update:topk0.01+int8")
        assert a == b
        assert a.spec == b.spec == "update:topk0.01+int8"
        assert TransportConfig.parse(a.spec) == a

    def test_lossless_specs(self):
        assert TransportConfig.parse("update:rle,snapshot:rle").lossless
        assert TransportConfig.parse("snapshot:rle").lossless
        assert not TransportConfig.parse("snapshot:rle").has_update
        assert not TransportConfig.parse("update:bf16").lossless

    @pytest.mark.parametrize(
        "bad, msg",
        [
            ("", "empty compress spec"),
            ("   ", "empty compress spec"),
            ("update", "malformed compress section"),
            ("update:", "malformed compress section"),
            ("gossip:rle", "unknown compress scope"),
            ("update:zstd", "unknown update codec"),
            ("update:int8+bf16", "at most one quantizer"),
            ("update:topk0.1+topk0.2", "duplicate topk"),
            ("update:topkfast", "malformed topk rate"),
            ("update:topk0", "topk rate must lie"),
            ("update:topk1.5", "topk rate must lie"),
            ("update:rle+int8", "combines with nothing"),
            ("snapshot:int8", "snapshot codec must be 'rle'"),
            ("update:rle,update:int8", "duplicate compress section"),
        ],
    )
    def test_rejects_bad_specs(self, bad, msg):
        with pytest.raises(ValueError, match=msg):
            TransportConfig.parse(bad)


# ----------------------------------------------------------------------
# primitives: property tests
# ----------------------------------------------------------------------
class TestRlePrimitive:
    def test_identical_buffers_collapse(self):
        data = bytes(range(256)) * 8
        enc = rle_encode_bytes(data, data)
        assert enc is not None and len(enc) < 8
        assert rle_decode_bytes(enc, data) == data

    def test_sparse_diff_round_trips(self, rng):
        ref = rng.integers(0, 256, 4096).astype(np.uint8).tobytes()
        a = bytearray(ref)
        for pos in (10, 11, 12, 2000, 4095):
            a[pos] ^= 0xFF
        data = bytes(a)
        enc = rle_encode_bytes(data, ref)
        assert enc is not None and len(enc) < len(data)
        assert rle_decode_bytes(enc, ref) == data

    def test_hopeless_inputs_fall_back(self, rng):
        dense = rng.integers(0, 256, 1024).astype(np.uint8).tobytes()
        other = rng.integers(0, 256, 1024).astype(np.uint8).tobytes()
        assert rle_encode_bytes(dense, other) is None  # everything differs
        assert rle_encode_bytes(dense, dense[:-1]) is None  # length mismatch
        assert rle_encode_bytes(b"", b"") is None  # empty

    def test_random_fuzz_is_lossless(self, rng):
        """Whenever the encoder emits anything, decoding is exact."""
        for trial in range(50):
            n = int(rng.integers(1, 300))
            ref = rng.integers(0, 256, n).astype(np.uint8).tobytes()
            a = bytearray(ref)
            for pos in rng.integers(0, n, int(rng.integers(0, 6))):
                a[pos] = int(rng.integers(0, 256))
            data = bytes(a)
            enc = rle_encode_bytes(data, ref)
            if enc is not None:
                assert len(enc) < len(data)
                assert rle_decode_bytes(enc, ref) == data

    def test_corrupt_stream_raises(self):
        data = b"x" * 64
        ref = b"y" * 64
        enc = rle_encode_bytes(data[:32] + ref[32:], ref)
        assert enc is not None
        with pytest.raises(ValueError, match="corrupt rle stream"):
            rle_decode_bytes(enc + b"\x01\x00", ref)


class TestIndexCodec:
    def test_round_trip_random_subsets(self, rng):
        for _ in range(50):
            n = int(rng.integers(1, 500))
            k = int(rng.integers(0, n + 1))
            idx = np.sort(rng.choice(n, size=k, replace=False))
            back, n_back = decode_indices(encode_indices(idx, n))
            assert n_back == n
            np.testing.assert_array_equal(back, idx)

    def test_contiguous_runs_are_cheap(self):
        # 1000 consecutive survivors: one (gap, run) pair, not 1000 ints.
        enc = encode_indices(np.arange(1000), 10_000)
        assert len(enc) < 10

    def test_corrupt_stream_raises(self):
        enc = encode_indices(np.array([5, 6, 7]), 10)
        with pytest.raises(ValueError, match="corrupt top-k index stream"):
            decode_indices(enc + b"\x00")


class TestQuantizers:
    def test_int8_error_bounded_by_half_scale(self, rng):
        for _ in range(20):
            x = rng.standard_normal(int(rng.integers(1, 200))) * float(
                rng.uniform(0.01, 100)
            )
            payload, scale = quantize_int8(x)
            back = dequantize_int8(payload, scale, x.shape, x.dtype)
            assert np.max(np.abs(back - x)) <= scale / 2 + 1e-12

    def test_int8_zero_and_empty(self):
        payload, scale = quantize_int8(np.zeros(5))
        assert scale == 0.0
        np.testing.assert_array_equal(
            dequantize_int8(payload, scale, (5,), np.dtype(np.float64)),
            np.zeros(5),
        )
        payload, scale = quantize_int8(np.zeros(0))
        assert scale == 0.0 and payload == b""

    def test_int8_is_deterministic(self, rng):
        x = rng.standard_normal(64)
        assert quantize_int8(x) == quantize_int8(x.copy())

    def test_bf16_representable_values_round_trip_exactly(self):
        # Values with <= 8 significand bits are exactly representable in
        # bfloat16, so the truncation round-trips them bit-for-bit.
        x = np.array([0.0, 1.0, -2.5, 0.15625, 2.0**100, -1.0 / 1024], dtype=np.float64)
        back = bf16_decode(bf16_encode(x), x.shape, x.dtype)
        np.testing.assert_array_equal(back, x)

    def test_bf16_truncates_toward_neighbor(self, rng):
        x = rng.standard_normal(256)
        back = bf16_decode(bf16_encode(x), x.shape, x.dtype)
        # bf16 keeps 7 explicit mantissa bits; truncation error < 1 ulp.
        assert np.max(np.abs(back - x) / np.maximum(np.abs(x), 1e-30)) < 2**-7


# ----------------------------------------------------------------------
# the stateful codec
# ----------------------------------------------------------------------
def _mk_update(params, state=None, cid=0, mid="m0"):
    nbytes = sum(a.nbytes for a in params.values()) + sum(
        a.nbytes for a in (state or {}).values()
    )
    return ClientUpdate(
        client_id=cid,
        model_id=mid,
        params=params,
        state=state or {},
        grad={},
        train_loss=0.0,
        num_samples=1,
        macs_spent=0.0,
        bytes_down=nbytes,
        bytes_up=nbytes,
        round_time=1.0,
        raw_bytes_up=nbytes,
    )


class _FakeModel:
    def __init__(self, params, state=None):
        self._p, self._s = params, state or {}

    def params(self):
        return self._p

    def state(self):
        return self._s


class TestTransportCodec:
    def test_lossless_rle_keeps_values_untouched(self, rng):
        w = rng.standard_normal((8, 4))
        update = _mk_update({"w": w.copy()})
        codec = TransportCodec(TransportConfig.parse("update:rle"))
        codec.encode_update(update, _FakeModel({"w": w.copy()}))
        np.testing.assert_array_equal(update.params["w"], w)
        assert update.bytes_up < update.raw_bytes_up  # identical ref: tiny
        assert codec.state_dict()["residuals"] == []  # lossless: no EF state

    def test_lossy_wire_is_smaller_and_decoded_in_place(self, rng):
        ref = rng.standard_normal((32, 16))
        client = ref + 0.01 * rng.standard_normal(ref.shape)
        update = _mk_update({"w": client.copy()})
        codec = TransportCodec(TransportConfig.parse("update:topk0.1+int8"))
        codec.encode_update(update, _FakeModel({"w": ref.copy()}))
        assert update.bytes_up < update.raw_bytes_up / 5
        assert update.raw_bytes_up == ref.nbytes
        # Decoded values: ref + sparse quantized delta, not the original.
        assert not np.array_equal(update.params["w"], client)
        moved = np.sum(update.params["w"] != ref)
        assert 0 < moved <= int(np.ceil(0.1 * ref.size))

    def test_error_feedback_carries_the_remainder(self, rng):
        """What one round drops, the residual feeds into the next round."""
        ref = np.zeros(100)
        delta = rng.standard_normal(100)
        codec = TransportCodec(TransportConfig.parse("update:topk0.05"))
        u1 = _mk_update({"w": ref + delta})
        codec.encode_update(u1, _FakeModel({"w": ref.copy()}))
        shipped1 = u1.params["w"] - ref
        res = codec._residuals[(0, "m0", "param", "w")]
        np.testing.assert_allclose(shipped1 + res, delta, atol=1e-12)
        # A second identical client delta now rides on the residual: the
        # cumulative shipped mass keeps growing toward the true signal.
        u2 = _mk_update({"w": ref + delta})
        codec.encode_update(u2, _FakeModel({"w": ref.copy()}))
        shipped2 = u2.params["w"] - ref
        assert np.count_nonzero(shipped2) > 0
        res2 = codec._residuals[(0, "m0", "param", "w")]
        np.testing.assert_allclose(shipped1 + shipped2 + res2, 2 * delta, atol=1e-12)

    def test_residual_resets_on_shape_change(self, rng):
        codec = TransportCodec(TransportConfig.parse("update:int8"))
        codec.encode_update(
            _mk_update({"w": rng.standard_normal(16)}),
            _FakeModel({"w": np.zeros(16)}),
        )
        assert codec._residuals[(0, "m0", "param", "w")].shape == (16,)
        # The model was transformed: same key, new capacity.
        codec.encode_update(
            _mk_update({"w": rng.standard_normal(24)}),
            _FakeModel({"w": np.zeros(24)}),
        )
        assert codec._residuals[(0, "m0", "param", "w")].shape == (24,)

    def test_non_finite_tensors_bypass_the_codec(self):
        w = np.full(32, np.nan)
        update = _mk_update({"w": w.copy()})
        codec = TransportCodec(TransportConfig.parse("update:int8"))
        codec.encode_update(update, _FakeModel({"w": np.zeros(32)}))
        np.testing.assert_array_equal(update.params["w"], w)  # poison intact
        assert update.bytes_up == w.nbytes  # shipped raw
        assert codec.state_dict()["residuals"] == []

    def test_state_dict_round_trips(self, rng):
        codec = TransportCodec(TransportConfig.parse("update:int8"))
        codec.encode_update(
            _mk_update({"w": rng.standard_normal(16)}),
            _FakeModel({"w": np.zeros(16)}),
        )
        clone = TransportCodec(TransportConfig.parse("update:int8"))
        clone.load_state_dict(codec.state_dict())
        assert set(clone._residuals) == set(codec._residuals)
        for k in codec._residuals:
            np.testing.assert_array_equal(clone._residuals[k], codec._residuals[k])

    def test_load_rejects_spec_mismatch(self):
        codec = TransportCodec(TransportConfig.parse("update:int8"))
        other = TransportCodec(TransportConfig.parse("update:bf16"))
        with pytest.raises(ValueError, match="does not match"):
            other.load_state_dict(codec.state_dict())

    def test_wire_time_reprices_the_upload_leg(self, rng):
        w = rng.standard_normal((16, 16))
        device = DeviceTrace(0, 1e9, 1e6, 1e15)
        update = _mk_update({"w": w.copy()})
        t0 = update.round_time
        codec = TransportCodec(TransportConfig.parse("update:topk0.05+int8"))
        codec.encode_update(update, _FakeModel({"w": w.copy()}), device=device,
                            wire_time=True)
        saved = (update.raw_bytes_up - update.bytes_up) / device.bandwidth
        assert update.round_time == pytest.approx(t0 - saved)


# ----------------------------------------------------------------------
# shm wire-format version tag
# ----------------------------------------------------------------------
class TestWireFormatVersion:
    def _read(self, payload: bytes):
        class _FakeShm:
            buf = memoryview(bytearray(payload))
            name = "fake"

        return shm_mod.read_snapshot_segment(_FakeShm())

    def test_old_format_fails_descriptively(self):
        # Wire format 1 led with a bare little-endian u64 header length —
        # no magic.  Its first 4 bytes are tiny-integer header bytes.
        header = json.dumps({"kind": "full"}).encode()
        old = struct.pack("<Q", len(header)) + header
        with pytest.raises(SnapshotFormatError, match="wire format 1"):
            self._read(old)

    def test_garbage_fails_descriptively(self):
        with pytest.raises(SnapshotFormatError, match="not a snapshot segment"):
            self._read(b"GIF89a" + b"\x00" * 64)

    def test_truncated_segment_fails(self):
        with pytest.raises(SnapshotFormatError, match="too small"):
            self._read(b"RS")

    def test_future_version_fails_with_both_numbers(self):
        payload = shm_mod._PREFIX.pack(shm_mod._MAGIC, 99, 2) + b"{}"
        with pytest.raises(SnapshotFormatError, match="99") as ei:
            self._read(payload)
        assert str(shm_mod.WIRE_FORMAT_VERSION) in str(ei.value)

    def test_current_segments_round_trip(self, rng):
        model = mlp((8,), 4, rng, width=8)
        seg, wire, raw = shm_mod.write_snapshot_segment(
            "t_wire_rt", "full", {model.model_id: model}
        )
        try:
            kind, models, removed, all_ids = shm_mod.read_snapshot_segment(seg)
            assert kind == "full" and wire == raw
            for k, v in model.params().items():
                np.testing.assert_array_equal(models[model.model_id].params()[k], v)
        finally:
            seg.close()
            seg.unlink()

    def test_rle_delta_segment_round_trips_against_prev(self, rng):
        model = mlp((8,), 4, rng, width=8)
        shadow: dict = {}
        seg1, w1, r1 = shm_mod.write_snapshot_segment(
            "t_rle_full", "full", {model.model_id: model}, shadow=shadow
        )
        try:
            # prev's tensors view into seg1's mapping; keep it open until
            # the delta has been decoded against them (worker semantics).
            _, prev, *_ = shm_mod.read_snapshot_segment(seg1)
            # Nudge one tensor: the delta segment rle-diffs it vs the shadow.
            params = model.params()
            key = next(iter(params))
            params[key].flat[0] += 1.0
            model.bump_version()
            seg2, w2, r2 = shm_mod.write_snapshot_segment(
                "t_rle_delta", "delta", {model.model_id: model},
                all_ids=frozenset({model.model_id}), rle=True, shadow=shadow,
            )
            try:
                kind, models, removed, all_ids = shm_mod.read_snapshot_segment(
                    seg2, prev_models=prev
                )
                assert kind == "delta" and w2 < r2  # rle actually engaged
                for k, v in model.params().items():
                    np.testing.assert_array_equal(
                        models[model.model_id].params()[k], v
                    )
            finally:
                seg2.close()
                seg2.unlink()
        finally:
            seg1.close()
            seg1.unlink()


# ----------------------------------------------------------------------
# engine integration: golden replay, cross-backend identity, checkpointing
# ----------------------------------------------------------------------
def _dataset(num_clients=12, seed=0):
    task = SyntheticTaskConfig(
        num_classes=4, input_shape=(8,), latent_dim=6, teacher_width=12,
        class_sep=3.0, seed=seed,
    )
    return build_federated_dataset(task, num_clients, mean_samples=25, seed=seed)


def _straggler_clients(ds, num_slow=2):
    return [
        FLClient(
            c.client_id,
            c,
            DeviceTrace(
                c.client_id,
                1e7 if c.client_id < num_slow else 1e9,
                2e4 if c.client_id < num_slow else 1e6,
                1e15,
            ),
        )
        for c in ds.clients
    ]


def _golden_run(mode, **over):
    ds = _dataset()
    clients = _straggler_clients(ds)
    model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(0), width=16)
    cfg = dict(
        rounds=8, clients_per_round=6, trainer=TRAINER, eval_every=4,
        seed=0, mode=mode,
    )
    cfg.update(over)
    coord = Coordinator(
        fedavg(model.clone(keep_id=True)), clients, CoordinatorConfig(**cfg)
    )
    return coord.run()


def _digest(log):
    """The golden fixture's digest, minus the byte columns (checked apart)."""
    return {
        "participants": [list(r.participants) for r in log.rounds],
        "mean_loss": [r.mean_loss for r in log.rounds],
        "round_time": [r.round_time for r in log.rounds],
        "macs": [r.macs for r in log.rounds],
        "eval_acc": [[float(a) for a in e.client_accuracy] for e in log.evals],
        "total_macs": log.total_macs,
        "dropped_updates": log.dropped_updates,
        "dropped_macs": log.dropped_macs,
    }


LOSSLESS = "update:rle,snapshot:rle"

BACKENDS = [
    pytest.param({}, id="serial"),
    pytest.param({"executor": "thread", "max_workers": 2}, id="thread"),
    pytest.param({"executor": "process", "max_workers": 2}, id="process"),
]


class TestLosslessGoldenReplay:
    """I11: lossless codecs replay the golden fixture bit-identically."""

    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN) as f:
            return json.load(f)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_matches_golden(self, golden, backend, mode):
        ref = golden[mode]
        over = dict(backend)
        if mode == "async":
            over["buffer_k"] = 3
        log = _golden_run(mode, compress=LOSSLESS, **over)
        assert _digest(log) == {
            k: v for k, v in ref.items() if k != "total_bytes_up"
        }
        # The byte split: raw equals the pre-codec golden total; the wire
        # total may only shrink.
        assert log.total_raw_bytes_up == ref["total_bytes_up"]
        assert log.total_bytes_up <= ref["total_bytes_up"]
        assert log.compress == LOSSLESS


def _norm_ids(text: str) -> str:
    ids: dict[str, str] = {}
    return re.sub(r"m\d+", lambda m: ids.setdefault(m.group(0), f"M{len(ids)}"), text)


def _export(log) -> str:
    return _norm_ids(json.dumps(log_to_dict(log), sort_keys=True))


class TestLossyDeterminism:
    """Lossy codecs change the trajectory — identically on every backend."""

    SPEC = "update:topk0.1+int8,snapshot:rle"

    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_backends_agree(self, mode):
        over = {"buffer_k": 3} if mode == "async" else {}
        ref = _export(_golden_run(mode, compress=self.SPEC, **over))
        for backend in ({"executor": "thread", "max_workers": 2},
                        {"executor": "process", "max_workers": 2}):
            assert _export(_golden_run(mode, compress=self.SPEC, **over, **backend)) == ref

    def test_lossy_bytes_shrink_hard(self):
        log = _golden_run("sync", compress=self.SPEC)
        assert log.total_raw_bytes_up / log.total_bytes_up > 5
        # ...and the trajectory is NOT the uncompressed one (it is lossy).
        raw = _golden_run("sync")
        assert [r.mean_loss for r in log.rounds] != [r.mean_loss for r in raw.rounds]

    def test_lossy_replays_itself(self):
        a = _export(_golden_run("sync", compress=self.SPEC))
        b = _export(_golden_run("sync", compress=self.SPEC))
        assert a == b


class TestCompressedCheckpointResume:
    """I9: the codec's EF residuals travel in checkpoints bit-identically."""

    SPEC = "update:topk0.2+int8"

    def _build(self, ckpt_dir=None, resume=False, **over):
        set_model_id_counter(0)
        set_cell_id_counter(0)
        ds = _dataset(num_clients=8)
        clients = _straggler_clients(ds, num_slow=0)
        model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(0), width=8)
        kw = dict(
            rounds=6, clients_per_round=4, trainer=TRAINER, eval_every=2,
            seed=0, compress=self.SPEC,
        )
        if ckpt_dir is not None:
            kw.update(checkpoint_every=2, checkpoint_dir=str(ckpt_dir), resume=resume)
        kw.update(over)
        return Coordinator(
            fedavg(model.clone(keep_id=True)), clients, CoordinatorConfig(**kw)
        )

    def test_resume_matches_uninterrupted(self, tmp_path):
        ref = _export(self._build().run())
        coord = self._build(tmp_path)
        real = coord._run_round

        def boom(round_idx, log):
            if round_idx == 4:
                raise RuntimeError("injected crash")
            return real(round_idx, log)

        coord._run_round = boom
        with pytest.raises(RuntimeError, match="injected"):
            coord.run()
        resumed = self._build(tmp_path, resume=True).run()
        assert _export(resumed) == ref

    def test_codec_state_present_in_checkpoint(self, tmp_path):
        coord = self._build(tmp_path)
        coord.run()
        payload = coord.state_dict()
        assert payload["transport"] is not None
        assert payload["transport"]["spec"] == self.SPEC
        assert payload["transport"]["residuals"]  # lossy: EF state exists


# ----------------------------------------------------------------------
# ledger export + config plumbing
# ----------------------------------------------------------------------
class TestTransportLedger:
    def test_ledger_shape_and_consistency(self, tmp_path):
        log = _golden_run(
            "sync", compress=LOSSLESS,
            executor="process", max_workers=2,
        )
        ledger = transport_to_dict(log)
        assert ledger["format"] == 1 and ledger["compress"] == LOSSLESS
        t = ledger["totals"]
        assert t["raw_bytes_up"] == sum(r["raw_bytes_up"] for r in ledger["rounds"])
        assert t["wire_bytes_up"] == sum(r["wire_bytes_up"] for r in ledger["rounds"])
        assert t["update_compression_ratio"] >= 1.0
        # Publish totals include eval-wave publishes: >= the round rows.
        assert t["publish_raw_bytes"] >= sum(
            r["publish_raw_bytes"] for r in ledger["rounds"]
        )
        assert t["publish_raw_bytes"] >= t["publish_wire_bytes"] > 0
        path = tmp_path / "transport.json"
        save_transport(log, path)
        assert json.loads(path.read_text())["totals"] == t

    def test_publish_telemetry_stays_out_of_the_run_export(self):
        """I10: log_to_dict must not leak executor publish counters."""
        log = _golden_run("sync", compress=LOSSLESS,
                          executor="process", max_workers=2)
        assert log.publish_wire_bytes_total > 0
        flat = json.dumps(log_to_dict(log))
        assert "publish" not in flat

    def test_log_checkpoint_round_trips_transport_fields(self):
        log = _golden_run("sync", compress=LOSSLESS)
        back = log_from_state(log_state_dict(log))
        assert back.compress == log.compress
        assert back.total_raw_bytes_up == log.total_raw_bytes_up
        assert [r.raw_bytes_up for r in back.rounds] == [
            r.raw_bytes_up for r in log.rounds
        ]

    def test_pre_codec_checkpoint_defaults_raw_to_wire(self):
        log = _golden_run("sync")
        payload = log_state_dict(log)
        payload.pop("compress")
        payload.pop("total_raw_bytes_up")
        for r in payload["rounds"]:
            r.pop("raw_bytes_up")
            r.pop("publish_raw_bytes")
            r.pop("publish_wire_bytes")
        back = log_from_state(payload)
        assert back.compress is None
        assert back.total_raw_bytes_up == log.total_bytes_up
        assert all(r.raw_bytes_up == r.bytes_up for r in back.rounds)


class TestConfigPlumbing:
    def test_coordinator_rejects_bad_spec(self):
        with pytest.raises(ValueError, match="unknown update codec"):
            CoordinatorConfig(rounds=1, clients_per_round=1, trainer=TRAINER,
                              compress="update:gzip")

    def test_wire_time_requires_update_section(self):
        with pytest.raises(ValueError, match="requires a compress spec"):
            CoordinatorConfig(rounds=1, clients_per_round=1, trainer=TRAINER,
                              wire_time=True)
        with pytest.raises(ValueError, match="requires a compress spec"):
            CoordinatorConfig(rounds=1, clients_per_round=1, trainer=TRAINER,
                              compress="snapshot:rle", wire_time=True)

    def test_cli_flags_map_to_overrides(self):
        from repro.cli import _coordinator_overrides

        class Args:
            executor = "serial"
            workers = None
            mode = "sync"
            buffer_k = None
            deadline = None
            staleness_discount = None
            eval_cache = True
            sanitize = False
            selector = "uniform"
            availability_trace = None
            evict_after = None
            pacing = "static"
            straggler = "drop"
            dtype = None
            faults = None
            retries = None
            quarantine = False
            quarantine_norm_mult = None
            compress = "update:rle"
            wire_time = True
            checkpoint_dir = None
            checkpoint_every = None
            resume = False

        assert _coordinator_overrides(Args()) == {
            "compress": "update:rle", "wire_time": True,
        }
        Args.compress = None
        with pytest.raises(SystemExit, match="requires --compress"):
            _coordinator_overrides(Args())

    def test_fedtrans_config_validates_and_flows(self):
        from repro.core import FedTransConfig

        with pytest.raises(ValueError, match="unknown compress scope"):
            FedTransConfig(compress="uplink:rle")
        assert FedTransConfig(compress=LOSSLESS).compress == LOSSLESS

    def test_wire_time_shortens_compressed_rounds(self):
        slow = _golden_run("sync", compress="update:topk0.05+int8")
        fast = _golden_run("sync", compress="update:topk0.05+int8", wire_time=True)
        assert sum(r.round_time for r in fast.rounds) < sum(
            r.round_time for r in slow.rounds
        )
