"""Cell-level tests: shapes, identity construction, transforms, narrowing."""

import numpy as np
import pytest

from repro.nn.cells import (
    ConvCell,
    ConvClassifierCell,
    DenseCell,
    FlatClassifierCell,
    ResidualConvCell,
    TokenClassifierCell,
    ViTCell,
    ViTStemCell,
    make_widen_mapping,
)


class TestWidenMapping:
    def test_keeps_originals_first(self, rng):
        wm = make_widen_mapping(4, 2.0, rng)
        assert np.array_equal(wm.mapping[:4], np.arange(4))
        assert wm.new_width == 8

    def test_counts(self, rng):
        wm = make_widen_mapping(3, 2.0, rng)
        assert wm.counts.sum() == wm.new_width
        assert np.all(wm.counts >= 1)

    def test_fractional_factor(self, rng):
        wm = make_widen_mapping(10, 1.1, rng)
        assert wm.new_width == 11

    def test_factor_must_exceed_one(self, rng):
        with pytest.raises(ValueError):
            make_widen_mapping(4, 1.0, rng)

    def test_always_grows(self, rng):
        wm = make_widen_mapping(1, 1.0001, rng)
        assert wm.new_width == 2

    def test_scale_for_consumer(self, rng):
        wm = make_widen_mapping(2, 2.0, rng)
        s = wm.scale_for_consumer()
        assert len(s) == 4
        # each new channel's divisor equals the multiplicity of its source
        for j, src in enumerate(wm.mapping):
            assert s[j] == wm.counts[src]


class TestConvCell:
    def test_forward_shape(self, rng):
        cell = ConvCell(3, 8, rng, pool="max")
        x = rng.normal(size=(2, 3, 8, 8))
        assert cell.forward(x).shape == (2, 8, 4, 4)

    def test_identity_cell_exact(self, rng):
        cell = ConvCell.identity(4)
        x = np.abs(rng.normal(size=(2, 4, 6, 6)))  # post-ReLU inputs
        assert np.allclose(cell.forward(x), x)

    def test_identity_has_bias_no_norm(self):
        cell = ConvCell.identity(3)
        assert cell.bn is None
        assert cell.conv.b is not None

    def test_bias_dropped_under_norm(self, rng):
        assert ConvCell(2, 3, rng, norm=True).conv.b is None
        assert ConvCell(2, 3, rng, norm=False).conv.b is not None

    def test_widen_output_duplicates(self, rng):
        cell = ConvCell(2, 4, rng)
        w_before = cell.conv.w.copy()
        wm = cell.widen_output(2.0, rng)
        assert cell.out_dim == 8
        assert np.allclose(cell.conv.w[:4], w_before)
        for j, src in enumerate(wm.mapping):
            assert np.allclose(cell.conv.w[j], w_before[src])

    def test_widen_duplicates_bn_rows(self, rng):
        cell = ConvCell(2, 4, rng)
        cell.bn.running_mean = rng.normal(size=4)
        rm = cell.bn.running_mean.copy()
        wm = cell.widen_output(2.0, rng)
        assert np.allclose(cell.bn.running_mean, rm[wm.mapping])

    def test_expand_input_divides(self, rng):
        producer = ConvCell(2, 4, rng)
        consumer = ConvCell(4, 3, rng)
        w_before = consumer.conv.w.copy()
        wm = producer.widen_output(2.0, rng)
        consumer.expand_input(wm)
        assert consumer.conv.w.shape[1] == 8
        scale = wm.scale_for_consumer()
        for j, src in enumerate(wm.mapping):
            assert np.allclose(consumer.conv.w[:, j], w_before[:, src] / scale[j])

    def test_narrow_leading(self, rng):
        cell = ConvCell(4, 8, rng)
        w = cell.conv.w.copy()
        cell.narrow(out_idx=np.arange(3), in_idx=np.arange(2))
        assert cell.conv.w.shape == (3, 2, 3, 3)
        assert np.allclose(cell.conv.w, w[:3, :2])

    def test_narrow_hidden_raises(self, rng):
        with pytest.raises(ValueError, match="no hidden"):
            ConvCell(2, 2, rng).narrow(hidden_idx=np.arange(1))

    def test_axis_roles_match_tensor_ranks(self, rng):
        cell = ConvCell(2, 4, rng)
        params = dict(cell.params(), **cell.state())
        for key, roles in cell.axis_roles().items():
            assert len(roles) == params[key].ndim, key

    def test_macs(self, rng):
        cell = ConvCell(2, 4, rng)
        m, shape = cell.macs((2, 8, 8))
        assert m == 8 * 8 * 4 * 2 * 9
        assert shape == (4, 8, 8)


class TestResidualConvCell:
    def test_forward_shape_and_grad(self, rng):
        cell = ResidualConvCell(3, 5, rng, hidden=4)
        x = rng.normal(size=(2, 3, 6, 6))
        y = cell.forward(x)
        assert y.shape == (2, 5, 6, 6)
        dx = cell.backward(rng.normal(size=y.shape))
        assert dx.shape == x.shape

    def test_identity_exact(self, rng):
        cell = ResidualConvCell.identity(4)
        x = np.abs(rng.normal(size=(2, 4, 5, 5)))
        assert np.allclose(cell.forward(x), x)

    def test_widen_internal_preserves_function(self, rng):
        cell = ResidualConvCell(3, 3, rng)
        x = rng.normal(size=(2, 3, 6, 6))
        before = cell.forward(x, train=False)
        cell.widen_internal(2.0, rng)
        after = cell.forward(x, train=False)
        assert cell.hidden_dim == 6
        assert np.allclose(before, after, atol=1e-10)

    def test_narrow_all_axes(self, rng):
        cell = ResidualConvCell(4, 6, rng, hidden=8)
        cell.narrow(out_idx=np.arange(3), in_idx=np.arange(2), hidden_idx=np.arange(4))
        assert cell.conv1.w.shape == (4, 2, 3, 3)
        assert cell.conv2.w.shape == (3, 4, 3, 3)
        assert cell.proj.w.shape == (3, 2, 1, 1)
        x = rng.normal(size=(1, 2, 4, 4))
        assert cell.forward(x).shape == (1, 3, 4, 4)

    def test_macs_includes_projection(self, rng):
        cell = ResidualConvCell(2, 2, rng)
        m, _ = cell.macs((2, 4, 4))
        conv = 4 * 4 * 2 * 2 * 9
        proj = 4 * 4 * 2 * 2 * 1
        assert m == 2 * conv + proj


class TestDenseCell:
    def test_identity_exact(self, rng):
        cell = DenseCell.identity(5)
        x = np.abs(rng.normal(size=(3, 5)))
        assert np.allclose(cell.forward(x), x)

    def test_widen_expand_pipeline(self, rng):
        a = DenseCell(4, 6, rng)
        b = DenseCell(6, 3, rng)
        x = rng.normal(size=(5, 4))
        before = b.forward(a.forward(x))
        wm = a.widen_output(2.0, rng)
        b.expand_input(wm)
        after = b.forward(a.forward(x))
        assert np.allclose(before, after, atol=1e-10)

    def test_narrow(self, rng):
        cell = DenseCell(6, 8, rng)
        cell.narrow(out_idx=np.arange(4), in_idx=np.arange(3))
        assert cell.fc.w.shape == (3, 4)

    def test_clone_preserves_id_and_independence(self, rng):
        cell = DenseCell(3, 3, rng)
        c2 = cell.clone()
        assert c2.cell_id == cell.cell_id
        c2.fc.w[0, 0] = 99.0
        assert cell.fc.w[0, 0] != 99.0


class TestViTCell:
    def test_forward_backward_shapes(self, rng):
        cell = ViTCell(8, 2, 16, rng)
        x = rng.normal(size=(2, 4, 8))
        y = cell.forward(x)
        assert y.shape == x.shape
        assert cell.backward(rng.normal(size=y.shape)).shape == x.shape

    def test_identity_exact(self, rng):
        cell = ViTCell.identity(8, 2, 16, rng)
        x = rng.normal(size=(2, 4, 8))
        assert np.allclose(cell.forward(x), x)

    def test_widen_internal_preserves(self, rng):
        cell = ViTCell(8, 2, 12, rng)
        x = rng.normal(size=(2, 4, 8))
        before = cell.forward(x)
        cell.widen_internal(2.0, rng)
        assert cell.hidden_dim == 24
        assert np.allclose(before, cell.forward(x), atol=1e-10)

    def test_narrow_hidden_only(self, rng):
        cell = ViTCell(8, 2, 16, rng)
        cell.narrow(hidden_idx=np.arange(8))
        assert cell.hidden_dim == 8
        with pytest.raises(ValueError):
            cell.narrow(out_idx=np.arange(4))


class TestClassifierCells:
    def test_conv_classifier(self, rng):
        cell = ConvClassifierCell(6, 4, rng)
        x = rng.normal(size=(3, 6, 4, 4))
        assert cell.forward(x).shape == (3, 4)

    def test_flat_classifier_narrow_in(self, rng):
        cell = FlatClassifierCell(8, 3, rng)
        cell.narrow(in_idx=np.arange(5))
        assert cell.head.w.shape == (5, 3)
        with pytest.raises(ValueError):
            cell.narrow(out_idx=np.arange(2))

    def test_token_classifier_backward(self, rng):
        cell = TokenClassifierCell(8, 3, rng)
        x = rng.normal(size=(2, 5, 8))
        y = cell.forward(x)
        dx = cell.backward(np.ones_like(y))
        assert dx.shape == x.shape
        # mean pooling spreads gradient uniformly over tokens
        assert np.allclose(dx[:, 0], dx[:, 4])

    def test_not_transformable(self, rng):
        for cell in (
            ConvClassifierCell(4, 2, rng),
            FlatClassifierCell(4, 2, rng),
            TokenClassifierCell(4, 2, rng),
        ):
            assert not cell.transformable


class TestViTStem:
    def test_tokens_shape(self, rng):
        stem = ViTStemCell(3, 8, 4, 16, rng)
        x = rng.normal(size=(2, 3, 8, 8))
        assert stem.forward(x).shape == (2, 4, 16)

    def test_not_transformable(self, rng):
        assert not ViTStemCell(1, 8, 4, 8, rng).transformable


class TestCellParams:
    def test_param_grad_keys_match(self, rng):
        for cell in (
            ConvCell(2, 3, rng),
            ResidualConvCell(2, 3, rng),
            DenseCell(4, 5, rng),
            ViTCell(8, 2, 12, rng),
        ):
            assert cell.params().keys() == cell.grads().keys()

    def test_num_params_positive(self, rng):
        cell = ConvCell(2, 3, rng)
        assert cell.num_params() == sum(v.size for v in cell.params().values())

    def test_unique_cell_ids(self, rng):
        a = ConvCell(2, 2, rng)
        b = ConvCell(2, 2, rng)
        assert a.cell_id != b.cell_id

    def test_inserted_origin(self):
        assert ConvCell.identity(3).origin == "inserted"
        assert DenseCell.identity(3).origin == "inserted"
