"""Datasets: synthetic task, partitioners, federated containers, registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    SyntheticTask,
    SyntheticTaskConfig,
    build_federated_dataset,
    cifar10_like,
    dirichlet_partition,
    femnist_like,
    lognormal_sample_counts,
    natural_partition,
    openimage_like,
    shard_partition,
    speech_like,
)


def _cfg(**kw):
    base = dict(num_classes=5, input_shape=(12,), latent_dim=6, teacher_width=8, seed=0)
    base.update(kw)
    return SyntheticTaskConfig(**base)


class TestSyntheticTask:
    def test_shapes_flat(self, rng):
        task = SyntheticTask(_cfg())
        x, y = task.sample(np.array([3, 0, 2, 0, 1]), rng)
        assert x.shape == (6, 12)
        assert sorted(np.bincount(y, minlength=5).tolist()) == sorted([3, 0, 2, 0, 1])

    def test_shapes_image(self, rng):
        task = SyntheticTask(_cfg(input_shape=(1, 4, 4), num_classes=3))
        x, y = task.sample(np.array([2, 2, 2]), rng)
        assert x.shape == (6, 1, 4, 4)

    def test_empty_raises(self, rng):
        task = SyntheticTask(_cfg())
        with pytest.raises(ValueError, match="empty"):
            task.sample(np.zeros(5, dtype=int), rng)

    def test_wrong_counts_shape_raises(self, rng):
        task = SyntheticTask(_cfg())
        with pytest.raises(ValueError, match="class_counts"):
            task.sample(np.array([1, 1]), rng)

    def test_reproducible_given_seeded_rng(self):
        task = SyntheticTask(_cfg())
        counts = np.array([2, 2, 2, 0, 0])
        x1, y1 = task.sample(counts, np.random.default_rng(7))
        x2, y2 = task.sample(counts, np.random.default_rng(7))
        assert np.allclose(x1, x2)
        assert np.array_equal(y1, y2)

    def test_same_config_same_prototypes(self, rng):
        t1, t2 = SyntheticTask(_cfg()), SyntheticTask(_cfg())
        assert np.allclose(t1._prototypes, t2._prototypes)

    def test_drift_shifts_features(self, rng):
        task = SyntheticTask(_cfg())
        counts = np.array([5, 0, 0, 0, 0])
        drift = np.full(12, 10.0)
        x_plain, _ = task.sample(counts, np.random.default_rng(3))
        x_drift, _ = task.sample(counts, np.random.default_rng(3), drift=drift)
        assert np.allclose(x_drift - x_plain, 10.0, atol=1e-9)

    def test_classes_are_separable(self):
        """Prototype structure must carry class signal (premise of learning)."""
        task = SyntheticTask(_cfg(class_sep=3.0, feature_noise=0.1))
        counts = np.full(5, 40)
        x, y = task.sample(counts, np.random.default_rng(0))
        # nearest-centroid classifier in feature space should beat chance
        centroids = np.stack([x[y == k].mean(axis=0) for k in range(5)])
        pred = np.argmin(
            ((x[:, None, :] - centroids[None]) ** 2).sum(-1), axis=1
        )
        assert (pred == y).mean() > 0.5


class TestPartitioners:
    def test_dirichlet_row_sums(self, rng):
        counts = dirichlet_partition(10, 6, h=0.5, samples_per_client=30, rng=rng)
        assert counts.shape == (10, 6)
        assert np.all(counts.sum(axis=1) == 30)

    def test_dirichlet_heterogeneity_ordering(self):
        """Lower h concentrates mass on fewer classes."""
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        lo = dirichlet_partition(200, 10, h=0.1, samples_per_client=50, rng=rng1)
        hi = dirichlet_partition(200, 10, h=100.0, samples_per_client=50, rng=rng2)

        def mean_entropy(c):
            p = c / c.sum(axis=1, keepdims=True)
            with np.errstate(divide="ignore", invalid="ignore"):
                e = -np.where(p > 0, p * np.log(p), 0.0).sum(axis=1)
            return e.mean()

        assert mean_entropy(lo) < mean_entropy(hi)

    def test_dirichlet_bad_h(self, rng):
        with pytest.raises(ValueError):
            dirichlet_partition(5, 3, h=0.0, samples_per_client=10, rng=rng)

    def test_dirichlet_vector_totals(self, rng):
        totals = np.array([5, 10, 15])
        counts = dirichlet_partition(3, 4, h=1.0, samples_per_client=totals, rng=rng)
        assert np.array_equal(counts.sum(axis=1), totals)

    def test_natural_partition_minimum(self, rng):
        counts = natural_partition(50, 8, mean_samples=30, rng=rng)
        assert np.all(counts.sum(axis=1) >= 8)

    def test_lognormal_counts_mean(self, rng):
        counts = lognormal_sample_counts(5000, 50, rng)
        assert abs(counts.mean() - 50) < 5

    def test_lognormal_bad_mean(self, rng):
        with pytest.raises(ValueError):
            lognormal_sample_counts(5, 0, rng)

    def test_shard_partition_classes_per_client(self, rng):
        counts = shard_partition(20, 10, samples_per_client=20, shards_per_client=2, rng=rng)
        assert np.all((counts > 0).sum(axis=1) <= 2)
        assert np.all(counts.sum(axis=1) == 20)

    def test_shard_too_many_shards(self, rng):
        with pytest.raises(ValueError):
            shard_partition(5, 3, 10, 4, rng)

    @given(
        h=st.sampled_from([0.1, 0.5, 1.0, 10.0, 100.0]),
        n=st.integers(2, 30),
        k=st.integers(2, 12),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_dirichlet_counts_valid(self, h, n, k, seed):
        rng = np.random.default_rng(seed)
        counts = dirichlet_partition(n, k, h, 25, rng)
        assert counts.min() >= 0
        assert np.all(counts.sum(axis=1) == 25)


class TestFederatedDataset:
    def test_builder_basic(self):
        ds = build_federated_dataset(_cfg(), num_clients=12, mean_samples=20, seed=0)
        assert ds.num_clients == 12
        assert all(c.num_train > 0 and c.num_test > 0 for c in ds.clients)

    def test_client_ids_sequential(self):
        ds = build_federated_dataset(_cfg(), num_clients=5, mean_samples=20, seed=0)
        assert [c.client_id for c in ds.clients] == list(range(5))

    def test_pooled_sizes(self):
        ds = build_federated_dataset(_cfg(), num_clients=6, mean_samples=20, seed=0)
        x, y = ds.pooled_train()
        assert len(y) == ds.total_train_samples()
        assert x.shape[0] == len(y)

    def test_label_histogram_matches(self):
        ds = build_federated_dataset(_cfg(), num_clients=4, mean_samples=20, seed=0)
        hist = ds.label_histogram()
        assert hist.sum() == ds.total_train_samples()

    def test_bad_test_fraction(self):
        with pytest.raises(ValueError):
            build_federated_dataset(_cfg(), 4, 20, 0, test_fraction=0.0)

    def test_unknown_partition(self):
        with pytest.raises(ValueError, match="unknown partition"):
            build_federated_dataset(_cfg(), 4, 20, 0, partition="nope")

    def test_dirichlet_partition_path(self):
        ds = build_federated_dataset(_cfg(), 6, 20, 0, partition="dirichlet", h=0.3)
        assert ds.num_clients == 6

    def test_reproducible(self):
        a = build_federated_dataset(_cfg(), 4, 20, seed=3)
        b = build_federated_dataset(_cfg(), 4, 20, seed=3)
        assert np.allclose(a.clients[0].x_train, b.clients[0].x_train)

    def test_different_seeds_differ(self):
        a = build_federated_dataset(_cfg(), 4, 20, seed=3)
        b = build_federated_dataset(_cfg(), 4, 20, seed=4)
        assert not np.allclose(a.clients[0].x_train[:2], b.clients[0].x_train[:2])


class TestRegistry:
    @pytest.mark.parametrize(
        "builder,classes",
        [
            (cifar10_like, 10),
            (speech_like, 35),
        ],
    )
    def test_builders(self, builder, classes):
        ds = builder(scale=0.004, seed=0)
        assert ds.num_classes == classes
        assert ds.num_clients >= 8

    def test_femnist_classes(self):
        ds = femnist_like(scale=0.003, seed=0)
        assert ds.num_classes == 62

    def test_openimage_reduced_classes_documented(self):
        ds = openimage_like(scale=0.0006, seed=0)
        assert ds.num_classes == 48  # substitution recorded in DESIGN.md

    def test_femnist_dirichlet_switch(self):
        ds = femnist_like(scale=0.003, seed=0, h=0.5)
        assert ds.name == "femnist_like"

    def test_image_flag_changes_shape(self):
        flat = cifar10_like(scale=0.08, seed=0, image=False)
        img = cifar10_like(scale=0.08, seed=0, image=True)
        assert len(flat.input_shape) == 1
        assert len(img.input_shape) == 3
