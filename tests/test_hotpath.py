"""Hot-path compute pass: dtype substrate, pooled kernels, shm snapshots.

Contracts pinned here:

* **Golden bit-identity** — with every hot-path optimization enabled (the
  defaults: pooled kernels, in-place optimizer/aggregation, shared-memory
  snapshot publishing, vectorized Eq. 5), default-dtype runs still
  reproduce ``tests/data/golden_prerefactor_scheduling.json`` exactly,
  and disabling workspace pooling changes nothing (arithmetic
  transparency).
* **Allocation regression** — pooled kernels cut steady-state per-step
  transient heap allocation by >= 5x on the conv workload (measured with
  tracemalloc, which tracks NumPy buffer churn).
* **float32 mode** — loss decreases and accuracies stay finite on every
  executor backend; the whole pipeline stays float32.
* **Shared-memory hygiene** — segments never outlive the executor: close,
  finalizer, and the injected-worker-crash path all unlink.
* **In-place rewrites match their naive forms bit for bit** — SGD,
  ``tree_average``, BatchNorm running stats, and Eq. 5 cross-model
  aggregation.
"""

from __future__ import annotations

import gc
import json
import os
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import fedavg
from repro.core import FedTransConfig
from repro.core.aggregator import ModelAggregator, project_overlap
from repro.core.client_manager import SimilarityCache
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import Coordinator, CoordinatorConfig, FLClient, LocalTrainerConfig
from repro.fl.client import LocalTrainer
from repro.fl.executor import TrainItem, make_executor
from repro.fl.shm import segment_exists
from repro.nn import (
    SGD,
    mlp,
    set_compute_dtype,
    set_workspace_pooling,
    small_cnn,
    tree_average,
)
from repro.nn.compute import compute_dtype_name, workspace_pooling_enabled

GOLDEN = Path(__file__).parent / "data" / "golden_prerefactor_scheduling.json"

TRAINER = LocalTrainerConfig(batch_size=8, local_steps=5, lr=0.2)


@pytest.fixture(autouse=True)
def _restore_compute_globals():
    """Never leak a dtype/pooling change into the rest of the suite."""
    yield
    set_compute_dtype("float64")
    set_workspace_pooling(True)


def _flat_dataset(num_clients=12, seed=0):
    task = SyntheticTaskConfig(
        num_classes=4,
        input_shape=(8,),
        latent_dim=6,
        teacher_width=12,
        class_sep=3.0,
        seed=seed,
    )
    return build_federated_dataset(task, num_clients, mean_samples=25, seed=seed)


def _conv_dataset(num_clients=4, seed=0):
    task = SyntheticTaskConfig(
        num_classes=4,
        input_shape=(3, 8, 8),
        latent_dim=6,
        teacher_width=12,
        class_sep=3.0,
        seed=seed,
    )
    return build_federated_dataset(task, num_clients, mean_samples=30, seed=seed)


def _clients(ds, num_slow=2):
    return [
        FLClient(
            c.client_id,
            c,
            DeviceTrace(
                c.client_id,
                1e7 if c.client_id < num_slow else 1e9,
                2e4 if c.client_id < num_slow else 1e6,
                1e15,
            ),
        )
        for c in ds.clients
    ]


def _golden_run(mode, **over):
    ds = _flat_dataset()
    clients = _clients(ds)
    model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(0), width=16)
    cfg = dict(
        rounds=8, clients_per_round=6, trainer=TRAINER, eval_every=4, seed=0, mode=mode
    )
    cfg.update(over)
    coord = Coordinator(
        fedavg(model.clone(keep_id=True)), clients, CoordinatorConfig(**cfg)
    )
    return coord.run()


def _digest(log):
    return {
        "participants": [list(r.participants) for r in log.rounds],
        "mean_loss": [r.mean_loss for r in log.rounds],
        "round_time": [r.round_time for r in log.rounds],
        "macs": [r.macs for r in log.rounds],
        "eval_acc": [[float(a) for a in e.client_accuracy] for e in log.evals],
        "total_macs": log.total_macs,
        "total_bytes_up": log.total_bytes_up,
        "dropped_updates": log.dropped_updates,
        "dropped_macs": log.dropped_macs,
    }


# ----------------------------------------------------------------------
# golden bit-identity with the hot path fully enabled
# ----------------------------------------------------------------------
class TestGoldenBitIdentity:
    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN) as f:
            return json.load(f)

    @pytest.mark.parametrize("backend", ["serial", "process"])
    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_hotpath_defaults_match_prerefactor(self, golden, backend, mode):
        """Pooled kernels + shm snapshots + vectorized Eq. 5 (all default-on)
        reproduce the pre-refactor fixture at the default dtype."""
        assert compute_dtype_name() == "float64"
        assert workspace_pooling_enabled()
        over = {} if backend == "serial" else {"executor": backend, "max_workers": 2}
        if mode == "async":
            over["buffer_k"] = 3
        assert _digest(_golden_run(mode, **over)) == golden[mode]

    def test_pooling_off_is_bit_identical(self, golden):
        set_workspace_pooling(False)
        try:
            assert _digest(_golden_run("sync")) == golden["sync"]
        finally:
            set_workspace_pooling(True)


# ----------------------------------------------------------------------
# allocation regression (the pooled-kernel contract)
# ----------------------------------------------------------------------
def _steady_state_step_bytes(pooling: bool, steps: int = 5) -> float:
    """Mean transient traced bytes per *training step* (forward + backward +
    clip + optimizer update — the loop body of ``LocalTrainer.train``),
    post warm-up.  Per-round costs (cloning the server model, building the
    ClientUpdate) are deliberately outside the window: the pooled-kernel
    contract is about the inner step that runs ``local_steps`` times.

    The workload is sized so genuine per-step allocations dominate:
    NumPy's broadcasted-ufunc iteration buffers (bounded at 8192 elements
    per call, unpoolable from Python) put a small constant floor under the
    pooled number, while unpooled allocations scale with activation size.
    """
    set_workspace_pooling(pooling)
    rng = np.random.default_rng(3)
    model = small_cnn((3, 16, 16), 4, np.random.default_rng(0), width=16)
    opt = SGD(0.05)
    x = rng.normal(size=(32, 3, 16, 16))
    y = rng.integers(0, 4, size=32)

    def one_step():
        model.zero_grad()
        model.loss_and_grad(x, y)
        grads = model.grads()
        gnorm = float(np.sqrt(sum(float((g**2).sum()) for g in grads.values())))
        if gnorm > 10.0:
            for g in grads.values():
                g *= 10.0 / gnorm
        opt.step(model.params(), grads)

    gc.collect()
    tracemalloc.start()
    try:
        for _ in range(3):  # warm-up: size the pools
            one_step()
        gc.collect()
        samples = []
        for _ in range(steps):
            base = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
            one_step()
            peak = tracemalloc.get_traced_memory()[1]
            samples.append(peak - base)
    finally:
        tracemalloc.stop()
        set_workspace_pooling(True)
    return float(np.mean(samples))


class TestAllocationRegression:
    def test_pooled_kernels_cut_step_allocations_5x(self):
        unpooled = _steady_state_step_bytes(pooling=False)
        pooled = _steady_state_step_bytes(pooling=True)
        assert pooled > 0
        ratio = unpooled / pooled
        assert ratio >= 5.0, (
            f"pooled step allocates {pooled:.0f}B vs {unpooled:.0f}B unpooled "
            f"(ratio {ratio:.1f}x < 5x): a hot-path kernel regressed to "
            "allocating per step"
        )

    def test_pooling_toggle_is_bit_identical_on_conv(self):
        ds = _conv_dataset()
        client = _clients(ds, num_slow=0)[0]
        model = small_cnn(
            ds.input_shape, ds.num_classes, np.random.default_rng(0), width=8
        )
        trainer = LocalTrainer(LocalTrainerConfig(batch_size=8, local_steps=4, lr=0.1))
        outs = {}
        for pooling in (True, False):
            set_workspace_pooling(pooling)
            u = trainer.train(
                model.clone(keep_id=True), client, np.random.default_rng(7)
            )
            outs[pooling] = u
        set_workspace_pooling(True)
        assert outs[True].train_loss == outs[False].train_loss
        for k, v in outs[True].params.items():
            assert np.array_equal(v, outs[False].params[k]), k
        for k, v in outs[True].state.items():
            assert np.array_equal(v, outs[False].state[k]), k


# ----------------------------------------------------------------------
# float32 mode
# ----------------------------------------------------------------------
class TestFloat32Mode:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_smoke_across_backends(self, backend):
        set_compute_dtype("float32")
        ds = _conv_dataset(num_clients=6, seed=1)
        clients = _clients(ds, num_slow=0)
        model = small_cnn(
            ds.input_shape, ds.num_classes, np.random.default_rng(1), width=8
        )
        over = {} if backend == "serial" else {"executor": backend, "max_workers": 2}
        cfg = CoordinatorConfig(
            rounds=6,
            clients_per_round=4,
            trainer=LocalTrainerConfig(batch_size=8, local_steps=5, lr=0.1),
            eval_every=3,
            seed=0,
            compute_dtype="float32",
            **over,
        )
        log = Coordinator(fedavg(model.clone(keep_id=True)), clients, cfg).run()
        losses = [r.mean_loss for r in log.rounds]
        assert losses[-1] < losses[0]  # the run learns
        for ev in log.evals:
            assert np.isfinite(ev.client_accuracy).all()
            assert np.isfinite(ev.mean_accuracy)
        for v in model.params().values():
            assert v.dtype == np.float32

    def test_float32_runs_are_deterministic_per_seed(self):
        set_compute_dtype("float32")

        def run():
            ds = _flat_dataset(num_clients=8, seed=2)
            clients = _clients(ds, num_slow=0)
            model = mlp(
                ds.input_shape, ds.num_classes, np.random.default_rng(2), width=16
            )
            cfg = CoordinatorConfig(
                rounds=4,
                clients_per_round=4,
                trainer=TRAINER,
                eval_every=2,
                seed=0,
                compute_dtype="float32",
            )
            return Coordinator(fedavg(model.clone(keep_id=True)), clients, cfg).run()

        assert _digest(run()) == _digest(run())

    def test_config_rejects_unknown_dtype(self):
        with pytest.raises(ValueError, match="compute_dtype"):
            CoordinatorConfig(compute_dtype="float16")
        with pytest.raises(ValueError, match="compute_dtype"):
            FedTransConfig(compute_dtype="bfloat16")


# ----------------------------------------------------------------------
# shared-memory snapshot hygiene
# ----------------------------------------------------------------------
def _crash_worker(version, chain, round_idx, item):  # pragma: no cover - child side
    os._exit(13)


class TestSharedMemoryLifecycle:
    def _workload(self):
        ds = _flat_dataset(num_clients=4)
        clients = _clients(ds, num_slow=0)
        models = {}
        m = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(0), width=8)
        models[m.model_id] = m
        return clients, models

    def test_segments_unlinked_on_close(self):
        clients, models = self._workload()
        ex = make_executor("process", clients, TRAINER, seed=0, max_workers=2)
        try:
            ex.train_round(0, [TrainItem(next(iter(models)), 0, 0)], dict(models))
            names = [name for _, _, name in ex._chain]
            assert names and all(segment_exists(n) for n in names)
        finally:
            ex.close()
        assert not any(segment_exists(n) for n in names)

    def test_no_segment_leak_after_worker_crash(self):
        """A worker hard-crashing mid-round must not leave segments behind:
        the futures-drain failure path releases the arena on a broken pool,
        and close() stays idempotent afterwards."""
        import concurrent.futures

        clients, models = self._workload()
        ex = make_executor("process", clients, TRAINER, seed=0, max_workers=2)
        try:
            ex.train_round(0, [TrainItem(next(iter(models)), 0, 0)], dict(models))
            names = [name for _, _, name in ex._chain]
            assert all(segment_exists(n) for n in names)
            pool = ex._ensure_pool()
            fut = pool.submit(_crash_worker, 0, (), 0, None)
            with pytest.raises(concurrent.futures.process.BrokenProcessPool):
                ex._drain([fut])
            # The broken-pool drain path already released the arena.
            assert not any(segment_exists(n) for n in names)
        finally:
            ex.close()
        assert not any(segment_exists(n) for n in names)

    def test_finalizer_unlinks_abandoned_executor(self):
        clients, models = self._workload()
        ex = make_executor("process", clients, TRAINER, seed=0, max_workers=2)
        ex.train_round(0, [TrainItem(next(iter(models)), 0, 0)], dict(models))
        names = [name for _, _, name in ex._chain]
        assert all(segment_exists(n) for n in names)
        ex._pool.shutdown(wait=True)  # don't leak processes; keep segments
        finalizer = ex._finalizer
        del ex
        gc.collect()
        assert not finalizer.alive  # fired when the executor died
        assert not any(segment_exists(n) for n in names)


# ----------------------------------------------------------------------
# in-place rewrites == naive forms
# ----------------------------------------------------------------------
class TestInPlaceEquivalence:
    def test_sgd_matches_naive_reference(self, rng):
        shapes = {"w": (6, 5), "b": (5,)}
        for momentum, wd in [(0.0, 0.0), (0.9, 0.0), (0.0, 1e-3), (0.9, 1e-3)]:
            params = {k: rng.normal(size=s) for k, s in shapes.items()}
            ref = {k: v.copy() for k, v in params.items()}
            opt = SGD(0.1, momentum, wd)
            velocity: dict[str, np.ndarray] = {}
            for step in range(4):
                grads = {
                    k: np.random.default_rng(step).normal(size=s)
                    for k, s in shapes.items()
                }
                opt.step(params, grads)
                for k in ref:  # the naive pre-rewrite arithmetic
                    g = grads[k]
                    if wd:
                        g = g + wd * ref[k]
                    if momentum:
                        v = velocity.get(k)
                        v = np.zeros_like(ref[k]) if v is None else v
                        v = momentum * v + g
                        velocity[k] = v
                        g = v
                    ref[k] -= 0.1 * g
            for k in ref:
                assert np.array_equal(params[k], ref[k]), (k, momentum, wd)

    def test_tree_average_matches_naive_reference(self, rng):
        trees = [
            {"a": rng.normal(size=(4, 3)), "b": rng.normal(size=(7,))}
            for _ in range(5)
        ]
        weights = [3.0, 1.0, 2.0, 5.0, 4.0]
        got = tree_average(trees, weights)
        w = np.asarray(weights) / np.sum(weights)
        ref = {k: trees[0][k] * float(w[0]) for k in trees[0]}
        for wi, tree in zip(w[1:], trees[1:]):
            ref = {k: ref[k] + float(wi) * tree[k] for k in ref}
        for k in ref:
            assert np.array_equal(got[k], ref[k])

    def test_batchnorm_running_stats_update_in_place(self, rng):
        from repro.nn import BatchNorm2d

        bn = BatchNorm2d(3)
        mean_ref = bn.state()["running_mean"]
        var_ref = bn.state()["running_var"]
        x = rng.normal(size=(4, 3, 5, 5))
        bn.forward(x, train=True)
        # Same arrays (live state() references stay valid)... with new values.
        assert bn.running_mean is mean_ref and bn.running_var is var_ref
        assert not np.allclose(mean_ref, 0.0)

    def test_eq5_matches_naive_reference(self, rng):
        """Vectorized Eq. 5 == the per-key project_overlap loop, bit for bit,
        including cross-shape (widened) pairs."""
        parent = small_cnn((3, 8, 8), 4, rng, width=6)
        child = parent.clone(birth_round=1)
        cid = child.transformable_cells()[0].cell_id
        child.widen_cell(cid, 2.0, rng, noise=0.05, mode="dup")
        models = {parent.model_id: parent, child.model_id: child}
        birth_order = [parent.model_id, child.model_id]
        config = FedTransConfig(share_l2s=True)  # exercise both directions
        sim_cache = SimilarityCache()

        def naive(snapshot):
            result = {}
            for j, dst_id in enumerate(birth_order):
                dst = models[dst_id]
                source_ids = list(birth_order)
                decay = float(config.eta**3)
                new_params = {}
                dst_params = snapshot[dst_id]
                for key, dst_val in dst_params.items():
                    num = np.zeros_like(dst_val)
                    den = 0.0
                    for src_id in source_ids:
                        src_params = snapshot[src_id]
                        if key not in src_params:
                            continue
                        sim = sim_cache.get(models[src_id], dst)
                        if sim <= 0.0:
                            continue
                        w_num = sim if src_id == dst_id else decay * sim
                        num += w_num * project_overlap(src_params[key], dst_val)
                        den += w_num
                    new_params[key] = num / den if den > 0 else dst_val
                result[dst_id] = new_params
            return result

        snapshot = {mid: models[mid].get_params() for mid in birth_order}
        expected = naive(snapshot)
        agg = ModelAggregator(config, sim_cache)
        agg._across_models(models, birth_order, round_idx=3)
        for mid, tree in expected.items():
            got = models[mid].params()
            for k, v in tree.items():
                assert np.array_equal(got[k], v), (mid, k)
