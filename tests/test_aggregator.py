"""Model Aggregator: within-model FedAvg + Eq. 5 soft aggregation."""

import numpy as np
import pytest

from repro.core.aggregator import ModelAggregator, project_overlap
from repro.core.client_manager import SimilarityCache
from repro.core.config import FedTransConfig
from repro.fl.types import ClientUpdate
from repro.nn import mlp


def _update(client_id, model, params=None, samples=10, loss=1.0):
    return ClientUpdate(
        client_id=client_id,
        model_id=model.model_id,
        params=params if params is not None else model.get_params(),
        state=model.get_state(),
        grad={k: np.zeros_like(v) for k, v in model.params().items()},
        train_loss=loss,
        num_samples=samples,
        macs_spent=0.0,
        bytes_down=0,
        bytes_up=0,
        round_time=0.0,
    )


def _family(rng):
    """parent -> child (widened): two models sharing lineage."""
    parent = mlp((6,), 3, rng, width=4)
    child = parent.clone(birth_round=5)
    child.widen_cell(child.transformable_cells()[0].cell_id, 2.0, rng)
    models = {parent.model_id: parent, child.model_id: child}
    order = [parent.model_id, child.model_id]
    return models, order, parent, child


class TestProjectOverlap:
    def test_same_shape_copies(self, rng):
        src, dst = rng.normal(size=(3, 3)), rng.normal(size=(3, 3))
        out = project_overlap(src, dst)
        assert np.allclose(out, src)
        out[0, 0] = 99
        assert src[0, 0] != 99  # copy, not view

    def test_crop(self, rng):
        src, dst = rng.normal(size=(4, 6)), rng.normal(size=(2, 3))
        assert np.allclose(project_overlap(src, dst), src[:2, :3])

    def test_embed_keeps_dst_rest(self, rng):
        src, dst = rng.normal(size=(2, 2)), rng.normal(size=(4, 4))
        out = project_overlap(src, dst)
        assert np.allclose(out[:2, :2], src)
        assert np.allclose(out[2:], dst[2:])

    def test_mixed_axes(self, rng):
        src, dst = rng.normal(size=(2, 6)), rng.normal(size=(4, 3))
        out = project_overlap(src, dst)
        assert out.shape == (4, 3)
        assert np.allclose(out[:2, :3], src[:2, :3])
        assert np.allclose(out[2:], dst[2:])

    def test_rank_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            project_overlap(rng.normal(size=(2,)), rng.normal(size=(2, 2)))


class TestWithinModelFedAvg:
    def test_weighted_mean(self, rng):
        m = mlp((6,), 3, rng, width=4)
        agg = ModelAggregator(FedTransConfig(soft_aggregation=False), SimilarityCache())
        p1 = {k: np.zeros_like(v) for k, v in m.params().items()}
        p2 = {k: np.ones_like(v) for k, v in m.params().items()}
        ups = [_update(0, m, p1, samples=30), _update(1, m, p2, samples=10)]
        agg.aggregate({m.model_id: m}, [m.model_id], ups, round_idx=0)
        for v in m.params().values():
            assert np.allclose(v, 0.25)

    def test_no_updates_noop(self, rng):
        m = mlp((6,), 3, rng, width=4)
        before = m.get_params()
        agg = ModelAggregator(FedTransConfig(), SimilarityCache())
        agg.aggregate({m.model_id: m}, [m.model_id], [], round_idx=0)
        assert all(np.allclose(m.params()[k], before[k]) for k in before)

    def test_single_model_soft_agg_is_identity(self, rng):
        """With one model, Eq. 5 must reduce to within-model FedAvg."""
        m = mlp((6,), 3, rng, width=4)
        p1 = {k: np.full_like(v, 2.0) for k, v in m.params().items()}
        agg = ModelAggregator(FedTransConfig(soft_aggregation=True), SimilarityCache())
        agg.aggregate({m.model_id: m}, [m.model_id], [_update(0, m, p1)], round_idx=0)
        for v in m.params().values():
            assert np.allclose(v, 2.0)


class TestSoftAggregation:
    def test_oldest_model_untouched_without_l2s(self, rng):
        """No large-to-small sharing by default (Table 1): the first-born
        model never absorbs its descendants' weights."""
        models, order, parent, child = _family(rng)
        parent_before = parent.get_params()
        agg = ModelAggregator(FedTransConfig(share_l2s=False), SimilarityCache())
        # only the child trains this round
        agg.aggregate(models, order, [_update(0, child)], round_idx=3)
        assert all(
            np.allclose(parent.params()[k], parent_before[k]) for k in parent_before
        )

    def test_l2s_enabled_changes_parent(self, rng):
        models, order, parent, child = _family(rng)
        for p in child.params().values():
            p += 5.0
        parent_before = parent.get_params()
        agg = ModelAggregator(FedTransConfig(share_l2s=True), SimilarityCache())
        agg.aggregate(models, order, [], round_idx=1)
        moved = any(
            not np.allclose(parent.params()[k], parent_before[k]) for k in parent_before
        )
        assert moved

    def test_child_absorbs_parent_weights(self, rng):
        models, order, parent, child = _family(rng)
        for p in parent.params().values():
            p[...] = 10.0
        child_before = child.get_params()
        agg = ModelAggregator(FedTransConfig(), SimilarityCache())
        agg.aggregate(models, order, [], round_idx=0)
        moved = any(
            not np.allclose(child.params()[k], child_before[k]) for k in child_before
        )
        assert moved

    def test_decay_reduces_cross_model_influence(self, rng):
        """η^t: the same aggregation at a later round moves the child less."""

        def drift_at_round(t):
            rng2 = np.random.default_rng(0)
            models, order, parent, child = _family(rng2)
            for p in parent.params().values():
                p[...] = 10.0
            before = child.get_params()
            agg = ModelAggregator(FedTransConfig(eta=0.9), SimilarityCache())
            agg.aggregate(models, order, [], round_idx=t)
            return sum(
                float(np.abs(child.params()[k] - before[k]).sum()) for k in before
            )

        assert drift_at_round(50) < drift_at_round(0)

    def test_decay_disabled_is_time_invariant(self, rng):
        def drift_at_round(t):
            rng2 = np.random.default_rng(0)
            models, order, parent, child = _family(rng2)
            for p in parent.params().values():
                p[...] = 10.0
            before = child.get_params()
            agg = ModelAggregator(FedTransConfig(decay=False), SimilarityCache())
            agg.aggregate(models, order, [], round_idx=t)
            return sum(
                float(np.abs(child.params()[k] - before[k]).sum()) for k in before
            )

        assert drift_at_round(50) == pytest.approx(drift_at_round(0))

    def test_soft_aggregation_off_keeps_models_independent(self, rng):
        models, order, parent, child = _family(rng)
        for p in parent.params().values():
            p[...] = 10.0
        child_before = child.get_params()
        agg = ModelAggregator(FedTransConfig(soft_aggregation=False), SimilarityCache())
        agg.aggregate(models, order, [], round_idx=0)
        assert all(
            np.allclose(child.params()[k], child_before[k]) for k in child_before
        )

    def test_inserted_cells_only_aggregate_within_owners(self, rng):
        """A deepen-inserted cell has no counterpart in the parent, so its
        weights cannot receive parent contributions."""
        parent = mlp((6,), 3, rng, width=4)
        child = parent.clone(birth_round=2)
        inserted = child.deepen_after(child.transformable_cells()[0].cell_id, rng)
        models = {parent.model_id: parent, child.model_id: child}
        order = [parent.model_id, child.model_id]
        ins_keys = [k for k in child.params() if k.startswith(inserted[0])]
        before = {k: child.params()[k].copy() for k in ins_keys}
        agg = ModelAggregator(FedTransConfig(), SimilarityCache())
        agg.aggregate(models, order, [], round_idx=0)
        for k in ins_keys:
            assert np.allclose(child.params()[k], before[k])

    def test_strict_eq5_shrinks_weights(self, rng):
        """The literal Eq. 5 denominator under-normalizes when η^t < 1 —
        the deviation DESIGN.md documents."""
        models, order, parent, child = _family(rng)
        for p in parent.params().values():
            p[...] = 1.0
        for p in child.params().values():
            p[...] = 1.0
        agg = ModelAggregator(FedTransConfig(strict_eq5=True, eta=0.5), SimilarityCache())
        agg.aggregate(models, order, [], round_idx=10)
        # all-ones weights should stay ~1 under a proper weighted mean, but
        # the strict form divides by a larger denominator
        shared = [k for k in child.params() if k in parent.params()]
        assert any(float(child.params()[k].mean()) < 0.99 for k in shared)
