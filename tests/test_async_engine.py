"""Buffered-asynchronous round engine: determinism, buffering, deadlines.

The async engine (fl/async_engine.py) carries over the executor's
determinism contract — event ties break on ``(finish_time, dispatch_seq)``
and every RNG derives from SeedSequence spawn keys — so async runs are
bit-identical across seeds/backends.  These tests also pin the buffered
aggregation semantics (buffer_k arrivals per step, staleness discount) and
the deadline straggler policy's cost accounting, plus the round-loop fixes
that shipped with the engine (config validation, convergence baseline).
"""

import numpy as np
import pytest

from repro.baselines import fedavg
from repro.core import FedTransConfig, FedTransStrategy
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.device.latency import client_round_time
from repro.fl import (
    Coordinator,
    CoordinatorConfig,
    FLClient,
    LocalTrainerConfig,
    SerialExecutor,
    TrainItem,
    VirtualClock,
)
from repro.fl.async_engine import _Pending
from repro.nn import mlp

SLOW_SPEED = 1e7  # 100x slower compute than the rest of the fleet
FAST_SPEED = 1e9
SLOW_BW = 2e4  # and 50x slower network: true stragglers
FAST_BW = 1e6
NUM_SLOW = 2
TRAINER = LocalTrainerConfig(batch_size=8, local_steps=5, lr=0.2)


def _dataset(num_clients=12, seed=0):
    cfg = SyntheticTaskConfig(
        num_classes=4,
        input_shape=(8,),
        latent_dim=6,
        teacher_width=12,
        class_sep=3.0,
        seed=seed,
    )
    return build_federated_dataset(cfg, num_clients, mean_samples=25, seed=seed)


def _straggler_clients(ds):
    """A fleet whose first NUM_SLOW clients are dramatically slower."""
    return [
        FLClient(
            c.client_id,
            c,
            DeviceTrace(
                c.client_id,
                SLOW_SPEED if c.client_id < NUM_SLOW else FAST_SPEED,
                SLOW_BW if c.client_id < NUM_SLOW else FAST_BW,
                1e15,
            ),
        )
        for c in ds.clients
    ]


def _duration(client, model, trainer=TRAINER):
    """Exact simulated round time for one (client, model) work item."""
    return client_round_time(
        client.device,
        model.macs(),
        model.nbytes(),
        min(trainer.batch_size, client.data.num_train),
        trainer.local_steps,
    )


def _cfg(rounds=6, **over):
    cfg = dict(
        rounds=rounds,
        clients_per_round=6,
        trainer=TRAINER,
        eval_every=3,
        seed=0,
        mode="async",
        buffer_k=3,
    )
    cfg.update(over)
    return CoordinatorConfig(**cfg)


def _run(config, ds=None, clients=None, width=16):
    ds = ds or _dataset()
    clients = clients or _straggler_clients(ds)
    model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(0), width=width)
    return Coordinator(fedavg(model), clients, config).run()


def _arrival_key(a):
    # model_ids come from a process-global counter (two runs mint different
    # ids for the same model) — compare everything else bit-exactly.
    return (
        a.dispatch_seq,
        a.client_id,
        a.dispatch_time,
        a.finish_time,
        a.staleness,
        a.dropped,
    )


def _assert_async_logs_identical(a, b):
    assert len(a.rounds) == len(b.rounds)
    for ra, rb in zip(a.rounds, b.rounds):
        assert ra.participants == rb.participants
        assert ra.mean_loss == rb.mean_loss  # bit-identical, no tolerance
        assert ra.round_time == rb.round_time
        assert list(map(_arrival_key, ra.arrivals)) == list(map(_arrival_key, rb.arrivals))
    for ea, eb in zip(a.evals, b.evals):
        assert (ea.client_accuracy == eb.client_accuracy).all()
        assert ea.mean_accuracy == eb.mean_accuracy
    assert a.total_macs == b.total_macs
    assert a.dropped_updates == b.dropped_updates
    assert a.dropped_macs == b.dropped_macs


class TestVirtualClock:
    def test_orders_by_time_then_dispatch_seq(self):
        clock = VirtualClock()
        p = [
            _Pending(s, s, ("m",), 0.0, 0.0, 0, False) for s in range(3)
        ]
        clock.schedule(2.0, 1, p[1])
        clock.schedule(1.0, 2, p[2])
        clock.schedule(2.0, 0, p[0])
        popped = [clock.pop()[1] for _ in range(3)]
        assert popped == [2, 0, 1]  # earliest time first, then lowest seq
        assert clock.now == 2.0

    def test_now_never_rewinds(self):
        clock = VirtualClock()
        clock.schedule(5.0, 0, _Pending(0, 0, ("m",), 0.0, 5.0, 0, False))
        clock.schedule(3.0, 1, _Pending(1, 1, ("m",), 0.0, 3.0, 0, False))
        clock.pop()
        assert clock.now == 3.0
        clock.pop()
        assert clock.now == 5.0

    def test_pop_empty_raises(self):
        with pytest.raises(RuntimeError, match="no scheduled events"):
            VirtualClock().pop()


class TestAsyncDeterminism:
    def test_repeat_run_bit_identical(self):
        _assert_async_logs_identical(_run(_cfg()), _run(_cfg()))

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_bit_identical_to_serial(self, backend):
        ref = _run(_cfg())
        par = _run(_cfg(executor=backend, max_workers=2))
        _assert_async_logs_identical(ref, par)

    def test_fedtrans_runs_async(self):
        """The multi-model strategy works under buffered aggregation."""
        ds = _dataset(num_clients=10)
        rng = np.random.default_rng(0)
        init = mlp(ds.input_shape, ds.num_classes, rng, width=8)
        clients = [
            FLClient(c.client_id, c, DeviceTrace(c.client_id, 1e9, 1e6, init.macs() * 16))
            for c in ds.clients
        ]
        strategy = FedTransStrategy(
            init,
            FedTransConfig(gamma=2, delta=2, beta=0.5, max_models=3),
            max_capacity_macs=init.macs() * 16,
        )
        log = Coordinator(strategy, clients, _cfg(rounds=12)).run()
        assert log.mode == "async"
        assert len(log.rounds) == 12
        assert np.isfinite(log.final_accuracy())

    def test_seed_changes_the_run(self):
        a = _run(_cfg())
        b = _run(_cfg(seed=1))
        assert [r.participants for r in a.rounds] != [r.participants for r in b.rounds]


class TestBufferedAggregation:
    def test_buffer_k_participants_per_step(self):
        log = _run(_cfg(buffer_k=4))
        assert all(len(r.participants) == 4 for r in log.rounds)

    def test_round_times_sum_to_clock(self):
        """Async round_time is the per-step clock delta (module contract)."""
        log = _run(_cfg())
        last_finish = max(
            a.finish_time for r in log.rounds for a in r.arrivals if not a.dropped
        )
        assert log.simulated_time() == pytest.approx(last_finish)

    def test_arrivals_pop_in_event_order(self):
        deadline = 1e9  # effectively disabled but exercises the capped path
        log = _run(_cfg(deadline_s=deadline))
        keys = [
            (
                min(a.finish_time, a.dispatch_time + deadline),
                a.dispatch_seq,
            )
            for r in log.rounds
            for a in r.arrivals
        ]
        assert keys == sorted(keys)

    def test_over_selection_defaults(self):
        ds = _dataset()
        clients = _straggler_clients(ds)
        model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(0), width=8)
        coord = Coordinator(fedavg(model), clients, _cfg(buffer_k=None))
        engine = coord._async_engine
        assert engine.concurrency == 6  # clients_per_round kept in flight
        assert engine.buffer_k == 3  # aggregates on half of them
        coord.close()

    def test_staleness_discount_blends_toward_server(self, rng):
        """f = discount**staleness; aggregate sees f*update + (1-f)*server."""
        ds = _dataset(num_clients=4)
        clients = _straggler_clients(ds)
        strategy = fedavg(mlp(ds.input_shape, ds.num_classes, rng, width=8))
        server = strategy.model.get_params()
        ex = SerialExecutor(clients, TRAINER, seed=0)
        (update,) = ex.train_round(
            0, [TrainItem(strategy.model.model_id, 0, 0)], strategy.models()
        )
        f = 0.5**2
        expected = {k: f * update.params[k] + (1 - f) * server[k] for k in server}
        strategy.aggregate_buffered(0, [update], [2], rng, staleness_discount=0.5)
        got = strategy.model.get_params()
        for k in expected:  # single update => FedAvg adopts it verbatim
            assert np.allclose(got[k], expected[k])

    def test_staleness_discount_blends_state_too(self, rng):
        """Non-trainable state (BatchNorm running stats) is discounted like
        params — a stale straggler must not drag the server's statistics
        toward obsolete values at full weight."""
        from repro.fl import ClientUpdate
        from repro.nn import small_resnet

        model = small_resnet((3, 8, 8), 4, rng, width=4, blocks=1)
        assert model.state(), "workload must have stateful layers"
        strategy = fedavg(model)
        server_state = model.get_state()
        stale_state = {k: v + 1.0 for k, v in server_state.items()}
        update = ClientUpdate(
            client_id=0,
            model_id=model.model_id,
            params=model.get_params(),
            state=stale_state,
            grad={k: np.ones_like(v) for k, v in model.get_params().items()},
            train_loss=1.0,
            num_samples=10,
            macs_spent=0.0,
            bytes_down=0,
            bytes_up=0,
            round_time=0.0,
        )
        f = 0.5**3
        expected = {k: f * stale_state[k] + (1 - f) * server_state[k] for k in server_state}
        strategy.aggregate_buffered(0, [update], [3], rng, staleness_discount=0.5)
        got = strategy.model.get_state()
        for k in expected:
            assert np.allclose(got[k], expected[k])

    def test_zero_staleness_equals_sync_aggregate(self, rng):
        ds = _dataset(num_clients=4)
        clients = _straggler_clients(ds)
        model = mlp(ds.input_shape, ds.num_classes, rng, width=8)
        s_sync, s_buf = fedavg(model.clone(keep_id=True)), fedavg(model.clone(keep_id=True))
        ex = SerialExecutor(clients, TRAINER, seed=0)
        items = [TrainItem(model.model_id, c.client_id, 0) for c in clients[:3]]
        updates = ex.train_round(0, items, s_sync.models())
        s_sync.aggregate(0, updates, np.random.default_rng(0))
        s_buf.aggregate_buffered(
            0, updates, [0] * len(updates), np.random.default_rng(0), 0.5
        )
        a, b = s_sync.model.get_params(), s_buf.model.get_params()
        assert all(np.array_equal(a[k], b[k]) for k in a)


class TestDeadlinePolicy:
    def _deadline_between(self, clients, model):
        """A deadline every fast client beats and every straggler misses.

        Kept close above the fast durations so drop events (which fire at
        ``dispatch + deadline``) actually pop within the short simulated
        span of a test run.
        """
        slow = min(_duration(c, model) for c in clients[:NUM_SLOW])
        fast = max(_duration(c, model) for c in clients[NUM_SLOW:])
        assert 2 * fast < slow
        return 2 * fast

    def test_drops_metered_in_cost_ledger(self):
        ds = _dataset()
        clients = _straggler_clients(ds)
        model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(0), width=16)
        deadline = self._deadline_between(clients, model)
        log = _run(_cfg(rounds=10, deadline_s=deadline), ds=ds, clients=clients)
        dropped = [a for r in log.rounds for a in r.arrivals if a.dropped]
        assert log.dropped_updates == len(dropped) > 0
        assert 0 < log.dropped_macs < log.total_macs
        # Dropped compute is charged to the per-step and total ledgers.
        assert sum(r.macs for r in log.rounds) == pytest.approx(log.total_macs)
        # Stragglers never make it into an aggregation.
        slow_ids = set(range(NUM_SLOW))
        assert not any(slow_ids & set(r.participants) for r in log.rounds)
        # A dropped arrival's event fires at the deadline, not its finish.
        assert all(a.finish_time - a.dispatch_time > deadline for a in dropped)

    def test_deadline_beats_sync_on_straggler_fleet(self):
        """The whole point: simulated time collapses once stragglers can't
        stall progress (sync pays max-over-participants every round)."""
        ds = _dataset()
        clients = _straggler_clients(ds)
        model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(0), width=16)
        deadline = self._deadline_between(clients, model)
        sync = _run(
            CoordinatorConfig(
                rounds=8, clients_per_round=6, trainer=TRAINER, eval_every=4, seed=0
            ),
            ds=ds,
            clients=clients,
        )
        async_dl = _run(
            _cfg(rounds=8, eval_every=4, deadline_s=deadline), ds=ds, clients=clients
        )
        assert async_dl.simulated_time() < sync.simulated_time()

    def test_impossible_deadline_raises(self):
        ds = _dataset()
        clients = _straggler_clients(ds)
        with pytest.raises(RuntimeError, match="no client can finish"):
            _run(_cfg(deadline_s=1e-12), ds=ds, clients=clients)


class TestConfigValidation:
    def test_rejects_degenerate_loop_params(self):
        for bad in (
            dict(rounds=0),
            dict(rounds=-3),
            dict(eval_every=0),
            dict(clients_per_round=0),
            dict(convergence_patience=0),
        ):
            with pytest.raises(ValueError):
                CoordinatorConfig(**bad)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            CoordinatorConfig(mode="semi-sync")

    def test_async_knobs_require_async_mode(self):
        for knob in (dict(buffer_k=3), dict(deadline_s=5.0), dict(async_concurrency=4)):
            with pytest.raises(ValueError, match="requires mode='async'"):
                CoordinatorConfig(**knob)

    def test_rejects_bad_async_values(self):
        for bad in (
            dict(mode="async", buffer_k=0),
            dict(mode="async", deadline_s=0.0),
            dict(mode="async", deadline_s=-1.0),
            dict(mode="async", async_concurrency=0),
            dict(mode="async", staleness_discount=0.0),
            dict(mode="async", staleness_discount=1.5),
        ):
            with pytest.raises(ValueError):
                CoordinatorConfig(**bad)

    def test_valid_async_config_accepted(self):
        cfg = CoordinatorConfig(mode="async", buffer_k=3, deadline_s=10.0)
        assert cfg.buffer_k == 3


class TestConvergenceBaseline:
    def _coordinator(self, patience=3):
        ds = _dataset(num_clients=3)
        clients = _straggler_clients(ds)
        model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(0), width=8)
        return Coordinator(
            fedavg(model),
            clients,
            CoordinatorConfig(
                rounds=2, clients_per_round=2, convergence_patience=patience
            ),
        )

    def test_dip_at_baseline_no_longer_hides_convergence(self):
        """Regression: with the single-eval baseline, a transient dip at
        position -patience-1 made the recent window look like fresh
        improvement (0.7 - 0.3 >> delta) and the run never stopped, even
        though it had not recovered its earlier 0.8 best."""
        coord = self._coordinator(patience=3)
        assert coord._converged([0.8, 0.3, 0.5, 0.6, 0.7])
        coord.close()

    def test_genuine_improvement_keeps_running(self):
        coord = self._coordinator(patience=3)
        assert not coord._converged([0.3, 0.4, 0.5, 0.6, 0.7])
        coord.close()

    def test_short_history_never_converged(self):
        coord = self._coordinator(patience=3)
        assert not coord._converged([0.5, 0.5, 0.5])
        coord.close()

    def test_plateau_converges(self):
        coord = self._coordinator(patience=3)
        assert coord._converged([0.2, 0.7, 0.7, 0.705, 0.7])
        coord.close()
