"""Deeper hypothesis property tests across module boundaries."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.subnet import build_subnet, param_index_map, ratio_spec, scatter_average
from repro.core.aggregator import project_overlap
from repro.core.doc import DoCTracker
from repro.core.similarity import model_similarity
from repro.nn import mlp, small_cnn


@given(
    seed=st.integers(0, 500),
    n_transforms=st.integers(1, 4),
)
@settings(max_examples=15, deadline=None)
def test_similarity_monotone_decreasing_along_lineage(seed, n_transforms):
    """Each extra transformation can only reduce (or keep) similarity to the
    root — the family tree's structure is reflected in sim()."""
    rng = np.random.default_rng(seed)
    root = mlp((6,), 3, rng, width=4, depth=2)
    sims = [1.0]
    current = root
    for i in range(n_transforms):
        child = current.clone()
        cells = child.transformable_cells()
        cell = cells[int(rng.integers(0, len(cells)))]
        if rng.random() < 0.5:
            child.widen_cell(cell.cell_id, 2.0, rng)
        else:
            child.deepen_after(cell.cell_id, rng)
        sims.append(model_similarity(root, child))
        current = child
    assert all(0.0 <= s <= 1.0 for s in sims)
    assert all(b <= a + 1e-9 for a, b in zip(sims, sims[1:]))


@given(seed=st.integers(0, 500), ratio=st.sampled_from([0.25, 0.5, 0.75]))
@settings(max_examples=15, deadline=None)
def test_subnet_roundtrip_scatter_identity(seed, ratio):
    """Scattering a subnet's own (unchanged) weights back into the global
    model must leave the global model unchanged."""
    rng = np.random.default_rng(seed)
    g = mlp((6,), 3, rng, width=8, depth=2)
    spec = ratio_spec(g, ratio)
    sub = build_subnet(g, spec)
    imaps = {id(spec): param_index_map(g, spec)}
    before = g.get_params()
    merged = scatter_average(g.params(), [(sub.get_params(), spec, 1.0)], imaps)
    assert all(np.allclose(merged[k], before[k]) for k in before)


@given(seed=st.integers(0, 500), ratio=st.sampled_from([0.25, 0.5]))
@settings(max_examples=10, deadline=None)
def test_subnet_of_cnn_shapes_consistent(seed, ratio):
    rng = np.random.default_rng(seed)
    g = small_cnn((1, 8, 8), 4, rng, width=8)
    sub = build_subnet(g, ratio_spec(g, ratio))
    x = rng.normal(size=(2, 1, 8, 8))
    out = sub.predict(x)
    assert out.shape == (2, 4)
    assert np.isfinite(out).all()


@given(
    src_shape=st.tuples(st.integers(1, 6), st.integers(1, 6)),
    dst_shape=st.tuples(st.integers(1, 6), st.integers(1, 6)),
    seed=st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_project_overlap_total_coverage(src_shape, dst_shape, seed):
    """Every output coordinate comes from exactly one of src or dst."""
    rng = np.random.default_rng(seed)
    src = rng.normal(size=src_shape)
    dst = rng.normal(size=dst_shape)
    out = project_overlap(src, dst)
    assert out.shape == dst.shape
    o0, o1 = min(src_shape[0], dst_shape[0]), min(src_shape[1], dst_shape[1])
    assert np.allclose(out[:o0, :o1], src[:o0, :o1])
    mask = np.ones(dst.shape, dtype=bool)
    mask[:o0, :o1] = False
    assert np.allclose(out[mask], dst[mask])


@given(
    losses=st.lists(st.floats(0.01, 10.0), min_size=12, max_size=40),
    gamma=st.integers(1, 4),
    delta=st.integers(1, 4),
)
@settings(max_examples=40, deadline=None)
def test_doc_matches_direct_formula(losses, gamma, delta):
    doc = DoCTracker(gamma, delta)
    for l in losses:
        doc.update(l)
    if len(losses) < gamma + delta:
        assert doc.value() is None
        return
    n = len(losses)
    expected = (
        sum((losses[j - delta] - losses[j]) / delta for j in range(n - gamma, n)) / gamma
    )
    assert abs(doc.value() - expected) < 1e-12


@given(seed=st.integers(0, 300))
@settings(max_examples=15, deadline=None)
def test_widen_then_narrow_roundtrip_shapes(seed):
    """Narrowing a widened model back to the original width restores the
    original tensor shapes (weights differ by the duplication arithmetic)."""
    rng = np.random.default_rng(seed)
    m = mlp((6,), 3, rng, width=4, depth=2)
    orig_shapes = {k: v.shape for k, v in m.params().items()}
    cell = m.transformable_cells()[0]
    m.widen_cell(cell.cell_id, 2.0, rng)
    spec = ratio_spec(m, 0.5)
    # restrict the spec to just the widened cell (others keep full width)
    from repro.baselines.subnet import SubnetSpec

    spec = SubnetSpec(keep_out={cell.cell_id: np.arange(4)}, keep_hidden={})
    sub = build_subnet(m, spec)
    for k, v in sub.params().items():
        assert v.shape == orig_shapes[k], k
