"""FL engine: local trainer, selection, coordinator, metrics."""

import numpy as np
import pytest

from repro.baselines import fedavg
from repro.data import build_federated_dataset, SyntheticTaskConfig
from repro.device import DeviceTrace
from repro.fl import (
    Coordinator,
    CoordinatorConfig,
    FLClient,
    LocalTrainer,
    LocalTrainerConfig,
    iqr,
    summarize,
    uniform_choice,
)
from repro.nn import mlp


def _dataset(num_clients=10, classes=4, features=8, seed=0):
    cfg = SyntheticTaskConfig(
        num_classes=classes,
        input_shape=(features,),
        latent_dim=6,
        teacher_width=12,
        class_sep=3.0,
        seed=seed,
    )
    return build_federated_dataset(cfg, num_clients, mean_samples=25, seed=seed)


def _clients(ds, capacity=1e12):
    return [
        FLClient(c.client_id, c, DeviceTrace(c.client_id, 1e9, 1e6, capacity))
        for c in ds.clients
    ]


class TestLocalTrainer:
    def test_update_fields(self, rng):
        ds = _dataset()
        clients = _clients(ds)
        model = mlp(ds.input_shape, ds.num_classes, rng, width=8)
        cfg = LocalTrainerConfig(batch_size=5, local_steps=4, lr=0.1)
        u = LocalTrainer(cfg).train(model.clone(keep_id=True), clients[0], rng)
        assert u.client_id == 0
        assert u.model_id == model.model_id
        assert u.num_samples == clients[0].data.num_train
        assert u.bytes_down == u.bytes_up == model.nbytes()
        assert u.macs_spent == model.train_macs_per_sample() * 4 * 5
        assert u.round_time > 0
        assert set(u.grad) == set(model.params())

    def test_training_mutates_weights(self, rng):
        ds = _dataset()
        clients = _clients(ds)
        model = mlp(ds.input_shape, ds.num_classes, rng, width=8)
        before = model.get_params()
        work = model.clone(keep_id=True)
        LocalTrainer(LocalTrainerConfig(local_steps=5)).train(work, clients[0], rng)
        moved = any(not np.allclose(work.params()[k], before[k]) for k in before)
        assert moved
        # server copy untouched
        assert all(np.allclose(model.params()[k], before[k]) for k in before)

    def test_empty_client_raises(self, rng):
        ds = _dataset()
        client = _clients(ds)[0]
        client.data.x_train = client.data.x_train[:0]
        client.data.y_train = client.data.y_train[:0]
        model = mlp(ds.input_shape, ds.num_classes, rng, width=8)
        with pytest.raises(ValueError, match="no training data"):
            LocalTrainer(LocalTrainerConfig()).train(model, client, rng)

    def test_prox_term_pulls_toward_global(self, rng):
        """With a strong (but stable, lr*mu < 1) proximal term, local weights
        stay closer to the global ones."""
        ds = _dataset()
        client = _clients(ds)[0]
        model = mlp(ds.input_shape, ds.num_classes, rng, width=8)
        base = model.get_params()

        free = model.clone(keep_id=True)
        LocalTrainer(LocalTrainerConfig(local_steps=10, lr=0.1)).train(free, client, np.random.default_rng(1))
        anchored = model.clone(keep_id=True)
        LocalTrainer(
            LocalTrainerConfig(local_steps=10, lr=0.1, prox_mu=5.0)
        ).train(anchored, client, np.random.default_rng(1))

        def drift(m):
            return sum(
                float(np.abs(m.params()[k] - base[k]).sum()) for k in base
            )

        assert drift(anchored) < drift(free)

    def test_mean_loss_reported(self, rng):
        ds = _dataset()
        client = _clients(ds)[0]
        model = mlp(ds.input_shape, ds.num_classes, rng, width=8)
        u = LocalTrainer(LocalTrainerConfig(local_steps=3)).train(
            model.clone(keep_id=True), client, rng
        )
        assert u.train_loss > 0


class TestSelection:
    def test_without_replacement(self, rng):
        ds = _dataset(num_clients=20)
        clients = _clients(ds)
        chosen = uniform_choice(clients, 10, rng)
        ids = [c.client_id for c in chosen]
        assert len(set(ids)) == 10

    def test_caps_at_population(self, rng):
        ds = _dataset(num_clients=5)
        assert len(uniform_choice(_clients(ds), 50, rng)) == 5

    def test_empty_raises(self, rng):
        with pytest.raises(ValueError):
            uniform_choice([], 3, rng)

    def test_below_one_raises(self, rng):
        """Regression: num < 1 used to return an empty round silently."""
        ds = _dataset(num_clients=5)
        for bad in (0, -2):
            with pytest.raises(ValueError, match="must be >= 1"):
                uniform_choice(_clients(ds), bad, rng)

    def test_deprecated_shim_removed(self):
        """The PR 4 select_uniform shim is gone; repro-lint RL007 bans the
        old module path from regrowing callers."""
        with pytest.raises(ImportError):
            from repro.fl.selection import select_uniform  # noqa: F401


class TestCoordinator:
    def _run(self, rounds=20, **cfg_over):
        ds = _dataset(num_clients=12)
        clients = _clients(ds)
        rng = np.random.default_rng(0)
        model = mlp(ds.input_shape, ds.num_classes, rng, width=16)
        strategy = fedavg(model)
        cfg = dict(
            rounds=rounds,
            clients_per_round=6,
            trainer=LocalTrainerConfig(batch_size=8, local_steps=5, lr=0.2),
            eval_every=5,
            seed=0,
        )
        cfg.update(cfg_over)
        coord = Coordinator(strategy, clients, CoordinatorConfig(**cfg))
        return coord.run()

    def test_accuracy_improves(self):
        log = self._run(rounds=25)
        # ">=" because the easy toy task can saturate before the first eval.
        assert log.evals[-1].mean_accuracy >= log.evals[0].mean_accuracy
        assert log.evals[-1].mean_accuracy > 0.5

    def test_cost_accounting_sums(self):
        log = self._run(rounds=10)
        assert log.total_macs == pytest.approx(sum(r.macs for r in log.rounds))
        assert log.total_bytes_down == sum(r.bytes_down for r in log.rounds)

    def test_round_records_complete(self):
        log = self._run(rounds=6)
        assert len(log.rounds) == 6
        for r in log.rounds:
            assert len(r.participants) == 6
            assert set(r.assignments) == set(r.participants)
            assert r.round_time > 0

    def test_final_eval_exists(self):
        log = self._run(rounds=7)  # not a multiple of eval_every
        assert log.evals[-1].round_idx == log.stopped_round

    def test_eval_cumulative_macs_nondecreasing(self):
        log = self._run(rounds=15)
        xs = [e.cumulative_macs for e in log.evals]
        assert all(b >= a for a, b in zip(xs, xs[1:]))

    def test_convergence_stop(self):
        log = self._run(
            rounds=200,
            eval_every=2,
            convergence_patience=3,
            convergence_delta=1.0,  # impossible improvement => stops early
        )
        assert log.stop_reason == "converged"
        assert len(log.rounds) < 200

    def test_no_clients_raises(self):
        with pytest.raises(ValueError):
            Coordinator(fedavg(mlp((8,), 4, np.random.default_rng(0))), [], CoordinatorConfig())

    def test_deterministic_given_seed(self):
        a = self._run(rounds=8)
        b = self._run(rounds=8)
        assert a.final_accuracy() == b.final_accuracy()
        assert a.total_macs == b.total_macs


class TestMetrics:
    def test_iqr(self):
        assert iqr(np.array([0.0, 1.0, 2.0, 3.0, 4.0])) == pytest.approx(2.0)

    def test_summarize_fields(self):
        log = TestCoordinator()._run(rounds=10)
        s = summarize(log)
        assert s.strategy == "fedavg"
        assert 0 <= s.accuracy <= 1
        assert s.cost_pmacs == pytest.approx(log.total_macs / 1e15)
        assert s.network_mb == pytest.approx(
            (log.total_bytes_down + log.total_bytes_up) / 1e6
        )
        assert s.rounds_run == 10

    def test_training_log_helpers(self):
        log = TestCoordinator()._run(rounds=10)
        xs, ys = log.cost_accuracy_curve()
        assert len(xs) == len(ys) == len(log.evals)
        assert log.best_eval().mean_accuracy == max(e.mean_accuracy for e in log.evals)
        assert log.accuracy_iqr() >= 0
