"""Fault-tolerance suite: deterministic injection, self-healing, quarantine.

The heart of the suite is the CONTRACTS.md I10 bit-identity matrix: a run
under infrastructure faults (worker crashes — real SIGKILLs on the process
backend — and shm publish/attach failures) must export **byte-identically**
to the fault-free run at the same seed, because recovering the
coordinator's machinery charges zero simulated time.  Task-level failures
(``exc``) charge virtual backoff and are checked for determinism instead;
``poison`` + quarantine and ``hang`` + async deadlines exercise the
degradation paths.
"""

import json
import re

import numpy as np
import pytest

from repro.baselines import fedavg
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import (
    Coordinator,
    CoordinatorConfig,
    FaultConfig,
    FaultPlan,
    FLClient,
    ItemFailure,
    LocalTrainerConfig,
    QuarantineConfig,
    RetryPolicy,
    SnapshotChainError,
    UpdateValidator,
    log_to_dict,
    recovery_summary,
)
from repro.fl.export import recovery_to_dict
from repro.fl.executor import TrainItem, _worker_segment, _WORKER
from repro.fl.faults import (
    InjectedShmFault,
    InjectedTaskError,
    InjectedWorkerCrash,
    fault_kind,
    is_infrastructure_fault,
)
from repro.fl.types import ClientUpdate
from repro.nn import mlp

TRAINER = LocalTrainerConfig(batch_size=8, local_steps=5, lr=0.2)


# ----------------------------------------------------------------------
# workload + run helpers
# ----------------------------------------------------------------------
def _workload(seed=0, num_clients=12):
    task = SyntheticTaskConfig(
        num_classes=4,
        input_shape=(8,),
        latent_dim=6,
        teacher_width=12,
        class_sep=3.0,
        seed=seed,
    )
    ds = build_federated_dataset(task, num_clients, mean_samples=25, seed=seed)
    clients = [
        FLClient(c.client_id, c, DeviceTrace(c.client_id, 1e9, 1e6, 1e15))
        for c in ds.clients
    ]
    model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(seed), width=16)
    return clients, model


def _run(**over):
    clients, model = _workload()
    cfg = dict(rounds=4, clients_per_round=6, trainer=TRAINER, eval_every=2, seed=0)
    cfg.update(over)
    coord = Coordinator(
        fedavg(model.clone(keep_id=True)), clients, CoordinatorConfig(**cfg)
    )
    return coord.run()


def _export(log) -> str:
    """Canonical JSON export with model ids normalized.

    Model ids come from a process-global counter, so two runs built in the
    same interpreter label the same model "m000" vs "m001"; everything
    else in the export must match byte-for-byte.
    """
    raw = json.dumps(log_to_dict(log), sort_keys=True)
    ids: dict[str, str] = {}
    return re.sub(
        r"m\d+", lambda m: ids.setdefault(m.group(0), f"M{len(ids)}"), raw
    )


BACKENDS = [
    pytest.param({"executor": "serial"}, id="serial"),
    pytest.param({"executor": "thread", "max_workers": 3}, id="thread"),
    pytest.param({"executor": "process", "max_workers": 2}, id="process"),
]


# ----------------------------------------------------------------------
# FaultConfig parsing
# ----------------------------------------------------------------------
class TestFaultConfig:
    def test_parse_round_trip(self):
        cfg = FaultConfig.parse("crash=0.05,poison=0.2")
        assert cfg.crash == 0.05 and cfg.poison == 0.2
        assert cfg.exc == cfg.shm == cfg.hang == 0.0
        assert FaultConfig.parse(cfg.spec()) == cfg

    def test_parse_hang_factor(self):
        cfg = FaultConfig.parse("hang=0.5,hang_factor=3")
        assert cfg.hang_factor == 3.0
        assert FaultConfig.parse(cfg.spec()) == cfg

    @pytest.mark.parametrize(
        "spec",
        ["", "bogus=0.5", "crash", "crash=x", "crash=0.1,crash=0.2"],
    )
    def test_parse_rejects(self, spec):
        with pytest.raises(ValueError):
            FaultConfig.parse(spec)

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultConfig(crash=1.5)
        with pytest.raises(ValueError):
            FaultConfig(hang=0.5, hang_factor=1.0)

    def test_any_enabled(self):
        assert not FaultConfig().any_enabled()
        assert FaultConfig(exc=0.01).any_enabled()


# ----------------------------------------------------------------------
# FaultPlan determinism
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_decisions_replay(self):
        cfg = FaultConfig(crash=0.3, exc=0.3, poison=0.3)
        a, b = FaultPlan(7, cfg), FaultPlan(7, cfg)
        for r in range(4):
            for c in range(8):
                item = TrainItem("m0", c, 0)
                assert a.item_faults(r, item) == b.item_faults(r, item)

    def test_seed_changes_decisions(self):
        cfg = FaultConfig(crash=0.5)
        items = [(r, TrainItem("m0", c, 0)) for r in range(6) for c in range(12)]
        a = [FaultPlan(0, cfg).item_faults(r, it).crash for r, it in items]
        b = [FaultPlan(1, cfg).item_faults(r, it).crash for r, it in items]
        assert a != b

    def test_fixed_width_draws(self):
        """Toggling one kind's rate never shifts another kind's stream."""
        just_crash = FaultPlan(0, FaultConfig(crash=0.4))
        both = FaultPlan(0, FaultConfig(crash=0.4, poison=0.4))
        for r in range(6):
            for c in range(12):
                item = TrainItem("m0", c, 0)
                assert (
                    just_crash.item_faults(r, item).crash
                    == both.item_faults(r, item).crash
                )

    def test_publish_fails_deterministic(self):
        plan = FaultPlan(3, FaultConfig(shm=0.5))
        seq = [plan.publish_fails(i) for i in range(40)]
        assert seq == [plan.publish_fails(i) for i in range(40)]
        assert any(seq) and not all(seq)
        assert not FaultPlan(3, FaultConfig(crash=0.5)).publish_fails(0)

    def test_classification_helpers(self):
        assert is_infrastructure_fault(InjectedWorkerCrash("x"))
        assert is_infrastructure_fault(InjectedShmFault("x"))
        assert is_infrastructure_fault(SnapshotChainError("x"))
        assert not is_infrastructure_fault(InjectedTaskError("x"))
        assert fault_kind(InjectedWorkerCrash("x")) == "worker_crash"
        assert fault_kind(InjectedShmFault("x")) == "shm"
        assert fault_kind(SnapshotChainError("x")) == "shm"
        assert fault_kind(ValueError("x")) == "task_error"


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_schedule(self):
        p = RetryPolicy(max_attempts=4, backoff_s=0.5, backoff_factor=2.0)
        assert [p.backoff(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


# ----------------------------------------------------------------------
# UpdateValidator units
# ----------------------------------------------------------------------
def _update(client_id=0, norm=1.0, poison=None, model_id="m0"):
    params = {"c0000/w": np.full(4, norm / 2.0)}
    if poison is not None:
        params["c0000/w"] = np.full(4, poison)
    return ClientUpdate(
        client_id=client_id,
        model_id=model_id,
        params=params,
        state={},
        grad={},
        train_loss=0.1,
        num_samples=10,
        macs_spent=1.0,
        bytes_down=1,
        bytes_up=1,
        round_time=0.1,
    )


class TestUpdateValidator:
    def test_rejects_nan_and_inf(self):
        v = UpdateValidator()
        assert v.admit(_update()) is None
        for bad in (np.nan, np.inf, -np.inf):
            reason = v.admit(_update(poison=bad))
            assert reason is not None and "non-finite" in reason
            # clone-tag prefix must not leak into the reason (I10)
            assert "c0000" not in reason and "w]" in reason

    def test_norm_gate_warms_up(self):
        v = UpdateValidator(QuarantineConfig(norm_multiplier=2.0, min_history=3))
        # before min_history accepts, even huge updates pass
        assert v.admit(_update(norm=100.0)) is None
        for _ in range(3):
            assert v.admit(_update(norm=1.0)) is None
        reason = v.admit(_update(norm=1000.0))
        assert reason is not None and "exceeds" in reason
        assert v.admit(_update(norm=1.0)) is None

    def test_rejects_do_not_update_stats(self):
        v = UpdateValidator(QuarantineConfig(norm_multiplier=2.0, min_history=1))
        assert v.admit(_update(norm=1.0)) is None
        state_before = v.state_dict()
        assert v.admit(_update(norm=1000.0)) is not None
        assert v.state_dict() == state_before  # one outlier can't widen the gate

    def test_zero_multiplier_disables_gate(self):
        v = UpdateValidator(QuarantineConfig(norm_multiplier=0.0, min_history=1))
        for norm in (1.0, 1.0, 1e9):
            assert v.admit(_update(norm=norm)) is None

    def test_state_round_trip(self):
        v = UpdateValidator(QuarantineConfig(norm_multiplier=2.0, min_history=1))
        for norm in (1.0, 2.0, 3.0):
            v.admit(_update(norm=norm))
        clone = UpdateValidator(QuarantineConfig(norm_multiplier=2.0, min_history=1))
        clone.load_state_dict(v.state_dict())
        assert clone.state_dict() == v.state_dict()
        assert clone.admit(_update(norm=1000.0)) is not None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            QuarantineConfig(norm_multiplier=-1.0)
        with pytest.raises(ValueError):
            QuarantineConfig(min_history=0)


# ----------------------------------------------------------------------
# the I10 bit-identity matrix
# ----------------------------------------------------------------------
class TestInfrastructureBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("spec", ["crash=0.5", "shm=0.8", "crash=0.4,shm=0.5"])
    def test_sync_recovery_is_invisible(self, backend, spec):
        clean = _export(_run(**backend))
        faulty = _run(**backend, faults=spec)
        assert _export(faulty) == clean
        rec = recovery_summary(faulty)
        assert rec["worker_restarts"] + rec["retries"] > 0

    def test_process_sigkill_heals_pool(self):
        """THE acceptance run: real SIGKILLs, healed pool, identical export."""
        clean = _export(_run(executor="process", max_workers=2))
        faulty = _run(executor="process", max_workers=2, faults="crash=0.5")
        assert faulty.worker_restarts >= 1
        assert _export(faulty) == clean

    def test_async_crash_recovery_is_invisible(self):
        kw = dict(
            executor="serial", mode="async", buffer_k=3, async_concurrency=4
        )
        clean = _export(_run(**kw))
        faulty = _run(**kw, faults="crash=0.4")
        assert _export(faulty) == clean
        assert recovery_summary(faulty)["retries"] >= 1

    def test_chaos_run_replays(self):
        a = _run(executor="serial", faults="crash=0.3,exc=0.3,hang=0.2")
        b = _run(executor="serial", faults="crash=0.3,exc=0.3,hang=0.2")
        assert _export(a) == _export(b)

        def ledger(log):
            raw = json.dumps(recovery_to_dict(log)["faults"], sort_keys=True)
            ids: dict[str, str] = {}
            return re.sub(
                r"m\d+", lambda m: ids.setdefault(m.group(0), f"M{len(ids)}"), raw
            )

        assert ledger(a) == ledger(b)

    @pytest.mark.parametrize("spec", ["crash=0.5", "shm=0.8"])
    def test_compressed_recovery_is_invisible(self, spec):
        """I10 x I11: snapshot rle + worker crashes across a compaction.

        10 rounds drive the publish chain past ``FULL_SNAPSHOT_EVERY`` (8),
        so the run exercises delta-chain compaction with run-length-encoded
        delta segments while workers are being killed and healed.  The
        export must match the *clean compressed* run byte-for-byte, and the
        lossless codec must match the clean *uncompressed* trajectory too.
        """
        compress = "update:rle,snapshot:rle"
        kw = dict(executor="process", max_workers=2, rounds=10)
        plain = _run(**kw)
        clean = _run(**kw, compress=compress)
        faulty = _run(**kw, compress=compress, faults=spec)
        assert _export(faulty) == _export(clean)
        rec = recovery_summary(faulty)
        assert rec["worker_restarts"] + rec["retries"] > 0
        # Lossless: only byte accounting may differ from the raw run.
        assert [r.mean_loss for r in clean.rounds] == [
            r.mean_loss for r in plain.rounds
        ]
        assert clean.total_raw_bytes_up == plain.total_bytes_up


# ----------------------------------------------------------------------
# task-level failures: retries, backoff, permanent failure
# ----------------------------------------------------------------------
class TestTaskFailures:
    def test_exc_retries_are_deterministic(self):
        a = _run(executor="serial", faults="exc=0.4")
        b = _run(executor="serial", faults="exc=0.4")
        assert _export(a) == _export(b)
        assert a.retries >= 1 and a.retries == b.retries

    def test_exc_charges_simulated_backoff(self):
        clean = _run(executor="serial")
        faulty = _run(executor="serial", faults="exc=0.4")
        assert sum(r.round_time for r in faulty.rounds) > sum(
            r.round_time for r in clean.rounds
        )

    def test_retry_budget_exhaustion_degrades(self):
        faulty = _run(executor="serial", faults="exc=0.6", retries=1)
        assert faulty.failed_updates >= 1
        assert len(faulty.rounds) == 4  # the run completed anyway
        kinds = {f.kind for f in faulty.faults}
        assert "task_error" in kinds

    def test_failure_without_policy_propagates(self, monkeypatch):
        """No --faults, no --retries: a real error still raises (pre-PR 8)."""
        import repro.fl.executor as executor_mod

        clients, model = _workload()
        coord = Coordinator(
            fedavg(model.clone(keep_id=True)),
            clients,
            CoordinatorConfig(
                rounds=1, clients_per_round=4, trainer=TRAINER, seed=0
            ),
        )

        def boom(*a, **k):
            raise ValueError("real bug, not injected")

        monkeypatch.setattr(executor_mod, "_train_item", boom)
        with pytest.raises(ValueError, match="real bug"):
            coord.run()


# ----------------------------------------------------------------------
# quarantine end-to-end
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_clean_run_unchanged(self):
        assert _export(_run(executor="serial", quarantine=True)) == _export(
            _run(executor="serial")
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_poison_quarantined(self, backend):
        log = _run(**backend, faults="poison=0.3", quarantine=True)
        assert log.quarantined_updates >= 1
        assert any(f.action == "quarantined" for f in log.faults)

    def test_poison_identical_across_backends(self):
        exports = {
            _export(_run(**b.values[0], faults="poison=0.3", quarantine=True))
            for b in BACKENDS
        }
        assert len(exports) == 1

    def test_async_poison_quarantined(self):
        log = _run(
            executor="serial",
            mode="async",
            buffer_k=3,
            async_concurrency=4,
            faults="poison=0.3",
            quarantine=True,
        )
        assert log.quarantined_updates >= 1
        assert any(a.quarantined for r in log.rounds for a in r.arrivals)


# ----------------------------------------------------------------------
# hang faults drive async deadline drops
# ----------------------------------------------------------------------
def test_hang_pushes_past_async_deadline():
    kw = dict(executor="serial", mode="async", buffer_k=3, async_concurrency=4)
    clean = _run(**kw)
    durations = [
        a.finish_time - a.dispatch_time for r in clean.rounds for a in r.arrivals
    ]
    deadline = max(durations) * 2  # every clean arrival fits comfortably

    def drops(log):
        return sum(1 for r in log.rounds for a in r.arrivals if a.dropped)

    assert drops(_run(**kw, deadline_s=deadline)) == 0
    assert drops(_run(**kw, deadline_s=deadline, faults="hang=0.5")) >= 1


# ----------------------------------------------------------------------
# recovery export + checkpoint codec
# ----------------------------------------------------------------------
class TestRecoveryExport:
    def test_recovery_to_dict_shape(self):
        log = _run(executor="serial", faults="crash=0.5,exc=0.3")
        rec = recovery_to_dict(log)
        assert rec["format"] == 1
        assert rec["retries"] == log.retries
        assert len(rec["faults"]) == len(log.faults)
        for entry in rec["faults"]:
            assert entry["kind"] in ("worker_crash", "shm", "task_error")
            assert entry["action"] in ("pool_rebuild", "retry", "failed")

    def test_log_codec_round_trips_fault_state(self):
        from repro.fl import log_from_state, log_state_dict

        log = _run(executor="serial", faults="exc=0.4", quarantine=True)
        clone = log_from_state(log_state_dict(log))
        assert clone.retries == log.retries
        assert clone.quarantined_updates == log.quarantined_updates
        assert clone.faults == log.faults

    def test_old_checkpoint_payloads_load(self):
        from repro.fl import log_from_state, log_state_dict

        payload = log_state_dict(_run(executor="serial"))
        for key in (
            "worker_restarts",
            "retries",
            "failed_updates",
            "quarantined_updates",
            "faults",
        ):
            payload.pop(key, None)
        clone = log_from_state(payload)
        assert clone.retries == 0 and clone.faults == []


# ----------------------------------------------------------------------
# satellite: the descriptive snapshot-chain error
# ----------------------------------------------------------------------
def test_worker_segment_error_names_chain(monkeypatch):
    monkeypatch.setitem(_WORKER, "segments", {"repro_live": object()})
    chain = ((3, "full", "repro_gone"),)
    with pytest.raises(SnapshotChainError) as exc_info:
        _worker_segment("repro_gone", chain)
    msg = str(exc_info.value)
    assert "repro_gone" in msg  # the missing segment
    assert "repro_live" in msg  # what the worker actually has
    assert "full" in msg  # the expected chain
    assert "pool rebuild" in msg or "compaction" in msg  # the explanation
