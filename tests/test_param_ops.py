"""Parameter-tree algebra, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import param_ops as P


def _tree(rng, keys=("a", "b"), shape=(3, 2)):
    return {k: rng.normal(size=shape) for k in keys}


class TestBasicOps:
    def test_copy_is_deep(self, rng):
        t = _tree(rng)
        c = P.tree_copy(t)
        c["a"][0, 0] = 99.0
        assert t["a"][0, 0] != 99.0

    def test_zeros_like(self, rng):
        z = P.tree_zeros_like(_tree(rng))
        assert all((v == 0).all() for v in z.values())

    def test_add_sub_roundtrip(self, rng):
        a, b = _tree(rng), _tree(rng)
        assert P.tree_allclose(P.tree_sub(P.tree_add(a, b), b), a)

    def test_key_mismatch_raises(self, rng):
        with pytest.raises(KeyError):
            P.tree_add(_tree(rng, keys=("a",)), _tree(rng, keys=("b",)))

    def test_scale(self, rng):
        a = _tree(rng)
        s = P.tree_scale(a, 2.0)
        assert np.allclose(s["a"], 2 * a["a"])

    def test_axpy(self, rng):
        y, x = _tree(rng), _tree(rng)
        r = P.tree_axpy(y, 3.0, x)
        assert np.allclose(r["b"], y["b"] + 3 * x["b"])

    def test_norm_matches_flat(self, rng):
        a = _tree(rng)
        flat = np.concatenate([v.ravel() for v in a.values()])
        assert abs(P.tree_norm(a) - np.linalg.norm(flat)) < 1e-12

    def test_dot(self, rng):
        a, b = _tree(rng), _tree(rng)
        expected = sum((a[k] * b[k]).sum() for k in a)
        assert abs(P.tree_dot(a, b) - expected) < 1e-12

    def test_num_params_and_nbytes(self, rng):
        a = _tree(rng, shape=(4, 5))
        assert P.tree_num_params(a) == 40
        assert P.tree_nbytes(a) == 40 * 8


class TestAverage:
    def test_plain_mean(self, rng):
        a, b = _tree(rng), _tree(rng)
        avg = P.tree_average([a, b])
        assert np.allclose(avg["a"], (a["a"] + b["a"]) / 2)

    def test_weighted(self, rng):
        a, b = _tree(rng), _tree(rng)
        avg = P.tree_average([a, b], [3.0, 1.0])
        assert np.allclose(avg["a"], 0.75 * a["a"] + 0.25 * b["a"])

    def test_weights_normalized(self, rng):
        a, b = _tree(rng), _tree(rng)
        assert P.tree_allclose(
            P.tree_average([a, b], [2, 2]), P.tree_average([a, b], [5, 5])
        )

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="zero"):
            P.tree_average([])

    def test_negative_weight_raises(self, rng):
        with pytest.raises(ValueError, match="non-negative"):
            P.tree_average([_tree(rng)], [-1.0])

    def test_zero_total_raises(self, rng):
        with pytest.raises(ValueError, match="zero"):
            P.tree_average([_tree(rng)], [0.0])

    def test_single_tree_identity(self, rng):
        a = _tree(rng)
        assert P.tree_allclose(P.tree_average([a]), a)


class TestCropEmbed:
    def test_crop(self, rng):
        src = rng.normal(size=(4, 6))
        out = P.crop_to_shape(src, (2, 3))
        assert np.allclose(out, src[:2, :3])

    def test_crop_rank_mismatch(self, rng):
        with pytest.raises(ValueError, match="rank"):
            P.crop_to_shape(rng.normal(size=(4,)), (2, 2))

    def test_crop_too_small(self, rng):
        with pytest.raises(ValueError, match="cannot crop"):
            P.crop_to_shape(rng.normal(size=(2, 2)), (3, 2))

    def test_embed(self, rng):
        small = rng.normal(size=(2, 2))
        big = rng.normal(size=(4, 4))
        out = P.embed_into(small, big)
        assert np.allclose(out[:2, :2], small)
        assert np.allclose(out[2:, :], big[2:, :])

    def test_embed_too_big(self, rng):
        with pytest.raises(ValueError, match="cannot embed"):
            P.embed_into(rng.normal(size=(5, 5)), rng.normal(size=(4, 4)))

    def test_crop_embed_roundtrip(self, rng):
        small = rng.normal(size=(2, 3))
        big = rng.normal(size=(4, 5))
        assert np.allclose(P.crop_to_shape(P.embed_into(small, big), (2, 3)), small)


@st.composite
def tree_pair(draw):
    n_keys = draw(st.integers(1, 4))
    keys = [f"k{i}" for i in range(n_keys)]
    shapes = [
        tuple(draw(st.lists(st.integers(1, 4), min_size=1, max_size=3)))
        for _ in range(n_keys)
    ]
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    a = {k: rng.normal(size=s) for k, s in zip(keys, shapes)}
    b = {k: rng.normal(size=s) for k, s in zip(keys, shapes)}
    return a, b


class TestProperties:
    @given(tree_pair())
    @settings(max_examples=30, deadline=None)
    def test_add_commutes(self, pair):
        a, b = pair
        assert P.tree_allclose(P.tree_add(a, b), P.tree_add(b, a))

    @given(tree_pair())
    @settings(max_examples=30, deadline=None)
    def test_norm_triangle_inequality(self, pair):
        a, b = pair
        assert P.tree_norm(P.tree_add(a, b)) <= P.tree_norm(a) + P.tree_norm(b) + 1e-9

    @given(tree_pair(), st.floats(-5, 5))
    @settings(max_examples=30, deadline=None)
    def test_scale_linearity_of_dot(self, pair, s):
        a, b = pair
        assert abs(P.tree_dot(P.tree_scale(a, s), b) - s * P.tree_dot(a, b)) < 1e-8

    @given(tree_pair())
    @settings(max_examples=30, deadline=None)
    def test_average_between_extremes(self, pair):
        a, b = pair
        avg = P.tree_average([a, b])
        for k in a:
            lo = np.minimum(a[k], b[k])
            hi = np.maximum(a[k], b[k])
            assert np.all(avg[k] >= lo - 1e-12)
            assert np.all(avg[k] <= hi + 1e-12)
