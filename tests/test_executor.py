"""Round-execution engine: backend determinism, RNG streams, batched eval.

The determinism contract (fl/executor.py): serial, thread, and process
backends produce bit-identical ``TrainingLog`` records for the same seed —
round losses, eval accuracies, spawn events, cost accounting, everything.
"""

import re

import numpy as np
import pytest

from repro.baselines import fedavg
from repro.core import FedTransConfig, FedTransStrategy
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import (
    EXECUTOR_BACKENDS,
    Coordinator,
    CoordinatorConfig,
    EvalTask,
    FLClient,
    LocalTrainerConfig,
    SerialExecutor,
    TrainItem,
    derive_client_rng,
    make_executor,
)
from repro.fl.strategy import Strategy
from repro.nn import mlp

BACKENDS = EXECUTOR_BACKENDS


def _dataset(num_clients=10, seed=0):
    cfg = SyntheticTaskConfig(
        num_classes=4,
        input_shape=(8,),
        latent_dim=6,
        teacher_width=12,
        class_sep=3.0,
        seed=seed,
    )
    return build_federated_dataset(cfg, num_clients, mean_samples=25, seed=seed)


def _clients(ds, capacity=1e12):
    return [
        FLClient(c.client_id, c, DeviceTrace(c.client_id, 1e9, 1e6, capacity))
        for c in ds.clients
    ]


def _coord_cfg(executor, rounds=6, **over):
    cfg = dict(
        rounds=rounds,
        clients_per_round=5,
        trainer=LocalTrainerConfig(batch_size=8, local_steps=5, lr=0.2),
        eval_every=3,
        seed=0,
        executor=executor,
        max_workers=2,
    )
    cfg.update(over)
    return CoordinatorConfig(**cfg)


def _run_fedavg(executor, rounds=6):
    ds = _dataset(num_clients=12)
    clients = _clients(ds)
    model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(0), width=16)
    coord = Coordinator(fedavg(model), clients, _coord_cfg(executor, rounds))
    return coord.run()


def _run_fedtrans(executor, rounds=12):
    ds = _dataset(num_clients=10)
    rng = np.random.default_rng(0)
    init = mlp(ds.input_shape, ds.num_classes, rng, width=8)
    clients = _clients(ds, capacity=init.macs() * 16)
    strategy = FedTransStrategy(
        init,
        FedTransConfig(gamma=2, delta=2, beta=0.5, max_models=3),
        max_capacity_macs=init.macs() * 16,
    )
    coord = Coordinator(strategy, clients, _coord_cfg(executor, rounds))
    return coord.run()


def _id_map(log):
    """Model ids come from a process-global counter, so two runs of the same
    workload mint different ids; map each to its first-appearance index."""
    mapping: dict[str, str] = {}

    def norm(mid):
        if mid not in mapping:
            mapping[mid] = f"M{len(mapping)}"
        return mapping[mid]

    for r in log.rounds:
        for mids in r.assignments.values():
            for mid in mids:
                norm(mid)
    for e in log.evals:
        for mid in e.client_model:
            norm(mid)
    return mapping


def _assert_logs_identical(a, b):
    ma, mb = _id_map(a), _id_map(b)

    def norm_events(events, mapping):
        # Cell ids (c0013, ...) are also process-global; canonicalize every
        # id token by first appearance, seeding with the model-id mapping.
        table = dict(mapping)

        def sub(match):
            tok = match.group(0)
            if tok not in table:
                table[tok] = f"ID{len(table)}"
            return table[tok]

        return [re.sub(r"\b[mc]\d{3,}\b", sub, ev) for ev in events]

    assert len(a.rounds) == len(b.rounds)
    for ra, rb in zip(a.rounds, b.rounds):
        assert ra.participants == rb.participants
        assert {c: [ma[m] for m in mids] for c, mids in ra.assignments.items()} == {
            c: [mb[m] for m in mids] for c, mids in rb.assignments.items()
        }
        assert ra.mean_loss == rb.mean_loss  # bit-identical, no tolerance
        assert ra.round_time == rb.round_time
        assert norm_events(ra.events, ma) == norm_events(rb.events, mb)
    assert len(a.evals) == len(b.evals)
    for ea, eb in zip(a.evals, b.evals):
        assert (ea.client_accuracy == eb.client_accuracy).all()
        assert [ma[m] for m in ea.client_model] == [mb[m] for m in eb.client_model]
        assert ea.mean_accuracy == eb.mean_accuracy
    assert a.total_macs == b.total_macs
    assert a.total_bytes_down == b.total_bytes_down
    assert a.stop_reason == b.stop_reason


class TestBackendDeterminism:
    @pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "serial"])
    def test_fedavg_bit_identical_to_serial(self, backend):
        _assert_logs_identical(_run_fedavg("serial"), _run_fedavg(backend))

    @pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "serial"])
    def test_fedtrans_bit_identical_to_serial(self, backend):
        """Spawn events, multi-model assignment, and utilities all match."""
        _assert_logs_identical(_run_fedtrans("serial"), _run_fedtrans(backend))

    def test_fedtrans_spawns_models(self):
        """The determinism workload actually exercises transformations."""
        log = _run_fedtrans("serial")
        assert any("spawned" in e for r in log.rounds for e in r.events)

    def test_unknown_backend_rejected(self):
        ds = _dataset()
        with pytest.raises(ValueError, match="unknown executor backend"):
            make_executor("gpu", _clients(ds), LocalTrainerConfig(), 0)


class TestRngStreams:
    def test_distinct_pairs_distinct_streams(self):
        """Regression: the old hash ``round*1009 + client*31`` collided for
        e.g. (round=31, client=0) vs (round=0, client=1009) — SeedSequence
        spawn keys must give every (round, client, sub) its own stream."""
        colliding = [(31, 0, 0), (0, 1009, 0), (0, 0, 0), (1, 31, 0), (31, 1, 0)]
        draws = {key: derive_client_rng(0, *key).integers(0, 2**63, 8).tobytes()
                 for key in colliding}
        assert len(set(draws.values())) == len(colliding)

    def test_sub_idx_separates_streams(self):
        a = derive_client_rng(0, 3, 7, 0).integers(0, 2**63, 8)
        b = derive_client_rng(0, 3, 7, 1).integers(0, 2**63, 8)
        assert not (a == b).all()

    def test_same_key_same_stream(self):
        a = derive_client_rng(5, 2, 9, 0).integers(0, 2**63, 8)
        b = derive_client_rng(5, 2, 9, 0).integers(0, 2**63, 8)
        assert (a == b).all()

    def test_seed_separates_streams(self):
        a = derive_client_rng(0, 2, 9, 0).integers(0, 2**63, 8)
        b = derive_client_rng(1, 2, 9, 0).integers(0, 2**63, 8)
        assert not (a == b).all()


class TestBatchedEvaluation:
    def test_batched_matches_per_client(self, rng):
        """The grouped forward pass equals the per-client logits path."""
        ds = _dataset(num_clients=8)
        clients = _clients(ds)
        strategy = fedavg(mlp(ds.input_shape, ds.num_classes, rng, width=16))
        coord = Coordinator(strategy, clients, _coord_cfg("serial", rounds=2))
        ev = coord.evaluate(0, 0.0)
        for i, client in enumerate(clients):
            logits = strategy.client_logits(client, client.data.x_test)
            expect = float((logits.argmax(axis=-1) == client.data.y_test).mean())
            assert ev.client_accuracy[i] == pytest.approx(expect)
        coord.close()

    def test_empty_test_set_scores_zero_not_nan(self, rng):
        """A client with no test data must not poison mean_accuracy (nan
        would also disable the convergence stop rule forever)."""
        ds = _dataset(num_clients=4)
        clients = _clients(ds)
        clients[1].data.x_test = clients[1].data.x_test[:0]
        clients[1].data.y_test = clients[1].data.y_test[:0]
        strategy = fedavg(mlp(ds.input_shape, ds.num_classes, rng, width=8))
        coord = Coordinator(strategy, clients, _coord_cfg("serial", rounds=2))
        ev = coord.evaluate(0, 0.0)
        assert ev.client_accuracy[1] == 0.0
        assert np.isfinite(ev.mean_accuracy)
        coord.close()

    def test_batched_matches_per_client_for_ensembles(self, rng):
        """Pins the two ensemble-averaging implementations to each other:
        _eval_task's batched sum/len must agree with the per-client
        Strategy.client_logits np.mean path for a multi-model deployment
        (SplitMix)."""
        from repro.baselines import SplitMixStrategy

        ds = _dataset(num_clients=8)
        big = mlp(ds.input_shape, ds.num_classes, rng, width=16)
        # Mixed capacities => ensembles of different sizes across clients.
        clients = [
            FLClient(
                c.client_id,
                c,
                DeviceTrace(c.client_id, 1e9, 1e6, big.macs() * (0.3 + 0.2 * c.client_id)),
            )
            for c in ds.clients
        ]
        strategy = SplitMixStrategy(big, k=4, seed=0)
        assert len({strategy.budget_count(c) for c in clients}) > 1
        coord = Coordinator(strategy, clients, _coord_cfg("serial", rounds=2))
        ev = coord.evaluate(0, 0.0)
        for i, client in enumerate(clients):
            logits = strategy.client_logits(client, client.data.x_test)
            expect = float((logits.argmax(axis=-1) == client.data.y_test).mean())
            assert ev.client_accuracy[i] == pytest.approx(expect)
        coord.close()

    def test_mixed_empty_and_nonempty_group(self, rng):
        """A test-less client *inside* a non-empty group scores 0.0 and the
        other members are unaffected (regression: only the all-empty case
        was guarded, so a zero-length slice hit accuracy() and returned
        NaN, poisoning the group's mean)."""
        ds = _dataset(num_clients=4)
        clients = _clients(ds)
        model = mlp(ds.input_shape, ds.num_classes, rng, width=8)
        ex = SerialExecutor(clients, LocalTrainerConfig(), seed=0)
        mid = model.model_id
        solo = ex.eval_round(
            [EvalTask((mid,), (0,)), EvalTask((mid,), (2,)), EvalTask((mid,), (3,))],
            {mid: model},
            16,
        )
        clients[1].data.x_test = clients[1].data.x_test[:0]
        clients[1].data.y_test = clients[1].data.y_test[:0]
        ex = SerialExecutor(clients, LocalTrainerConfig(), seed=0)
        (mixed,) = ex.eval_round([EvalTask((mid,), (0, 1, 2, 3))], {mid: model}, 16)
        assert np.isfinite(mixed).all()
        assert mixed[1] == 0.0
        assert mixed[0] == solo[0][0]
        assert mixed[2] == solo[1][0]
        assert mixed[3] == solo[2][0]

    def test_all_empty_group_scores_zero(self, rng):
        """A singleton/all-empty deployment group (routine under FedTrans,
        where groups are often per-client) must not crash predict()."""
        ds = _dataset(num_clients=2)
        clients = _clients(ds)
        for c in clients:
            c.data.x_test = c.data.x_test[:0]
            c.data.y_test = c.data.y_test[:0]
        model = mlp(ds.input_shape, ds.num_classes, rng, width=8)
        ex = SerialExecutor(clients, LocalTrainerConfig(), seed=0)
        out = ex.eval_round(
            [EvalTask((model.model_id,), (0, 1))], {model.model_id: model}, 16
        )
        assert (out[0] == 0.0).all()

    def test_eval_model_resolved_once(self, rng):
        """The recorded client_model is the model that produced the logits,
        even when eval_model_for is stateful (regression for the double
        re-rank in the old evaluate path)."""
        ds = _dataset(num_clients=4)
        clients = _clients(ds)
        base = fedavg(mlp(ds.input_shape, ds.num_classes, rng, width=8))

        calls = {"n": 0}

        class CountingStrategy(type(base)):
            def eval_model_for(self, client):
                calls["n"] += 1
                return super().eval_model_for(client)

        base.__class__ = CountingStrategy
        coord = Coordinator(base, clients, _coord_cfg("serial", rounds=2))
        ev = coord.evaluate(0, 0.0)
        assert calls["n"] == len(clients)  # exactly once per client
        assert ev.client_model == [base.model.model_id] * len(clients)
        coord.close()

    def test_legacy_two_arg_client_logits_still_works(self, rng):
        """Overrides written against the pre-executor 2-arg hook signature
        (no model_id parameter) must not crash evaluate()."""
        ds = _dataset(num_clients=4)
        clients = _clients(ds)
        inner = fedavg(mlp(ds.input_shape, ds.num_classes, rng, width=8))

        class LegacyLogits(type(inner)):
            def client_logits(self, client, x):  # old signature
                return self.models()[self.eval_model_for(client)].predict(x)

        inner.__class__ = LegacyLogits
        coord = Coordinator(inner, clients, _coord_cfg("serial", rounds=2))
        ev = coord.evaluate(0, 0.0)
        assert ev.client_accuracy.shape == (len(clients),)
        assert all(0.0 <= a <= 1.0 for a in ev.client_accuracy)
        coord.close()

    def test_custom_client_logits_still_honored(self, rng):
        """A strategy overriding client_logits keeps its bespoke path."""
        ds = _dataset(num_clients=4)
        clients = _clients(ds)
        inner = fedavg(mlp(ds.input_shape, ds.num_classes, rng, width=8))

        class ConstantLogits(type(inner)):
            def client_logits(self, client, x, model_id=None):
                out = np.zeros((len(x), 4))
                out[:, 1] = 1.0  # always predict class 1
                return out

        inner.__class__ = ConstantLogits
        coord = Coordinator(inner, clients, _coord_cfg("serial", rounds=2))
        ev = coord.evaluate(0, 0.0)
        for i, c in enumerate(clients):
            assert ev.client_accuracy[i] == pytest.approx(
                float((c.data.y_test == 1).mean())
            )
        coord.close()


class TestExecutorUnits:
    def test_serial_train_round_matches_manual(self, rng):
        ds = _dataset(num_clients=3)
        clients = _clients(ds)
        model = mlp(ds.input_shape, ds.num_classes, rng, width=8)
        trainer_cfg = LocalTrainerConfig(batch_size=4, local_steps=3, lr=0.1)
        ex = SerialExecutor(clients, trainer_cfg, seed=0)
        items = [TrainItem(model.model_id, c.client_id, 0) for c in clients]
        before = model.get_params()
        updates = ex.train_round(1, items, {model.model_id: model})
        assert [u.client_id for u in updates] == [c.client_id for c in clients]
        assert all(u.model_id == model.model_id for u in updates)
        # the server model is untouched — training runs on clones
        after = model.params()
        assert all(np.array_equal(before[k], after[k]) for k in before)

    def test_eval_round_order_and_shapes(self, rng):
        ds = _dataset(num_clients=4)
        clients = _clients(ds)
        model = mlp(ds.input_shape, ds.num_classes, rng, width=8)
        ex = SerialExecutor(clients, LocalTrainerConfig(), seed=0)
        tasks = [
            EvalTask((model.model_id,), (0, 1)),
            EvalTask((model.model_id,), (2, 3)),
        ]
        out = ex.eval_round(tasks, {model.model_id: model}, batch_size=16)
        assert len(out) == 2
        assert out[0].shape == (2,) and out[1].shape == (2,)
        assert all(0.0 <= a <= 1.0 for accs in out for a in accs)

    def test_process_snapshot_reused_while_versions_unchanged(self, rng):
        """Snapshot reuse is keyed on model *versions*, not dict identity:
        any publish where no model's version moved — including one with a
        freshly built dict — reuses the current snapshot; a mutation (which
        bumps the version) triggers a republish, and that republish is a
        delta, not a full suite."""
        ds = _dataset(num_clients=3)
        clients = _clients(ds)
        model = mlp(ds.input_shape, ds.num_classes, rng, width=8)
        idle = mlp(ds.input_shape, ds.num_classes, rng, width=8)
        trainer_cfg = LocalTrainerConfig(batch_size=4, local_steps=2, lr=0.1)
        ex = make_executor("process", clients, trainer_cfg, seed=0, max_workers=2)
        try:
            models = {model.model_id: model, idle.model_id: idle}
            ex.train_round(0, [TrainItem(model.model_id, 0, 0)], models)
            v1 = ex._version
            assert ex.full_publish_count == 1  # first publish ships the suite
            reused = ex.train_round(1, [TrainItem(model.model_id, 1, 0)], models)
            assert ex._version == v1  # same object, same versions => reused
            ex.train_round(2, [TrainItem(model.model_id, 2, 0)], dict(models))
            assert ex._version == v1  # fresh dict, same versions => reused
            assert ex.reused_publish_count == 2
            ref_ex = SerialExecutor(clients, trainer_cfg, seed=0)
            ref = ref_ex.train_round(1, [TrainItem(model.model_id, 1, 0)], models)
            assert reused[0].train_loss == ref[0].train_loss
            model.set_params({k: v + 0.5 for k, v in model.get_params().items()})
            changed = ex.train_round(3, [TrainItem(model.model_id, 0, 0)], dict(models))
            assert ex._version == v1 + 1  # version moved => republished
            assert ex.delta_publish_count == 1  # ...as a delta, not a full
            ref3 = ref_ex.train_round(3, [TrainItem(model.model_id, 0, 0)], models)
            assert changed[0].train_loss == ref3[0].train_loss
        finally:
            ex.close()

    def test_process_pool_survives_item_failure(self, rng):
        """When one work item raises, the executor must drain the rest
        before surfacing the error — otherwise the next round's _publish
        deletes the snapshot file still-running workers are reading.  The
        observable contract: the failure propagates, and the *same*
        executor then completes a follow-up round correctly."""
        ds = _dataset(num_clients=4)
        clients = _clients(ds)
        # Client 2 has no training data => its work item raises in-worker.
        clients[2].data.x_train = clients[2].data.x_train[:0]
        clients[2].data.y_train = clients[2].data.y_train[:0]
        model = mlp(ds.input_shape, ds.num_classes, rng, width=8)
        trainer_cfg = LocalTrainerConfig(batch_size=4, local_steps=3, lr=0.1)
        ex = make_executor("process", clients, trainer_cfg, seed=0, max_workers=2)
        try:
            items = [TrainItem(model.model_id, c.client_id, 0) for c in clients]
            with pytest.raises(ValueError, match="no training data"):
                ex.train_round(0, items, {model.model_id: model})
            good = [TrainItem(model.model_id, c.client_id, 0) for c in clients if c.client_id != 2]
            updates = ex.train_round(1, good, {model.model_id: model})
            assert [u.client_id for u in updates] == [0, 1, 3]
            # and matches a fresh serial run (snapshot was never corrupted)
            ref = SerialExecutor(clients, trainer_cfg, seed=0).train_round(
                1, good, {model.model_id: model}
            )
            assert all(u.train_loss == r.train_loss for u, r in zip(updates, ref))
        finally:
            ex.close()

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_close_then_reuse_recreates_pool(self, backend, rng):
        ds = _dataset(num_clients=3)
        clients = _clients(ds)
        model = mlp(ds.input_shape, ds.num_classes, rng, width=8)
        trainer_cfg = LocalTrainerConfig(batch_size=4, local_steps=2, lr=0.1)
        ex = make_executor(backend, clients, trainer_cfg, seed=0, max_workers=2)
        items = [TrainItem(model.model_id, 0, 0)]
        first = ex.train_round(0, items, {model.model_id: model})
        ex.close()
        second = ex.train_round(0, items, {model.model_id: model})
        assert first[0].train_loss == second[0].train_loss
        ex.close()
