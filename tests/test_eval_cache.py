"""Version-tracked model suite: eval cache, cost memoization, delta snapshots.

Three contracts under test:

* **Version counter** — every mutation path of a :class:`CellModel`
  (``set_params``/``set_state``, optimizer steps, transformations,
  subnet narrowing, re-initialization) bumps the monotone ``version``,
  and ``clone(keep_id=True)`` carries it.
* **Incremental evaluation cache** — bit-identical logs cache-on vs
  cache-off across all executor backends in both round modes; unchanged
  deployment groups are served from cache (metered on ``EvalRecord``);
  partially changed ensembles recompute only their changed members.
* **Delta snapshot publishing** — the process backend ships only
  version-changed models per publish, workers replay the delta chain, and
  a full snapshot re-compacts the chain periodically.
"""

import numpy as np
import pytest

from repro.baselines import SplitMixStrategy, fedavg
from repro.baselines.subnet import SubnetSpec, build_subnet, ratio_spec
from repro.core import FedTransConfig, FedTransStrategy
from repro.core.transform import reinitialize
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import (
    EXECUTOR_BACKENDS,
    Coordinator,
    CoordinatorConfig,
    FLClient,
    LocalTrainer,
    LocalTrainerConfig,
    TrainItem,
    make_executor,
)
from repro.fl.executor import FULL_SNAPSHOT_EVERY
from repro.nn import mlp

from test_executor import _assert_logs_identical


def _dataset(num_clients=10, seed=0):
    cfg = SyntheticTaskConfig(
        num_classes=4,
        input_shape=(8,),
        latent_dim=6,
        teacher_width=12,
        class_sep=3.0,
        seed=seed,
    )
    return build_federated_dataset(cfg, num_clients, mean_samples=25, seed=seed)


def _clients(ds, capacity=1e12):
    return [
        FLClient(c.client_id, c, DeviceTrace(c.client_id, 1e9, 1e6, capacity))
        for c in ds.clients
    ]


def _coord_cfg(rounds=6, **over):
    cfg = dict(
        rounds=rounds,
        clients_per_round=5,
        trainer=LocalTrainerConfig(batch_size=8, local_steps=5, lr=0.2),
        eval_every=3,
        seed=0,
        max_workers=2,
    )
    cfg.update(over)
    return CoordinatorConfig(**cfg)


def _perturbed(model):
    return {k: v + 0.25 for k, v in model.get_params().items()}


# ----------------------------------------------------------------------
# version counter
# ----------------------------------------------------------------------
class TestVersionCounter:
    def test_set_params_and_state_bump(self, rng):
        m = mlp((8,), 4, rng, width=8)
        v0 = m.version
        m.set_params(_perturbed(m))
        assert m.version == v0 + 1
        m.set_state(m.get_state())
        assert m.version == v0 + 2

    def test_transformations_bump(self, rng):
        m = mlp((8,), 4, rng, width=8)
        cell = m.transformable_cells()[0]
        v0 = m.version
        m.widen_cell(cell.cell_id, 1.5, rng)
        assert m.version > v0
        v1 = m.version
        m.deepen_after(cell.cell_id, rng)
        assert m.version > v1

    def test_optimizer_steps_bump_trained_replica(self, rng):
        ds = _dataset(num_clients=2)
        clients = _clients(ds)
        server = mlp(ds.input_shape, ds.num_classes, rng, width=8)
        work = server.clone(keep_id=True)
        assert work.version == server.version  # replica carries the version
        trainer = LocalTrainer(LocalTrainerConfig(batch_size=4, local_steps=3, lr=0.1))
        trainer.train(work, clients[0], np.random.default_rng(0))
        assert work.version > server.version  # one bump per optimizer step
        assert server.version == 0  # the server model itself is untouched

    def test_fresh_clone_starts_new_history(self, rng):
        m = mlp((8,), 4, rng, width=8)
        m.set_params(_perturbed(m))
        assert m.clone(keep_id=True).version == m.version
        assert m.clone().version == 0

    def test_reinitialize_bumps(self, rng):
        m = mlp((8,), 4, rng, width=8)
        v0 = m.version
        reinitialize(m, rng)
        assert m.version > v0

    def test_subnet_carries_global_version(self, rng):
        """A rebuilt subnet under a stable id must track the *global*
        model's version (regression: fresh clones restarted at a constant,
        so HeteroFL/FLuID rebuilds after aggregation looked unchanged to
        the eval cache and the snapshot publisher — frozen accuracies and
        workers training on round-1 weights)."""
        g = mlp((8,), 4, rng, width=8)
        spec = ratio_spec(g, 0.5)
        v0 = build_subnet(g, spec).version
        assert build_subnet(g, SubnetSpec()).version == g.version  # full ratio too
        g.set_params(_perturbed(g))
        assert build_subnet(g, spec).version != v0
        assert build_subnet(g, spec).version == g.version

    def test_subnet_narrowing_yields_fresh_costs(self, rng):
        """build_subnet narrows cells in place after the constructor cached
        costs — the bump must invalidate them (regression: the first
        memoization draft reported the *global* model's macs for every
        subnet, collapsing HeteroFL's nested complexity ladder)."""
        g = mlp((8,), 4, rng, width=8)
        quarter = build_subnet(g, ratio_spec(g, 0.25))
        half = build_subnet(g, ratio_spec(g, 0.5))
        assert quarter.macs() < half.macs() < g.macs()
        assert quarter.num_params() < half.num_params() < g.num_params()


class TestCostMemoization:
    def test_values_track_structure(self, rng):
        m = mlp((8,), 4, rng, width=8)
        macs0, params0, bytes0 = m.macs(), m.num_params(), m.nbytes()
        m.widen_cell(m.transformable_cells()[0].cell_id, 2.0, rng)
        assert m.macs() > macs0
        assert m.num_params() > params0
        assert m.nbytes() > bytes0
        # the memoized values match an explicit recount of the live tensors
        assert m.num_params() == sum(v.size for v in m.params().values())
        assert m.nbytes() == sum(v.nbytes for v in m.params().values())

    def test_repeated_calls_do_not_rewalk(self, rng, monkeypatch):
        m = mlp((8,), 4, rng, width=8)
        m.macs()  # warm
        calls = {"n": 0}
        orig = type(m.cells[0]).macs

        def counting(self, shape):
            calls["n"] += 1
            return orig(self, shape)

        for cell in m.cells:
            monkeypatch.setattr(type(cell), "macs", counting, raising=True)
        for _ in range(5):
            m.macs()
            m.num_params()
            m.nbytes()
        assert calls["n"] == 0  # all served from the version-keyed cache
        m.set_params(_perturbed(m))  # bump => one recompute on next access
        m.macs()
        assert calls["n"] == len(m.cells)


# ----------------------------------------------------------------------
# cache-on vs cache-off determinism
# ----------------------------------------------------------------------
def _run_fedavg(backend, mode, eval_cache, rounds=6):
    ds = _dataset(num_clients=12)
    clients = _clients(ds)
    model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(0), width=16)
    over = {"mode": mode, "buffer_k": 3} if mode == "async" else {}
    cfg = _coord_cfg(rounds, executor=backend, eval_cache=eval_cache, **over)
    return Coordinator(fedavg(model), clients, cfg).run()


def _run_fedtrans(eval_cache, rounds=12):
    ds = _dataset(num_clients=10)
    rng = np.random.default_rng(0)
    init = mlp(ds.input_shape, ds.num_classes, rng, width=8)
    clients = _clients(ds, capacity=init.macs() * 16)
    strategy = FedTransStrategy(
        init,
        FedTransConfig(gamma=2, delta=2, beta=0.5, max_models=3),
        max_capacity_macs=init.macs() * 16,
    )
    return Coordinator(strategy, clients, _coord_cfg(rounds, eval_cache=eval_cache)).run()


def _run_subnet_method(method, backend, eval_cache, rounds=6):
    from repro.baselines import FLuIDStrategy, HeteroFLStrategy

    ds = _dataset(num_clients=10)
    big = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(0), width=16)
    # Mixed capacities => several ratios of the ladder actually deployed.
    clients = [
        FLClient(
            c.client_id,
            c,
            DeviceTrace(c.client_id, 1e9, 1e6, big.macs() * (0.2 + 0.15 * c.client_id)),
        )
        for c in ds.clients
    ]
    cls = HeteroFLStrategy if method == "heterofl" else FLuIDStrategy
    strategy = cls(big.clone())
    cfg = _coord_cfg(rounds, executor=backend, eval_cache=eval_cache)
    return Coordinator(strategy, clients, cfg).run()


def _splitmix_coord(eval_cache=True, num_clients=8, seed=0):
    ds = _dataset(num_clients=num_clients)
    rng = np.random.default_rng(seed)
    big = mlp(ds.input_shape, ds.num_classes, rng, width=16)
    clients = [
        FLClient(
            c.client_id,
            c,
            DeviceTrace(c.client_id, 1e9, 1e6, big.macs() * (0.3 + 0.2 * c.client_id)),
        )
        for c in ds.clients
    ]
    strategy = SplitMixStrategy(big, k=4, seed=seed)
    assert len({strategy.budget_count(c) for c in clients}) > 1  # nested ensembles
    coord = Coordinator(strategy, clients, _coord_cfg(rounds=2, eval_cache=eval_cache))
    return coord, strategy, clients


class TestCacheDeterminism:
    @pytest.mark.parametrize("mode", ["sync", "async"])
    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_bit_identical_on_vs_off(self, backend, mode):
        """The headline contract: enabling the cache changes nothing
        observable but the meters, on every backend in both round modes."""
        on = _run_fedavg(backend, mode, eval_cache=True)
        off = _run_fedavg(backend, mode, eval_cache=False)
        _assert_logs_identical(on, off)
        assert all(e.cached_clients == 0 for e in off.evals)

    def test_fedtrans_transforming_suite_bit_identical(self):
        """Model spawns mid-run (new ids, fresh versions) don't perturb the
        cached path."""
        _assert_logs_identical(_run_fedtrans(True), _run_fedtrans(False))

    @pytest.mark.parametrize("method", ["heterofl", "fluid"])
    def test_rebuilt_submodel_suites_bit_identical(self, method):
        """HeteroFL/FLuID re-derive their whole suite under stable ids
        after every aggregation (regression: constant rebuild versions froze
        the eval cache at the first sweep and let the process backend reuse
        stale snapshots)."""
        serial_on = _run_subnet_method(method, "serial", eval_cache=True)
        serial_off = _run_subnet_method(method, "serial", eval_cache=False)
        _assert_logs_identical(serial_on, serial_off)
        # Accuracies must actually move across sweeps (the frozen-cache bug
        # made every post-first sweep a stale hit).
        assert len({e.mean_accuracy for e in serial_on.evals}) > 1
        process_on = _run_subnet_method(method, "process", eval_cache=True)
        _assert_logs_identical(serial_on, process_on)

    def test_splitmix_nested_ensembles_bit_identical(self):
        coord_on, strat_on, clients = _splitmix_coord(eval_cache=True)
        coord_off, strat_off, _ = _splitmix_coord(eval_cache=False)
        ev_on = coord_on.evaluate(0, 0.0)
        ev_off = coord_off.evaluate(0, 0.0)
        assert (ev_on.client_accuracy == ev_off.client_accuracy).all()
        # ...and both match the per-client reference path
        for i, client in enumerate(clients):
            logits = strat_on.client_logits(client, client.data.x_test)
            expect = float((logits.argmax(axis=-1) == client.data.y_test).mean())
            assert ev_on.client_accuracy[i] == pytest.approx(expect)
        coord_on.close()
        coord_off.close()


# ----------------------------------------------------------------------
# cache behavior: hits, invalidation, partial-ensemble reuse
# ----------------------------------------------------------------------
class _CountingExecutor:
    """Wraps an executor, counting the logits tasks that actually run."""

    def __init__(self, inner):
        self._inner = inner
        self.logits_tasks = []

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def logits_round(self, tasks, models, batch_size):
        self.logits_tasks.extend(tasks)
        return self._inner.logits_round(tasks, models, batch_size)

    def eval_and_logits_round(self, eval_tasks, logits_tasks, models, batch_size):
        self.logits_tasks.extend(logits_tasks)
        return self._inner.eval_and_logits_round(
            eval_tasks, logits_tasks, models, batch_size
        )


class TestCacheBehavior:
    def test_idle_suite_fully_cached_on_repeat(self, rng):
        ds = _dataset(num_clients=9)
        clients = _clients(ds)
        strategy = fedavg(mlp(ds.input_shape, ds.num_classes, rng, width=8))
        coord = Coordinator(strategy, clients, _coord_cfg(rounds=2))
        first = coord.evaluate(0, 0.0)
        again = coord.evaluate(1, 0.0)
        assert first.cached_clients == 0
        assert first.evaluated_clients == len(clients)
        assert again.cached_clients == len(clients)
        assert again.evaluated_clients == 0
        assert (first.client_accuracy == again.client_accuracy).all()
        coord.close()

    def test_mutation_invalidates(self, rng):
        ds = _dataset(num_clients=6)
        clients = _clients(ds)
        strategy = fedavg(mlp(ds.input_shape, ds.num_classes, rng, width=8))
        coord = Coordinator(strategy, clients, _coord_cfg(rounds=2))
        coord.evaluate(0, 0.0)
        strategy.model.set_params(_perturbed(strategy.model))
        ev = coord.evaluate(1, 0.0)
        assert ev.cached_clients == 0  # version moved: every group recomputed
        # and the recomputation is real: fresh weights, fresh accuracies
        ref = Coordinator(
            fedavg(strategy.model.clone(keep_id=True)), clients, _coord_cfg(rounds=2)
        )
        ev_ref = ref.evaluate(0, 0.0)
        assert (ev.client_accuracy == ev_ref.client_accuracy).all()
        ref.close()
        coord.close()

    def test_partial_ensemble_recomputes_only_changed_member(self):
        """SplitMix nested deployments: mutating the *last* base model keeps
        every smaller ensemble's accuracies cached, and the full ensemble
        reuses its unchanged members' logits — exactly one logits task (the
        changed model over the one group that deploys it) is dispatched."""
        coord, strategy, clients = _splitmix_coord(eval_cache=True)
        counting = _CountingExecutor(coord.executor)
        coord.executor = counting
        coord.evaluate(0, 0.0)
        first_tasks = len(counting.logits_tasks)
        assert first_tasks > 0
        # A fully idle sweep in between: everything hits the accuracy
        # cache, and — regression — the hit groups' member logits must
        # stay warm rather than being evicted with the sweep.
        idle = coord.evaluate(1, 0.0)
        assert idle.cached_clients == len(clients)
        top = strategy._base_ids[-1]
        deployed_top = [
            c for c in clients if top in strategy.eval_ensemble(c, strategy.eval_model_for(c))
        ]
        assert deployed_top  # the workload exercises the full ensemble
        counting.logits_tasks.clear()
        strategy._models[top].set_params(_perturbed(strategy._models[top]))
        ev = coord.evaluate(2, 0.0)
        assert [t.model_ids for t in counting.logits_tasks] == [(top,)]
        assert ev.cached_clients == len(clients) - len(deployed_top)
        assert ev.evaluated_clients == len(deployed_top)
        coord.close()

    def test_bespoke_client_logits_counts_as_evaluated(self, rng):
        ds = _dataset(num_clients=4)
        clients = _clients(ds)
        inner = fedavg(mlp(ds.input_shape, ds.num_classes, rng, width=8))

        class Bespoke(type(inner)):
            def client_logits(self, client, x, model_id=None):
                return super().client_logits(client, x, model_id)

        inner.__class__ = Bespoke
        coord = Coordinator(inner, clients, _coord_cfg(rounds=2))
        ev = coord.evaluate(0, 0.0)
        assert ev.cached_clients == 0
        assert ev.evaluated_clients == len(clients)
        coord.close()

    def test_cache_eviction_bounds_memory(self, rng):
        """Entries untouched by the latest sweep are dropped: steady-state
        cache size is one sweep's working set, not run history."""
        ds = _dataset(num_clients=6)
        clients = _clients(ds)
        strategy = fedavg(mlp(ds.input_shape, ds.num_classes, rng, width=8))
        coord = Coordinator(strategy, clients, _coord_cfg(rounds=2))
        coord.evaluate(0, 0.0)
        size = len(coord._eval_acc_cache)
        for _ in range(4):
            strategy.model.set_params(_perturbed(strategy.model))
            coord.evaluate(1, 0.0)
            assert len(coord._eval_acc_cache) == size
        coord.close()


# ----------------------------------------------------------------------
# config + CLI knob
# ----------------------------------------------------------------------
class TestConfigValidation:
    def test_eval_cache_must_be_bool(self):
        with pytest.raises(ValueError, match="eval_cache"):
            CoordinatorConfig(eval_cache="yes")

    def test_eval_group_clients_validated(self):
        with pytest.raises(ValueError, match="eval_group_clients"):
            CoordinatorConfig(eval_group_clients=0)

    def test_eval_batch_size_validated(self):
        with pytest.raises(ValueError, match="eval_batch_size"):
            CoordinatorConfig(eval_batch_size=0)

    def test_cli_flag_maps_to_override(self):
        from repro.cli import _coordinator_overrides

        class Args:
            executor = "serial"
            workers = None
            mode = "sync"
            buffer_k = None
            deadline = None
            staleness_discount = None
            eval_cache = False
            sanitize = False
            selector = "uniform"
            availability_trace = None
            evict_after = None
            pacing = "static"
            straggler = "drop"
            dtype = None
            faults = None
            retries = None
            quarantine = False
            quarantine_norm_mult = None
            compress = None
            wire_time = False
            checkpoint_dir = None
            checkpoint_every = None
            resume = False

        assert _coordinator_overrides(Args()) == {"eval_cache": False}
        Args.eval_cache = True
        assert _coordinator_overrides(Args()) == {}
        Args.dtype = "float32"
        assert _coordinator_overrides(Args()) == {"compute_dtype": "float32"}
        Args.dtype = None
        Args.sanitize = True
        assert _coordinator_overrides(Args()) == {"sanitize": True}
        Args.eval_cache = False
        with pytest.raises(SystemExit, match="eval cache"):
            _coordinator_overrides(Args())
        Args.eval_cache = True
        Args.sanitize = False


# ----------------------------------------------------------------------
# delta snapshot publishing (process backend)
# ----------------------------------------------------------------------
class TestDeltaSnapshots:
    def _setup(self, rng, num_models=3, num_clients=4):
        ds = _dataset(num_clients=num_clients)
        clients = _clients(ds)
        models = {}
        for _ in range(num_models):
            m = mlp(ds.input_shape, ds.num_classes, rng, width=8)
            models[m.model_id] = m
        trainer_cfg = LocalTrainerConfig(batch_size=4, local_steps=2, lr=0.1)
        ex = make_executor("process", clients, trainer_cfg, seed=0, max_workers=2)
        return clients, models, ex

    def test_delta_ships_fewer_bytes_than_full(self, rng):
        clients, models, ex = self._setup(rng)
        some_id = next(iter(models))
        try:
            ex.train_round(0, [TrainItem(some_id, 0, 0)], dict(models))
            full_bytes = ex.last_publish_bytes
            assert ex.full_publish_count == 1
            models[some_id].set_params(_perturbed(models[some_id]))
            ex.train_round(1, [TrainItem(some_id, 0, 0)], dict(models))
            assert ex.delta_publish_count == 1
            assert ex.last_publish_bytes < full_bytes  # strictly fewer bytes
        finally:
            ex.close()

    def test_worker_replays_delta_chain_correctly(self, rng):
        """Several mutate-then-train cycles: the process results must match
        a serial executor fed the same live models at every step."""
        clients, models, ex = self._setup(rng)
        ids = sorted(models)
        serial = make_executor(
            "serial", clients, LocalTrainerConfig(batch_size=4, local_steps=2, lr=0.1), seed=0
        )
        try:
            for step in range(5):
                changed = ids[step % len(ids)]
                models[changed].set_params(_perturbed(models[changed]))
                items = [TrainItem(changed, c.client_id, 0) for c in clients]
                got = ex.train_round(step, items, dict(models))
                want = serial.train_round(step, items, models)
                assert [u.train_loss for u in got] == [u.train_loss for u in want]
            assert ex.delta_publish_count >= 4
        finally:
            ex.close()

    def test_new_model_ships_in_delta(self, rng):
        clients, models, ex = self._setup(rng, num_models=2)
        try:
            ex.train_round(0, [TrainItem(next(iter(models)), 0, 0)], dict(models))
            child = mlp((8,), 4, rng, width=8)
            models[child.model_id] = child
            updates = ex.train_round(1, [TrainItem(child.model_id, 0, 0)], dict(models))
            assert ex.delta_publish_count == 1
            assert updates[0].model_id == child.model_id
        finally:
            ex.close()

    def test_chain_compacts_to_full_snapshot(self, rng):
        clients, models, ex = self._setup(rng, num_models=2)
        some_id = next(iter(models))
        try:
            for step in range(FULL_SNAPSHOT_EVERY + 2):
                models[some_id].set_params(_perturbed(models[some_id]))
                ex.train_round(step, [TrainItem(some_id, 0, 0)], dict(models))
            assert ex.full_publish_count >= 2  # initial + periodic compaction
            assert len(ex._chain) <= FULL_SNAPSHOT_EVERY + 1
            # the retained chain is exactly the live shared-memory segments
            from repro.fl.shm import segment_exists

            assert all(segment_exists(name) for _, _, name in ex._chain)
            assert set(ex._segments) == {name for _, _, name in ex._chain}
            retained = [name for _, _, name in ex._chain]
        finally:
            ex.close()
        # close() unlinks every owned segment — nothing may leak.
        assert not any(segment_exists(name) for name in retained)
