"""Baselines: subnet machinery, HeteroFL, SplitMix, FLuID, single-model, cloud."""

import numpy as np
import pytest

from repro.baselines import (
    FLuIDStrategy,
    HeteroFLStrategy,
    SplitMixStrategy,
    build_subnet,
    fedavg,
    fedprox_trainer_config,
    fedyogi,
    param_index_map,
    ratio_spec,
    scatter_average,
    train_centralized,
)
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import (
    Coordinator,
    CoordinatorConfig,
    FLClient,
    LocalTrainerConfig,
    LocalTrainer,
)
from repro.nn import mlp, small_cnn, small_resnet


def _global_model(rng, width=8):
    return mlp((6,), 3, rng, width=width)


class TestRatioSpec:
    def test_full_ratio_empty_spec(self, rng):
        spec = ratio_spec(_global_model(rng), 1.0)
        assert spec.is_full()

    def test_half_ratio_counts(self, rng):
        g = _global_model(rng, width=8)
        spec = ratio_spec(g, 0.5)
        for cell in g.cells[:-1]:  # classifier has no out role
            assert len(spec.keep_out[cell.cell_id]) == 4

    def test_leading_indices_default(self, rng):
        spec = ratio_spec(_global_model(rng, width=8), 0.5)
        for idx in spec.keep_out.values():
            assert np.array_equal(idx, np.arange(len(idx)))

    def test_scored_indices_pick_top(self, rng):
        g = _global_model(rng, width=4)
        cell = g.cells[0]
        scores = {f"{cell.cell_id}/out": np.array([0.1, 5.0, 0.2, 4.0])}
        spec = ratio_spec(g, 0.5, scores=scores)
        assert np.array_equal(spec.keep_out[cell.cell_id], [1, 3])

    def test_min_one_channel(self, rng):
        spec = ratio_spec(_global_model(rng, width=4), 0.01)
        assert all(len(i) >= 1 for i in spec.keep_out.values())

    def test_bad_ratio(self, rng):
        with pytest.raises(ValueError):
            ratio_spec(_global_model(rng), 0.0)

    def test_score_length_mismatch_raises(self, rng):
        g = _global_model(rng, width=4)
        cell = g.cells[0]
        with pytest.raises(ValueError, match="score length"):
            ratio_spec(g, 0.5, scores={f"{cell.cell_id}/out": np.ones(3)})


class TestBuildSubnet:
    @pytest.mark.parametrize("maker", [
        lambda r: mlp((6,), 3, r, width=8),
        lambda r: small_cnn((1, 8, 8), 3, r, width=8),
        lambda r: small_resnet((1, 8, 8), 3, r, width=8),
    ])
    def test_macs_monotone_in_ratio(self, maker, rng):
        g = maker(rng)
        macs = [build_subnet(g, ratio_spec(g, r)).macs() for r in (0.25, 0.5, 1.0)]
        assert macs[0] < macs[1] < macs[2]

    def test_subnet_runs_forward(self, rng):
        g = small_cnn((1, 8, 8), 3, rng, width=8)
        sub = build_subnet(g, ratio_spec(g, 0.5))
        x = rng.normal(size=(2, 1, 8, 8))
        assert sub.predict(x).shape == (2, 3)

    def test_subnet_weights_are_crops(self, rng):
        g = _global_model(rng, width=8)
        sub = build_subnet(g, ratio_spec(g, 0.5))
        gp, sp = g.params(), sub.params()
        for k, v in sp.items():
            crop = gp[k][tuple(slice(0, s) for s in v.shape)]
            assert np.allclose(v, crop), k

    def test_cell_ids_shared(self, rng):
        g = _global_model(rng)
        sub = build_subnet(g, ratio_spec(g, 0.5))
        assert [c.cell_id for c in sub.cells] == [c.cell_id for c in g.cells]


class TestScatterAverage:
    def test_full_coverage_equals_fedavg(self, rng):
        g = _global_model(rng)
        spec = ratio_spec(g, 1.0)
        imaps = {id(spec): param_index_map(g, spec)}
        p1 = {k: np.zeros_like(v) for k, v in g.params().items()}
        p2 = {k: np.ones_like(v) for k, v in g.params().items()}
        out = scatter_average(g.params(), [(p1, spec, 3.0), (p2, spec, 1.0)], imaps)
        for v in out.values():
            assert np.allclose(v, 0.25)

    def test_uncovered_coordinates_keep_global(self, rng):
        g = _global_model(rng, width=8)
        spec = ratio_spec(g, 0.5)
        imaps = {id(spec): param_index_map(g, spec)}
        sub = build_subnet(g, spec)
        update = {k: np.full_like(v, 7.0) for k, v in sub.params().items()}
        before = g.get_params()
        out = scatter_average(g.params(), [(update, spec, 1.0)], imaps)
        cell = g.cells[0]
        key = f"{cell.cell_id}/fc.w"
        assert np.allclose(out[key][:, :4], 7.0)  # covered columns
        assert np.allclose(out[key][:, 4:], before[key][:, 4:])  # untouched

    def test_mixed_ratios_average_on_overlap(self, rng):
        g = _global_model(rng, width=8)
        s_full = ratio_spec(g, 1.0)
        s_half = ratio_spec(g, 0.5)
        imaps = {
            id(s_full): param_index_map(g, s_full),
            id(s_half): param_index_map(g, s_half),
        }
        full_up = {k: np.zeros_like(v) for k, v in g.params().items()}
        half_model = build_subnet(g, s_half)
        half_up = {k: np.full_like(v, 2.0) for k, v in half_model.params().items()}
        out = scatter_average(
            g.params(), [(full_up, s_full, 1.0), (half_up, s_half, 1.0)], imaps
        )
        cell = g.cells[0]
        key = f"{cell.cell_id}/fc.w"
        assert np.allclose(out[key][:, :4], 1.0)  # (0+2)/2 on the overlap
        assert np.allclose(out[key][:, 4:], 0.0)  # full-only region


def _fl_setup(num_clients=12, seed=0, span=16):
    cfg = SyntheticTaskConfig(
        num_classes=4,
        input_shape=(8,),
        latent_dim=6,
        teacher_width=16,
        class_sep=2.0,
        seed=seed,
    )
    ds = build_federated_dataset(cfg, num_clients, mean_samples=20, seed=seed)
    rng = np.random.default_rng(seed)
    g = mlp(ds.input_shape, ds.num_classes, rng, width=16)
    caps = np.geomspace(g.macs() / span, g.macs() * 1.2, num_clients)
    clients = [
        FLClient(c.client_id, c, DeviceTrace(c.client_id, 1e9, 1e6, float(cap)))
        for c, cap in zip(ds.clients, caps)
    ]
    return ds, g, clients


class TestHeteroFL:
    def test_assignment_largest_compatible(self, rng):
        ds, g, clients = _fl_setup()
        strat = HeteroFLStrategy(g)
        models = strat.models()
        assign = strat.assign(0, clients, rng)
        for c in clients:
            (mid,) = assign[c.client_id]
            cheapest = min(m.macs() for m in models.values())
            assert models[mid].macs() <= max(c.capacity_macs, cheapest)

    def test_weak_clients_get_smaller_models(self, rng):
        ds, g, clients = _fl_setup()
        strat = HeteroFLStrategy(g)
        models = strat.models()
        weakest = min(clients, key=lambda c: c.capacity_macs)
        strongest = max(clients, key=lambda c: c.capacity_macs)
        m_weak = models[strat.eval_model_for(weakest)].macs()
        m_strong = models[strat.eval_model_for(strongest)].macs()
        assert m_weak < m_strong

    def test_aggregate_refreshes_submodels(self, rng):
        ds, g, clients = _fl_setup()
        strat = HeteroFLStrategy(g)
        small_id = min(strat.models(), key=lambda m: strat.models()[m].macs())
        trainer = LocalTrainer(LocalTrainerConfig(local_steps=3, lr=0.2))
        work = strat.models()[small_id].clone(keep_id=True)
        u = trainer.train(work, clients[0], rng)
        strat.aggregate(0, [u], rng)
        # submodels are views of the updated global: crops must match
        sub = strat.models()[small_id]
        gp = strat.global_model.params()
        for k, v in sub.params().items():
            # leading crop relation holds for leading-index specs
            assert np.allclose(v, gp[k][tuple(slice(0, s) for s in v.shape)])

    def test_run_improves(self):
        ds, g, clients = _fl_setup()
        strat = HeteroFLStrategy(g)
        log = Coordinator(
            strat,
            clients,
            CoordinatorConfig(
                rounds=20,
                clients_per_round=6,
                trainer=LocalTrainerConfig(local_steps=5, lr=0.2),
                eval_every=5,
                seed=0,
            ),
        ).run()
        assert log.evals[-1].mean_accuracy >= log.evals[0].mean_accuracy

    def test_bad_ratios(self, rng):
        with pytest.raises(ValueError):
            HeteroFLStrategy(_global_model(rng), ratios=(0.0, 1.0))


class TestSplitMix:
    def test_budget_count_scales_with_capacity(self, rng):
        ds, g, clients = _fl_setup()
        strat = SplitMixStrategy(g, k=4)
        weakest = min(clients, key=lambda c: c.capacity_macs)
        strongest = max(clients, key=lambda c: c.capacity_macs)
        assert strat.budget_count(weakest) <= strat.budget_count(strongest)
        assert 1 <= strat.budget_count(weakest)
        assert strat.budget_count(strongest) <= 4

    def test_assignment_lists(self, rng):
        ds, g, clients = _fl_setup()
        strat = SplitMixStrategy(g, k=4)
        assign = strat.assign(0, clients, rng)
        for c in clients:
            mids = assign[c.client_id]
            assert len(mids) == strat.budget_count(c)
            assert len(set(mids)) == len(mids)  # no duplicates

    def test_base_nets_independent_inits(self, rng):
        strat = SplitMixStrategy(_global_model(rng, width=8), k=2)
        m0, m1 = strat.models().values()
        k = next(iter(m0.params()))
        assert not np.allclose(m0.params()[k], m1.params()[k])

    def test_ensemble_logits_average(self, rng):
        ds, g, clients = _fl_setup()
        strat = SplitMixStrategy(g, k=4)
        strong = max(clients, key=lambda c: c.capacity_macs)
        x = strong.data.x_test[:4]
        m = strat.budget_count(strong)
        manual = np.mean(
            [strat.models()[mid].predict(x) for mid in strat._base_ids[:m]], axis=0
        )
        assert np.allclose(strat.client_logits(strong, x), manual)

    def test_run_smoke(self):
        ds, g, clients = _fl_setup()
        strat = SplitMixStrategy(g, k=3)
        log = Coordinator(
            strat,
            clients,
            CoordinatorConfig(
                rounds=10,
                clients_per_round=5,
                trainer=LocalTrainerConfig(local_steps=4, lr=0.2),
                eval_every=5,
                seed=0,
            ),
        ).run()
        assert log.total_macs > 0


class TestFLuID:
    def test_requires_full_ratio(self, rng):
        with pytest.raises(ValueError, match="full model"):
            FLuIDStrategy(_global_model(rng), ratios=(0.5, 0.25))

    def test_scores_update_after_round(self, rng):
        ds, g, clients = _fl_setup()
        strat = FLuIDStrategy(g)
        trainer = LocalTrainer(LocalTrainerConfig(local_steps=3, lr=0.2))
        full_id = "fluid_r1"
        work = strat.models()[full_id].clone(keep_id=True)
        u = trainer.train(work, clients[-1], rng)
        assert strat._scores == {}
        strat.aggregate(0, [u], rng)
        assert strat._scores  # movement recorded

    def test_subnets_track_moving_channels(self, rng):
        """After scores exist, kept channels are the highest-movement ones."""
        ds, g, clients = _fl_setup()
        strat = FLuIDStrategy(g, ratios=(1.0, 0.5))
        cell = g.cells[0]
        key = f"{cell.cell_id}/out"
        scores = np.arange(16, dtype=float)  # channel 15 moved most
        strat._scores = {key: scores}
        strat._rebuild_submodels()
        spec = strat._spec_of_model["fluid_r0.5"]
        assert 15 in spec.keep_out[cell.cell_id]
        assert 0 not in spec.keep_out[cell.cell_id]

    def test_run_improves(self):
        ds, g, clients = _fl_setup()
        strat = FLuIDStrategy(g)
        log = Coordinator(
            strat,
            clients,
            CoordinatorConfig(
                rounds=16,
                clients_per_round=6,
                trainer=LocalTrainerConfig(local_steps=5, lr=0.2),
                eval_every=4,
                seed=0,
            ),
        ).run()
        assert log.evals[-1].mean_accuracy >= log.evals[0].mean_accuracy


class TestSingleModel:
    def test_fedavg_sets_weighted_mean(self, rng):
        m = _global_model(rng)
        strat = fedavg(m)
        from repro.fl.types import ClientUpdate

        def up(cid, val, n):
            return ClientUpdate(
                client_id=cid,
                model_id=m.model_id,
                params={k: np.full_like(v, val) for k, v in m.params().items()},
                state={},
                grad={},
                train_loss=1.0,
                num_samples=n,
                macs_spent=0,
                bytes_down=0,
                bytes_up=0,
                round_time=0,
            )

        strat.aggregate(0, [up(0, 0.0, 30), up(1, 4.0, 10)], rng)
        for v in m.params().values():
            assert np.allclose(v, 1.0)

    def test_fedyogi_moves_toward_average(self, rng):
        m = _global_model(rng)
        before = m.get_params()
        strat = fedyogi(m, lr=0.05)
        from repro.fl.types import ClientUpdate

        target = {k: v + 1.0 for k, v in before.items()}
        u = ClientUpdate(
            client_id=0,
            model_id=m.model_id,
            params=target,
            state={},
            grad={},
            train_loss=1.0,
            num_samples=10,
            macs_spent=0,
            bytes_down=0,
            bytes_up=0,
            round_time=0,
        )
        strat.aggregate(0, [u], rng)
        k = next(iter(before))
        moved = m.params()[k] - before[k]
        assert np.all(moved > 0)  # stepped toward the (higher) average

    def test_prox_config(self):
        base = LocalTrainerConfig(lr=0.3, local_steps=7)
        prox = fedprox_trainer_config(base, mu=0.05)
        assert prox.prox_mu == 0.05
        assert prox.lr == 0.3
        assert prox.local_steps == 7


class TestCloud:
    def test_centralized_improves_and_counts_macs(self, rng):
        ds, g, clients = _fl_setup()
        model = mlp(ds.input_shape, ds.num_classes, rng, width=16)
        init_acc = np.mean([model.evaluate(c.x_test, c.y_test)[1] for c in ds.clients])
        res = train_centralized(model, ds, epochs=8, batch_size=16, lr=0.2, seed=0)
        assert res.mean_client_accuracy > init_acc
        assert res.total_macs == model.train_macs_per_sample() * res.steps * 16
        assert 0 <= res.pooled_accuracy <= 1
