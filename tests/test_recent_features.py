"""Tests for gradient clipping, symmetry-breaking noise, complexity mixing,
and the per-model server-optimizer hook."""

import numpy as np
import pytest

from repro.core import FedTransConfig, ModelAggregator, SimilarityCache
from repro.data import SyntheticTask, SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import FLClient, LocalTrainer, LocalTrainerConfig
from repro.fl.types import ClientUpdate
from repro.nn import mlp
from repro.nn.optim import SGD, Yogi


class TestGradientClipping:
    def _client(self, rng):
        cfg = SyntheticTaskConfig(num_classes=3, input_shape=(6,), latent_dim=4,
                                  teacher_width=8, seed=0)
        ds = build_federated_dataset(cfg, 2, mean_samples=20, seed=0)
        return FLClient(0, ds.clients[0], DeviceTrace(0, 1e9, 1e6, 1e12))

    def test_clipping_bounds_mean_grad(self, rng):
        client = self._client(rng)
        model = mlp((6,), 3, rng, width=8)
        # blow up the weights so raw gradients are enormous
        for p in model.params().values():
            p *= 50.0
        cfg = LocalTrainerConfig(local_steps=1, lr=1e-9, clip_norm=1.0)
        u = LocalTrainer(cfg).train(model.clone(keep_id=True), client, rng)
        gnorm = np.sqrt(sum(float((g**2).sum()) for g in u.grad.values()))
        assert gnorm <= 1.0 + 1e-9

    def test_clipping_disabled(self, rng):
        client = self._client(rng)
        model = mlp((6,), 3, rng, width=8)
        for p in model.params().values():
            p *= 50.0
        cfg = LocalTrainerConfig(local_steps=1, lr=1e-9, clip_norm=0.0)
        u = LocalTrainer(cfg).train(model.clone(keep_id=True), client, rng)
        gnorm = np.sqrt(sum(float((g**2).sum()) for g in u.grad.values()))
        assert gnorm > 1.0  # unclipped explosion preserved

    def test_small_grads_untouched(self, rng):
        client = self._client(rng)
        model = mlp((6,), 3, rng, width=8)
        u_clip = LocalTrainer(LocalTrainerConfig(local_steps=3, clip_norm=1e6)).train(
            model.clone(keep_id=True), client, np.random.default_rng(5)
        )
        u_free = LocalTrainer(LocalTrainerConfig(local_steps=3, clip_norm=0.0)).train(
            model.clone(keep_id=True), client, np.random.default_rng(5)
        )
        for k in u_clip.grad:
            assert np.allclose(u_clip.grad[k], u_free.grad[k])


class TestWidenNoise:
    def test_zero_noise_exact(self, rng):
        m = mlp((6,), 3, rng, width=4)
        x = rng.normal(size=(8, 6))
        before = m.predict(x)
        m.widen_cell(m.transformable_cells()[0].cell_id, 2.0, rng, noise=0.0)
        assert np.allclose(before, m.predict(x), atol=1e-10)

    def test_noise_breaks_duplicate_equality_both_sides(self, rng):
        m = mlp((6,), 3, rng, width=4)
        cell = m.transformable_cells()[0]
        idx = m.cell_index(cell.cell_id)
        consumer = m.cells[idx + 1]
        m.widen_cell(cell.cell_id, 2.0, rng, noise=0.1)
        w_in = cell.params()["fc.w"]  # incoming weights of widened units
        w_out = consumer.params()["fc.w"] if "fc.w" in consumer.params() else consumer.params()["head.w"]
        old = 4
        in_dup_equal = all(
            np.allclose(w_in[:, j], w_in[:, j - old]) for j in range(old, w_in.shape[1])
        )
        out_dup_equal = all(
            np.allclose(w_out[j], w_out[j - old]) for j in range(old, w_out.shape[0])
        )
        assert not in_dup_equal
        assert not out_dup_equal

    def test_noise_preserves_approximately(self, rng):
        m = mlp((6,), 3, rng, width=8)
        x = rng.normal(size=(16, 6))
        before = m.predict(x)
        m.widen_cell(m.transformable_cells()[0].cell_id, 2.0, rng, noise=0.05)
        drift = np.abs(before - m.predict(x)).max()
        assert 0.0 < drift < 1.0

    def test_duplicates_diverge_under_training(self, rng):
        """The point of the noise: duplicated units must separate when
        trained (they never would with exact duplication)."""
        m = mlp((6,), 3, rng, width=4)
        cell = m.transformable_cells()[0]
        m.widen_cell(cell.cell_id, 2.0, rng, noise=0.05)
        x = rng.normal(size=(64, 6))
        y = (x[:, 0] > 0).astype(int) + (x[:, 1] > 0).astype(int)
        opt = SGD(0.2)
        for _ in range(60):
            m.zero_grad()
            m.loss_and_grad(x, y)
            opt.step(m.params(), m.grads())
        w = cell.params()["fc.w"]
        sep = max(
            float(np.abs(w[:, j] - w[:, j - 4]).max()) for j in range(4, w.shape[1])
        )
        assert sep > 0.05


class TestComplexityMix:
    def _task(self, mix):
        return SyntheticTask(
            SyntheticTaskConfig(
                num_classes=4, input_shape=(10,), latent_dim=6, teacher_width=12,
                complexity_mix=mix, seed=0,
            )
        )

    def test_zero_mix_ignores_complexity(self):
        task = self._task(0.0)
        counts = np.array([3, 3, 3, 3])
        x1, _ = task.sample(counts, np.random.default_rng(1), complexity=0.0)
        x2, _ = task.sample(counts, np.random.default_rng(1), complexity=1.0)
        assert np.allclose(x1, x2)

    def test_full_mix_differs_by_complexity(self):
        task = self._task(1.0)
        counts = np.array([3, 3, 3, 3])
        x1, _ = task.sample(counts, np.random.default_rng(1), complexity=0.0)
        x2, _ = task.sample(counts, np.random.default_rng(1), complexity=1.0)
        assert not np.allclose(x1, x2)

    def test_invalid_complexity_raises(self):
        task = self._task(1.0)
        with pytest.raises(ValueError, match="complexity"):
            task.sample(np.array([1, 1, 1, 1]), np.random.default_rng(0), complexity=1.5)

    def test_builder_records_complexity(self):
        cfg = SyntheticTaskConfig(num_classes=3, input_shape=(6,), latent_dim=4,
                                  teacher_width=8, complexity_mix=1.0, seed=0)
        ds = build_federated_dataset(cfg, 10, mean_samples=15, seed=0)
        comps = [c.complexity for c in ds.clients]
        assert all(0.0 <= c <= 1.0 for c in comps)
        assert len(set(comps)) > 1  # heterogeneous levels


class TestPerModelServerOpt:
    def test_yogi_factory_applied_per_model(self, rng):
        m = mlp((6,), 3, rng, width=4)
        agg = ModelAggregator(
            FedTransConfig(soft_aggregation=False),
            SimilarityCache(),
            server_opt_factory=lambda: Yogi(lr=0.05),
        )
        before = m.get_params()
        target = {k: v + 1.0 for k, v in before.items()}
        u = ClientUpdate(
            client_id=0, model_id=m.model_id, params=target, state={}, grad={},
            train_loss=1.0, num_samples=10, macs_spent=0, bytes_down=0,
            bytes_up=0, round_time=0,
        )
        agg.aggregate({m.model_id: m}, [m.model_id], [u], round_idx=0)
        k = next(iter(before))
        moved = m.params()[k] - before[k]
        assert np.all(moved > 0)  # stepped toward the higher average
        assert not np.allclose(m.params()[k], target[k])  # but not FedAvg'd
        assert m.model_id in agg._server_opts
