"""Every example script imports cleanly (full runs are manual/demo-scale).

Import errors (renamed APIs, missing symbols) are the most common way
example code rots; importing executes everything except ``main()``.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        assert hasattr(module, "main"), f"{path.name} must define main()"
    finally:
        sys.modules.pop(spec.name, None)


def test_examples_exist():
    assert len(EXAMPLES) >= 4, "the deliverable requires >= 3 runnable examples"
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
