"""Architectural similarity (§4.2) and the transform policy (§4.1, Fig. 5)."""

import numpy as np
import pytest

from repro.core.client_manager import SimilarityCache
from repro.core.similarity import cell_matching_degree, model_similarity
from repro.core.transform import (
    apply_transform,
    reinitialize,
    select_cells,
    select_cells_random,
)
from repro.nn import mlp


class TestSimilarity:
    def test_self_similarity_is_one(self, rng):
        m = mlp((6,), 3, rng, width=4)
        assert model_similarity(m, m) == 1.0

    def test_identical_clone_similarity_one(self, rng):
        m = mlp((6,), 3, rng, width=4)
        assert model_similarity(m, m.clone()) == 1.0

    def test_widened_child_ratio(self, rng):
        parent = mlp((6,), 3, rng, width=4)
        child = parent.clone()
        cid = child.transformable_cells()[0].cell_id
        child.widen_cell(cid, 2.0, rng)
        sim = model_similarity(parent, child)
        # matching degrees: widened cell p/p', its consumer p/p', others 1
        degrees = [
            cell_matching_degree(cell, parent) for cell in child.cells
        ]
        assert sim == pytest.approx(max(0.0, min(1.0, sum(degrees) / len(degrees))))
        assert 0.0 < sim < 1.0

    def test_inserted_cell_degree_zero(self, rng):
        parent = mlp((6,), 3, rng, width=4)
        child = parent.clone()
        cid = child.transformable_cells()[0].cell_id
        inserted = child.deepen_after(cid, rng)
        cell = child.get_cell(inserted[0])
        assert cell_matching_degree(cell, parent) == 0.0

    def test_deepened_child_similarity(self, rng):
        parent = mlp((6,), 3, rng, width=4)  # 3 cells
        child = parent.clone()
        child.deepen_after(child.transformable_cells()[0].cell_id, rng)
        # 3 inherited cells (degree 1) + 1 inserted (degree 0) over 4 cells
        assert model_similarity(parent, child) == pytest.approx(3 / 4)

    def test_bounds(self, rng):
        parent = mlp((6,), 3, rng, width=4)
        child = parent.clone()
        for _ in range(3):
            cells = child.transformable_cells()
            child.widen_cell(cells[0].cell_id, 2.0, rng)
            child.deepen_after(cells[-1].cell_id, rng)
        s = model_similarity(parent, child)
        assert 0.0 <= s <= 1.0

    def test_widen_ratio_symmetric_degree(self, rng):
        parent = mlp((6,), 3, rng, width=4)
        child = parent.clone()
        cid = child.transformable_cells()[0].cell_id
        child.widen_cell(cid, 2.0, rng)
        d_child_vs_parent = cell_matching_degree(child.get_cell(cid), parent)
        d_parent_vs_child = cell_matching_degree(parent.get_cell(cid), child)
        assert d_child_vs_parent == pytest.approx(d_parent_vs_child)

    def test_cache_returns_same_value(self, rng):
        cache = SimilarityCache()
        parent = mlp((6,), 3, rng, width=4)
        child = parent.clone()
        child.widen_cell(child.transformable_cells()[0].cell_id, 2.0, rng)
        v1 = cache.get(parent, child)
        v2 = cache.get(parent, child)
        assert v1 == v2 == model_similarity(parent, child)


class TestSelectCells:
    def test_alpha_selects_above_threshold(self):
        act = {"a": 1.0, "b": 0.95, "c": 0.5}
        assert set(select_cells(act, alpha=0.9)) == {"a", "b"}

    def test_alpha_one_selects_only_max(self):
        act = {"a": 1.0, "b": 0.99}
        assert select_cells(act, alpha=1.0) == ["a"]

    def test_low_alpha_selects_all(self):
        act = {"a": 1.0, "b": 0.2}
        assert set(select_cells(act, alpha=0.1)) == {"a", "b"}

    def test_empty_activeness(self):
        assert select_cells({}, 0.9) == []

    def test_zero_activeness(self):
        assert select_cells({"a": 0.0, "b": 0.0}, 0.9) == []

    def test_random_selection_transformable_only(self, rng):
        m = mlp((6,), 3, rng, width=4, depth=3)
        picked = select_cells_random(m, rng, count=2)
        transformable = {c.cell_id for c in m.transformable_cells()}
        assert len(picked) == 2
        assert set(picked) <= transformable


class TestApplyTransform:
    def test_first_transform_widens(self, rng):
        m = mlp((6,), 3, rng, width=4)
        cell = m.transformable_cells()[0]
        events = apply_transform(m, [cell.cell_id], rng, 2.0, 1, round_idx=0)
        assert any("widen" in e for e in events)
        assert cell.last_op == "widen"

    def test_second_transform_deepens(self, rng):
        """Fig. 5: a cell widened last time is deepened next time."""
        m = mlp((6,), 3, rng, width=4)
        cell = m.transformable_cells()[0]
        apply_transform(m, [cell.cell_id], rng, 2.0, 1, round_idx=0)
        events = apply_transform(m, [cell.cell_id], rng, 2.0, 1, round_idx=1)
        assert any("deepen" in e for e in events)
        assert cell.last_op == "deepen"

    def test_alternation_carries_through_clone(self, rng):
        """The widen/deepen marker survives cloning (model generations)."""
        m = mlp((6,), 3, rng, width=4)
        cell_id = m.transformable_cells()[0].cell_id
        apply_transform(m, [cell_id], rng, 2.0, 1, round_idx=0)
        child = m.clone()
        events = apply_transform(child, [cell_id], rng, 2.0, 1, round_idx=1)
        assert any("deepen" in e for e in events)

    def test_deepen_count(self, rng):
        m = mlp((6,), 3, rng, width=4)
        cell = m.transformable_cells()[0]
        cell.last_op = "widen"
        n_before = len(m.cells)
        apply_transform(m, [cell.cell_id], rng, 2.0, 3, round_idx=0)
        assert len(m.cells) == n_before + 3

    def test_untransformable_skipped(self, rng):
        m = mlp((6,), 3, rng, width=4)
        stem = m.cells[0]
        events = apply_transform(m, [stem.cell_id], rng, 2.0, 1, round_idx=0)
        assert events == []

    def test_function_preserved_through_policy(self, rng):
        m = mlp((6,), 3, rng, width=4)
        x = rng.normal(size=(5, 6))
        before = m.predict(x)
        ids = [c.cell_id for c in m.transformable_cells()]
        apply_transform(m, ids, rng, 2.0, 1, round_idx=0)
        apply_transform(m, ids, rng, 2.0, 1, round_idx=1)
        assert np.allclose(before, m.predict(x), atol=1e-8)


class TestReinitialize:
    def test_changes_weights_keeps_shapes(self, rng):
        m = mlp((6,), 3, rng, width=4)
        before = m.get_params()
        reinitialize(m, rng)
        after = m.params()
        assert all(after[k].shape == before[k].shape for k in before)
        moved = [k for k in before if not np.allclose(before[k], after[k])]
        assert any(k.endswith(".w") for k in moved)

    def test_biases_zeroed(self, rng):
        m = mlp((6,), 3, rng, width=4)
        for p in m.params().values():
            p += 1.0
        reinitialize(m, rng)
        for k, v in m.params().items():
            if k.endswith(".b"):
                assert np.all(v == 0.0)

    def test_bn_state_reset(self, rng):
        from repro.nn import small_cnn

        m = small_cnn((1, 8, 8), 3, rng, width=4)
        for s in m.state().values():
            s += 3.0
        reinitialize(m, rng)
        for k, v in m.state().items():
            if k.endswith("running_mean"):
                assert np.all(v == 0.0)
            if k.endswith("running_var"):
                assert np.all(v == 1.0)

    def test_gamma_reset_to_one(self, rng):
        from repro.nn import small_cnn

        m = small_cnn((1, 8, 8), 3, rng, width=4)
        for k, v in m.params().items():
            if k.endswith("gamma"):
                v *= 5.0
        reinitialize(m, rng)
        for k, v in m.params().items():
            if k.endswith("gamma"):
                assert np.all(v == 1.0)
