"""Losses and optimizers."""

import numpy as np
import pytest

from repro.nn.losses import accuracy, softmax_cross_entropy
from repro.nn.optim import SGD, ServerSGD, Yogi


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(4, 5))
        labels = np.array([0, 2, 4, 1])
        loss, _ = softmax_cross_entropy(logits, labels)
        p = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        manual = -np.log(p[np.arange(4), labels]).mean()
        assert abs(loss - manual) < 1e-10

    def test_grad_rows_sum_to_zero(self, rng):
        logits = rng.normal(size=(3, 6))
        labels = np.array([1, 2, 3])
        _, d = softmax_cross_entropy(logits, labels)
        assert np.allclose(d.sum(axis=1), 0.0, atol=1e-12)

    def test_grad_numeric(self, rng):
        logits = rng.normal(size=(2, 4))
        labels = np.array([0, 3])
        _, d = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for idx in [(0, 0), (1, 2), (1, 3)]:
            l2 = logits.copy()
            l2[idx] += eps
            up, _ = softmax_cross_entropy(l2, labels)
            l2[idx] -= 2 * eps
            down, _ = softmax_cross_entropy(l2, labels)
            assert abs((up - down) / (2 * eps) - d[idx]) < 1e-8

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-8

    def test_label_smoothing_raises_floor(self, rng):
        logits = np.array([[100.0, 0.0]])
        labels = np.array([0])
        plain, _ = softmax_cross_entropy(logits, labels)
        smooth, _ = softmax_cross_entropy(logits, labels, label_smoothing=0.1)
        assert smooth > plain

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="labels shape"):
            softmax_cross_entropy(rng.normal(size=(3, 4)), np.array([0, 1]))

    def test_out_of_range_label_raises(self, rng):
        with pytest.raises(ValueError, match="out of range"):
            softmax_cross_entropy(rng.normal(size=(2, 3)), np.array([0, 3]))


class TestAccuracy:
    def test_basic(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_empty(self):
        assert accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int)) == 0.0


class TestSGD:
    def test_vanilla_step(self, rng):
        p = {"w": np.ones(3)}
        g = {"w": np.full(3, 2.0)}
        SGD(lr=0.1).step(p, g)
        assert np.allclose(p["w"], 1.0 - 0.2)

    def test_weight_decay(self):
        p = {"w": np.ones(2)}
        g = {"w": np.zeros(2)}
        SGD(lr=0.1, weight_decay=0.5).step(p, g)
        assert np.allclose(p["w"], 1.0 - 0.1 * 0.5)

    def test_momentum_accumulates(self):
        p = {"w": np.zeros(1)}
        opt = SGD(lr=1.0, momentum=0.9)
        g = {"w": np.ones(1)}
        opt.step(p, g)  # v=1, w=-1
        opt.step(p, g)  # v=1.9, w=-2.9
        assert np.allclose(p["w"], [-2.9])

    def test_momentum_reset_on_shape_change(self):
        opt = SGD(lr=1.0, momentum=0.9)
        opt.step({"w": np.zeros(2)}, {"w": np.ones(2)})
        # widened parameter: stale velocity must not crash or be reused
        p = {"w": np.zeros(4)}
        opt.step(p, {"w": np.ones(4)})
        assert np.allclose(p["w"], -1.0)

    def test_reset(self):
        opt = SGD(lr=1.0, momentum=0.9)
        opt.step({"w": np.zeros(2)}, {"w": np.ones(2)})
        opt.reset()
        assert not opt._velocity

    def test_bad_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)

    def test_reduces_quadratic(self, rng):
        w = {"w": rng.normal(size=5)}
        opt = SGD(lr=0.1, momentum=0.9)
        for _ in range(200):
            opt.step(w, {"w": 2 * w["w"]})  # d/dw ||w||^2
        assert np.linalg.norm(w["w"]) < 1e-3


class TestServerOpts:
    def test_server_sgd_lr1_is_identity_move(self, rng):
        w = {"w": rng.normal(size=3)}
        avg = {"w": rng.normal(size=3)}
        pseudo = {"w": w["w"] - avg["w"]}
        out = ServerSGD(lr=1.0).step(w, pseudo)
        assert np.allclose(out["w"], avg["w"])

    def test_yogi_moves_toward_minimum(self, rng):
        w = {"w": rng.normal(size=4) + 5.0}
        opt = Yogi(lr=0.5)
        for _ in range(300):
            w = opt.step(w, {"w": w["w"]})  # gradient of ||w||^2/2
        assert np.linalg.norm(w["w"]) < 0.5

    def test_yogi_state_resets_on_shape_change(self, rng):
        opt = Yogi()
        w = {"w": np.ones(2)}
        opt.step(w, {"w": np.ones(2)})
        m, v = opt.snapshot()
        assert m is not None
        out = opt.step({"w": np.ones(5)}, {"w": np.ones(5)})
        assert out["w"].shape == (5,)

    def test_yogi_snapshot_copies(self):
        opt = Yogi()
        opt.step({"w": np.ones(2)}, {"w": np.ones(2)})
        m, _ = opt.snapshot()
        m["w"][0] = 123.0
        m2, _ = opt.snapshot()
        assert m2["w"][0] != 123.0
