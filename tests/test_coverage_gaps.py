"""Coverage for corners not exercised elsewhere: residual/ViT gradients in
models, multi-assignment cost accounting, subnet role maps on CNNs,
classifier fallbacks, and reporting formats."""

import numpy as np
import pytest

from repro.baselines import HeteroFLStrategy, SplitMixStrategy
from repro.baselines.subnet import build_subnet, param_index_map, ratio_spec
from repro.bench.reporting import _fmt, ascii_table
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import Coordinator, CoordinatorConfig, FLClient, LocalTrainerConfig
from repro.nn import small_cnn, small_resnet, vit_tiny
from repro.nn.gradcheck import check_model_gradients


class TestGradcheckDeepFamilies:
    def test_resnet_deepened_model_gradients(self, rng):
        m = small_resnet((1, 8, 8), 3, rng, width=4)
        cell = m.transformable_cells()[0]
        m.deepen_after(cell.cell_id, rng)
        x = rng.normal(size=(4, 1, 8, 8))
        y = rng.integers(0, 3, 4)
        # A freshly inserted identity residual cell has conv2 == 0; its BN
        # sits at the var≈0 singularity where finite differences are
        # ill-conditioned.  The larger jitter moves it into a regular
        # region — gradcheck then certifies the same backward code path.
        assert check_model_gradients(m, x, y, rng, jitter=0.05) < 1e-3

    def test_widened_cnn_gradients(self, rng):
        m = small_cnn((1, 8, 8), 3, rng, width=4)
        m.widen_cell(m.transformable_cells()[0].cell_id, 2.0, rng, noise=0.05)
        x = rng.normal(size=(4, 1, 8, 8))
        y = rng.integers(0, 3, 4)
        assert check_model_gradients(m, x, y, rng) < 1e-4

    def test_vit_deepened_gradients(self, rng):
        m = vit_tiny((1, 8, 8), 3, rng, dim=8, heads=2, mlp_hidden=12, patch=4)
        cell = m.transformable_cells()[0]
        m.deepen_after(cell.cell_id, rng)
        x = rng.normal(size=(3, 1, 8, 8))
        y = rng.integers(0, 3, 3)
        assert check_model_gradients(m, x, y, rng) < 1e-4


def _fl_setup(num_clients=8, span=8):
    cfg = SyntheticTaskConfig(
        num_classes=4, input_shape=(8,), latent_dim=6, teacher_width=12, seed=0
    )
    ds = build_federated_dataset(cfg, num_clients, mean_samples=15, seed=0)
    rng = np.random.default_rng(0)
    from repro.nn import mlp

    g = mlp(ds.input_shape, ds.num_classes, rng, width=16)
    caps = np.geomspace(g.macs() / span, g.macs() * 1.5, num_clients)
    clients = [
        FLClient(c.client_id, c, DeviceTrace(c.client_id, 1e9, 1e6, float(cap)))
        for c, cap in zip(ds.clients, caps)
    ]
    return ds, g, clients


class TestMultiAssignmentAccounting:
    def test_splitmix_costs_scale_with_budget(self):
        """A client training m base nets must be billed for all m."""
        ds, g, clients = _fl_setup()
        strat = SplitMixStrategy(g, k=3)
        coord = Coordinator(
            strat,
            clients,
            CoordinatorConfig(
                rounds=2,
                clients_per_round=len(clients),
                trainer=LocalTrainerConfig(local_steps=2),
                eval_every=2,
                seed=0,
            ),
        )
        log = coord.run()
        rec = log.rounds[0]
        base_macs = min(m.macs() for m in strat.models().values())
        by_id = {c.client_id: c for c in clients}
        expected = sum(
            len(mids) * 3 * base_macs * 2 * min(10, by_id[cid].data.num_train)
            for cid, mids in rec.assignments.items()
        )
        assert rec.macs == pytest.approx(expected)

    def test_round_time_sums_sequential_models(self):
        ds, g, clients = _fl_setup()
        strat = SplitMixStrategy(g, k=3)
        rng = np.random.default_rng(0)
        strong = max(clients, key=lambda c: c.capacity_macs)
        m = strat.budget_count(strong)
        assert m >= 2  # the premise: multiple nets trained sequentially
        coord = Coordinator(
            strat,
            clients,
            CoordinatorConfig(
                rounds=1,
                clients_per_round=len(clients),
                trainer=LocalTrainerConfig(local_steps=2),
                seed=0,
            ),
        )
        log = coord.run()
        assert log.rounds[0].round_time > 0


class TestSubnetRoleMaps:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda r: small_cnn((1, 8, 8), 3, r, width=8),
            lambda r: small_resnet((1, 8, 8), 3, r, width=8),
        ],
    )
    def test_index_map_shapes_match_subnet(self, maker, rng):
        """Every narrowed tensor's kept-index lengths equal the subnet shape."""
        g = maker(rng)
        spec = ratio_spec(g, 0.5)
        sub = build_subnet(g, spec)
        imap = param_index_map(g, spec)
        sub_tensors = dict(sub.params(), **sub.state())
        for key, idxs in imap.items():
            v = sub_tensors[key]
            for axis, idx in enumerate(idxs):
                if idx is not None:
                    assert len(idx) == v.shape[axis], (key, axis)

    def test_resnet_hidden_axis_in_map(self, rng):
        g = small_resnet((1, 8, 8), 3, rng, width=8)
        spec = ratio_spec(g, 0.5)
        imap = param_index_map(g, spec)
        res_cells = [c for c in g.cells if c.kind == "residual"]
        key = f"{res_cells[0].cell_id}/conv1.w"
        assert key in imap
        out_idx, in_idx = imap[key][0], imap[key][1]
        assert out_idx is not None  # hidden axis narrowed
        # first residual follows the stem, whose out channels are narrowed
        assert in_idx is not None


class TestFallbacks:
    def test_heterofl_weakest_fallback(self, rng):
        """A client too weak for every submodel still gets the cheapest."""
        ds, g, clients = _fl_setup()
        strat = HeteroFLStrategy(g)
        hopeless = FLClient(
            99, ds.clients[0], DeviceTrace(99, 1e9, 1e6, capacity_macs=1.0)
        )
        mid = strat.eval_model_for(hopeless)
        assert mid == min(strat.models(), key=lambda m: strat.models()[m].macs())

    def test_strategy_compatible_fallback(self, rng):
        from repro.baselines import fedavg
        from repro.nn import mlp

        m = mlp((8,), 4, rng, width=16)
        strat = fedavg(m)
        hopeless = FLClient(
            0,
            _fl_setup()[0].clients[0],
            DeviceTrace(0, 1e9, 1e6, capacity_macs=1.0),
        )
        assert strat.compatible_models(hopeless) == [m.model_id]


class TestReportingFormats:
    def test_fmt_large_and_small(self):
        assert _fmt(1234567.0) == "1.235e+06"
        assert _fmt(0.00001) == "1.000e-05"
        assert _fmt(0.0) == "0"
        assert _fmt(3.14159) == "3.142"
        assert _fmt("text") == "text"

    def test_table_mixed_types(self):
        out = ascii_table([{"a": 0.5, "b": None}])
        assert "None" in out


class TestVitStemParams:
    def test_param_keys(self, rng):
        m = vit_tiny((1, 8, 8), 3, rng, dim=8, heads=2, mlp_hidden=12, patch=4)
        keys = set(m.params())
        stem = m.cells[0]
        assert f"{stem.cell_id}/embed.w" in keys
        assert f"{stem.cell_id}/embed.pos" in keys

    def test_cell_macs_chain(self, rng):
        m = vit_tiny((1, 8, 8), 3, rng, dim=8, heads=2, mlp_hidden=12, patch=4)
        assert sum(m.cell_macs().values()) == m.macs()
