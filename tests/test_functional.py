"""Unit tests for the low-level array kernels."""

import numpy as np
import pytest

from repro.nn import functional as F


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(8, 3, 1, 1) == 8

    def test_stride(self):
        assert F.conv_output_size(8, 3, 2, 1) == 4

    def test_no_pad(self):
        assert F.conv_output_size(8, 3, 1, 0) == 6

    def test_raises_on_too_small_input(self):
        with pytest.raises(ValueError, match="non-positive"):
            F.conv_output_size(2, 5, 1, 0)


class TestIm2Col:
    def test_shape(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        cols, oh, ow = F.im2col(x, 3, 3, 1, 1)
        assert cols.shape == (2, 3 * 9, 64)
        assert (oh, ow) == (8, 8)

    def test_roundtrip_counts(self):
        """col2im(ones) counts how many windows cover each pixel."""
        x_shape = (1, 1, 4, 4)
        cols = np.ones((1, 9, 16))
        img = F.col2im(cols, x_shape, 3, 3, 1, 1)
        # Centre pixels are covered by all 9 windows.
        assert img[0, 0, 1, 1] == 9
        assert img[0, 0, 0, 0] == 4  # corner

    def test_identity_kernel_window(self):
        x = np.random.default_rng(1).normal(size=(1, 2, 5, 5))
        cols, _, _ = F.im2col(x, 1, 1, 1, 0)
        assert np.allclose(cols.reshape(1, 2, 25), x.reshape(1, 2, 25))


class TestConv2d:
    def _naive_conv(self, x, w, b, stride, pad):
        n, c, h, ww = x.shape
        f, _, kh, kw = w.shape
        oh = (h + 2 * pad - kh) // stride + 1
        ow = (ww + 2 * pad - kw) // stride + 1
        xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        out = np.zeros((n, f, oh, ow))
        for ni in range(n):
            for fi in range(f):
                for i in range(oh):
                    for j in range(ow):
                        patch = xp[ni, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                        out[ni, fi, i, j] = (patch * w[fi]).sum() + (b[fi] if b is not None else 0)
        return out

    @pytest.mark.parametrize("stride,pad", [(1, 1), (2, 1), (1, 0), (2, 0)])
    def test_matches_naive(self, stride, pad):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out, _ = F.conv2d_forward(x, w, b, stride, pad)
        assert np.allclose(out, self._naive_conv(x, w, b, stride, pad))

    def test_backward_shapes(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out, cols = F.conv2d_forward(x, w, b, 1, 1)
        dout = rng.normal(size=out.shape)
        dx, dw, db = F.conv2d_backward(dout, cols, x.shape, w, 1, 1)
        assert dx.shape == x.shape
        assert dw.shape == w.shape
        assert db.shape == b.shape

    def test_backward_numeric(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        out, cols = F.conv2d_forward(x, w, b, 1, 1)
        dout = rng.normal(size=out.shape)
        dx, dw, db = F.conv2d_backward(dout, cols, x.shape, w, 1, 1)
        eps = 1e-6
        # check a few weight coordinates numerically
        for idx in [(0, 0, 0, 0), (2, 1, 2, 2), (1, 0, 1, 2)]:
            w2 = w.copy()
            w2[idx] += eps
            up = (F.conv2d_forward(x, w2, b, 1, 1)[0] * dout).sum()
            w2[idx] -= 2 * eps
            down = (F.conv2d_forward(x, w2, b, 1, 1)[0] * dout).sum()
            num = (up - down) / (2 * eps)
            assert abs(num - dw[idx]) < 1e-5

    def test_no_bias(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        out, cols = F.conv2d_forward(x, w, None, 1, 1)
        dout = rng.normal(size=out.shape)
        _, _, db = F.conv2d_backward(dout, cols, x.shape, w, 1, 1, with_bias=False)
        assert db is None


class TestActivations:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert np.allclose(F.relu(x), [0, 0, 2])

    def test_relu_grad(self):
        x = np.array([-1.0, 0.5, 2.0])
        d = F.relu_grad(x, np.ones_like(x))
        assert np.allclose(d, [0, 1, 1])

    def test_gelu_monotone_region(self):
        x = np.linspace(0, 3, 50)
        y = F.gelu(x)
        assert np.all(np.diff(y) > 0)

    def test_gelu_grad_numeric(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=20)
        eps = 1e-6
        num = (F.gelu(x + eps) - F.gelu(x - eps)) / (2 * eps)
        ana = F.gelu_grad(x, np.ones_like(x))
        assert np.allclose(num, ana, atol=1e-6)

    def test_gelu_near_tanh_values(self):
        # GELU(0) == 0, GELU(large) ~ identity
        assert F.gelu(np.array([0.0]))[0] == 0.0
        assert abs(F.gelu(np.array([10.0]))[0] - 10.0) < 1e-6


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(7).normal(size=(4, 9))
        p = F.softmax(x)
        assert np.allclose(p.sum(axis=-1), 1.0)

    def test_shift_invariance(self):
        x = np.random.default_rng(8).normal(size=(3, 5))
        assert np.allclose(F.softmax(x), F.softmax(x + 100.0))

    def test_log_softmax_consistent(self):
        x = np.random.default_rng(9).normal(size=(3, 5))
        assert np.allclose(np.exp(F.log_softmax(x)), F.softmax(x))

    def test_extreme_values_stable(self):
        x = np.array([[1000.0, -1000.0, 0.0]])
        p = F.softmax(x)
        assert np.isfinite(p).all()
        assert abs(p.sum() - 1.0) < 1e-12
