"""CellModel tests: chaining, params, transforms, lineage, cost accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import mlp, small_cnn, small_resnet, vit_tiny
from repro.nn.cells import ConvCell, DenseCell, FlatClassifierCell
from repro.nn.model import CellModel


def _flat_model(rng, width=8, depth=2, classes=4, features=6):
    return mlp((features,), classes, rng, width=width, depth=depth)


class TestConstruction:
    def test_interface_mismatch_raises(self, rng):
        conv = ConvCell(3, 4, rng)
        dense = DenseCell(4, 4, rng)
        with pytest.raises(ValueError, match="interface mismatch"):
            CellModel([conv, dense], (3, 8, 8), 4)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            CellModel([], (4,), 2)

    def test_bad_output_dim_raises(self, rng):
        cells = [DenseCell(4, 8, rng), FlatClassifierCell(8, 3, rng)]
        with pytest.raises(ValueError, match="expected"):
            CellModel(cells, (4,), 5)  # classifier emits 3, not 5

    def test_unique_model_ids(self, rng):
        a = _flat_model(rng)
        b = _flat_model(rng)
        assert a.model_id != b.model_id


class TestParams:
    def test_keys_prefixed_by_cell_id(self, rng):
        m = _flat_model(rng)
        for key in m.params():
            cell_id = key.split("/")[0]
            assert any(c.cell_id == cell_id for c in m.cells)

    def test_set_params_roundtrip(self, rng):
        m = _flat_model(rng)
        snap = m.get_params()
        for p in m.params().values():
            p += 1.0
        m.set_params(snap)
        assert all(np.allclose(m.params()[k], snap[k]) for k in snap)

    def test_set_params_strict_missing_key(self, rng):
        m = _flat_model(rng)
        with pytest.raises(KeyError):
            m.set_params({"nope/w": np.zeros(2)})

    def test_set_params_shape_mismatch(self, rng):
        m = _flat_model(rng)
        bad = {k: np.zeros(np.asarray(v.shape) + 1) for k, v in m.get_params().items()}
        with pytest.raises(ValueError, match="shape mismatch"):
            m.set_params(bad)

    def test_set_params_nonstrict_ignores_extra(self, rng):
        m = _flat_model(rng)
        snap = m.get_params()
        snap["extra/w"] = np.zeros(3)
        m.set_params(snap, strict=False)

    def test_zero_grad(self, rng):
        m = _flat_model(rng)
        x = rng.normal(size=(4, 6))
        y = rng.integers(0, 4, 4)
        m.loss_and_grad(x, y)
        assert any(np.abs(g).sum() > 0 for g in m.grads().values())
        m.zero_grad()
        assert all(np.abs(g).sum() == 0 for g in m.grads().values())

    def test_nbytes_matches_params(self, rng):
        m = _flat_model(rng)
        assert m.nbytes() == sum(v.nbytes for v in m.params().values())


class TestExecution:
    def test_predict_batches_consistent(self, rng):
        m = _flat_model(rng)
        x = rng.normal(size=(20, 6))
        assert np.allclose(m.predict(x, batch_size=7), m.predict(x, batch_size=64))

    def test_evaluate_returns_loss_acc(self, rng):
        m = _flat_model(rng)
        x = rng.normal(size=(10, 6))
        y = rng.integers(0, 4, 10)
        loss, acc = m.evaluate(x, y)
        assert loss > 0
        assert 0.0 <= acc <= 1.0

    def test_training_reduces_loss(self, rng):
        from repro.nn.optim import SGD

        m = _flat_model(rng, width=16)
        x = rng.normal(size=(32, 6))
        y = (x[:, 0] > 0).astype(int)
        opt = SGD(0.1)
        first = None
        for _ in range(60):
            m.zero_grad()
            loss = m.loss_and_grad(x, y)
            first = first or loss
            opt.step(m.params(), m.grads())
        assert loss < first * 0.5


class TestTransforms:
    @pytest.mark.parametrize(
        "maker,shape",
        [
            (lambda r: mlp((6,), 4, r, width=8), (6,)),
            (lambda r: small_cnn((1, 8, 8), 4, r, width=4), (1, 8, 8)),
            (lambda r: small_resnet((1, 8, 8), 4, r, width=4), (1, 8, 8)),
            (
                lambda r: vit_tiny((1, 8, 8), 4, r, dim=8, heads=2, mlp_hidden=12, patch=4),
                (1, 8, 8),
            ),
        ],
    )
    def test_widen_preserves_function(self, maker, shape, rng):
        m = maker(rng)
        x = rng.normal(size=(4,) + shape)
        before = m.predict(x)
        for cell in m.transformable_cells():
            m.widen_cell(cell.cell_id, 2.0, rng)
        assert np.allclose(before, m.predict(x), atol=1e-8)

    @pytest.mark.parametrize(
        "maker,shape",
        [
            (lambda r: mlp((6,), 4, r, width=8), (6,)),
            (lambda r: small_cnn((1, 8, 8), 4, r, width=4), (1, 8, 8)),
            (lambda r: small_resnet((1, 8, 8), 4, r, width=4), (1, 8, 8)),
            (
                lambda r: vit_tiny((1, 8, 8), 4, r, dim=8, heads=2, mlp_hidden=12, patch=4),
                (1, 8, 8),
            ),
        ],
    )
    def test_deepen_preserves_function(self, maker, shape, rng):
        m = maker(rng)
        x = rng.normal(size=(4,) + shape)
        before = m.predict(x)
        anchor = m.transformable_cells()[0]
        m.deepen_after(anchor.cell_id, rng, count=2)
        assert np.allclose(before, m.predict(x), atol=1e-8)

    def test_widen_increases_macs(self, rng):
        m = _flat_model(rng)
        before = m.macs()
        m.widen_cell(m.transformable_cells()[0].cell_id, 2.0, rng)
        assert m.macs() > before

    def test_widen_records_history(self, rng):
        m = _flat_model(rng)
        cid = m.transformable_cells()[0].cell_id
        m.widen_cell(cid, 2.0, rng, round_idx=7)
        rec = m.history[-1]
        assert rec.op == "widen"
        assert rec.cell_id == cid
        assert rec.round == 7

    def test_deepen_inserts_after_anchor(self, rng):
        m = _flat_model(rng)
        cid = m.transformable_cells()[0].cell_id
        idx = m.cell_index(cid)
        inserted = m.deepen_after(cid, rng)
        assert m.cells[idx + 1].cell_id == inserted[0]
        assert m.cells[idx + 1].origin == "inserted"

    def test_deepen_marks_last_op(self, rng):
        m = _flat_model(rng)
        cell = m.transformable_cells()[0]
        m.deepen_after(cell.cell_id, rng)
        assert cell.last_op == "deepen"

    def test_widen_marks_last_op_and_count(self, rng):
        m = _flat_model(rng)
        cell = m.transformable_cells()[0]
        m.widen_cell(cell.cell_id, 2.0, rng)
        assert cell.last_op == "widen"
        assert cell.widen_count == 1

    def test_widen_untransformable_raises(self, rng):
        m = _flat_model(rng)
        stem = m.cells[0]
        assert not stem.transformable
        with pytest.raises(ValueError, match="not transformable"):
            m.widen_cell(stem.cell_id, 2.0, rng)

    def test_widen_unknown_cell_raises(self, rng):
        m = _flat_model(rng)
        with pytest.raises(KeyError):
            m.widen_cell("nope", 2.0, rng)

    def test_widened_model_trains(self, rng):
        """After a widen, gradients still flow and shapes stay consistent."""
        from repro.nn.optim import SGD

        m = _flat_model(rng)
        m.widen_cell(m.transformable_cells()[0].cell_id, 2.0, rng)
        x = rng.normal(size=(8, 6))
        y = rng.integers(0, 4, 8)
        opt = SGD(0.05)
        m.zero_grad()
        m.loss_and_grad(x, y)
        opt.step(m.params(), m.grads())


class TestClone:
    def test_clone_new_id_same_cells(self, rng):
        m = _flat_model(rng)
        c = m.clone()
        assert c.model_id != m.model_id
        assert c.parent_id == m.model_id
        assert [a.cell_id for a in c.cells] == [a.cell_id for a in m.cells]

    def test_clone_keep_id(self, rng):
        m = _flat_model(rng)
        c = m.clone(keep_id=True)
        assert c.model_id == m.model_id

    def test_clone_weight_independence(self, rng):
        m = _flat_model(rng)
        c = m.clone()
        next(iter(c.params().values()))[...] = 123.0
        assert not np.allclose(next(iter(m.params().values())), 123.0)

    def test_clone_birth_round(self, rng):
        m = _flat_model(rng)
        c = m.clone(birth_round=9)
        assert c.birth_round == 9


class TestCostAccounting:
    def test_mlp_macs_formula(self, rng):
        m = mlp((6,), 4, rng, width=8, depth=2)
        # 6*8 + 8*8 + 8*4
        assert m.macs() == 48 + 64 + 32

    def test_train_macs_3x(self, rng):
        m = _flat_model(rng)
        assert m.train_macs_per_sample() == 3 * m.macs()

    def test_cell_macs_sums_to_total(self, rng):
        m = small_cnn((1, 8, 8), 4, rng, width=4)
        assert sum(m.cell_macs().values()) == m.macs()

    def test_summary_contains_cells(self, rng):
        m = _flat_model(rng)
        s = m.summary()
        for cell in m.cells:
            assert cell.cell_id in s


@given(
    seed=st.integers(0, 1000),
    width=st.integers(2, 10),
    depth=st.integers(1, 3),
    factor=st.sampled_from([1.5, 2.0, 3.0]),
)
@settings(max_examples=25, deadline=None)
def test_property_widen_any_cell_preserves_function(seed, width, depth, factor):
    """Function preservation holds for every cell, width, depth, factor."""
    rng = np.random.default_rng(seed)
    m = mlp((5,), 3, rng, width=width, depth=depth)
    x = rng.normal(size=(6, 5))
    before = m.predict(x)
    cells = m.transformable_cells()
    target = cells[seed % len(cells)] if cells else None
    if target is None:
        return
    m.widen_cell(target.cell_id, factor, rng)
    assert np.allclose(before, m.predict(x), atol=1e-8)


@given(seed=st.integers(0, 1000), n_ops=st.integers(1, 5))
@settings(max_examples=20, deadline=None)
def test_property_random_transform_sequences_preserve_function(seed, n_ops):
    """Arbitrary interleavings of widen/deepen keep the function intact."""
    rng = np.random.default_rng(seed)
    m = mlp((5,), 3, rng, width=6, depth=2)
    x = rng.normal(size=(5, 5))
    before = m.predict(x)
    for _ in range(n_ops):
        cells = m.transformable_cells()
        cell = cells[int(rng.integers(0, len(cells)))]
        if rng.random() < 0.5:
            m.widen_cell(cell.cell_id, 2.0, rng)
        else:
            m.deepen_after(cell.cell_id, rng)
    assert np.allclose(before, m.predict(x), atol=1e-7)
