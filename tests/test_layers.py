"""Per-layer unit tests: shapes, gradients, MACs accounting, edge cases."""

import numpy as np
import pytest

from repro.nn.gradcheck import max_relative_grad_error
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    LayerNorm,
    MaxPool2d,
    ReLU,
)


def _layer_gradcheck(layer, x, rng, train=True):
    """Gradcheck one layer under a random linear loss."""
    target = rng.normal(size=layer.forward(x, train).shape)

    def loss_fn():
        return float((layer.forward(x, train) * target).sum())

    layer.zero_grad()
    out = layer.forward(x, train)
    layer.backward(target)
    if not layer.params():
        return 0.0
    return max_relative_grad_error(loss_fn, layer.params(), layer.grads(), rng)


class TestDense:
    def test_forward(self, rng):
        d = Dense(4, 3, rng)
        x = rng.normal(size=(5, 4))
        assert np.allclose(d.forward(x), x @ d.w + d.b)

    def test_gradcheck(self, rng):
        d = Dense(6, 4, rng)
        x = rng.normal(size=(3, 6))
        assert _layer_gradcheck(d, x, rng) < 1e-5

    def test_input_grad(self, rng):
        d = Dense(4, 3, rng)
        x = rng.normal(size=(2, 4))
        dout = rng.normal(size=(2, 3))
        d.forward(x)
        dx = d.backward(dout)
        assert np.allclose(dx, dout @ d.w.T)

    def test_macs(self, rng):
        d = Dense(10, 7, rng)
        m, shape = d.macs((10,))
        assert m == 70
        assert shape == (7,)

    def test_macs_wrong_shape_raises(self, rng):
        d = Dense(10, 7, rng)
        with pytest.raises(ValueError, match="expects 10"):
            d.macs((9,))

    def test_grad_accumulates(self, rng):
        d = Dense(3, 2, rng)
        x = rng.normal(size=(2, 3))
        dout = rng.normal(size=(2, 2))
        d.forward(x)
        d.backward(dout)
        g1 = d.g_w.copy()
        d.forward(x)
        d.backward(dout)
        assert np.allclose(d.g_w, 2 * g1)
        d.zero_grad()
        assert np.all(d.g_w == 0)


class TestConv2d:
    def test_gradcheck(self, rng):
        c = Conv2d(2, 3, 3, rng)
        x = rng.normal(size=(2, 2, 5, 5))
        assert _layer_gradcheck(c, x, rng) < 1e-5

    def test_gradcheck_strided_nobias(self, rng):
        c = Conv2d(2, 3, 3, rng, stride=2, bias=False)
        x = rng.normal(size=(2, 2, 6, 6))
        assert _layer_gradcheck(c, x, rng) < 1e-5

    def test_macs_formula(self, rng):
        c = Conv2d(3, 8, 3, rng)
        m, shape = c.macs((3, 8, 8))
        assert m == 8 * 8 * 8 * 3 * 9
        assert shape == (8, 8, 8)

    def test_channels_properties(self, rng):
        c = Conv2d(3, 8, 3, rng)
        assert c.in_channels == 3
        assert c.out_channels == 8

    def test_wrong_channels_raises(self, rng):
        c = Conv2d(3, 8, 3, rng)
        with pytest.raises(ValueError, match="expects 3"):
            c.macs((4, 8, 8))

    def test_input_grad_numeric(self, rng):
        c = Conv2d(2, 2, 3, rng)
        x = rng.normal(size=(1, 2, 4, 4))
        dout_shape = c.forward(x).shape
        dout = rng.normal(size=dout_shape)
        c.forward(x)
        dx = c.backward(dout)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (0, 1, 2, 3), (0, 1, 3, 1)]:
            x2 = x.copy()
            x2[idx] += eps
            up = (c.forward(x2) * dout).sum()
            x2[idx] -= 2 * eps
            down = (c.forward(x2) * dout).sum()
            assert abs((up - down) / (2 * eps) - dx[idx]) < 1e-5


class TestBatchNorm2d:
    def test_train_normalizes(self, rng):
        bn = BatchNorm2d(3)
        x = rng.normal(2.0, 3.0, size=(8, 3, 4, 4))
        y = bn.forward(x, train=True)
        assert np.allclose(y.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        assert np.allclose(y.var(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_update(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        x = rng.normal(1.0, 1.0, size=(16, 2, 4, 4))
        bn.forward(x, train=True)
        assert not np.allclose(bn.running_mean, 0.0)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        bn.running_mean = np.array([1.0, -1.0])
        bn.running_var = np.array([4.0, 9.0])
        x = rng.normal(size=(4, 2, 3, 3))
        y = bn.forward(x, train=False)
        expected = (x - bn.running_mean[None, :, None, None]) / np.sqrt(
            bn.running_var[None, :, None, None] + bn.eps
        )
        assert np.allclose(y, expected)

    def test_gradcheck_train(self, rng):
        bn = BatchNorm2d(3)
        bn.gamma = rng.normal(1.0, 0.1, 3)
        bn.beta = rng.normal(0.0, 0.1, 3)
        x = rng.normal(size=(4, 3, 3, 3))
        assert _layer_gradcheck(bn, x, rng) < 1e-4

    def test_input_grad_numeric_train(self, rng):
        bn = BatchNorm2d(2)
        x = rng.normal(size=(3, 2, 2, 2))
        dout = rng.normal(size=x.shape)
        bn.forward(x, train=True)
        dx = bn.backward(dout)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (2, 1, 1, 1)]:
            x2 = x.copy()
            x2[idx] += eps
            up = (bn.forward(x2, train=True) * dout).sum()
            x2[idx] -= 2 * eps
            down = (bn.forward(x2, train=True) * dout).sum()
            assert abs((up - down) / (2 * eps) - dx[idx]) < 1e-5

    def test_state_keys(self):
        bn = BatchNorm2d(4)
        assert set(bn.state()) == {"running_mean", "running_var"}


class TestLayerNorm:
    def test_normalizes_rows(self, rng):
        ln = LayerNorm(8)
        x = rng.normal(3.0, 2.0, size=(5, 8))
        y = ln.forward(x)
        assert np.allclose(y.mean(axis=-1), 0.0, atol=1e-10)

    def test_gradcheck(self, rng):
        ln = LayerNorm(6)
        ln.gamma = rng.normal(1.0, 0.1, 6)
        x = rng.normal(size=(4, 6))
        assert _layer_gradcheck(ln, x, rng) < 1e-5

    def test_3d_input(self, rng):
        ln = LayerNorm(4)
        x = rng.normal(size=(2, 3, 4))
        y = ln.forward(x)
        assert y.shape == x.shape
        dx = ln.backward(np.ones_like(y))
        assert dx.shape == x.shape

    def test_input_grad_numeric(self, rng):
        ln = LayerNorm(5)
        x = rng.normal(size=(2, 5))
        dout = rng.normal(size=x.shape)
        ln.forward(x)
        dx = ln.backward(dout)
        eps = 1e-6
        for idx in [(0, 0), (1, 3)]:
            x2 = x.copy()
            x2[idx] += eps
            up = (ln.forward(x2) * dout).sum()
            x2[idx] -= 2 * eps
            down = (ln.forward(x2) * dout).sum()
            assert abs((up - down) / (2 * eps) - dx[idx]) < 1e-5


class TestPooling:
    def test_avg_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        y = AvgPool2d(2).forward(x)
        assert np.allclose(y[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        y = MaxPool2d(2).forward(x)
        assert np.allclose(y[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_backward(self, rng):
        p = AvgPool2d(2)
        x = rng.normal(size=(2, 3, 4, 4))
        y = p.forward(x)
        dx = p.backward(np.ones_like(y))
        assert np.allclose(dx, 0.25)

    def test_max_pool_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        p = MaxPool2d(2)
        y = p.forward(x)
        dx = p.backward(np.ones_like(y))
        assert dx.sum() == 4  # one unit per window
        assert dx[0, 0, 1, 1] == 1  # argmax of the first window (value 5)

    def test_indivisible_raises(self, rng):
        with pytest.raises(ValueError, match="divide"):
            MaxPool2d(2).forward(rng.normal(size=(1, 1, 5, 5)))

    def test_macs_output_shape(self):
        m, shape = AvgPool2d(2).macs((3, 8, 8))
        assert m == 0
        assert shape == (3, 4, 4)


class TestGlobalAvgPool:
    def test_forward(self, rng):
        g = GlobalAvgPool2d()
        x = rng.normal(size=(2, 3, 4, 4))
        assert np.allclose(g.forward(x), x.mean(axis=(2, 3)))

    def test_backward(self, rng):
        g = GlobalAvgPool2d()
        x = rng.normal(size=(2, 3, 4, 4))
        g.forward(x)
        dx = g.backward(np.ones((2, 3)))
        assert np.allclose(dx, 1.0 / 16)


class TestFlatten:
    def test_roundtrip(self, rng):
        f = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        y = f.forward(x)
        assert y.shape == (2, 48)
        assert f.backward(y).shape == x.shape


class TestDropout:
    def test_eval_identity(self, rng):
        d = Dropout(0.5, rng)
        x = rng.normal(size=(4, 8))
        assert np.allclose(d.forward(x, train=False), x)

    def test_train_scales(self, rng):
        d = Dropout(0.5, rng)
        x = np.ones((1000, 10))
        y = d.forward(x, train=True)
        # inverted dropout keeps the expectation
        assert abs(y.mean() - 1.0) < 0.1

    def test_backward_uses_same_mask(self, rng):
        d = Dropout(0.5, rng)
        x = rng.normal(size=(10, 10))
        y = d.forward(x, train=True)
        dx = d.backward(np.ones_like(x))
        assert np.allclose((y == 0), (dx == 0))

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)
