"""DoC tracker (Eq. 1) and cell-activeness tracker (§4.1)."""

import numpy as np
import pytest

from repro.core.activeness import ActivenessTracker, cell_gradient_norms
from repro.core.doc import DoCTracker
from repro.nn import mlp


class TestDoCTracker:
    def test_not_ready_before_window(self):
        doc = DoCTracker(gamma=3, delta=2)
        for loss in [5, 4, 3, 2]:
            doc.update(loss)
        assert not doc.ready()
        assert doc.value() is None

    def test_formula_matches_hand_computation(self):
        doc = DoCTracker(gamma=2, delta=2)
        losses = [10.0, 8.0, 7.0, 6.5, 6.3]
        for l in losses:
            doc.update(l)
        # j runs over the last gamma=2 positions: j=3, j=4
        expected = ((losses[1] - losses[3]) / 2 + (losses[2] - losses[4]) / 2) / 2
        assert doc.value() == pytest.approx(expected)

    def test_flat_curve_triggers(self):
        doc = DoCTracker(gamma=2, delta=2)
        for _ in range(10):
            doc.update(1.0)
        assert doc.should_transform(beta=0.003)

    def test_steep_curve_does_not_trigger(self):
        doc = DoCTracker(gamma=2, delta=2)
        for i in range(10):
            doc.update(10.0 - i)  # slope 1 per round
        assert not doc.should_transform(beta=0.003)

    def test_rising_loss_triggers(self):
        """Negative DoC (loss getting worse) also counts as 'not improving'."""
        doc = DoCTracker(gamma=2, delta=2)
        for i in range(10):
            doc.update(1.0 + 0.1 * i)
        assert doc.should_transform(beta=0.003)

    def test_reset_clears(self):
        doc = DoCTracker(gamma=2, delta=2)
        for _ in range(6):
            doc.update(1.0)
        doc.reset()
        assert not doc.ready()
        assert doc.history == []

    def test_bad_params(self):
        with pytest.raises(ValueError):
            DoCTracker(0, 2)
        with pytest.raises(ValueError):
            DoCTracker(2, 0)

    def test_larger_beta_triggers_earlier(self):
        """Paper: 'a larger threshold will make FedTrans transform more
        frequently' — a slope that fails beta=0.01 passes beta=0.5."""
        doc = DoCTracker(gamma=2, delta=2)
        for i in range(10):
            doc.update(10.0 - 0.2 * i)  # DoC = 0.2
        assert not doc.should_transform(beta=0.01)
        assert doc.should_transform(beta=0.5)


class TestActiveness:
    def test_cell_gradient_norms(self, rng):
        m = mlp((6,), 3, rng, width=4)
        grad = {k: np.ones_like(v) for k, v in m.params().items()}
        norms = cell_gradient_norms(m, grad)
        assert set(norms) == {c.cell_id for c in m.cells}
        for cell in m.cells:
            g2 = sum(v.size for k, v in cell.params().items())
            w2 = sum(float((v**2).sum()) for v in cell.params().values())
            assert norms[cell.cell_id] == pytest.approx(np.sqrt(g2) / np.sqrt(w2))

    def test_missing_grad_keys_tolerated(self, rng):
        m = mlp((6,), 3, rng, width=4)
        norms = cell_gradient_norms(m, {})
        assert all(v == 0.0 for v in norms.values())

    def test_window_mean(self, rng):
        m = mlp((6,), 3, rng, width=4)
        tracker = ActivenessTracker(window=2)
        g1 = {k: np.ones_like(v) for k, v in m.params().items()}
        g2 = {k: np.zeros_like(v) for k, v in m.params().items()}
        tracker.update(m, g1)
        a1 = tracker.activeness(m)
        tracker.update(m, g2)
        a2 = tracker.activeness(m)
        for cid in a2:
            assert a2[cid] == pytest.approx(a1[cid] / 2)

    def test_window_evicts(self, rng):
        m = mlp((6,), 3, rng, width=4)
        tracker = ActivenessTracker(window=1)
        tracker.update(m, {k: np.ones_like(v) for k, v in m.params().items()})
        tracker.update(m, {k: np.zeros_like(v) for k, v in m.params().items()})
        assert all(v == 0.0 for v in tracker.activeness(m).values())

    def test_only_transformable_cells_reported(self, rng):
        m = mlp((6,), 3, rng, width=4)
        tracker = ActivenessTracker(window=3)
        tracker.update(m, {k: np.ones_like(v) for k, v in m.params().items()})
        act = tracker.activeness(m)
        assert set(act) == {c.cell_id for c in m.transformable_cells()}

    def test_ready_and_reset(self, rng):
        m = mlp((6,), 3, rng, width=4)
        tracker = ActivenessTracker(window=3)
        assert not tracker.ready()
        tracker.update(m, {k: np.ones_like(v) for k, v in m.params().items()})
        assert tracker.ready()
        tracker.reset()
        assert not tracker.ready()

    def test_bad_window(self):
        with pytest.raises(ValueError):
            ActivenessTracker(0)

    def test_normalization_mitigates_scale(self, rng):
        """Activeness is scale-free: scaling weights and grads together
        leaves it unchanged (the gradient-vanishing mitigation)."""
        m = mlp((6,), 3, rng, width=4)
        grad = {k: rng.normal(size=v.shape) for k, v in m.params().items()}
        base = cell_gradient_norms(m, grad)
        for p in m.params().values():
            p *= 10.0
        scaled = cell_gradient_norms(m, {k: 10 * g for k, g in grad.items()})
        for cid in base:
            assert scaled[cid] == pytest.approx(base[cid])
