"""Checkpointing, log export, and the CLI."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.fl.export import load_log, log_to_dict, save_log
from repro.nn import mlp, small_cnn, small_resnet, vit_tiny
from repro.nn.serialization import load_model, model_from_spec, model_spec, save_model


class TestModelCheckpoints:
    @pytest.mark.parametrize(
        "maker,shape",
        [
            (lambda r: mlp((6,), 4, r, width=8), (6,)),
            (lambda r: small_cnn((1, 8, 8), 4, r, width=4), (1, 8, 8)),
            (lambda r: small_resnet((1, 8, 8), 4, r, width=4), (1, 8, 8)),
            (
                lambda r: vit_tiny((1, 8, 8), 4, r, dim=8, heads=2, mlp_hidden=12, patch=4),
                (1, 8, 8),
            ),
        ],
    )
    def test_roundtrip_preserves_predictions(self, maker, shape, rng, tmp_path):
        m = maker(rng)
        x = rng.normal(size=(4,) + shape)
        path = tmp_path / "model.npz"
        save_model(m, path)
        loaded = load_model(path)
        assert np.allclose(m.predict(x), loaded.predict(x), atol=1e-12)
        assert loaded.model_id == m.model_id
        assert loaded.macs() == m.macs()

    def test_roundtrip_transformed_model(self, rng, tmp_path):
        """Widened widths, inserted cells, and lineage metadata survive."""
        m = mlp((6,), 4, rng, width=8)
        cell = m.transformable_cells()[0]
        m.widen_cell(cell.cell_id, 2.0, rng, round_idx=5)
        m.deepen_after(cell.cell_id, rng, round_idx=9)
        path = tmp_path / "grown.npz"
        save_model(m, path)
        loaded = load_model(path)
        x = rng.normal(size=(4, 6))
        assert np.allclose(m.predict(x), loaded.predict(x), atol=1e-12)
        assert [c.cell_id for c in loaded.cells] == [c.cell_id for c in m.cells]
        assert loaded.get_cell(cell.cell_id).widen_count == 1
        assert loaded.get_cell(cell.cell_id).last_op == "deepen"
        assert [h.op for h in loaded.history] == ["widen", "deepen"]

    def test_bn_state_restored(self, rng, tmp_path):
        m = small_cnn((1, 8, 8), 4, rng, width=4)
        m.forward(rng.normal(size=(8, 1, 8, 8)), train=True)  # move running stats
        path = tmp_path / "bn.npz"
        save_model(m, path)
        loaded = load_model(path)
        for k, v in m.state().items():
            assert np.allclose(loaded.state()[k], v)

    def test_spec_roundtrip_without_weights(self, rng):
        m = small_resnet((1, 8, 8), 4, rng, width=4)
        rebuilt = model_from_spec(model_spec(m))
        assert rebuilt.macs() == m.macs()
        assert rebuilt.num_params() == m.num_params()

    def test_bad_format_rejected(self, rng):
        m = mlp((6,), 4, rng, width=8)
        spec = model_spec(m)
        spec["format"] = 99
        with pytest.raises(ValueError, match="unsupported"):
            model_from_spec(spec)


class TestLogExport:
    def _tiny_log(self):
        from repro.bench import active_profile, build_dataset, run_method

        profile = active_profile("femnist_like").with_(rounds=8, eval_every=4, scale=0.004)
        ds = build_dataset(profile, seed=0)
        return run_method("fedtrans", ds, profile, seed=0).log

    def test_dict_fields(self):
        log = self._tiny_log()
        d = log_to_dict(log)
        assert d["strategy"] == "fedtrans"
        assert len(d["rounds"]) == len(log.rounds)
        assert len(d["evals"]) == len(log.evals)
        assert d["summary"]["method"] == "fedtrans"
        json.dumps(d)  # fully serializable

    def test_save_load_roundtrip(self, tmp_path):
        log = self._tiny_log()
        path = tmp_path / "log.json"
        save_log(log, path)
        loaded = load_log(path)
        assert loaded["totals"]["macs"] == log.total_macs

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 2}')
        with pytest.raises(ValueError, match="unsupported"):
            load_log(path)


class TestCLI:
    def test_profiles_command(self, capsys):
        assert cli_main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "femnist_like" in out
        assert "tiny" in out

    def test_run_command(self, capsys, tmp_path):
        rc = cli_main(
            [
                "run",
                "--dataset", "femnist_like",
                "--method", "fedavg",
                "--rounds", "4",
                "--seed", "1",
                "--save-log", str(tmp_path / "log.json"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fedavg" in out
        assert (tmp_path / "log.json").exists()

    def test_run_fedtrans_with_checkpoints(self, capsys, tmp_path):
        rc = cli_main(
            [
                "run",
                "--method", "fedtrans",
                "--rounds", "6",
                "--save-models", str(tmp_path / "models"),
            ]
        )
        assert rc == 0
        saved = list((tmp_path / "models").glob("*.npz"))
        assert saved
        loaded = load_model(saved[0])
        assert loaded.macs() > 0

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "--method", "nope"])
