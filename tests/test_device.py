"""Device traces and the latency model."""

import numpy as np
import pytest

from repro.device import (
    DeviceTrace,
    calibrate_capacities,
    client_round_time,
    disparity,
    inference_latency,
    round_completion_time,
    sample_device_traces,
    training_latency,
    transfer_latency,
)


class TestTraces:
    def test_fleet_size(self, rng):
        traces = sample_device_traces(100, rng)
        assert len(traces) == 100
        assert all(t.compute_speed > 0 and t.bandwidth > 0 for t in traces)

    def test_disparity_target_met(self, rng):
        traces = sample_device_traces(500, rng, target_disparity=29.0)
        speeds = np.array([t.compute_speed for t in traces])
        assert disparity(speeds) >= 29.0

    def test_too_few_devices_raises(self, rng):
        with pytest.raises(ValueError):
            sample_device_traces(1, rng)

    def test_disparity_bad_percentile(self):
        with pytest.raises(ValueError):
            disparity(np.array([-1.0, 1.0, 2.0]))

    def test_device_ids_sequential(self, rng):
        traces = sample_device_traces(10, rng)
        assert [t.device_id for t in traces] == list(range(10))

    def test_scaled_copy(self):
        t = DeviceTrace(0, 1e9, 1e6, 5e5)
        s = t.scaled(7e7)
        assert s.capacity_macs == 7e7
        assert s.compute_speed == t.compute_speed


class TestCalibration:
    def test_bounds(self, rng):
        traces = sample_device_traces(50, rng)
        cal = calibrate_capacities(traces, 1000, 32000)
        caps = np.array([t.capacity_macs for t in cal])
        assert caps.min() == pytest.approx(1000, rel=1e-9)
        assert caps.max() == pytest.approx(32000, rel=1e-9)

    def test_monotone_in_speed(self, rng):
        traces = sample_device_traces(50, rng)
        cal = calibrate_capacities(traces, 100, 10000)
        order_speed = np.argsort([t.compute_speed for t in cal])
        caps = np.array([t.capacity_macs for t in cal])
        assert np.all(np.diff(caps[order_speed]) >= 0)

    def test_bad_range_raises(self, rng):
        traces = sample_device_traces(5, rng)
        with pytest.raises(ValueError):
            calibrate_capacities(traces, 1000, 100)
        with pytest.raises(ValueError):
            calibrate_capacities(traces, 0, 100)


class TestLatency:
    def _dev(self):
        return DeviceTrace(0, compute_speed=1e6, bandwidth=1e3, capacity_macs=1e9)

    def test_inference(self):
        assert inference_latency(2_000_000, self._dev()) == pytest.approx(2.0)

    def test_training(self):
        assert training_latency(3000, 100, self._dev()) == pytest.approx(0.3)

    def test_transfer(self):
        assert transfer_latency(5000, self._dev()) == pytest.approx(5.0)

    def test_round_time_composition(self):
        dev = self._dev()
        rt = client_round_time(dev, model_macs=1000, model_bytes=500, batch_size=10, local_steps=2)
        expected = 0.5 + (3 * 1000 * 20) / 1e6 + 0.5
        assert rt == pytest.approx(expected)

    def test_round_completion_is_max(self):
        assert round_completion_time([1.0, 5.0, 2.0]) == 5.0

    def test_round_completion_empty_raises(self):
        with pytest.raises(ValueError):
            round_completion_time([])

    def test_faster_device_lower_latency(self, rng):
        slow = DeviceTrace(0, 1e6, 1e6, 1e9)
        fast = DeviceTrace(1, 1e8, 1e6, 1e9)
        assert inference_latency(1e6, fast) < inference_latency(1e6, slow)
