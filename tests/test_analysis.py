"""repro-lint rule engine + runtime sanitizer (repro.analysis).

Static side: every rule RL001-RL009 gets a violating fixture snippet and
its compliant rewrite (linted in-memory under a virtual path, which is
what drives rule scoping), plus pragma suppression semantics and the
CLI.  The whole repo tree must lint clean with zero suppressions.

Dynamic side: the ``published()`` read-only guard and the
version-vs-fingerprint cross-check, including an intentionally injected
write-after-publish and a missed ``bump_version()`` detected on all
three executor backends — and the golden fixture staying bit-identical
with the sanitizer on.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from textwrap import dedent

import numpy as np
import pytest

from repro.analysis import RULES, RULES_BY_ID, lint_paths, lint_source, sanitize
from repro.analysis.lint import main as lint_main
from repro.analysis.sanitize import SanitizerError, VersionWatch, model_fingerprint
from repro.baselines import fedavg
from repro.fl import Coordinator, CoordinatorConfig
from repro.fl.executor import ProcessPoolRoundExecutor
from repro.nn import mlp

from test_hotpath import GOLDEN, TRAINER, _clients, _digest, _flat_dataset, _golden_run

REPO = Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def _sanitizer_state():
    """Never leak sanitizer state (module flag or env var) across tests."""
    prev_enabled = sanitize.sanitizer_enabled()
    prev_env = os.environ.get("REPRO_SANITIZE")
    yield
    sanitize.set_sanitizer(prev_enabled)
    if prev_env is None:
        os.environ.pop("REPRO_SANITIZE", None)
    else:
        os.environ["REPRO_SANITIZE"] = prev_env


def _lint(src: str, rel: str = "src/repro/fl/fixture.py"):
    return lint_source(dedent(src), rel)


def _ids(report) -> list[str]:
    return [v.rule_id for v in report.violations]


# ----------------------------------------------------------------------
# RL001 no-global-rng
# ----------------------------------------------------------------------
class TestRL001:
    def test_module_level_np_random_fires(self):
        report = _lint(
            """
            import numpy as np
            noise = np.random.rand(3)
            """
        )
        assert _ids(report) == ["RL001"]

    def test_unseeded_default_rng_fires(self):
        report = _lint(
            """
            import numpy as np
            rng = np.random.default_rng()
            """
        )
        assert _ids(report) == ["RL001"]

    def test_stdlib_random_fires(self):
        report = _lint(
            """
            import random
            def shuffle_clients(xs):
                random.shuffle(xs)
            """
        )
        assert _ids(report) == ["RL001"]

    def test_from_import_random_fires(self):
        report = _lint(
            """
            from random import shuffle
            def shuffle_clients(xs):
                shuffle(xs)
            """
        )
        assert _ids(report) == ["RL001"]

    def test_compliant_rewrite_is_quiet(self):
        report = _lint(
            """
            import numpy as np

            def draw(seed: int, rng: np.random.Generator) -> np.ndarray:
                ss = np.random.SeedSequence(seed, spawn_key=(1, 2, 3))
                local = np.random.default_rng(ss)
                return local.normal(size=3) + rng.normal(size=3)
            """
        )
        assert _ids(report) == []

    def test_generator_annotation_alone_is_fine(self):
        report = _lint(
            """
            import numpy as np

            def f(rng: np.random.Generator) -> None:
                rng.shuffle([1, 2])
            """
        )
        assert _ids(report) == []


# ----------------------------------------------------------------------
# RL002 no-wallclock
# ----------------------------------------------------------------------
class TestRL002:
    BAD = """
        import time
        def round_time():
            return time.time()
        """

    def test_wallclock_in_fl_fires(self):
        assert _ids(_lint(self.BAD, "src/repro/fl/pacing.py")) == ["RL002"]

    def test_wallclock_in_core_fires(self):
        assert _ids(_lint(self.BAD, "src/repro/core/doc.py")) == ["RL002"]

    def test_out_of_scope_path_is_quiet(self):
        # Benchmark harnesses may measure wall time; only fl/ + core/ ban it.
        assert _ids(_lint(self.BAD, "benchmarks/bench_wall.py")) == []

    def test_from_import_monotonic_fires(self):
        report = _lint(
            """
            from time import monotonic
            def tick():
                return monotonic()
            """,
            "src/repro/fl/engine.py",
        )
        assert _ids(report) == ["RL002"]

    def test_datetime_now_fires(self):
        report = _lint(
            """
            from datetime import datetime
            def stamp():
                return datetime.now()
            """,
            "src/repro/core/log.py",
        )
        assert _ids(report) == ["RL002"]

    def test_virtual_time_rewrite_is_quiet(self):
        report = _lint(
            """
            def round_time(clock):
                return clock.now()
            """,
            "src/repro/fl/pacing.py",
        )
        assert _ids(report) == []


# ----------------------------------------------------------------------
# RL003 dtype-hygiene
# ----------------------------------------------------------------------
class TestRL003:
    def test_hardcoded_np_dtypes_fire(self):
        report = _lint(
            """
            import numpy as np
            def kernel(x):
                acc = x.astype(np.float64)
                buf = np.zeros(4, dtype=np.float32)
                return acc, buf
            """,
            "src/repro/nn/kernels.py",
        )
        assert _ids(report) == ["RL003", "RL003"]

    def test_dtype_float_keyword_fires(self):
        report = _lint(
            """
            import numpy as np
            def kernel():
                return np.zeros(4, dtype=float)
            """,
            "src/repro/nn/kernels.py",
        )
        assert _ids(report) == ["RL003"]

    def test_compute_routed_rewrite_is_quiet(self):
        report = _lint(
            """
            import numpy as np
            from repro.nn.compute import accum_dtype, compute_dtype
            def kernel(x):
                acc = x.astype(accum_dtype())
                buf = np.zeros(4, dtype=compute_dtype())
                return acc, buf
            """,
            "src/repro/nn/kernels.py",
        )
        assert _ids(report) == []

    def test_outside_nn_is_quiet(self):
        report = _lint(
            """
            import numpy as np
            x = np.zeros(3, dtype=np.float64)
            """,
            "src/repro/fl/metrics.py",
        )
        assert _ids(report) == []

    def test_compute_module_itself_is_exempt(self):
        report = _lint(
            """
            import numpy as np
            ACCUM = np.float64
            """,
            "src/repro/nn/compute.py",
        )
        assert _ids(report) == []


# ----------------------------------------------------------------------
# RL004 version-bump
# ----------------------------------------------------------------------
class TestRL004:
    def test_write_without_bump_fires(self):
        report = _lint(
            """
            class FooCell:
                def reset(self):
                    self.params()["w"][...] = 0.0
            """,
            "src/repro/nn/fixture.py",
        )
        assert _ids(report) == ["RL004"]

    def test_multi_exit_flags_only_unbumped_path(self):
        report = _lint(
            """
            class FooCell:
                def scale(self, factor):
                    live = self.params()
                    for k in live:
                        live[k][...] *= factor
                    if factor == 0.0:
                        return None
                    self.bump_version()
                    return self
            """,
            "src/repro/nn/fixture.py",
        )
        assert _ids(report) == ["RL004"]
        assert len(report.violations) == 1
        # the flagged line is the early return, not the compliant one
        assert "return None" in dedent(
            """
                    if factor == 0.0:
                        return None
            """
        )

    def test_bump_on_every_exit_is_quiet(self):
        report = _lint(
            """
            class FooCell:
                def scale(self, factor):
                    live = self.params()
                    for k in live:
                        live[k][...] *= factor
                    self.bump_version()
                    if factor == 0.0:
                        return None
                    return self
            """,
            "src/repro/nn/fixture.py",
        )
        assert _ids(report) == []

    def test_raise_exits_may_skip_the_bump(self):
        report = _lint(
            """
            class BarCell:
                def set(self, tree):
                    live = self.params()
                    for k, v in tree.items():
                        if k not in live:
                            raise KeyError(k)
                        live[k][...] = v
                    self.bump_version()
            """,
            "src/repro/nn/fixture.py",
        )
        assert _ids(report) == []

    def test_bump_only_inside_loop_is_not_enough(self):
        # The loop may run zero times; the conservative rule wants the bump
        # on the fall-through path.
        report = _lint(
            """
            class QuxCell:
                def jitter(self, keys):
                    live = self.params()
                    for k in keys:
                        live[k][...] += 1.0
                        self.bump_version()
            """,
            "src/repro/nn/fixture.py",
        )
        assert _ids(report) == ["RL004"]

    def test_state_writes_are_tracked_too(self):
        report = _lint(
            """
            class StatCell:
                def reset_stats(self):
                    st = self.state()
                    st["running_mean"][...] = 0.0
            """,
            "src/repro/nn/fixture.py",
        )
        assert _ids(report) == ["RL004"]

    def test_read_only_methods_are_quiet(self):
        report = _lint(
            """
            class FooCell:
                def norm(self):
                    live = self.params()
                    return sum(float((v ** 2).sum()) for v in live.values())
            """,
            "src/repro/nn/fixture.py",
        )
        assert _ids(report) == []

    def test_non_cell_classes_are_out_of_scope(self):
        report = _lint(
            """
            class Optimizer:
                def step(self):
                    self.params()["w"][...] = 0.0
            """,
            "src/repro/nn/fixture.py",
        )
        assert _ids(report) == []


# ----------------------------------------------------------------------
# RL005 hotpath-alloc
# ----------------------------------------------------------------------
class TestRL005:
    def test_alloc_in_marked_function_fires(self):
        report = _lint(
            """
            import numpy as np

            # repro: hotpath
            def forward(x):
                out = np.empty(x.shape)
                np.maximum(x, 0.0, out=out)
                return out
            """,
            "src/repro/nn/kern.py",
        )
        assert _ids(report) == ["RL005"]

    def test_unmarked_function_may_allocate(self):
        report = _lint(
            """
            import numpy as np

            def setup(shape):
                return np.zeros(shape)
            """,
            "src/repro/nn/kern.py",
        )
        assert _ids(report) == []

    def test_pooled_rewrite_is_quiet(self):
        report = _lint(
            """
            import numpy as np

            # repro: hotpath
            def forward(x, ws):
                out = ws.get("out", x.shape, x.dtype)
                np.maximum(x, 0.0, out=out)
                return out
            """,
            "src/repro/nn/kern.py",
        )
        assert _ids(report) == []

    def test_marker_on_def_line_works(self):
        report = _lint(
            """
            import numpy as np

            def forward(x):  # repro: hotpath
                return np.concatenate([x, x])
            """,
            "src/repro/nn/kern.py",
        )
        assert _ids(report) == ["RL005"]


# ----------------------------------------------------------------------
# RL006 shm-lifecycle
# ----------------------------------------------------------------------
class TestRL006:
    def test_create_without_unlink_fires(self):
        report = _lint(
            """
            from multiprocessing import shared_memory

            class Arena:
                def create(self, name, size):
                    seg = shared_memory.SharedMemory(name=name, create=True, size=size)
                    return seg
            """
        )
        assert _ids(report) == ["RL006"]

    def test_unlink_in_finally_is_quiet(self):
        report = _lint(
            """
            from multiprocessing import shared_memory

            class Arena:
                def run_once(self, name, size):
                    seg = shared_memory.SharedMemory(name=name, create=True, size=size)
                    try:
                        return bytes(seg.buf)
                    finally:
                        seg.close()
                        seg.unlink()
            """
        )
        assert _ids(report) == []

    def test_finalizer_backstop_is_quiet(self):
        report = _lint(
            """
            import weakref
            from multiprocessing import shared_memory

            def _unlink_all(segs):
                for seg in segs.values():
                    seg.close()
                    seg.unlink()

            class Arena:
                def __init__(self):
                    self._segs = {}
                    self._fin = weakref.finalize(self, _unlink_all, self._segs)

                def create(self, name, size):
                    seg = shared_memory.SharedMemory(name=name, create=True, size=size)
                    self._segs[name] = seg
                    return seg

                def state_dict(self):
                    return {}

                def load_state_dict(self, payload):
                    pass
            """
        )
        assert _ids(report) == []

    def test_attach_only_is_out_of_scope(self):
        report = _lint(
            """
            from multiprocessing import shared_memory

            def attach(name):
                return shared_memory.SharedMemory(name=name)
            """
        )
        assert _ids(report) == []


# ----------------------------------------------------------------------
# RL007 deprecated-import
# ----------------------------------------------------------------------
class TestRL007:
    def test_absolute_import_fires(self):
        report = _lint("from repro.fl.selection import select_uniform\n")
        assert _ids(report) == ["RL007"]

    def test_from_package_alias_fires(self):
        report = _lint("from repro.fl import selection\n")
        assert _ids(report) == ["RL007"]

    def test_relative_import_fires(self):
        report = _lint(
            "from .selection import select_uniform\n", "src/repro/fl/consumer.py"
        )
        assert _ids(report) == ["RL007"]

    def test_scheduling_replacement_is_quiet(self):
        report = _lint(
            "from repro.fl.scheduling import ClientSelector, uniform_choice\n"
        )
        assert _ids(report) == []


# ----------------------------------------------------------------------
# RL008 stateful-coverage
# ----------------------------------------------------------------------
class TestRL008:
    BAD = """\
        class Meter:
            def __init__(self):
                self.hits = 0
                self.log = []

            def observe(self, x):
                self.hits += 1
                self.log.append(x)
    """

    def test_attr_mutation_fires(self):
        assert _ids(_lint(self.BAD)) == ["RL008"]

    def test_fires_in_core_scope_too(self):
        assert _ids(_lint(self.BAD, "src/repro/core/meter.py")) == ["RL008"]

    def test_out_of_scope_is_quiet(self):
        assert _ids(_lint(self.BAD, "src/repro/nn/meter.py")) == []

    def test_container_mutator_call_fires(self):
        report = _lint(
            """\
            class Buf:
                def __init__(self):
                    self.items = {}

                def put(self, k, v):
                    self.items.setdefault(k, []).append(v)
            """
        )
        assert _ids(report) == ["RL008"]

    def test_in_body_protocol_satisfies(self):
        report = _lint(
            """\
            class Meter:
                def __init__(self):
                    self.hits = 0

                def observe(self, x):
                    self.hits += 1

                def state_dict(self):
                    return {"hits": self.hits}

                def load_state_dict(self, payload):
                    self.hits = int(payload["hits"])
            """
        )
        assert _ids(report) == []

    def test_inherited_protocol_does_not_satisfy(self):
        # The registration convention requires both methods in the class's
        # OWN body: a subclass with extra mutable fields that leans on a
        # parent payload silently drops those fields from checkpoints.
        report = _lint(
            """\
            from repro.stateful import Stateful

            class Base(Stateful):
                def state_dict(self):
                    return {}

                def load_state_dict(self, payload):
                    pass

            class Sub(Base):
                def observe(self, x):
                    self.extra = x
            """
        )
        assert _ids(report) == ["RL008"]

    def test_constructor_and_local_mutation_are_quiet(self):
        report = _lint(
            """\
            class Pure:
                def __init__(self):
                    self.k = 1

                def f(self, xs):
                    out = []
                    for x in xs:
                        out.append(x * self.k)
                    return out
            """
        )
        assert _ids(report) == []

    def test_one_violation_per_class(self):
        report = _lint(
            """\
            class Meter:
                def a(self):
                    self.x = 1

                def b(self):
                    self.y = 2
            """
        )
        assert _ids(report) == ["RL008"]


# ----------------------------------------------------------------------
# RL009 silent-except
# ----------------------------------------------------------------------
class TestRL009:
    def test_bare_except_pass_fires(self):
        report = _lint(
            """\
            def f():
                try:
                    g()
                except:
                    pass
            """
        )
        assert _ids(report) == ["RL009"]

    def test_broad_except_pass_fires(self):
        for caught in ("Exception", "BaseException"):
            report = _lint(
                f"""\
                def f():
                    try:
                        g()
                    except {caught}:
                        pass
                """
            )
            assert _ids(report) == ["RL009"], caught

    def test_broad_tuple_member_fires(self):
        report = _lint(
            """\
            def f():
                try:
                    g()
                except (OSError, Exception):
                    ...
            """
        )
        assert _ids(report) == ["RL009"]

    def test_narrow_except_pass_is_quiet(self):
        report = _lint(
            """\
            def f():
                try:
                    g()
                except FileNotFoundError:
                    pass
            """
        )
        assert _ids(report) == []

    def test_observable_handler_is_quiet(self):
        report = _lint(
            """\
            import logging

            def f():
                try:
                    g()
                except Exception as err:
                    logging.getLogger(__name__).warning("g failed: %s", err)
            """
        )
        assert _ids(report) == []

    def test_reraise_is_quiet(self):
        report = _lint(
            """\
            def f():
                try:
                    g()
                except Exception:
                    raise
            """
        )
        assert _ids(report) == []

    def test_outside_fl_is_out_of_scope(self):
        report = _lint(
            """\
            def f():
                try:
                    g()
                except Exception:
                    pass
            """,
            "src/repro/nn/fixture.py",
        )
        assert _ids(report) == []


# ----------------------------------------------------------------------
# pragma suppression
# ----------------------------------------------------------------------
class TestPragmas:
    def test_same_line_pragma_with_reason_suppresses(self):
        report = _lint(
            """
            import numpy as np
            x = np.random.rand(3)  # repro-lint: disable=RL001 fixture noise source
            """
        )
        assert _ids(report) == []
        assert report.suppressed == 1

    def test_preceding_line_pragma_suppresses(self):
        report = _lint(
            """
            import numpy as np
            # repro-lint: disable=RL001 fixture noise source
            x = np.random.rand(3)
            """
        )
        assert _ids(report) == []
        assert report.suppressed == 1

    def test_multiple_ids_in_one_pragma(self):
        report = _lint(
            """
            import numpy as np

            # repro: hotpath
            def f():
                # repro-lint: disable=RL001,RL005 fixture exercises both rules
                return np.random.rand(3), np.empty(3)
            """,
            "src/repro/nn/kern.py",
        )
        assert _ids(report) == []
        assert report.suppressed == 2

    def test_bare_pragma_reports_rl000_and_suppresses_nothing(self):
        report = _lint(
            """
            import numpy as np
            x = np.random.rand(3)  # repro-lint: disable=RL001
            """
        )
        assert sorted(_ids(report)) == ["RL000", "RL001"]
        assert report.suppressed == 0

    def test_wrong_rule_id_does_not_suppress(self):
        report = _lint(
            """
            import numpy as np
            x = np.random.rand(3)  # repro-lint: disable=RL003 wrong rule named
            """
        )
        assert _ids(report) == ["RL001"]
        assert report.suppressed == 0


# ----------------------------------------------------------------------
# engine plumbing + CLI
# ----------------------------------------------------------------------
class TestEngineAndCli:
    def test_rule_registry_is_complete(self):
        ids = [r.rule_id for r in RULES]
        assert ids == sorted(ids)
        assert set(RULES_BY_ID) == {
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
            "RL008", "RL009",
        }
        assert all(r.summary for r in RULES)

    def test_syntax_error_is_reported_not_raised(self):
        report = _lint("def broken(:\n")
        assert [v.rule_name for v in report.violations] == ["syntax-error"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "nn" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        assert lint_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out and "bad.py:2" in out

        bad.write_text("import numpy as np\nrng = np.random.default_rng(0)\n")
        assert lint_main([str(tmp_path)]) == 0

    def test_cli_select_restricts_rules(self, tmp_path):
        f = tmp_path / "f.py"
        f.write_text("import numpy as np\nx = np.random.rand(3)\n")
        assert lint_main([str(f)]) == 1
        assert lint_main(["--select", "RL003", str(f)]) == 0
        assert lint_main(["--select", "RL999", str(f)]) == 2

    def test_cli_usage_errors(self, capsys):
        assert lint_main([]) == 2
        assert lint_main(["definitely/not/a/path.py"]) == 2
        assert lint_main(["--list-rules"]) == 0
        assert "RL004" in capsys.readouterr().out

    def test_repo_tree_lints_clean_with_zero_suppressions(self):
        report = lint_paths(
            [REPO / "src", REPO / "benchmarks", REPO / "examples"]
        )
        assert report.format_lines() == []
        assert report.suppressed == 0


# ----------------------------------------------------------------------
# runtime sanitizer: unit behavior
# ----------------------------------------------------------------------
def _one_model():
    rng = np.random.default_rng(0)
    return mlp((8,), 4, rng, width=8)


class TestSanitizerUnits:
    def test_published_guard_blocks_writes_and_restores(self):
        sanitize.set_sanitizer(True)
        m = _one_model()
        arr = next(iter(m.params().values()))
        with sanitize.published({m.model_id: m}):
            with pytest.raises(ValueError, match="read-only"):
                arr[0, 0] = 99.0
        arr[0, 0] = 1.0  # writable again

    def test_published_is_noop_when_disabled(self):
        sanitize.set_sanitizer(False)
        m = _one_model()
        arr = next(iter(m.params().values()))
        with sanitize.published({m.model_id: m}):
            arr[0, 0] = 1.0  # allowed: sanitizer off

    def test_published_nests_and_preserves_prefrozen_views(self):
        sanitize.set_sanitizer(True)
        m = _one_model()
        arr = next(iter(m.params().values()))
        arr.flags.writeable = False  # pre-frozen (like a worker shm view)
        with sanitize.published({m.model_id: m}):
            with sanitize.published({m.model_id: m}):
                pass
        assert not arr.flags.writeable  # pre-frozen stays frozen
        arr.flags.writeable = True

    def test_fingerprint_covers_params_and_state(self):
        m = _one_model()
        fp0 = model_fingerprint(m)
        arr = next(iter(m.params().values()))
        old = float(arr[0, 0])
        arr[0, 0] = old + 1.0
        assert model_fingerprint(m) != fp0
        arr[0, 0] = old
        assert model_fingerprint(m) == fp0

    def test_version_watch_detects_missed_bump(self):
        sanitize.set_sanitizer(True)
        m = _one_model()
        watch = VersionWatch()
        watch.check(m)
        next(iter(m.params().values()))[0, 0] += 1.0  # no bump_version()
        with pytest.raises(SanitizerError, match="without bump_version"):
            watch.check(m)

    def test_version_watch_accepts_bumped_writes(self):
        sanitize.set_sanitizer(True)
        m = _one_model()
        watch = VersionWatch()
        watch.check(m)
        m.set_params({k: v + 1.0 for k, v in m.params().items()})  # bumps
        watch.check(m)  # no error

    def test_config_requires_eval_cache(self):
        with pytest.raises(ValueError, match="sanitize=True requires eval_cache"):
            CoordinatorConfig(sanitize=True, eval_cache=False)
        with pytest.raises(ValueError, match="sanitize must be a bool"):
            CoordinatorConfig(sanitize="yes")


# ----------------------------------------------------------------------
# runtime sanitizer: end-to-end on every executor backend
# ----------------------------------------------------------------------
def _coordinator(backend: str, rounds: int = 2) -> Coordinator:
    ds = _flat_dataset(num_clients=8)
    clients = _clients(ds, num_slow=0)
    model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(0), width=8)
    over = {} if backend == "serial" else {"executor": backend, "max_workers": 2}
    cfg = CoordinatorConfig(
        rounds=rounds,
        clients_per_round=4,
        trainer=TRAINER,
        eval_every=2,
        seed=0,
        sanitize=True,
        **over,
    )
    return Coordinator(fedavg(model.clone(keep_id=True)), clients, cfg)


class TestSanitizerEndToEnd:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_write_after_publish_detected(self, backend, monkeypatch):
        """A work function that writes into a published server model raises
        at the offending statement on shared-memory backends."""
        import repro.fl.executor as ex_mod

        orig = ex_mod._eval_task

        def evil(models, clients_by_id, task, batch_size):
            arr = next(iter(models[task.model_ids[0]].params().values()))
            arr[0, 0] += 1.0  # the race the guard exists to catch
            return orig(models, clients_by_id, task, batch_size)

        monkeypatch.setattr(ex_mod, "_eval_task", evil)
        coord = _coordinator(backend)
        try:
            with pytest.raises(ValueError, match="read-only"):
                coord.evaluate(0, 0.0)
        finally:
            coord.close()

    def test_write_after_publish_detected_process(self, monkeypatch):
        """On the process backend the guard protects the coordinator-side
        originals between publish and drain; an injected coordinator-side
        write mid-round raises the same way."""
        orig = ProcessPoolRoundExecutor._publish

        def evil(self, models, fault_attempt=0):
            arr = next(iter(next(iter(models.values())).params().values()))
            arr[0, 0] += 1.0
            return orig(self, models, fault_attempt=fault_attempt)

        monkeypatch.setattr(ProcessPoolRoundExecutor, "_publish", evil)
        coord = _coordinator("process")
        try:
            with pytest.raises(ValueError, match="read-only"):
                coord.evaluate(0, 0.0)
        finally:
            coord.close()

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_missed_bump_detected(self, backend):
        """An in-place model mutation without bump_version() trips the
        fingerprint cross-check at the next cache read on every backend."""
        coord = _coordinator(backend)
        try:
            coord.evaluate(0, 0.0)
            model = coord.strategy.model
            next(iter(model.params().values()))[0, 0] += 1.0  # no bump
            with pytest.raises(SanitizerError, match="without bump_version"):
                coord.evaluate(1, 0.0)
        finally:
            coord.close()

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_golden_run_bit_identical_under_sanitizer(self, backend):
        """REPRO_SANITIZE changes nothing about a clean run: the default
        golden fixture digest is reproduced exactly, violation-free."""
        with open(GOLDEN) as f:
            golden = json.load(f)
        over = {"sanitize": True}
        if backend != "serial":
            over.update(executor=backend, max_workers=2)
        assert _digest(_golden_run("sync", **over)) == golden["sync"]
