"""Columnar fleet store: O(active) views, vectorized selectors, durability.

The contract under test is CONTRACTS.md I12: scheduler tick cost is
O(active), and the default-stack selection stream is bit-identical to the
object-per-client list path the columns replaced.  Every vectorized
re-implementation here is pinned against its scalar/list reference —
same RNG state, same picks, same floats.
"""

import json
from collections import deque

import numpy as np
import pytest

from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import CoordinatorConfig, FLClient, LocalTrainerConfig
from repro.fl.scheduling import (
    AvailabilityAwareSelector,
    FleetStore,
    FleetView,
    OortSelector,
    QuantilePacing,
    RoundTimeStats,
    estimate_round_time,
    make_straggler,
    parse_availability,
    positions_to_rows,
    uniform_choice,
)
from repro.fl.scheduling.availability import (
    BernoulliAvailability,
    DiurnalAvailability,
    TraceAvailability,
)
from repro.nn import mlp

TRAINER = LocalTrainerConfig(batch_size=8, local_steps=5, lr=0.2)


def _clients(n=16, seed=0):
    task = SyntheticTaskConfig(
        num_classes=4,
        input_shape=(8,),
        latent_dim=6,
        teacher_width=12,
        class_sep=3.0,
        seed=seed,
    )
    ds = build_federated_dataset(task, n, mean_samples=25, seed=seed)
    rng = np.random.default_rng(seed)
    return [
        FLClient(
            c.client_id,
            c,
            DeviceTrace(
                c.client_id,
                float(rng.uniform(1e7, 1e9)),
                float(rng.uniform(1e4, 1e6)),
                1e15,
            ),
        )
        for c in ds.clients
    ]


# ----------------------------------------------------------------------
# positions_to_rows / views
# ----------------------------------------------------------------------
def test_positions_to_rows_matches_delete():
    rng = np.random.default_rng(3)
    for _ in range(50):
        n = int(rng.integers(5, 200))
        removed = np.unique(rng.integers(0, n, size=int(rng.integers(0, n // 2 + 1))))
        survivors = np.delete(np.arange(n, dtype=np.int64), removed)
        if survivors.size == 0:
            continue
        positions = rng.integers(0, survivors.size, size=min(16, survivors.size))
        got = positions_to_rows(positions, removed)
        assert np.array_equal(got, survivors[positions])


def test_available_view_matches_list_comprehension():
    clients = _clients(20)
    store = FleetStore(clients)
    in_flight = {1, 4, 5, 17}
    store.set_in_flight_ids(in_flight)
    view = store.available_view()
    expected = [c.client_id for c in clients if c.client_id not in in_flight]
    assert len(view) == len(expected)
    assert list(store.ids[view.rows()]) == expected
    assert list(view.ids) == expected
    # Selection streams are identical at the same RNG state.
    picked_list = uniform_choice(
        [c for c in clients if c.client_id not in in_flight],
        6,
        np.random.default_rng(9),
    )
    picked_view = uniform_choice(view, 6, np.random.default_rng(9))
    assert [c.client_id for c in picked_list] == [c.client_id for c in picked_view]


def test_view_shapes_and_restrict():
    clients = _clients(10)
    store = FleetStore(clients)
    view = store.view()
    assert len(view) == 10
    mask = np.zeros(10, dtype=bool)
    mask[[2, 5, 9]] = True
    sub = view.restrict(mask)
    assert list(sub.ids) == [2, 5, 9]
    assert [c.client_id for c in sub.take(np.asarray([1, 0]))] == [5, 2]
    with pytest.raises(ValueError):
        FleetView(store, rows=np.asarray([1]), excluded=np.asarray([2]))


# ----------------------------------------------------------------------
# RoundTimeStats vs the deque windows it replaced
# ----------------------------------------------------------------------
def test_round_time_stats_matches_deque_reference():
    rng = np.random.default_rng(5)
    window, num_classes = 7, 3
    stats = RoundTimeStats(num_classes, window)
    reference = [deque(maxlen=window) for _ in range(num_classes)]
    for _ in range(100):
        cls = int(rng.integers(num_classes))
        dur = float(rng.uniform(0.1, 9.0))
        stats.observe(cls, dur)
        reference[cls].append(dur)
        assert stats.count(cls) == len(reference[cls])
        # Same multiset per window -> bit-identical quantiles.
        assert stats.quantile(cls, 0.9) == float(
            np.quantile(list(reference[cls]), 0.9)
        )
    assert stats.chronological() == [list(d) for d in reference]
    reloaded = RoundTimeStats(num_classes, window)
    reloaded.load_state_dict(stats.state_dict())
    assert reloaded.chronological() == stats.chronological()


def test_quantile_pacing_fleet_shared_bit_identical():
    clients = _clients(12)
    store = FleetStore(clients)
    private = QuantilePacing(4, 30.0, 8, clients=clients, min_samples=2, window=6)
    shared = QuantilePacing(
        4, 30.0, 8, clients=clients, min_samples=2, window=256, fleet=store
    )
    assert shared._fleet is store  # geometry matched -> columns shared
    # Class membership is the identical equal-occupancy cut either way.
    for c in clients:
        assert private.class_of(c.client_id) == store.class_of_id(c.client_id)
    rng = np.random.default_rng(1)
    reference = QuantilePacing(4, 30.0, 8, clients=clients, min_samples=2, window=256)
    for i in range(60):
        cid = int(rng.integers(12))
        dur = float(rng.uniform(1.0, 50.0))
        shared.observe_arrival(cid, dur, float(i), False)
        reference.observe_arrival(cid, dur, float(i), False)
        for c in clients:  # deadlines bit-identical to the private-windows path
            assert shared.deadline_for(c) == reference.deadline_for(c)
    assert shared.state_dict() == reference.state_dict()


# ----------------------------------------------------------------------
# availability: mask invariance, churn models, fallback metering
# ----------------------------------------------------------------------
def test_availability_mask_pool_order_invariant():
    sel = AvailabilityAwareSelector(seed=3)
    ids = np.arange(200, dtype=np.int64)
    perm = np.random.default_rng(0).permutation(200)
    mask = sel._online_mask(6, ids)
    assert np.array_equal(sel._online_mask(6, ids[perm]), mask[perm])
    # And invariant to the container the pool arrived in: the bound/view
    # path hashes the same id column, so per-client verdicts agree.
    clients = _clients(20)
    store = FleetStore(clients)
    bound = AvailabilityAwareSelector(seed=3)
    bound.bind_fleet(store)
    for c in clients:
        assert bound.is_online(6, c.client_id) == sel.is_online(6, c.client_id)


def test_availability_view_and_list_paths_identical():
    clients = _clients(24)
    store = FleetStore(clients)
    sel_list = AvailabilityAwareSelector(seed=5)
    sel_view = AvailabilityAwareSelector(seed=5)
    sel_view.bind_fleet(store)
    for r in range(8):
        a = sel_list.select(r, clients, 6, np.random.default_rng(100 + r))
        b = sel_view.select(r, store.view(), 6, np.random.default_rng(100 + r))
        assert [c.client_id for c in a] == [c.client_id for c in b]


def test_offline_fallback_metered(tmp_path):
    # A rate this low leaves every one of 12 clients offline most rounds:
    # selection must fall back to the full pool (no deadlock) and meter it.
    model = TraceAvailability([1e-9])
    sel = AvailabilityAwareSelector(seed=0, model=model)
    clients = _clients(12)
    store = FleetStore(clients)
    sel.bind_fleet(store)
    picked = sel.select(0, store.view(), 4, np.random.default_rng(0))
    assert len(picked) == 4
    assert sel.offline_fallback_rounds == 1
    # The counter is trajectory state: it survives a checkpoint round-trip.
    fresh = AvailabilityAwareSelector(seed=0, model=model)
    fresh.load_state_dict(sel.state_dict())
    assert fresh.offline_fallback_rounds == 1


def test_availability_spec_parsing(tmp_path):
    assert isinstance(parse_availability("bernoulli:0.5"), BernoulliAvailability)
    d = parse_availability("diurnal:base=0.6,amplitude=0.4,period=12")
    assert isinstance(d, DiurnalAvailability)
    # The wave stays clipped into (0, 1] and classes see phase-shifted rates.
    classes = np.asarray([0, 1, 2, 3], dtype=np.int16)
    for r in range(12):
        rates = d.rates(r, classes)
        assert ((rates > 0.0) & (rates <= 1.0)).all()
    assert d.rates(3, classes)[0] != d.rates(3, classes)[1]
    path = tmp_path / "trace.json"
    path.write_text(json.dumps({"period": 3, "rates": [[0.9, 0.5, 0.2], [0.8, 0.4, 0.1]]}))
    t = parse_availability(f"trace:{path}")
    assert isinstance(t, TraceAvailability)
    assert t.rates(4, classes)[0] == 0.5  # round 4 -> slot 1; class 0 row
    assert t.rates(4, classes)[3] == 0.4  # class index clamps to last row
    for bad in (
        "bogus:1",
        "bernoulli:nope",
        "bernoulli:0",
        "diurnal:base=2",
        "diurnal:junk",
        "trace:",
        "flat",
    ):
        with pytest.raises(ValueError):
            parse_availability(bad)
    path.write_text(json.dumps({"period": 5, "rates": [[0.9, 0.5]]}))
    with pytest.raises(ValueError):
        parse_availability(f"trace:{path}")


def test_config_availability_trace_validation():
    with pytest.raises(ValueError, match="selector='availability'"):
        CoordinatorConfig(availability_trace="bernoulli:0.5")
    with pytest.raises(ValueError):
        CoordinatorConfig(selector="availability", availability_trace="bogus:1")
    cfg = CoordinatorConfig(selector="availability", availability_trace="bernoulli:0.5")
    assert cfg.availability_trace == "bernoulli:0.5"
    with pytest.raises(ValueError, match="evict_after"):
        CoordinatorConfig(evict_after=0)


# ----------------------------------------------------------------------
# oort: bound == unbound, bounded state under churn
# ----------------------------------------------------------------------
class _FakeUpdate:
    def __init__(self, client_id, loss):
        self.client_id = client_id
        self.train_loss = loss


def test_oort_bound_and_unbound_identical():
    clients = _clients(15)
    store = FleetStore(clients)
    unbound = OortSelector()
    bound = OortSelector()
    bound.bind_fleet(store)
    rng = np.random.default_rng(2)
    for r in range(12):
        ups = [
            _FakeUpdate(int(rng.integers(15)), float(rng.uniform(0.1, 3.0)))
            for _ in range(5)
        ]
        unbound.observe_round(r, ups)
        bound.observe_round(r, ups)
        assert np.array_equal(unbound._weights(clients), bound._weights(store.view()))
        a = unbound.select(r, clients, 4, np.random.default_rng(50 + r))
        b = bound.select(r, store.view(), 4, np.random.default_rng(50 + r))
        assert [c.client_id for c in a] == [c.client_id for c in b]
    assert unbound.state_dict() == bound.state_dict()


def test_oort_state_bounded_under_churn():
    """Satellite regression: 100k distinct churning clients must not grow
    the selector's resident state past the fleet columns."""
    n = 100_000
    store = FleetStore.from_columns(np.arange(n), evict_after=3)
    sel = OortSelector()
    sel.bind_fleet(store)
    nbytes_start = store.nbytes()
    rng = np.random.default_rng(0)
    for r in range(50):
        cids = rng.choice(n, size=2_000, replace=False)
        sel.observe_round(
            r, [_FakeUpdate(int(c), 1.0 + (int(c) % 7) / 10.0) for c in cids]
        )
        store.advance(r)
    # Only clients seen inside the eviction window stay resident: bounded
    # by (window + 1) waves of observations, far below total churn.
    assert store.resident_utilities() <= 4 * 2_000
    assert store.nbytes() == nbytes_start  # columns never grow
    assert store.evicted_total > 0


def test_store_advance_eviction_matches_contract():
    store = FleetStore.from_columns(np.arange(6), evict_after=2)
    store.observe_utility(0, [0, 1], [1.0, 2.0], 0.5)
    assert store.advance(2) == 0  # age == evict_after: strictly-greater keeps
    assert store.advance(3) == 2
    assert store.resident_utilities() == 0
    # Disabled eviction never evicts.
    keep = FleetStore.from_columns(np.arange(6))
    keep.observe_utility(0, [0], [1.0], 0.5)
    assert keep.advance(1000) == 0
    assert keep.resident_utilities() == 1


# ----------------------------------------------------------------------
# straggler predictor + wave resolve
# ----------------------------------------------------------------------
def test_predict_round_times_matches_scalar():
    clients = _clients(14)
    store = FleetStore(clients)
    model = mlp((8,), 4, np.random.default_rng(0), width=16)
    est = store.predict_round_times(np.arange(len(clients)), model, TRAINER)
    for i, c in enumerate(clients):
        assert est[i] == estimate_round_time(c, model, TRAINER)


def test_downsize_resolve_wave_matches_scalar_loop():
    clients = _clients(10)
    store = FleetStore(clients)
    rng = np.random.default_rng(0)
    big = mlp((8,), 4, rng, width=64)
    small = mlp((8,), 4, rng, width=8)
    models = {big.model_id: big, small.model_id: small}
    policy = make_straggler("downsize")
    assignments = {c.client_id: [big.model_id] for c in clients}
    # Mixed deadlines: None (pass-through), tight (downsize), generous.
    deadlines = {}
    for i, c in enumerate(clients):
        if i % 3 == 0:
            deadlines[c.client_id] = None
        elif i % 3 == 1:
            deadlines[c.client_id] = estimate_round_time(c, big, TRAINER) * 0.5
        else:
            deadlines[c.client_id] = estimate_round_time(c, big, TRAINER) * 2.0
    compatible = lambda client: list(models)  # noqa: E731
    vectorized = policy.resolve_wave(
        clients, dict(assignments), deadlines, models, TRAINER, compatible, fleet=store
    )
    reference = policy.resolve_wave(
        clients, dict(assignments), deadlines, models, TRAINER, compatible
    )
    assert vectorized == reference
    assert any(downsized for _, downsized in vectorized.values())


# ----------------------------------------------------------------------
# durability: compaction, round-trips, selection-stream preservation
# ----------------------------------------------------------------------
def test_remove_compacts_in_place_and_preserves_order():
    clients = _clients(12)
    store = FleetStore(clients)
    store.observe_utility(0, [2, 7, 11], [1.0, 2.0, 3.0], 0.5)
    assert store.remove([3, 7, 0]) == 3
    survivors = [c.client_id for c in clients if c.client_id not in {3, 7, 0}]
    assert list(store.ids) == survivors
    assert store.export_utilities() == {2: 1.0, 11: 3.0}
    assert store.row_of(2) == survivors.index(2)
    store.mark_in_flight(2)
    with pytest.raises(ValueError, match="in-flight"):
        store.remove([2])


def test_store_roundtrip_after_churn_preserves_selection_streams():
    clients = _clients(18)
    store = FleetStore(clients, evict_after=10)
    store.observe_utility(1, [4, 9, 13], [0.5, 1.5, 2.5], 0.5)
    store.remove([2, 11])
    payload = store.state_dict()
    restored = FleetStore(clients, evict_after=10)
    restored.load_state_dict(payload)  # must replay the removals
    assert np.array_equal(restored.ids, store.ids)
    assert restored.export_utilities() == store.export_utilities()
    for name, make in (
        ("uniform", lambda: None),
        ("availability", lambda: AvailabilityAwareSelector(seed=1)),
        ("oort", lambda: OortSelector()),
    ):
        if name == "uniform":
            a = uniform_choice(store.view(), 5, np.random.default_rng(7))
            b = uniform_choice(restored.view(), 5, np.random.default_rng(7))
        else:
            s1, s2 = make(), make()
            s1.bind_fleet(store)
            s2.bind_fleet(restored)
            a = s1.select(3, store.view(), 5, np.random.default_rng(7))
            b = s2.select(3, restored.view(), 5, np.random.default_rng(7))
        assert [c.client_id for c in a] == [c.client_id for c in b], name
    with pytest.raises(ValueError, match="outside the constructed fleet"):
        FleetStore(clients[:4]).load_state_dict(payload)


def test_from_columns_store_is_object_free():
    store = FleetStore.from_columns(np.asarray([5, 9, 2]))
    assert list(store.ids) == [5, 9, 2]  # registration order kept verbatim
    view = store.view()
    assert np.array_equal(view.take_rows(np.asarray([2, 0])), [2, 0])
    with pytest.raises(ValueError, match="no client objects"):
        view.take(np.asarray([0]))
    with pytest.raises(ValueError, match="unique"):
        FleetStore.from_columns(np.asarray([1, 1]))


# ----------------------------------------------------------------------
# scale smoke: a dispatch tick at 1M rows stays inside its budget
# ----------------------------------------------------------------------
def test_million_row_tick_budget():
    import time

    n, k = 1_000_000, 1_000
    store = FleetStore.from_columns(np.arange(n, dtype=np.int64))
    store.set_in_flight_ids(range(0, 3 * k, 3))
    rng = np.random.default_rng(0)
    view = store.available_view()
    rows = view.take_rows(rng.choice(len(view), size=k, replace=False))
    assert rows.size == k  # warm-up + correctness on the first tick
    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        view = store.available_view()
        idx = rng.choice(len(view), size=k, replace=False)
        rows = view.take_rows(idx)
        best = min(best, time.perf_counter() - t0)
    # The legacy list path costs ~35ms here; the O(active) tick runs in
    # ~0.1ms.  50ms is a loose CI-noise ceiling, not the expectation.
    assert best < 0.05, f"1M-row tick took {best * 1e3:.1f} ms"
    assert not np.isin(rows, np.fromiter(store._in_flight_rows, dtype=np.int64)).any()
