"""ModelTransformer gating and the full FedTrans runtime (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import FedTransConfig, FedTransStrategy, ModelTransformer
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace, calibrate_capacities, sample_device_traces
from repro.fl import Coordinator, CoordinatorConfig, FLClient, LocalTrainerConfig
from repro.nn import mlp


def _cfg(**kw):
    base = dict(gamma=2, delta=2, beta=0.05, max_models=4)
    base.update(kw)
    return FedTransConfig(**base)


def _feed_flat_losses(tr, model, rounds=8):
    grad = {k: np.ones_like(v) for k, v in model.params().items()}
    for _ in range(rounds):
        tr.observe_round(model, 1.0, grad)


class TestTransformerGating:
    def test_no_transform_before_history(self, rng):
        m = mlp((6,), 3, rng, width=4)
        tr = ModelTransformer(_cfg(), max_capacity_macs=1e12)
        tr.observe_round(m, 1.0, {k: np.ones_like(v) for k, v in m.params().items()})
        assert not tr.should_transform(num_models=1)

    def test_transforms_on_flat_loss(self, rng):
        m = mlp((6,), 3, rng, width=4)
        tr = ModelTransformer(_cfg(), max_capacity_macs=1e12)
        _feed_flat_losses(tr, m)
        assert tr.should_transform(num_models=1)

    def test_no_transform_on_steep_loss(self, rng):
        m = mlp((6,), 3, rng, width=4)
        tr = ModelTransformer(_cfg(), max_capacity_macs=1e12)
        grad = {k: np.ones_like(v) for k, v in m.params().items()}
        for i in range(8):
            tr.observe_round(m, 10.0 - i, grad)
        assert not tr.should_transform(num_models=1)

    def test_max_models_cap(self, rng):
        m = mlp((6,), 3, rng, width=4)
        tr = ModelTransformer(_cfg(max_models=2), max_capacity_macs=1e12)
        _feed_flat_losses(tr, m)
        assert tr.should_transform(num_models=1)
        assert not tr.should_transform(num_models=2)

    def test_requires_activeness(self, rng):
        m = mlp((6,), 3, rng, width=4)
        tr = ModelTransformer(_cfg(), max_capacity_macs=1e12)
        for _ in range(8):
            tr.observe_round(m, 1.0, None)  # losses but no gradients
        assert not tr.should_transform(num_models=1)

    def test_min_rounds_cooldown(self, rng):
        m = mlp((6,), 3, rng, width=4)
        tr = ModelTransformer(
            _cfg(min_rounds_between_transforms=100), max_capacity_macs=1e12
        )
        _feed_flat_losses(tr, m)
        child, _ = tr.transform(m, rng, round_idx=0)
        assert child is not None
        _feed_flat_losses(tr, child)
        assert not tr.should_transform(num_models=2)


class TestTransformerTransform:
    def test_child_preserves_function(self, rng):
        m = mlp((6,), 3, rng, width=4)
        tr = ModelTransformer(_cfg(widen_noise=0.0), max_capacity_macs=1e12)
        _feed_flat_losses(tr, m)
        child, events = tr.transform(m, rng, round_idx=7)
        assert child is not None
        x = rng.normal(size=(5, 6))
        assert np.allclose(m.predict(x), child.predict(x), atol=1e-8)
        assert child.parent_id == m.model_id
        assert child.birth_round == 7
        assert events

    def test_default_noise_breaks_symmetry_but_stays_close(self, rng):
        """With the default widen noise, the child is near- (not exactly)
        function-preserving, and its duplicated channels are NOT identical —
        the Net2Net symmetry-breaking that lets capacity actually grow."""
        m = mlp((6,), 3, rng, width=4)
        tr = ModelTransformer(_cfg(), max_capacity_macs=1e12)
        _feed_flat_losses(tr, m)
        child, _ = tr.transform(m, rng, round_idx=0)
        assert child is not None
        x = rng.normal(size=(20, 6))
        base, grown = m.predict(x), child.predict(x)
        # near-preserving: predictions barely move
        assert np.abs(base - grown).max() < 0.5
        # symmetry broken: some widened cell has non-duplicate columns
        widened = [c for c in child.cells if c.widen_count > 0]
        assert widened
        cell = widened[0]
        w = cell.params()["fc.w"]
        old = w.shape[1] // 2
        dup_equal = [
            np.allclose(w[:, j], w[:, j - old]) for j in range(old, w.shape[1])
        ]
        assert not all(dup_equal)

    def test_capacity_suppression(self, rng):
        m = mlp((6,), 3, rng, width=4)
        tr = ModelTransformer(_cfg(), max_capacity_macs=m.macs() + 1)
        _feed_flat_losses(tr, m)
        child, events = tr.transform(m, rng, round_idx=0)
        assert child is None
        assert tr.exhausted
        assert any("suppressed" in e for e in events)
        assert not tr.should_transform(num_models=1)

    def test_no_warmup_reinitializes(self, rng):
        m = mlp((6,), 3, rng, width=4)
        tr = ModelTransformer(_cfg(warmup=False), max_capacity_macs=1e12)
        _feed_flat_losses(tr, m)
        child, events = tr.transform(m, rng, round_idx=0)
        x = rng.normal(size=(5, 6))
        assert not np.allclose(m.predict(x), child.predict(x), atol=1e-3)
        assert any("re-initialized" in e for e in events)

    def test_random_selection_mode(self, rng):
        m = mlp((6,), 3, rng, width=4)
        tr = ModelTransformer(
            _cfg(gradient_cell_selection=False), max_capacity_macs=1e12
        )
        _feed_flat_losses(tr, m)
        child, events = tr.transform(m, rng, round_idx=0)
        assert child is not None
        assert child.macs() > m.macs()

    def test_doc_resets_after_transform(self, rng):
        m = mlp((6,), 3, rng, width=4)
        tr = ModelTransformer(_cfg(), max_capacity_macs=1e12)
        _feed_flat_losses(tr, m)
        child, _ = tr.transform(m, rng, round_idx=0)
        assert not tr.doc.ready()
        assert not tr.activeness.ready()
        assert tr.transforms_done == 1


def _workload(num_clients=16, seed=0):
    cfg = SyntheticTaskConfig(
        num_classes=5,
        input_shape=(10,),
        latent_dim=8,
        teacher_width=24,
        class_sep=1.8,
        feature_noise=0.4,
        seed=seed,
    )
    ds = build_federated_dataset(cfg, num_clients, mean_samples=25, seed=seed)
    rng = np.random.default_rng(seed)
    init = mlp(ds.input_shape, ds.num_classes, rng, width=8)
    traces = calibrate_capacities(
        sample_device_traces(num_clients, rng), init.macs(), init.macs() * 16
    )
    clients = [FLClient(c.client_id, c, t) for c, t in zip(ds.clients, traces)]
    return ds, init, clients


class TestFedTransRuntime:
    def _run(self, rounds=40, cfg=None, seed=0):
        ds, init, clients = _workload(seed=seed)
        strategy = FedTransStrategy(
            init,
            cfg or _cfg(beta=0.08, gamma=2, delta=3),
            max_capacity_macs=max(c.capacity_macs for c in clients),
        )
        coord = Coordinator(
            strategy,
            clients,
            CoordinatorConfig(
                rounds=rounds,
                clients_per_round=6,
                trainer=LocalTrainerConfig(batch_size=8, local_steps=8, lr=0.15),
                eval_every=10,
                seed=seed,
            ),
        )
        return strategy, coord.run()

    def test_spawns_models(self):
        strategy, log = self._run()
        assert len(strategy.models()) > 1
        events = [e for r in log.rounds for e in r.events]
        assert any("spawned" in e for e in events)

    def test_initial_model_too_big_raises(self, rng):
        init = mlp((6,), 3, rng, width=8)
        with pytest.raises(ValueError, match="exceeds"):
            FedTransStrategy(init, _cfg(), max_capacity_macs=init.macs() - 1)

    def test_assignments_respect_capacity(self):
        strategy, log = self._run()
        models = strategy.models()
        # replay every round's assignment against participant capacities
        ds, init, clients = _workload()
        cap = {c.client_id: c.capacity_macs for c in clients}
        cheapest = min(m.macs() for m in models.values())
        for r in log.rounds:
            for cid, mids in r.assignments.items():
                for mid in mids:
                    assert models[mid].macs() <= max(cap[cid], cheapest)

    def test_eval_model_is_compatible(self):
        strategy, _ = self._run()
        ds, init, clients = _workload()
        models = strategy.models()
        cheapest = min(m.macs() for m in models.values())
        for c in clients:
            mid = strategy.eval_model_for(c)
            assert models[mid].macs() <= max(c.capacity_macs, cheapest)

    def test_models_ordered_by_birth(self):
        strategy, _ = self._run()
        births = [m.birth_round for m in strategy.models().values()]
        assert births == sorted(births)

    def test_frontier_is_newest(self):
        strategy, _ = self._run()
        assert strategy.frontier.birth_round == max(
            m.birth_round for m in strategy.models().values()
        )

    def test_suite_summary_mentions_all_models(self):
        strategy, _ = self._run()
        s = strategy.suite_summary()
        for mid in strategy.models():
            assert mid in s

    def test_learns_well_above_chance(self):
        _, log = self._run(rounds=40)
        # 5 classes => 20% chance level; the run converges fast at this
        # micro-scale so we assert achieved quality, not monotonicity.
        assert log.best_eval().mean_accuracy > 0.5
        assert log.evals[-1].mean_accuracy > 0.45

    def test_aggregate_gradient_weighted_mean(self):
        from repro.core.runtime import FedTransStrategy as S
        from repro.fl.types import ClientUpdate

        def up(cid, n, val):
            return ClientUpdate(
                client_id=cid,
                model_id="m",
                params={},
                state={},
                grad={"k": np.full(2, float(val))},
                train_loss=1.0,
                num_samples=n,
                macs_spent=0,
                bytes_down=0,
                bytes_up=0,
                round_time=0,
            )

        agg = S._aggregate_gradient([up(0, 30, 1.0), up(1, 10, 5.0)])
        assert np.allclose(agg["k"], 0.75 * 1.0 + 0.25 * 5.0)
        assert S._aggregate_gradient([]) is None
