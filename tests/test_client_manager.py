"""Client Manager: utility sampling (Eqs. 2-3) and joint updates (Eq. 4)."""

import numpy as np
import pytest

from repro.core.client_manager import ClientManager, SimilarityCache
from repro.fl.types import ClientUpdate
from repro.nn import mlp


def _update(client_id, model_id, loss, samples=10):
    return ClientUpdate(
        client_id=client_id,
        model_id=model_id,
        params={},
        state={},
        grad={},
        train_loss=loss,
        num_samples=samples,
        macs_spent=0.0,
        bytes_down=0,
        bytes_up=0,
        round_time=0.0,
    )


class TestSampling:
    def test_probabilities_sum_to_one(self):
        cm = ClientManager()
        p = cm.assignment_probabilities(0, ["a", "b", "c"])
        assert p.shape == (3,)
        assert p.sum() == pytest.approx(1.0)

    def test_uniform_when_no_history(self):
        cm = ClientManager()
        p = cm.assignment_probabilities(0, ["a", "b"])
        assert np.allclose(p, 0.5)

    def test_higher_utility_higher_probability(self):
        cm = ClientManager()
        cm._utilities[0] = {"a": 2.0, "b": 0.0}
        p = cm.assignment_probabilities(0, ["a", "b"])
        assert p[0] > p[1]
        assert p[0] == pytest.approx(np.exp(2) / (np.exp(2) + 1))

    def test_no_compatible_raises(self):
        with pytest.raises(ValueError):
            ClientManager().assignment_probabilities(0, [])

    def test_sampling_follows_distribution(self, rng):
        cm = ClientManager()
        cm._utilities[0] = {"a": 3.0, "b": 0.0}
        picks = [cm.sample_model(0, ["a", "b"], rng) for _ in range(300)]
        frac_a = picks.count("a") / len(picks)
        assert frac_a > 0.8  # softmax(3,0) ~ 0.95

    def test_overflow_stability(self):
        cm = ClientManager()
        cm._utilities[0] = {"a": 1e4, "b": 0.0}
        p = cm.assignment_probabilities(0, ["a", "b"])
        assert np.isfinite(p).all()


class TestBestModel:
    def test_highest_utility_wins(self):
        cm = ClientManager()
        cm._utilities[0] = {"a": 0.1, "b": 5.0}
        assert cm.best_model(0, ["a", "b"]) == "b"

    def test_tie_breaks_by_global_mean(self):
        cm = ClientManager()
        cm._utilities[1] = {"a": 0.0, "b": 4.0}  # fleet likes b
        # client 0 never participated: per-client utilities are all 0
        assert cm.best_model(0, ["a", "b"]) == "b"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ClientManager().best_model(0, [])


class TestRegisterModel:
    def test_child_inherits_parent_utility(self):
        cm = ClientManager()
        cm._utilities[0] = {"parent": 2.5}
        cm.register_model("child", "parent")
        assert cm.utility(0, "child") == 2.5

    def test_unseen_clients_default_zero(self):
        cm = ClientManager()
        cm.register_model("child", "parent")
        assert cm.utility(42, "child") == 0.0


class TestEq4Update:
    def _models(self, rng):
        parent = mlp((6,), 3, rng, width=4)
        child = parent.clone()
        child.widen_cell(child.transformable_cells()[0].cell_id, 2.0, rng)
        return {parent.model_id: parent, child.model_id: child}, parent, child

    def test_below_average_loss_raises_utility(self, rng):
        models, parent, child = self._models(rng)
        cm = ClientManager()
        ups = [
            _update(0, parent.model_id, loss=0.1),
            _update(1, parent.model_id, loss=2.0),
        ]
        cm.update(ups, models)
        assert cm.utility(0, parent.model_id) > 0  # low loss => more utility
        assert cm.utility(1, parent.model_id) < 0

    def test_similar_models_move_together(self, rng):
        models, parent, child = self._models(rng)
        cm = ClientManager()
        ups = [
            _update(0, parent.model_id, loss=0.1),
            _update(1, parent.model_id, loss=2.0),
        ]
        cm.update(ups, models)
        # child borrows utility in proportion to its similarity to parent
        u_parent = cm.utility(0, parent.model_id)
        u_child = cm.utility(0, child.model_id)
        assert 0 < u_child < u_parent

    def test_single_update_is_neutral(self, rng):
        """With one participant, the standardized loss is zero."""
        models, parent, _ = self._models(rng)
        cm = ClientManager()
        cm.update([_update(0, parent.model_id, loss=1.0)], models)
        assert cm.utility(0, parent.model_id) == 0.0

    def test_empty_updates_noop(self, rng):
        models, _, _ = self._models(rng)
        cm = ClientManager()
        cm.update([], models)
        assert cm._utilities == {}

    def test_utilities_bounded_over_500_rounds(self, rng):
        """Regression: unbounded accumulation saturated the Eq. 3 softmax
        to a one-hot after enough rounds, killing exploration.  With the
        default decay/clamp, 500 rounds of consistently skewed losses keep
        every utility bounded and every assignment probability
        non-degenerate."""
        models, parent, child = self._models(rng)
        cm = ClientManager()
        ids = [parent.model_id, child.model_id]
        for _ in range(500):
            ups = [
                _update(0, parent.model_id, loss=0.1),  # always-good client
                _update(1, child.model_id, loss=2.0),  # always-bad client
            ]
            cm.update(ups, models)
        for cid in (0, 1):
            for mid in ids:
                assert abs(cm.utility(cid, mid)) <= cm.utility_clamp
            p = cm.assignment_probabilities(cid, ids)
            assert p.min() > 1e-8  # still explores: not a one-hot
            assert p.max() < 1.0 - 1e-8

    def test_opposite_clamps_still_explore(self, rng):
        """Worst case: one client driven to +clamp on one model and -clamp
        on a dissimilar one (softmax gap 2*clamp).  The probability floor
        must survive it — this is the case same-signed saturation tests
        miss."""
        a = mlp((6,), 3, rng, width=4)
        b = mlp((6,), 3, rng, width=4)  # unrelated lineage: sim(a, b) == 0
        models = {a.model_id: a, b.model_id: b}
        cm = ClientManager()
        for _ in range(500):
            # Client 0 is great on model a...
            cm.update(
                [_update(0, a.model_id, loss=0.1), _update(1, a.model_id, loss=2.0)],
                models,
            )
            # ...and terrible on model b.
            cm.update(
                [_update(0, b.model_id, loss=2.0), _update(1, b.model_id, loss=0.1)],
                models,
            )
        assert cm.utility(0, a.model_id) == pytest.approx(cm.utility_clamp, rel=0.1)
        assert cm.utility(0, b.model_id) == pytest.approx(-cm.utility_clamp, rel=0.1)
        p = cm.assignment_probabilities(0, [a.model_id, b.model_id])
        assert p.min() > 1e-8  # floor ~ e^(-2*clamp)
        assert p.max() < 1.0 - 1e-8

    def test_unbounded_manager_saturates(self, rng):
        """The failure mode the defaults prevent: decay/clamp disabled,
        the same 500 rounds drive the softmax (numerically) one-hot."""
        models, parent, child = self._models(rng)
        cm = ClientManager(utility_decay=1.0, utility_clamp=0.0)
        ids = [parent.model_id, child.model_id]
        for _ in range(500):
            ups = [
                _update(0, parent.model_id, loss=0.1),
                _update(1, child.model_id, loss=2.0),
            ]
            cm.update(ups, models)
        p = cm.assignment_probabilities(0, ids)
        assert p.max() > 1.0 - 1e-12

    def test_invalid_decay_and_clamp_rejected(self):
        with pytest.raises(ValueError, match="utility_decay"):
            ClientManager(utility_decay=0.0)
        with pytest.raises(ValueError, match="utility_decay"):
            ClientManager(utility_decay=1.5)
        with pytest.raises(ValueError, match="utility_clamp"):
            ClientManager(utility_clamp=-1.0)

    def test_compatible_restriction_skips_out_of_budget_models(self, rng):
        """Regression: the Eq. 4 walk visited *every* model per update, so a
        weak client paid (and stored) utility updates for models it could
        never train or deploy.  With the compatible map, only the client's
        own set is touched."""
        models, parent, child = self._models(rng)
        cm = ClientManager()
        compatible = {0: {parent.model_id}, 1: {parent.model_id, child.model_id}}
        ups = [
            _update(0, parent.model_id, loss=0.1),
            _update(1, parent.model_id, loss=2.0),
        ]
        cm.update(ups, models, compatible)
        # Client 0 (weak) holds no entry for the incompatible child...
        assert child.model_id not in cm._utilities[0]
        # ...but its compatible utilities match the unrestricted walk
        # (restriction only skips writes that could never be read).
        unrestricted = ClientManager()
        unrestricted.update(ups, models)
        assert cm.utility(0, parent.model_id) == unrestricted.utility(0, parent.model_id)
        assert cm.utility(1, child.model_id) == unrestricted.utility(1, child.model_id)

    def test_compatible_restriction_saves_similarity_lookups(self, rng):
        """The cost half of the regression: restricted updates don't even
        consult the similarity cache for out-of-budget models."""
        models, parent, child = self._models(rng)

        class CountingCache(SimilarityCache):
            def __init__(self):
                super().__init__()
                self.calls = 0

            def get(self, src, dst):
                self.calls += 1
                return super().get(src, dst)

        cache = CountingCache()
        cm = ClientManager(cache)
        ups = [
            _update(0, parent.model_id, loss=0.1),
            _update(1, parent.model_id, loss=2.0),
        ]
        cm.update(ups, models, {0: {parent.model_id}, 1: {parent.model_id}})
        assert cache.calls == 2  # one per (update, compatible model)

    def test_missing_compatible_entry_falls_back_to_all_models(self, rng):
        models, parent, child = self._models(rng)
        cm = ClientManager()
        ups = [
            _update(0, parent.model_id, loss=0.1),
            _update(1, parent.model_id, loss=2.0),
        ]
        cm.update(ups, models, {1: {parent.model_id}})  # no entry for client 0
        assert child.model_id in cm._utilities[0]  # legacy full walk
        assert child.model_id not in cm._utilities[1]

    def test_assignment_shifts_after_updates(self, rng):
        """Soft assignment: persistent bad loss on a model steers the client
        elsewhere (the exploration/exploitation behaviour of §4.2)."""
        models, parent, child = self._models(rng)
        cm = ClientManager()
        for _ in range(5):
            ups = [
                _update(0, parent.model_id, loss=3.0),  # bad on parent
                _update(1, parent.model_id, loss=0.1),
            ]
            cm.update(ups, models)
        p = cm.assignment_probabilities(0, [parent.model_id, child.model_id])
        # Client 0's parent utility is now strongly negative; the child,
        # being similar, is dragged down less (scaled by sim < 1).
        assert p[1] > p[0]
