"""End-to-end integration: the full comparison protocol at micro scale.

These tests run complete multi-method workloads and assert the qualitative
relationships the paper's evaluation rests on.  Scales are minimal (a few
seconds total) — the benchmarks run the full-size versions.
"""

import numpy as np
import pytest

from repro.bench import active_profile, build_dataset
from repro.bench.workloads import run_method, run_workload_suite


@pytest.fixture(scope="module")
def micro_suite():
    profile = active_profile("femnist_like").with_(
        rounds=60, eval_every=15, scale=0.006
    )
    ds = build_dataset(profile, seed=0)
    results = run_workload_suite(
        ds, profile, methods=("fedtrans", "heterofl", "splitmix", "fluid"), seed=0
    )
    return profile, ds, results


class TestComparisonProtocol:
    def test_all_methods_complete(self, micro_suite):
        _, _, results = micro_suite
        assert set(results) == {"fedtrans", "heterofl", "splitmix", "fluid"}
        for r in results.values():
            assert r.log.rounds
            assert r.log.evals

    def test_fedtrans_spawned_models(self, micro_suite):
        _, _, results = micro_suite
        assert len(results["fedtrans"].strategy.models()) >= 2

    def test_baselines_received_fedtrans_largest(self, micro_suite):
        """Appendix A.1: baselines span the same complexity range."""
        _, _, results = micro_suite
        ft_largest = max(
            m.macs() for m in results["fedtrans"].strategy.models().values()
        )
        het_largest = max(
            m.macs() for m in results["heterofl"].strategy.models().values()
        )
        assert het_largest == ft_largest

    def test_fedtrans_cheapest(self, micro_suite):
        _, _, results = micro_suite
        ft = results["fedtrans"].summary.cost_pmacs
        assert all(
            ft <= results[m].summary.cost_pmacs
            for m in ("heterofl", "splitmix", "fluid")
        )

    def test_every_method_metered_identically(self, micro_suite):
        _, _, results = micro_suite
        for r in results.values():
            log = r.log
            assert log.total_macs == pytest.approx(sum(rec.macs for rec in log.rounds))
            assert log.peak_storage_bytes > 0
            assert log.network_mb() > 0

    def test_eval_covers_all_clients(self, micro_suite):
        _, ds, results = micro_suite
        for r in results.values():
            assert len(r.log.final_eval().client_accuracy) == ds.num_clients


class TestDeterminism:
    def test_same_seed_same_result(self):
        profile = active_profile("femnist_like").with_(rounds=20, eval_every=10, scale=0.004)
        ds = build_dataset(profile, seed=1)
        a = run_method("fedtrans", ds, profile, seed=1)
        b = run_method("fedtrans", ds, profile, seed=1)
        assert a.log.final_accuracy() == b.log.final_accuracy()
        assert a.log.total_macs == b.log.total_macs
        assert [m.macs() for m in a.strategy.models().values()] == [
            m.macs() for m in b.strategy.models().values()
        ]

    def test_different_seed_differs(self):
        profile = active_profile("femnist_like").with_(rounds=20, eval_every=10, scale=0.004)
        ds = build_dataset(profile, seed=1)
        a = run_method("fedtrans", ds, profile, seed=1)
        b = run_method("fedtrans", ds, profile, seed=2)
        assert (
            a.log.final_accuracy() != b.log.final_accuracy()
            or a.log.total_macs != b.log.total_macs
        )


class TestAblationFlagsEndToEnd:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"gradient_cell_selection": False},
            {"soft_aggregation": False},
            {"warmup": False},
            {"decay": False},
            {"share_l2s": True},
            {"strict_eq5": True},
            {"widen_noise": 0.0},
            {"decay_by_model_age": True},
        ],
    )
    def test_every_flag_combination_runs(self, overrides):
        profile = active_profile("femnist_like").with_(rounds=25, eval_every=25, scale=0.004)
        ds = build_dataset(profile, seed=0)
        res = run_method("fedtrans", ds, profile, seed=0, fedtrans_overrides=overrides)
        assert np.isfinite(res.log.final_accuracy())
        assert res.log.total_macs > 0
