"""Fig. 10 — picking the right time to transform (β and γ sweeps).

Fig. 10a: larger β triggers transformation more eagerly => more models,
higher training cost.  Fig. 10b: larger γ (longer DoC window) makes the
trigger harder to reach => fewer transforms, lower cost.
"""

from repro.bench import (
    active_profile,
    ascii_table,
    beta_sweep,
    build_dataset,
    gamma_sweep,
)


def _rows(points):
    return [
        {
            "value": p.value,
            "accuracy_pct": round(p.accuracy * 100, 2),
            "cost_macs": p.cost_macs,
            "models": p.num_models,
        }
        for p in points
    ]


def test_fig10a_beta_sweep(once, report):
    # Lift the model cap so the sweep, not the cap, decides the suite size,
    # and use a horizon where transform *timing* still matters (with a very
    # long budget every beta eventually spawns the same number of models).
    profile = active_profile("femnist_like").with_(max_models=10, rounds=100)
    ds = build_dataset(profile, seed=0)
    betas = [0.002, 0.01, 0.05, 0.2]
    points = once(beta_sweep, betas, ds, profile, 0)
    report("fig10a_beta", ascii_table(_rows(points), "Fig. 10a DoC threshold beta"))

    # Paper: larger beta => transform more frequently => more models, more cost.
    assert points[-1].num_models >= points[0].num_models
    assert points[-1].cost_macs > points[0].cost_macs


def test_fig10b_gamma_sweep(once, report):
    profile = active_profile("femnist_like").with_(max_models=10, rounds=100)
    ds = build_dataset(profile, seed=0)
    gammas = [2, 4, 8, 16]
    points = once(gamma_sweep, gammas, ds, profile, 0)
    report("fig10b_gamma", ascii_table(_rows(points), "Fig. 10b DoC window gamma"))

    # Paper: larger gamma => harder to reach the DoC => fewer transforms,
    # lower pre-transform training cost.
    assert points[-1].num_models <= points[0].num_models
    assert points[-1].cost_macs < points[0].cost_macs
