"""Hot-path compute pass, measured: dtype speedup, allocations, round loop.

Three measurements, written together to ``BENCH_hotpath.json`` at the repo
root (the start of the repo's perf trajectory — later PRs append
comparable numbers):

* **dtype** — wall time per simulated round of the same conv workload at
  float64 (the bit-identity default) vs float32: the float32 round loop
  must be >= ``HOTPATH_MIN_SPEEDUP`` (default 1.5) times faster.
* **allocations** — transient heap bytes per steady-state training step
  (tracemalloc, which tracks NumPy buffers) with workspace pooling off vs
  on: pooling must cut allocations >= ``HOTPATH_MIN_ALLOC_RATIO``
  (default 5) times.  This is the pooled-kernel regression gate CI runs.
* **matrix** — wall time per round and process peak RSS across
  serial/thread/process x sync/async at the default dtype.

Budget knobs (CI uses small values): ``HOTPATH_ROUNDS`` (default 3),
``HOTPATH_CLIENTS`` (8), ``HOTPATH_STEPS`` (10).  Peak RSS is
``ru_maxrss`` — the *process-lifetime* high-water mark, so within one
bench process it is monotone across configurations; the per-config
reading is still recorded as an upper bound at that point of the run.
"""

from __future__ import annotations

import gc
import json
import os
import resource
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.baselines import fedavg
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device.traces import DeviceTrace
from repro.fl import Coordinator, CoordinatorConfig, FLClient, LocalTrainerConfig
from repro.nn import SGD, set_compute_dtype, set_workspace_pooling, small_cnn

ROUNDS = int(os.environ.get("HOTPATH_ROUNDS", "3"))
CLIENTS = int(os.environ.get("HOTPATH_CLIENTS", "8"))
LOCAL_STEPS = int(os.environ.get("HOTPATH_STEPS", "10"))
MIN_SPEEDUP = float(os.environ.get("HOTPATH_MIN_SPEEDUP", "1.5"))
MIN_ALLOC_RATIO = float(os.environ.get("HOTPATH_MIN_ALLOC_RATIO", "5"))

OUT_PATH = Path(
    os.environ.get("HOTPATH_OUT", Path(__file__).parent.parent / "BENCH_hotpath.json")
)

WORKLOAD = {
    "model": "small_cnn(width=16)",
    "input_shape": [3, 16, 16],
    "num_classes": 8,
    "clients": CLIENTS,
    "clients_per_round": 6,
    "batch_size": 32,
    "local_steps": LOCAL_STEPS,
    "rounds": ROUNDS,
}

_RESULTS: dict = {"workload": WORKLOAD}


def _rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _run_round_loop(dtype: str, mode: str = "sync", executor: str = "serial") -> float:
    """Seconds per round of the conv fedavg workload under one config."""
    set_compute_dtype(dtype)
    try:
        task = SyntheticTaskConfig(
            num_classes=8, input_shape=(3, 16, 16), latent_dim=8, teacher_width=16, seed=0
        )
        ds = build_federated_dataset(task, CLIENTS, mean_samples=60, seed=0)
        clients = [
            FLClient(c.client_id, c, DeviceTrace(c.client_id, 1e9, 1e6, 1e15))
            for c in ds.clients
        ]
        model = small_cnn(ds.input_shape, ds.num_classes, np.random.default_rng(0), width=16)
        over = {} if executor == "serial" else {"executor": executor, "max_workers": 2}
        if mode == "async":
            over["buffer_k"] = 3
        cfg = CoordinatorConfig(
            rounds=ROUNDS,
            clients_per_round=6,
            trainer=LocalTrainerConfig(batch_size=32, local_steps=LOCAL_STEPS, lr=0.05),
            eval_every=ROUNDS,
            seed=0,
            mode=mode,
            compute_dtype=dtype,
            **over,
        )
        coord = Coordinator(fedavg(model.clone(keep_id=True)), clients, cfg)
        start = time.perf_counter()
        log = coord.run()
        elapsed = time.perf_counter() - start
        assert log.rounds and np.isfinite(log.evals[-1].mean_accuracy)
        return elapsed / len(log.rounds)
    finally:
        set_compute_dtype("float64")


def _step_alloc_bytes(pooling: bool, steps: int = 5) -> float:
    """Transient traced bytes per steady-state training step (see tests)."""
    set_workspace_pooling(pooling)
    try:
        rng = np.random.default_rng(3)
        model = small_cnn((3, 16, 16), 8, np.random.default_rng(0), width=16)
        opt = SGD(0.05)
        x = rng.normal(size=(32, 3, 16, 16))
        y = rng.integers(0, 8, size=32)

        def one_step():
            model.zero_grad()
            model.loss_and_grad(x, y)
            grads = model.grads()
            gnorm = float(np.sqrt(sum(float((g**2).sum()) for g in grads.values())))
            if gnorm > 10.0:
                for g in grads.values():
                    g *= 10.0 / gnorm
            opt.step(model.params(), grads)

        gc.collect()
        tracemalloc.start()
        try:
            for _ in range(3):
                one_step()
            gc.collect()
            samples = []
            for _ in range(steps):
                base = tracemalloc.get_traced_memory()[0]
                tracemalloc.reset_peak()
                one_step()
                samples.append(tracemalloc.get_traced_memory()[1] - base)
        finally:
            tracemalloc.stop()
        return float(np.mean(samples))
    finally:
        set_workspace_pooling(True)


def _write_results() -> None:
    with open(OUT_PATH, "w") as f:
        json.dump(_RESULTS, f, indent=1, sort_keys=True)
        f.write("\n")


def test_float32_round_loop_speedup(report):
    """float32 halves memory traffic / BLAS width: >= 1.5x faster rounds."""
    f64 = _run_round_loop("float64")
    f32 = _run_round_loop("float32")
    speedup = f64 / f32
    _RESULTS["dtype"] = {
        "float64_s_per_round": round(f64, 4),
        "float32_s_per_round": round(f32, 4),
        "speedup": round(speedup, 3),
        "min_required": MIN_SPEEDUP,
    }
    _write_results()
    report(
        "hotpath_dtype",
        f"serial/sync conv round loop\n"
        f"  float64: {f64:.3f} s/round\n"
        f"  float32: {f32:.3f} s/round\n"
        f"  speedup: {speedup:.2f}x (required >= {MIN_SPEEDUP}x)",
    )
    assert speedup >= MIN_SPEEDUP


def test_pooled_kernel_allocations(report):
    """Workspace pooling cuts steady-state step allocations >= 5x."""
    unpooled = _step_alloc_bytes(pooling=False)
    pooled = _step_alloc_bytes(pooling=True)
    ratio = unpooled / pooled
    _RESULTS["allocations"] = {
        "unpooled_step_bytes": int(unpooled),
        "pooled_step_bytes": int(pooled),
        "ratio": round(ratio, 2),
        "min_required": MIN_ALLOC_RATIO,
    }
    _write_results()
    report(
        "hotpath_allocations",
        f"steady-state training step, conv workload (tracemalloc)\n"
        f"  unpooled: {unpooled / 1e3:.0f} KB/step\n"
        f"  pooled:   {pooled / 1e3:.0f} KB/step\n"
        f"  ratio:    {ratio:.1f}x (required >= {MIN_ALLOC_RATIO}x)",
    )
    assert ratio >= MIN_ALLOC_RATIO


def test_backend_mode_matrix(report):
    """Per-round wall time + peak RSS across executors x round engines."""
    matrix = {}
    lines = []
    for executor in ("serial", "thread", "process"):
        for mode in ("sync", "async"):
            s_per_round = _run_round_loop("float64", mode=mode, executor=executor)
            rss = _rss_mb()
            matrix[f"{executor}/{mode}"] = {
                "s_per_round": round(s_per_round, 4),
                "peak_rss_mb_upper_bound": round(rss, 1),
            }
            lines.append(f"  {executor:7s} {mode:5s}: {s_per_round:.3f} s/round")
    _RESULTS["matrix"] = matrix
    _RESULTS["peak_rss_mb"] = round(_rss_mb(), 1)
    _write_results()
    report(
        "hotpath_matrix",
        "per-round wall time, float64 conv workload\n" + "\n".join(lines)
        + f"\n  process peak RSS: {_RESULTS['peak_rss_mb']} MB",
    )
    for key, row in matrix.items():
        assert row["s_per_round"] > 0, key
