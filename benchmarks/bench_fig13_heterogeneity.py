"""Fig. 13 — data-heterogeneity sweep (Dirichlet h on the FEMNIST-like task).

Lower h = more heterogeneous client labels.  The paper observes FedTrans's
accuracy diminishing under extreme heterogeneity and higher cost under
homogeneity (it trains longer before converging).
"""

from repro.bench import active_profile, ascii_table, heterogeneity_sweep


def test_fig13_heterogeneity(once, report):
    profile = active_profile("femnist_like")
    points = once(heterogeneity_sweep, [0.5, 1.0, 50.0, 100.0], profile, 0)

    rows = [
        {
            "h": p.value,
            "accuracy_pct": round(p.accuracy * 100, 2),
            "cost_macs": p.cost_macs,
            "models": p.num_models,
        }
        for p in points
    ]
    report("fig13_heterogeneity", ascii_table(rows, "Fig. 13 heterogeneity sweep"))

    accs = {p.value: p.accuracy for p in points}
    # Homogeneous data (large h) trains at least as well as the extreme
    # non-IID setting (the paper's "performance diminishes under high data
    # heterogeneity").
    assert accs[100.0] >= accs[0.5] - 0.02
    assert all(p.accuracy > 0.1 for p in points)
