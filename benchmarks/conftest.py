"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at the
scale selected by ``REPRO_PROFILE`` (default ``tiny``).  Results are both
printed (run with ``-s`` to see them live) and appended to
``benchmarks/_results/<name>.txt`` so EXPERIMENTS.md can be assembled from
a completed run.

The expensive 5-method workload suites are cached per dataset and shared
across Table 2 / Fig. 6 / Fig. 7 / Fig. 2.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import active_profile, build_dataset, run_workload_suite

RESULTS_DIR = Path(__file__).parent / "_results"

SUITE_METHODS = ("fedtrans", "fluid", "heterofl", "splitmix", "fedavg")

_SUITE_CACHE: dict[str, tuple] = {}


@pytest.fixture(scope="session")
def suite_for():
    """Lazily run (and cache) the full method suite for a dataset."""

    def get(dataset_name: str):
        if dataset_name not in _SUITE_CACHE:
            profile = active_profile(dataset_name)
            ds = build_dataset(profile, seed=0)
            results = run_workload_suite(ds, profile, methods=SUITE_METHODS, seed=0)
            _SUITE_CACHE[dataset_name] = (profile, ds, results)
        return _SUITE_CACHE[dataset_name]

    return get


@pytest.fixture(scope="session")
def report():
    """Print a result block and persist it under benchmarks/_results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def emit(name: str, text: str) -> None:
        block = f"\n=== {name} (profile={os.environ.get('REPRO_PROFILE', 'tiny')}) ===\n{text}\n"
        print(block)
        with open(RESULTS_DIR / f"{name}.txt", "w") as f:
            f.write(block)

    return emit


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    Experiment regeneration is far too heavy for repeated timing rounds;
    one measured round still records wall-clock in the benchmark table.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
