"""Fig. 8 — FedTrans complements FedProx and FedYogi.

FedTrans + FedProx / + FedYogi achieve higher average accuracy than plain
FedProx / FedYogi running the middle-sized FedTrans model alone.
"""

import numpy as np

from repro.baselines import fedprox_trainer_config
from repro.bench import active_profile, ascii_table, build_dataset
from repro.bench.workloads import (
    build_fleet,
    coordinator_config,
    fedtrans_config,
    make_initial_model,
    run_method,
)
from repro.core import FedTransStrategy
from repro.fl import Coordinator
from repro.nn.optim import Yogi


def _fedtrans_with(profile, ds, seed, trainer=None, server_opt_factory=None):
    rng = np.random.default_rng(seed)
    init = make_initial_model(ds, profile, rng)
    clients, max_cap = build_fleet(ds, init.macs(), profile, seed)
    strategy = FedTransStrategy(
        init,
        fedtrans_config(profile),
        max_capacity_macs=max_cap,
        server_opt_factory=server_opt_factory,
    )
    overrides = {"trainer": trainer} if trainer else {}
    coord = Coordinator(strategy, clients, coordinator_config(profile, seed, **overrides))
    return strategy, coord.run()


def test_fig8_complement(once, report):
    # Longer horizon than the default gate: the combined methods' gains come
    # from their larger deployed models, which need rounds to mature (the
    # paper runs 2000; plain FedProx/FedYogi on the middle model saturate
    # early and look artificially strong at short horizons).
    profile = active_profile("femnist_like").with_(rounds=400)
    ds = build_dataset(profile, seed=0)
    base_trainer = coordinator_config(profile, 0).trainer
    prox_trainer = fedprox_trainer_config(base_trainer, mu=0.01)

    def run_all():
        # Plain FedTrans first: its middle model feeds the single-model runs.
        ft_plain = run_method("fedtrans", ds, profile, seed=0)
        suite = sorted(ft_plain.strategy.models().values(), key=lambda m: m.macs())
        middle = suite[len(suite) // 2]

        out = {"fedtrans": ft_plain.log}
        out["fedprox"] = run_method(
            "fedprox", ds, profile, seed=0, middle_model=middle
        ).log
        out["fedyogi"] = run_method(
            "fedyogi", ds, profile, seed=0, middle_model=middle
        ).log
        _, out["fedtrans+fedprox"] = _fedtrans_with(profile, ds, 0, trainer=prox_trainer)
        _, out["fedtrans+fedyogi"] = _fedtrans_with(
            profile, ds, 0, server_opt_factory=lambda: Yogi()
        )
        return out

    logs = once(run_all)
    rows = [
        {
            "method": name,
            "accuracy_pct": round(log.final_accuracy() * 100, 2),
            "cost_macs": log.total_macs,
        }
        for name, log in logs.items()
    ]
    report("fig8_complement", ascii_table(rows, "Fig. 8 FedTrans + FL optimizers"))

    # The paper's claim is cost-framed: "achieving higher average accuracy
    # with the same training cost".  Compare each plain optimizer's curve at
    # the combined method's budget.
    def acc_at_budget(plain: str, combined: str) -> tuple[float, float]:
        xs, ys = logs[plain].cost_accuracy_curve()
        budget = logs[combined].total_macs
        reached = max((y for x, y in zip(xs, ys) if x <= budget), default=0.0)
        return logs[combined].final_accuracy(), reached

    for plain, combined in (("fedprox", "fedtrans+fedprox"), ("fedyogi", "fedtrans+fedyogi")):
        ours, theirs = acc_at_budget(plain, combined)
        assert ours >= theirs - 0.05, (combined, ours, plain, theirs)
