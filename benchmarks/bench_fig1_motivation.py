"""Fig. 1 — motivation: device heterogeneity and client accuracy variance.

Fig. 1a: inference-latency distributions of three models across a ~700
device fleet spread widely and overlap.
Fig. 1b: across a 7-level complexity ladder, no single level is best for
the majority of clients.
"""

import numpy as np

from repro.bench import (
    active_profile,
    ascii_table,
    build_dataset,
    fig1a_latency_distributions,
    fig1b_best_model_histogram,
)


def test_fig1a_latency_distributions(once, report):
    lat = once(fig1a_latency_distributions, 700, 0)

    rows = []
    for name, values in lat.items():
        p5, p50, p95 = np.percentile(values * 1e3, [5, 50, 95])
        rows.append(
            {"model": name, "p5_ms": p5, "median_ms": p50, "p95_ms": p95}
        )
    report("fig1a_latency", ascii_table(rows, "Fig. 1a inference latency across fleet"))

    # Medians must be ordered by complexity...
    names = ("mobilenet_v2_like", "mobilenet_v3_like", "efficientnet_b4_like")
    medians = [np.median(lat[k]) for k in names]
    assert medians[0] < medians[1] < medians[2]
    # ...while adjacent distributions overlap (the paper's Fig. 1a point):
    # a fast device runs the bigger model faster than a slow device runs
    # the smaller one, so one latency budget admits several architectures.
    for small, big in zip(names, names[1:]):
        assert lat[big].min() < lat[small].max()
    # and each spans a wide range (heterogeneous fleet)
    for values in lat.values():
        assert values.max() / values.min() > 10


def test_fig1b_best_model_histogram(once, report):
    profile = active_profile("femnist_like")
    ds = build_dataset(profile, seed=0)
    percent, best = once(fig1b_best_model_histogram, ds, 7, 0)

    rows = [
        {"complexity_level": i, "clients_best_pct": p} for i, p in enumerate(percent)
    ]
    report("fig1b_best_model", ascii_table(rows, "Fig. 1b best-model histogram"))

    assert percent.sum() == 100.0 or abs(percent.sum() - 100.0) < 1e-9
    # The paper's claim: no single model is best for the majority of clients.
    assert percent.max() < 50.0
    # And the best level is spread over at least 3 distinct complexities.
    assert (percent > 0).sum() >= 3
