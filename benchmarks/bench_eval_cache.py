"""Incremental evaluation cache + delta snapshot publishing, measured.

Periodic evaluation sweeps every registered client, yet between sweeps most
of the suite is idle: async aggregation touches at most ``buffer_k`` models
per step, and cold models in multi-model training go unchanged for long
stretches.  This bench measures both halves of the version-tracking work on
a SplitMix workload (the worst pre-existing case — nested ensembles re-ran
every member model every sweep):

* **Repeated evaluation on a partially idle suite** — per sweep exactly one
  of the k base models trains; cache-on vs cache-off wall-clock, cache hit
  rate, and bit-identical accuracies are reported.  The claim under test:
  >= 3x faster sweeps when the suite is mostly unchanged.
* **Delta snapshot publishing** — the same workload run buffered-async on
  the process backend; bytes pickled per publish are compared against the
  full-suite snapshot the executor used to ship every round.

Run directly via pytest:  PYTHONPATH=src python -m pytest -q -s benchmarks/bench_eval_cache.py
"""

import pickle
import time

import numpy as np

from repro.baselines import SplitMixStrategy
from repro.bench import ascii_table
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import Coordinator, CoordinatorConfig, FLClient, LocalTrainerConfig
from repro.nn import mlp

NUM_CLIENTS = 32
K_BASES = 4
SWEEPS = 8
TRAINER = LocalTrainerConfig(batch_size=8, local_steps=4, lr=0.2)


def _workload(seed: int = 0):
    task = SyntheticTaskConfig(
        num_classes=6,
        input_shape=(16,),
        latent_dim=8,
        teacher_width=16,
        class_sep=2.5,
        seed=seed,
    )
    ds = build_federated_dataset(task, NUM_CLIENTS, mean_samples=600, seed=seed)
    big = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(seed), width=128)
    # Capacity ladder in *base-model* units => nested ensembles of every
    # size 1..k, evenly spread across the fleet (so the one busy base net
    # sits in only ~1/k of the deployment groups).
    base_macs = SplitMixStrategy(big, k=K_BASES, seed=seed)._base_macs
    clients = [
        FLClient(
            c.client_id,
            c,
            DeviceTrace(
                c.client_id,
                1e9,
                1e6,
                base_macs * (1 + K_BASES * c.client_id / NUM_CLIENTS),
            ),
        )
        for c in ds.clients
    ]
    return ds, big, clients


def _coordinator(clients, big, eval_cache: bool, seed: int = 0):
    strategy = SplitMixStrategy(big, k=K_BASES, seed=seed)
    cfg = CoordinatorConfig(
        rounds=2,
        clients_per_round=6,
        trainer=TRAINER,
        eval_every=1,
        seed=seed,
        eval_cache=eval_cache,
    )
    return Coordinator(strategy, clients, cfg), strategy


def test_eval_cache_speedup(report):
    """>= 3x faster repeated sweeps when one of k models changes per sweep."""
    ds, big, clients = _workload()
    coord_on, strat_on = _coordinator(clients, big, eval_cache=True)
    coord_off, strat_off = _coordinator(clients, big, eval_cache=False)
    # Same seed => the two strategies hold bit-identical base suites.
    base_ids = strat_on._base_ids
    assert base_ids == strat_off._base_ids

    def sweep(coord, idx):
        t0 = time.perf_counter()
        ev = coord.evaluate(idx, 0.0)
        return ev, time.perf_counter() - t0

    # Warm sweep (both sides pay full cost; the cache-on side populates).
    ev_on, _ = sweep(coord_on, 0)
    ev_off, _ = sweep(coord_off, 0)
    assert (ev_on.client_accuracy == ev_off.client_accuracy).all()

    on_times: list[float] = []
    off_times: list[float] = []
    cached = total = 0
    busy = base_ids[-1]  # the one model that keeps training; the rest idle
    for i in range(1, SWEEPS + 1):
        for strat in (strat_on, strat_off):
            m = strat._models[busy]
            m.set_params({k: v * 0.999 for k, v in m.get_params().items()})
        ev_on, dt_on = sweep(coord_on, i)
        ev_off, dt_off = sweep(coord_off, i)
        # Bit-identical accuracies, cache on vs off, every sweep.
        assert (ev_on.client_accuracy == ev_off.client_accuracy).all()
        on_times.append(dt_on)
        off_times.append(dt_off)
        cached += ev_on.cached_clients
        total += ev_on.cached_clients + ev_on.evaluated_clients
    coord_on.close()
    coord_off.close()

    on_s, off_s = sum(on_times), sum(off_times)
    # Median per-sweep times gate the speedup: a single scheduler stall or
    # GC pause in one millisecond-scale sweep must not fail CI.
    speedup = float(np.median(off_times) / np.median(on_times))
    hit_rate = cached / total
    report(
        "eval_cache",
        ascii_table(
            [
                {
                    "sweeps": SWEEPS,
                    "clients": NUM_CLIENTS,
                    "suite": K_BASES,
                    "idle_models": K_BASES - 1,
                    "cache_off_s": round(off_s, 4),
                    "cache_on_s": round(on_s, 4),
                    "speedup_x": round(speedup, 2),
                    "hit_rate_pct": round(hit_rate * 100, 1),
                }
            ],
            "incremental evaluation cache: repeated sweeps, 1 of k models training",
        ),
    )
    assert hit_rate > 0.5  # most of the fleet is served from cache
    assert speedup >= 3.0


def test_async_delta_publish_bytes(report):
    """Async + process backend ships per-step deltas, not full suites.

    The fleet is budget-1 (every client trains exactly one of k=8 base
    nets) and aggregation fires on buffer_k=2 arrivals, so each step
    touches at most 2 of the 8 models — the regime the delta publisher is
    built for: many small aggregation steps against a mostly idle suite.
    """
    ds, big, _ = _workload()
    strategy = SplitMixStrategy(big, k=8, seed=0)
    clients = [
        FLClient(
            c.client_id,
            c,
            DeviceTrace(c.client_id, 1e9, 1e6, strategy._base_macs * 1.5),
        )
        for c in ds.clients
    ]
    cfg = CoordinatorConfig(
        rounds=8,
        clients_per_round=6,
        trainer=TRAINER,
        eval_every=4,
        seed=0,
        executor="process",
        max_workers=2,
        mode="async",
        buffer_k=2,
    )
    coord = Coordinator(strategy, clients, cfg)
    coord.run()
    ex = coord.executor  # counters survive close()
    full_suite_bytes = len(
        pickle.dumps(strategy.models(), protocol=pickle.HIGHEST_PROTOCOL)
    )
    assert ex.delta_publish_count > 0
    delta_avg = ex.delta_bytes_total / ex.delta_publish_count
    report(
        "eval_cache_publish",
        ascii_table(
            [
                {
                    "publishes": ex.publish_count,
                    "reused": ex.reused_publish_count,
                    "full": ex.full_publish_count,
                    "delta": ex.delta_publish_count,
                    "full_suite_bytes": full_suite_bytes,
                    "delta_avg_bytes": int(delta_avg),
                    "delta_max_share_pct": round(
                        100 * delta_avg / full_suite_bytes, 1
                    ),
                }
            ],
            "process-backend snapshot publishing: delta vs full-suite bytes",
        ),
    )
    # Strictly fewer bytes per async publish than a full-suite snapshot.
    assert delta_avg < full_suite_bytes
