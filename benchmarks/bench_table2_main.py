"""Table 2 — the headline comparison.

Accuracy / IQR / cost (PMACs) / storage / network for FedTrans vs FLuID,
HeteroFL, and SplitMix on all four dataset analogues.  Shapes asserted (who
wins, directionally) rather than absolute numbers — the substrate is a CPU
simulator, not the paper's 15-GPU testbed.
"""

import pytest

from repro.bench import ascii_table

DATASETS = ("cifar10_like", "femnist_like", "speech_like", "openimage_like")
COMPARED = ("fedtrans", "fluid", "heterofl", "splitmix")


@pytest.mark.parametrize("dataset", DATASETS)
def test_table2_rows(dataset, suite_for, once, report):
    profile, ds, results = once(suite_for, dataset)

    rows = [results[m].summary.row() for m in COMPARED]
    report(f"table2_{dataset}", ascii_table(rows, f"Table 2 — {dataset}"))

    ft = results["fedtrans"].summary
    others = [results[m].summary for m in COMPARED[1:]]

    # FedTrans trains at the lowest MAC cost (paper: 1.6x - 20x cheaper).
    assert all(ft.cost_pmacs < o.cost_pmacs for o in others)
    # FedTrans achieves the best mean client accuracy (paper: +14% - 72%).
    assert all(ft.accuracy >= o.accuracy for o in others)
    # Network transfer is the smallest for FedTrans.
    assert all(ft.network_mb <= o.network_mb for o in others)


def test_table2_full_matrix(suite_for, once, report):
    def build():
        rows = []
        for dataset in DATASETS:
            _, _, results = suite_for(dataset)
            for m in COMPARED:
                row = {"dataset": dataset}
                row.update(results[m].summary.row())
                rows.append(row)
        return rows

    rows = once(build)
    report("table2_full", ascii_table(rows, "Table 2 — all datasets"))
    assert len(rows) == len(DATASETS) * len(COMPARED)
