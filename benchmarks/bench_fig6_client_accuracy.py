"""Fig. 6 — per-client accuracy distributions (box plots) on four datasets.

FedTrans lifts the whole distribution: its median beats every baseline's
median, and its lower quartile shows no collapsed (near-zero) clients the
way width-scaling baselines do for weak devices.
"""

import pytest

from repro.bench import ascii_table, format_box_row

DATASETS = ("cifar10_like", "femnist_like", "speech_like", "openimage_like")
COMPARED = ("fedtrans", "fluid", "heterofl", "splitmix")


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig6_boxes(dataset, suite_for, once, report):
    profile, ds, results = once(suite_for, dataset)
    rows = [
        format_box_row(m, results[m].log.final_eval().client_accuracy)
        for m in COMPARED
    ]
    report(f"fig6_{dataset}", ascii_table(rows, f"Fig. 6 — {dataset} client accuracy"))

    med = {r["method"]: r["median%"] for r in rows}
    q25 = {r["method"]: r["q25%"] for r in rows}
    assert all(med["fedtrans"] >= med[m] for m in COMPARED[1:])
    # The weak-client floor: FedTrans's lower quartile dominates the
    # baselines' (HeteroFL's weak clients get barely-trained crops).
    assert q25["fedtrans"] >= max(q25[m] for m in COMPARED[1:]) - 1e-9
