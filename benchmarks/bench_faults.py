"""Fault-tolerance subsystem — recovery overhead and churn degradation.

Two claims from the fault-tolerance PR, measured:

1. **Crash recovery is invisible in the trajectory and cheap in wall
   time.**  The process backend under injected worker SIGKILLs rebuilds
   the pool, republishes the snapshot chain, and re-dispatches only the
   lost items — the export is byte-identical to the fault-free run at
   the same seed (CONTRACTS.md I10), and the measured wall-clock
   overhead is the cost of the pool rebuilds alone, not a restart of the
   run.

2. **Bounded degradation under churn.**  Task-level failures charge
   simulated backoff and exhausted retries become excluded clients, so
   accuracy degrades smoothly with the failure rate instead of the run
   aborting; quarantine keeps NaN-poisoning at 20% of updates from
   destroying the aggregate.

Run directly via pytest:
PYTHONPATH=src python -m pytest -q -s benchmarks/bench_faults.py
"""

import json
import re
import time

import numpy as np

from repro.baselines import fedavg
from repro.bench import ascii_table
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import (
    Coordinator,
    CoordinatorConfig,
    FLClient,
    LocalTrainerConfig,
    log_to_dict,
    recovery_summary,
)
from repro.nn import mlp

NUM_CLIENTS = 16
ROUNDS = 10
CLIENTS_PER_ROUND = 8
TRAINER = LocalTrainerConfig(batch_size=10, local_steps=8, lr=0.2)


def _workload(seed: int = 0):
    task = SyntheticTaskConfig(
        num_classes=6,
        input_shape=(16,),
        latent_dim=8,
        teacher_width=16,
        class_sep=2.5,
        seed=seed,
    )
    ds = build_federated_dataset(task, NUM_CLIENTS, mean_samples=40, seed=seed)
    clients = [
        FLClient(c.client_id, c, DeviceTrace(c.client_id, 1e9, 1e6, 1e15))
        for c in ds.clients
    ]
    model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(seed), width=32)
    return clients, model


def _run(**over):
    clients, model = _workload()
    cfg = dict(
        rounds=ROUNDS,
        clients_per_round=CLIENTS_PER_ROUND,
        trainer=TRAINER,
        eval_every=5,
        seed=0,
    )
    cfg.update(over)
    coord = Coordinator(
        fedavg(model.clone(keep_id=True)), clients, CoordinatorConfig(**cfg)
    )
    t0 = time.perf_counter()
    log = coord.run()
    return log, time.perf_counter() - t0


def _export(log) -> str:
    """Canonical export with process-global model ids normalized away."""
    raw = json.dumps(log_to_dict(log), sort_keys=True)
    ids: dict[str, str] = {}
    return re.sub(
        r"m\d+", lambda m: ids.setdefault(m.group(0), f"M{len(ids)}"), raw
    )


def test_crash_recovery_overhead(report):
    kw = dict(executor="process", max_workers=2)
    clean_log, clean_s = _run(**kw)
    rows = [
        {
            "faults": "none",
            "wall_s": round(clean_s, 3),
            "restarts": 0,
            "retries": 0,
            "identical_export": "-",
        }
    ]
    for spec in ("crash=0.1", "crash=0.3", "crash=0.3,shm=0.3"):
        log, secs = _run(**kw, faults=spec)
        rec = recovery_summary(log)
        identical = _export(log) == _export(clean_log)
        rows.append(
            {
                "faults": spec,
                "wall_s": round(secs, 3),
                "restarts": rec["worker_restarts"],
                "retries": rec["retries"],
                "identical_export": identical,
            }
        )
        assert identical, f"{spec}: recovered run diverged from fault-free"
        assert rec["worker_restarts"] + rec["retries"] >= 1
    report(
        "faults_recovery_overhead",
        ascii_table(
            rows,
            "worker-crash recovery on the process backend "
            "(export byte-identical to fault-free in every row)",
        ),
    )


def test_degradation_under_churn(report):
    clean_log, _ = _run(executor="serial")
    clean_acc = clean_log.final_accuracy()
    rows = [
        {
            "scenario": "fault-free",
            "final_acc_pct": round(clean_acc * 100, 2),
            "sim_time_s": round(clean_log.simulated_time(), 4),
            "retries": 0,
            "failed": 0,
            "quarantined": 0,
        }
    ]
    scenarios = [
        ("exc=0.1 retries=3", dict(faults="exc=0.1")),
        ("exc=0.3 retries=3", dict(faults="exc=0.3")),
        ("exc=0.3 retries=1", dict(faults="exc=0.3", retries=1)),
        ("poison=0.2 +quarantine", dict(faults="poison=0.2", quarantine=True)),
    ]
    accs = {}
    for name, over in scenarios:
        log, _ = _run(executor="serial", **over)
        rec = recovery_summary(log)
        accs[name] = log.final_accuracy()
        rows.append(
            {
                "scenario": name,
                "final_acc_pct": round(log.final_accuracy() * 100, 2),
                "sim_time_s": round(log.simulated_time(), 4),
                "retries": rec["retries"],
                "failed": rec["failed_updates"],
                "quarantined": rec["quarantined_updates"],
            }
        )
        assert len(log.rounds) == ROUNDS  # every scenario completes the run
    report(
        "faults_churn_degradation",
        ascii_table(rows, "degradation under task failures and poisoning"),
    )
    # Retried-to-success runs sit on the fault-free trajectory (retries
    # only charge simulated time); quarantine must keep poisoning from
    # collapsing accuracy.
    assert accs["exc=0.1 retries=3"] == clean_acc
    assert accs["poison=0.2 +quarantine"] >= 0.7 * clean_acc
