"""Scheduling subsystem — downsize vs drop, and sparse-store memory.

Two claims from the scheduling PR, measured:

1. **Straggler downsizing beats dropping.**  On the straggler-heavy fleet
   of ``bench_async_rounds.py`` (a slow minority with ~100x less compute
   and ~50x less bandwidth) running HeteroFL's multi-size subnet ladder,
   the ``drop`` policy wastes every slow client's slot — dispatched, held
   to the deadline, discarded — while ``downsize`` re-assigns each
   predicted-late client the largest subnet whose estimated round time
   fits the deadline.  Same fleet, same deadline, same seed: downsize
   reaches the shared target accuracy in less simulated time, with zero
   dropped updates.

2. **Sparse utility store.**  ``ClientManager`` state at 100k registered /
   1k active clients: with eviction the resident footprint tracks the
   *active* fleet and lands well under 5% of the dense (never-evict)
   store's.

Run directly via pytest:
PYTHONPATH=src python -m pytest -q -s benchmarks/bench_scheduling.py
"""

import os

import numpy as np

from repro.baselines import HeteroFLStrategy
from repro.bench import ascii_table
from repro.core import ClientManager
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import ClientUpdate, Coordinator, CoordinatorConfig, FLClient, LocalTrainerConfig
from repro.fl.scheduling import estimate_round_time
from repro.nn import mlp

NUM_CLIENTS = 20
NUM_SLOW = 4  # 20% stragglers: 100x slower compute, 50x slower network
ROUNDS = 24
CLIENTS_PER_ROUND = 8
BUFFER_K = 4
TRAINER = LocalTrainerConfig(batch_size=10, local_steps=8, lr=0.2)

# Store-memory scenario (overridable for constrained CI runs).
REGISTERED = int(os.environ.get("SCHED_BENCH_REGISTERED", 100_000))
ACTIVE = int(os.environ.get("SCHED_BENCH_ACTIVE", 1_000))


def _workload(seed: int = 0):
    task = SyntheticTaskConfig(
        num_classes=6,
        input_shape=(16,),
        latent_dim=8,
        teacher_width=16,
        class_sep=2.5,
        seed=seed,
    )
    ds = build_federated_dataset(task, NUM_CLIENTS, mean_samples=40, seed=seed)
    clients = [
        FLClient(
            c.client_id,
            c,
            DeviceTrace(
                c.client_id,
                1e7 if c.client_id < NUM_SLOW else 1e9,
                2e4 if c.client_id < NUM_SLOW else 1e6,
                1e15,
            ),
        )
        for c in ds.clients
    ]
    model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(seed), width=32)
    return ds, model, clients


def _deadline(clients, model) -> float:
    """Fast clients' full model fits; slow clients only fit downsized."""
    suite = HeteroFLStrategy(model.clone()).models()
    smallest = min(suite.values(), key=lambda m: m.macs())
    full = max(suite.values(), key=lambda m: m.macs())
    deadline = 2 * max(
        estimate_round_time(c, smallest, TRAINER) for c in clients[:NUM_SLOW]
    )
    assert max(estimate_round_time(c, full, TRAINER) for c in clients[NUM_SLOW:]) < deadline
    assert deadline < min(estimate_round_time(c, full, TRAINER) for c in clients[:NUM_SLOW])
    return deadline


def _run(straggler: str, seed: int = 0):
    ds, model, clients = _workload(seed)
    cfg = CoordinatorConfig(
        rounds=ROUNDS,
        clients_per_round=CLIENTS_PER_ROUND,
        trainer=TRAINER,
        eval_every=4,
        seed=seed,
        mode="async",
        buffer_k=BUFFER_K,
        deadline_s=_deadline(clients, model),
        straggler=straggler,
    )
    return Coordinator(HeteroFLStrategy(model.clone()), clients, cfg).run()


def test_downsize_beats_drop_time_to_accuracy(report):
    runs = {"drop": _run("drop"), "downsize": _run("downsize")}

    # Shared target: just under the weakest run's best accuracy, so both
    # configurations reach it and times are comparable.
    target = 0.95 * min(log.best_eval().mean_accuracy for log in runs.values())
    rows, times = [], {}
    for name, log in runs.items():
        t = log.time_to_accuracy(target)
        times[name] = t
        rows.append(
            {
                "straggler": name,
                f"time_to_{target:.0%}_s": round(t, 4) if t is not None else "n/a",
                "sim_time_total_s": round(log.simulated_time(), 4),
                "final_acc_pct": round(log.final_accuracy() * 100, 2),
                "dropped": log.dropped_updates,
                "downsized": log.downsized_updates,
                "dropped_pmacs": round(log.dropped_macs / 1e15, 9),
            }
        )
    report(
        "scheduling_straggler",
        ascii_table(rows, "drop vs downsize on the straggler-heavy fleet (HeteroFL)"),
    )

    drop, down = runs["drop"], runs["downsize"]
    assert drop.dropped_updates > 0 and drop.downsized_updates == 0
    assert down.downsized_updates > 0 and down.dropped_updates == 0
    assert all(t is not None for t in times.values())
    # The headline claim: converting predicted-late slots into small-model
    # updates reaches the target accuracy in less simulated time than
    # discarding them at the deadline.
    assert times["downsize"] < times["drop"]


def test_sparse_store_memory_at_scale(report):
    rng = np.random.default_rng(0)
    parent = mlp((6,), 3, rng, width=4)
    child = parent.clone()
    child.widen_cell(child.transformable_cells()[0].cell_id, 2.0, rng)
    models = {parent.model_id: parent, child.model_id: child}

    def upd(cid, loss):
        return ClientUpdate(cid, parent.model_id, {}, {}, {}, loss, 1, 0.0, 0, 0, 0.0)

    losses = np.random.default_rng(1).uniform(0.1, 2.0, REGISTERED)

    def churn(cm: ClientManager) -> None:
        # Round 0: every registered client participates once.
        cm.advance_round(0)
        cm.update([upd(cid, losses[cid]) for cid in range(REGISTERED)], models)
        # Rounds 1..30: only the active slice keeps participating.
        for r in range(1, 31):
            cm.advance_round(r)
            cm.update([upd(cid, losses[cid]) for cid in range(ACTIVE)], models)

    dense = ClientManager()  # evict_after=None: the legacy dense behavior
    churn(dense)
    sparse = ClientManager(evict_after=20)
    churn(sparse)

    dense_bytes = dense.store.resident_bytes()
    sparse_bytes = sparse.store.resident_bytes()
    ratio = sparse_bytes / dense_bytes
    report(
        "scheduling_store_memory",
        ascii_table(
            [
                {
                    "store": name,
                    "resident_clients": cm.store.resident_clients(),
                    "resident_mb": round(cm.store.resident_bytes() / 1e6, 3),
                    "evicted": cm.store.evicted_total,
                }
                for name, cm in (("dense", dense), ("sparse", sparse))
            ],
            f"utility store at {REGISTERED:,} registered / {ACTIVE:,} active clients "
            f"(sparse/dense = {ratio:.2%})",
        ),
    )

    assert dense.store.resident_clients() == REGISTERED
    assert sparse.store.resident_clients() == ACTIVE
    # The acceptance bar: resident state proportional to the active fleet.
    assert ratio <= 0.05
    # Evicted clients still answer (with the fresh-client prior).
    assert sparse.utility(REGISTERED - 1, parent.model_id) == 0.0
