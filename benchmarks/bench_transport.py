"""Transport codec — update-byte reduction at equal accuracy, metered cost.

The compressed-transport PR's headline claims, measured on the straggler
fleet:

1. **>= 10x fewer client->server bytes per round at equal accuracy.**
   ``update:topk0.05+int8`` ships a sparse quantized delta with
   server-side error feedback; the gate compares on-wire update bytes and
   final mean accuracy against the uncompressed baseline at the same
   seed.

2. **Codec cost is metered and small.**  Encoding time (the only
   wall-clock the codec adds — the simulation ships no real packets) is
   accumulated around ``TransportCodec.encode_update`` and must stay
   under 10% of the run's wall time.

3. **Lossless paths are free of trajectory risk.**  ``update:rle,
   snapshot:rle`` must reproduce the uncompressed trajectory exactly
   (CONTRACTS.md I11) while only the byte ledger moves.

Run directly via pytest:
PYTHONPATH=src python -m pytest -q -s benchmarks/bench_transport.py
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.baselines import fedavg
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import (
    Coordinator,
    CoordinatorConfig,
    FLClient,
    LocalTrainerConfig,
    transport_to_dict,
)

from repro.nn import mlp

NUM_CLIENTS = int(os.environ.get("TRANSPORT_CLIENTS", "16"))
ROUNDS = int(os.environ.get("TRANSPORT_ROUNDS", "12"))
CLIENTS_PER_ROUND = int(os.environ.get("TRANSPORT_CLIENTS_PER_ROUND", "8"))
MIN_RATIO = float(os.environ.get("TRANSPORT_MIN_RATIO", "10"))
ACC_TOL = float(os.environ.get("TRANSPORT_ACC_TOL", "0.03"))
MAX_OVERHEAD = float(os.environ.get("TRANSPORT_MAX_OVERHEAD", "0.10"))

OUT_PATH = Path(
    os.environ.get(
        "TRANSPORT_OUT", Path(__file__).parent.parent / "BENCH_transport.json"
    )
)

LOSSY_SPEC = "update:topk0.05+int8,snapshot:rle"
LOSSLESS_SPEC = "update:rle,snapshot:rle"

# Paper-scale local training (Table 7: 20 local steps), so the codec's
# overhead is measured against a realistic per-round compute cost rather
# than a degenerate few-millisecond round.
TRAINER = LocalTrainerConfig(batch_size=20, local_steps=20, lr=0.2)

_RESULTS: dict = {
    "workload": {
        "model": "mlp(width=32)",
        "clients": NUM_CLIENTS,
        "clients_per_round": CLIENTS_PER_ROUND,
        "rounds": ROUNDS,
        "lossy_spec": LOSSY_SPEC,
        "lossless_spec": LOSSLESS_SPEC,
    }
}


def _workload(seed: int = 0):
    """The straggler fleet: a quarter of the devices are slow uploaders."""
    task = SyntheticTaskConfig(
        num_classes=6,
        input_shape=(16,),
        latent_dim=8,
        teacher_width=16,
        class_sep=2.5,
        seed=seed,
    )
    ds = build_federated_dataset(task, NUM_CLIENTS, mean_samples=40, seed=seed)
    clients = [
        FLClient(
            c.client_id,
            c,
            DeviceTrace(
                c.client_id,
                1e7 if c.client_id % 4 == 0 else 1e9,
                2e4 if c.client_id % 4 == 0 else 1e6,
                1e15,
            ),
        )
        for c in ds.clients
    ]
    model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(seed), width=32)
    return clients, model


def _run(**over):
    """One run; returns (log, wall seconds, codec-encode seconds)."""
    clients, model = _workload()
    cfg = dict(
        rounds=ROUNDS,
        clients_per_round=CLIENTS_PER_ROUND,
        trainer=TRAINER,
        eval_every=ROUNDS // 2,
        seed=0,
    )
    cfg.update(over)
    coord = Coordinator(
        fedavg(model.clone(keep_id=True)), clients, CoordinatorConfig(**cfg)
    )
    encode_s = [0.0]
    if coord.transport is not None:
        inner = coord.transport.encode_update

        def timed(*args, **kwargs):
            t0 = time.perf_counter()
            out = inner(*args, **kwargs)
            encode_s[0] += time.perf_counter() - t0
            return out

        coord.transport.encode_update = timed
    t0 = time.perf_counter()
    log = coord.run()
    return log, time.perf_counter() - t0, encode_s[0]


def _final_acc(log) -> float:
    return float(log.evals[-1].mean_accuracy)


def _write_results() -> None:
    with open(OUT_PATH, "w") as f:
        json.dump(_RESULTS, f, indent=1, sort_keys=True)
        f.write("\n")


def test_update_byte_reduction_at_equal_accuracy(report):
    """THE gate: >= 10x fewer update bytes/round, equal final accuracy."""
    base_log, base_s, _ = _run()
    lossy_log, lossy_s, encode_s = _run(compress=LOSSY_SPEC)

    base_bytes = base_log.total_bytes_up / ROUNDS
    lossy_bytes = lossy_log.total_bytes_up / ROUNDS
    ratio = base_log.total_bytes_up / lossy_log.total_bytes_up
    base_acc = _final_acc(base_log)
    lossy_acc = _final_acc(lossy_log)
    overhead = encode_s / lossy_s

    assert lossy_log.total_raw_bytes_up == base_log.total_bytes_up
    ledger = transport_to_dict(lossy_log)
    assert ledger["totals"]["wire_bytes_up"] == lossy_log.total_bytes_up

    _RESULTS["lossy"] = {
        "baseline_update_bytes_per_round": int(base_bytes),
        "compressed_update_bytes_per_round": int(lossy_bytes),
        "compression_ratio": round(ratio, 2),
        "min_required_ratio": MIN_RATIO,
        "baseline_final_acc": round(base_acc, 4),
        "compressed_final_acc": round(lossy_acc, 4),
        "acc_tolerance": ACC_TOL,
        "baseline_wall_s": round(base_s, 3),
        "compressed_wall_s": round(lossy_s, 3),
        "codec_encode_s": round(encode_s, 4),
        "codec_overhead_frac": round(overhead, 4),
        "max_overhead_frac": MAX_OVERHEAD,
    }
    _write_results()
    report(
        "transport_lossy",
        f"{LOSSY_SPEC} vs raw, straggler fleet\n"
        f"  update bytes/round: {base_bytes / 1e6:.2f} MB -> "
        f"{lossy_bytes / 1e6:.3f} MB ({ratio:.1f}x, required >= {MIN_RATIO}x)\n"
        f"  final accuracy:     {base_acc:.4f} -> {lossy_acc:.4f} "
        f"(tolerance {ACC_TOL})\n"
        f"  codec encode time:  {encode_s:.3f} s "
        f"({100 * overhead:.1f}% of wall, required <= {100 * MAX_OVERHEAD:.0f}%)",
    )
    assert ratio >= MIN_RATIO, f"update-byte reduction {ratio:.1f}x < {MIN_RATIO}x"
    assert lossy_acc >= base_acc - ACC_TOL, (
        f"accuracy dropped beyond tolerance: {base_acc:.4f} -> {lossy_acc:.4f}"
    )
    assert overhead <= MAX_OVERHEAD, (
        f"codec overhead {100 * overhead:.1f}% of round time exceeds "
        f"{100 * MAX_OVERHEAD:.0f}%"
    )


def test_lossless_is_trajectory_free(report):
    """I11: the lossless stack changes bytes, not the trajectory."""
    base_log, _, _ = _run()
    rle_log, wall_s, encode_s = _run(
        compress=LOSSLESS_SPEC, executor="process", max_workers=2
    )
    assert [r.mean_loss for r in rle_log.rounds] == [
        r.mean_loss for r in base_log.rounds
    ]
    assert _final_acc(rle_log) == _final_acc(base_log)
    assert rle_log.total_raw_bytes_up == base_log.total_bytes_up
    assert rle_log.total_bytes_up <= base_log.total_bytes_up
    ledger = transport_to_dict(rle_log)
    snap_raw = ledger["totals"]["publish_raw_bytes"]
    snap_wire = ledger["totals"]["publish_wire_bytes"]
    assert 0 < snap_wire <= snap_raw
    _RESULTS["lossless"] = {
        "update_wire_bytes": rle_log.total_bytes_up,
        "update_raw_bytes": rle_log.total_raw_bytes_up,
        "publish_wire_bytes": snap_wire,
        "publish_raw_bytes": snap_raw,
        "trajectory_identical": True,
        "codec_encode_s": round(encode_s, 4),
        "wall_s": round(wall_s, 3),
    }
    _write_results()
    report(
        "transport_lossless",
        f"{LOSSLESS_SPEC} (process backend) vs raw\n"
        f"  trajectory: identical (losses + accuracy bit-equal)\n"
        f"  update bytes: {rle_log.total_raw_bytes_up / 1e6:.2f} MB raw -> "
        f"{rle_log.total_bytes_up / 1e6:.2f} MB wire\n"
        f"  publish bytes: {snap_raw / 1e6:.2f} MB raw -> "
        f"{snap_wire / 1e6:.2f} MB wire",
    )
