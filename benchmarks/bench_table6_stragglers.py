"""Table 6 — FedTrans mitigates the straggler issue.

Because every client trains a model sized to its hardware, round-completion
time (max over participants of download + train + upload) drops in both
mean and standard deviation versus single-model FedAvg, which forces slow
devices through the same global model.
"""

import numpy as np

from repro.bench import active_profile, ascii_table, build_dataset
from repro.bench.workloads import run_method, run_workload_suite


def test_table6_round_times(once, report):
    profile = active_profile("femnist_like")
    ds = build_dataset(profile, seed=0)

    def run_pair():
        ft = run_method("fedtrans", ds, profile, seed=0)
        suite = sorted(ft.strategy.models().values(), key=lambda m: m.macs())
        middle = suite[len(suite) // 2]
        fa = run_method("fedavg", ds, profile, seed=0, middle_model=middle)
        return ft, fa

    ft, fa = once(run_pair)
    rows = []
    for name, res in (("fedtrans+fedavg", ft), ("fedavg", fa)):
        times = res.log.round_times()
        rows.append(
            {
                "method": name,
                "avg_s": round(float(times.mean()), 4),
                "std_s": round(float(times.std()), 4),
            }
        )
    report("table6_stragglers", ascii_table(rows, "Table 6 round completion time"))

    ft_times, fa_times = ft.log.round_times(), fa.log.round_times()
    # Capacity-aware assignment shortens the average round.
    assert ft_times.mean() < fa_times.mean()
