"""Million-client fleet: columnar store vs object-per-client scheduling.

The pre-columnar hot path rebuilt a dense ``list[FLClient]`` every
dispatch wave and looped per policy — O(registered) Python work per tick.
This bench measures one scheduler tick at ``FLEETSCALE_REGISTERED``
registered / ``FLEETSCALE_ACTIVE`` selected clients (default 1M / 1k)
for each selector against a faithful re-implementation of the legacy
list path, asserting the two pick the **identical clients** at the same
RNG state before any speedup is scored:

* **uniform** (the default stack, the headline gate): legacy list
  comprehension + index loop vs :meth:`FleetStore.available_view` +
  ``take_rows`` — must be >= ``FLEETSCALE_MIN_SPEEDUP`` (default 50) x
  faster.
* **availability**: legacy ids-from-objects + online list comprehension
  vs the view/``restrict`` path (same SplitMix64 mask either way).
* **oort**: legacy dict-gather weight vector vs the columnar masked
  gather.  Both paths share the identical p-weighted ``rng.choice``
  (which dominates at 1M rows), so the aux gate
  ``FLEETSCALE_MIN_AUX_SPEEDUP`` (default 3) is deliberately lower than
  the headline.

Results land in ``BENCH_fleetscale.json`` at the repo root
(``FLEETSCALE_OUT`` overrides — CI uploads it as an artifact).  Budget
knobs for CI: ``FLEETSCALE_REGISTERED``, ``FLEETSCALE_ACTIVE``,
``FLEETSCALE_REPS``.

Run directly via pytest:  PYTHONPATH=src python -m pytest -q -s benchmarks/bench_fleet_scale.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data.federated import ClientData
from repro.device.traces import DeviceTrace
from repro.fl.scheduling import AvailabilityAwareSelector, FleetStore, OortSelector
from repro.fl.types import FLClient

REGISTERED = int(os.environ.get("FLEETSCALE_REGISTERED", "1000000"))
ACTIVE = int(os.environ.get("FLEETSCALE_ACTIVE", "1000"))
REPS = int(os.environ.get("FLEETSCALE_REPS", "5"))
MIN_SPEEDUP = float(os.environ.get("FLEETSCALE_MIN_SPEEDUP", "50"))
MIN_AUX_SPEEDUP = float(os.environ.get("FLEETSCALE_MIN_AUX_SPEEDUP", "3"))
SEED = 7

OUT_PATH = Path(
    os.environ.get(
        "FLEETSCALE_OUT", Path(__file__).parent.parent / "BENCH_fleetscale.json"
    )
)

_RESULTS: dict = {
    "workload": {
        "registered": REGISTERED,
        "active": ACTIVE,
        "reps": REPS,
        "min_speedup": MIN_SPEEDUP,
        "min_aux_speedup": MIN_AUX_SPEEDUP,
    }
}


def _write_results() -> None:
    with open(OUT_PATH, "w") as f:
        json.dump(_RESULTS, f, indent=1, sort_keys=True)
        f.write("\n")


def _best(fn, *args) -> tuple[float, object]:
    """Min wall time over REPS runs (min filters scheduler jitter)."""
    best = float("inf")
    out = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, out


@pytest.fixture(scope="module")
def fleet():
    """REGISTERED lightweight clients (shared data/devices) + their store."""
    x = np.zeros((8, 4))
    y = np.zeros(8, dtype=np.int64)
    data = ClientData(0, x, y, x, y)
    # Four device tiers -> four occupied speed classes, like a real fleet.
    tiers = [DeviceTrace(t, 10.0 ** (8 + t), 10.0 ** (5 + t), 1e15) for t in range(4)]
    clients = [FLClient(i, data, tiers[i % 4]) for i in range(REGISTERED)]
    store = FleetStore(clients)
    return clients, store


def test_uniform_tick_speedup(fleet, report):
    """Default-stack dispatch tick: O(active) view vs O(registered) list."""
    clients, store = fleet
    # Steady state: ACTIVE clients already in flight, a full wave to fill.
    in_flight = set(range(0, 3 * ACTIVE, 3))
    store.set_in_flight_ids(in_flight)
    try:

        def legacy(rng):
            available = [c for c in clients if c.client_id not in in_flight]
            idx = rng.choice(len(available), size=ACTIVE, replace=False)
            return [available[i] for i in idx]

        def columnar(rng):
            view = store.available_view()
            idx = rng.choice(len(view), size=ACTIVE, replace=False)
            return store.ids[view.take_rows(idx)]

        t_legacy, picked_legacy = _best(legacy, np.random.default_rng(SEED))
        t_col, picked_col = _best(columnar, np.random.default_rng(SEED))
    finally:
        store.set_in_flight_ids([])
    # REPS runs advance each generator identically, so the *last* rep's
    # selections must match element for element.
    assert [c.client_id for c in picked_legacy] == list(picked_col)
    speedup = t_legacy / t_col
    _RESULTS["uniform_tick"] = {
        "legacy_ms": round(t_legacy * 1e3, 3),
        "columnar_ms": round(t_col * 1e3, 3),
        "speedup": round(speedup, 1),
        "min_required": MIN_SPEEDUP,
    }
    _RESULTS["store_nbytes"] = store.nbytes()
    _write_results()
    report(
        "fleet_scale_uniform",
        f"uniform dispatch tick, {REGISTERED} registered / {ACTIVE} selected\n"
        f"  legacy list path: {t_legacy * 1e3:.2f} ms\n"
        f"  columnar view:    {t_col * 1e3:.3f} ms\n"
        f"  speedup: {speedup:.0f}x (required >= {MIN_SPEEDUP}x)\n"
        f"  store columns: {store.nbytes() / 1e6:.1f} MB",
    )
    assert speedup >= MIN_SPEEDUP


def test_availability_tick_speedup(fleet, report):
    """Availability tick: columnar mask+restrict vs ids-from-objects."""
    clients, store = fleet
    legacy_sel = AvailabilityAwareSelector(seed=SEED)
    col_sel = AvailabilityAwareSelector(seed=SEED)
    col_sel.bind_fleet(store)
    round_idx = 11

    def legacy(rng):
        # The pre-columnar select(): ids array built from the objects,
        # online pool materialized as a list, then uniform over it.
        ids = np.asarray([c.client_id for c in clients])
        mask = legacy_sel._online_mask(round_idx, ids)
        online = [c for c, m in zip(clients, mask) if m]
        idx = rng.choice(len(online), size=min(ACTIVE, len(online)), replace=False)
        return [online[i] for i in idx]

    def columnar(rng):
        return col_sel.select(round_idx, store.view(), ACTIVE, rng)

    t_legacy, picked_legacy = _best(legacy, np.random.default_rng(SEED))
    t_col, picked_col = _best(columnar, np.random.default_rng(SEED))
    assert [c.client_id for c in picked_legacy] == [c.client_id for c in picked_col]
    speedup = t_legacy / t_col
    _RESULTS["availability_tick"] = {
        "legacy_ms": round(t_legacy * 1e3, 3),
        "columnar_ms": round(t_col * 1e3, 3),
        "speedup": round(speedup, 1),
        "min_required": MIN_AUX_SPEEDUP,
    }
    _write_results()
    report(
        "fleet_scale_availability",
        f"availability tick, {REGISTERED} registered / {ACTIVE} selected\n"
        f"  legacy list path: {t_legacy * 1e3:.2f} ms\n"
        f"  columnar view:    {t_col * 1e3:.3f} ms\n"
        f"  speedup: {speedup:.0f}x (required >= {MIN_AUX_SPEEDUP}x)",
    )
    assert speedup >= MIN_AUX_SPEEDUP


def test_oort_tick_speedup(fleet, report):
    """Oort tick: columnar masked gather vs the dict-gather weight vector."""
    clients, store = fleet
    # 10k clients have observed utilities; everyone else enters optimistic.
    seen = np.random.default_rng(SEED).choice(REGISTERED, size=10_000, replace=False)
    payload = {
        "schema": OortSelector().schema,
        "utility": {str(int(c)): 0.5 + (int(c) % 97) / 100.0 for c in seen},
    }
    legacy_sel = OortSelector()
    legacy_sel.load_state_dict(payload)
    col_sel = OortSelector()
    col_sel.bind_fleet(store)
    col_sel.load_state_dict(payload)

    def legacy(rng):
        return legacy_sel.select(0, clients, ACTIVE, rng)

    def columnar(rng):
        return col_sel.select(0, store.view(), ACTIVE, rng)

    t_legacy, picked_legacy = _best(legacy, np.random.default_rng(SEED))
    t_col, picked_col = _best(columnar, np.random.default_rng(SEED))
    assert [c.client_id for c in picked_legacy] == [c.client_id for c in picked_col]
    speedup = t_legacy / t_col
    _RESULTS["oort_tick"] = {
        "legacy_ms": round(t_legacy * 1e3, 3),
        "columnar_ms": round(t_col * 1e3, 3),
        "speedup": round(speedup, 1),
        "min_required": MIN_AUX_SPEEDUP,
        "resident_utilities": store.resident_utilities(),
    }
    _write_results()
    report(
        "fleet_scale_oort",
        f"oort tick, {REGISTERED} registered / {ACTIVE} selected "
        f"({store.resident_utilities()} resident utilities)\n"
        f"  legacy dict path: {t_legacy * 1e3:.2f} ms\n"
        f"  columnar gather:  {t_col * 1e3:.3f} ms\n"
        f"  speedup: {speedup:.1f}x (required >= {MIN_AUX_SPEEDUP}x)",
    )
    assert speedup >= MIN_AUX_SPEEDUP
