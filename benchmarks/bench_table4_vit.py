"""Table 4 — FedTrans generalizes beyond CNNs: ViT models.

FedTrans + FedAvg on a ViT initial model beats plain FedAvg on the same
ViT, at lower cost (the transformation path widens encoder MLPs / inserts
identity encoder blocks).
"""

from repro.bench import active_profile, ascii_table, build_dataset
from repro.bench.workloads import run_method


def test_table4_vit(once, report):
    base = active_profile("femnist_like")
    profile = base.with_(
        model_kind="vit",
        image=True,
        init_width=12,  # token dim
        lr=0.1,
        rounds=min(base.rounds, 120),
        max_models=3,  # ViT cells are costly; bound the suite like the paper's budget rule
    )
    # Reduced label space keeps the tiny ViT (16 tokens, dim 12) learnable
    # within the CPU budget; the comparison is FedTrans-vs-FedAvg on the
    # *same* ViT, so the task reduction cancels out.
    ds = build_dataset(profile, seed=0, num_classes=16)

    def run_both():
        ft = run_method("fedtrans", ds, profile, seed=0)
        fa = run_method("fedavg", ds, profile, seed=0)  # same initial ViT
        return ft, fa

    ft, fa = once(run_both)
    rows = [
        {
            "method": "fedtrans+fedavg (ViT)",
            "accuracy_pct": round(ft.log.final_accuracy() * 100, 2),
            "cost_macs": ft.log.total_macs,
            "models": len(ft.strategy.models()),
        },
        {
            "method": "fedavg (ViT)",
            "accuracy_pct": round(fa.log.final_accuracy() * 100, 2),
            "cost_macs": fa.log.total_macs,
            "models": 1,
        },
    ]
    report("table4_vit", ascii_table(rows, "Table 4 ViT models"))

    # The paper's Table 4 claim is cost-framed (FedTrans + FedAvg converges
    # orders of magnitude cheaper at better accuracy).  At reduced scale we
    # assert the matched-cost frontier: at FedTrans's budget, plain FedAvg
    # has reached no better accuracy.
    xs, ys = fa.log.cost_accuracy_curve()
    budget = ft.log.total_macs
    fa_at_budget = max((y for x, y in zip(xs, ys) if x <= budget), default=0.0)
    assert ft.log.final_accuracy() >= fa_at_budget - 0.02
    # ViT cells were actually transformed (multi-model suite exists).
    assert len(ft.strategy.models()) >= 2
