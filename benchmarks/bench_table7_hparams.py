"""Table 7 — hyperparameters.

Asserts the library's paper-scale defaults equal the values Table 7
reports, and prints the full configuration table per dataset profile.
"""

from repro.bench import PROFILES, ascii_table
from repro.core import PAPER_DEFAULTS
from repro.fl import LocalTrainerConfig


def test_table7_defaults(once, report):
    trainer = once(LocalTrainerConfig)

    rows = [
        {"hyperparameter": "cell activeness threshold (alpha)", "value": PAPER_DEFAULTS.alpha, "paper": 0.9},
        {"hyperparameter": "DoC threshold (beta)", "value": PAPER_DEFAULTS.beta, "paper": 0.003},
        {"hyperparameter": "consecutive slopes for DoC (gamma)", "value": PAPER_DEFAULTS.gamma, "paper": 10},
        {"hyperparameter": "soft-aggregation decay factor (eta)", "value": PAPER_DEFAULTS.eta, "paper": 0.98},
        {"hyperparameter": "activeness window (T)", "value": PAPER_DEFAULTS.activeness_window, "paper": 5},
        {"hyperparameter": "widen degree", "value": PAPER_DEFAULTS.widen_factor, "paper": 2},
        {"hyperparameter": "deepen degree", "value": PAPER_DEFAULTS.deepen_cells, "paper": 1},
        {"hyperparameter": "local training steps", "value": trainer.local_steps, "paper": 20},
        {"hyperparameter": "batch size", "value": trainer.batch_size, "paper": 10},
        {"hyperparameter": "learning rate", "value": trainer.lr, "paper": 0.05},
    ]
    report("table7_hparams", ascii_table(rows, "Table 7 hyperparameters"))
    for row in rows:
        assert float(row["value"]) == float(row["paper"]), row["hyperparameter"]

    # Per-dataset delta (loss-slope step) matches Table 7's spread at paper
    # scale: 20 (CIFAR) / 30 (FEMNIST) / 100 (Speech) / 50 (OpenImage).
    paper_profiles = PROFILES["paper"]
    assert paper_profiles["femnist_like"].delta == 30
    assert paper_profiles["speech_like"].delta == 100
    assert paper_profiles["openimage_like"].delta == 50

    scale_rows = [
        {
            "dataset": name,
            "rounds": p.rounds,
            "clients/round": p.clients_per_round,
            "delta": p.delta,
            "gamma": p.gamma,
            "beta": p.beta,
        }
        for name, p in paper_profiles.items()
    ]
    report("table7_paper_profiles", ascii_table(scale_rows, "Paper-scale schedule"))
