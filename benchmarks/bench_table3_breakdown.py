"""Table 3 — component breakdown.

Knocking out layer selection ('l'), soft aggregation ('s'), warmup ('w'),
and decayed weight sharing ('d') in sequence degrades accuracy; removing
warmup also inflates cost (the paper: +1.6x).
"""

from repro.bench import active_profile, ascii_table, breakdown, build_dataset


def test_table3_breakdown(once, report):
    profile = active_profile("femnist_like")
    ds = build_dataset(profile, seed=0)
    points = once(breakdown, ds, profile, 0)

    rows = [
        {
            "breakdown": name,
            "accuracy_pct": round(p.accuracy * 100, 2),
            "cost_macs": p.cost_macs,
            "models": p.num_models,
        }
        for name, p in points.items()
    ]
    report("table3_breakdown", ascii_table(rows, "Table 3 component breakdown"))

    # Scale note (recorded in EXPERIMENTS.md): the paper's per-component
    # deltas (3-20 points) emerge over 2000 rounds where ablations compound;
    # at reduced scale the knockouts are within seed noise, so the shape
    # assertion is a band: the full configuration is never materially worse
    # than any knockout, and every knockout still runs end to end.
    full = points["fedtrans"].accuracy
    assert all(full >= p.accuracy - 0.06 for p in points.values())
    # Every variant still runs multi-model end to end.
    assert all(p.num_models >= 2 for p in points.values())
    # The '-w' (no warmup) variants really did reinitialize: their suites
    # match the others structurally, so the flag exercised the code path.
    assert points["fedtrans-lsw"].num_models >= 2
