"""Executor scaling — wall-clock speedup of parallel round backends.

Not a paper figure: this measures the round-execution engine itself.  One
coordinator round trains ``clients_per_round`` participants; the serial
backend runs them in one Python loop, the thread/process backends overlap
them.  We time identical workloads (same seed => bit-identical logs) at
several fleet sizes and report the speedup over serial.

On a multi-core host the process backend must reach >= 2x over serial for
a 50-client round; on single-core CI runners the assertion degrades to a
smoke check (parallelism cannot beat the hardware).
"""

import os
import time

import numpy as np

from repro.baselines import fedavg
from repro.bench import ascii_table
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import Coordinator, CoordinatorConfig, FLClient, LocalTrainerConfig
from repro.nn import mlp

FLEET_SIZES = (10, 25, 50)
ROUNDS = 3


def _workload(num_clients: int, seed: int = 0):
    task = SyntheticTaskConfig(
        num_classes=8,
        input_shape=(32,),
        latent_dim=12,
        teacher_width=24,
        class_sep=2.5,
        seed=seed,
    )
    ds = build_federated_dataset(task, num_clients, mean_samples=80, seed=seed)
    clients = [
        FLClient(c.client_id, c, DeviceTrace(c.client_id, 1e9, 1e6, 1e15))
        for c in ds.clients
    ]
    model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(seed), width=64)
    return ds, model, clients


def _run(backend: str, num_clients: int, seed: int = 0):
    ds, model, clients = _workload(num_clients, seed)
    coord = Coordinator(
        fedavg(model.clone(keep_id=True)),
        clients,
        CoordinatorConfig(
            rounds=ROUNDS,
            clients_per_round=num_clients,  # every client trains every round
            trainer=LocalTrainerConfig(batch_size=16, local_steps=25, lr=0.1),
            eval_every=ROUNDS,
            seed=seed,
            executor=backend,
        ),
    )
    start = time.perf_counter()
    log = coord.run()
    return log, time.perf_counter() - start


def test_executor_scaling(report):
    rows = []
    speedups: dict[tuple[str, int], float] = {}
    for n in FLEET_SIZES:
        logs = {}
        walls = {}
        for backend in ("serial", "thread", "process"):
            log, wall = _run(backend, n)
            logs[backend], walls[backend] = log, wall
        for backend in ("thread", "process"):
            # Parallel backends must not change the simulation: bit-identical.
            assert logs[backend].final_accuracy() == logs["serial"].final_accuracy()
            assert all(
                a.mean_loss == b.mean_loss
                for a, b in zip(logs[backend].rounds, logs["serial"].rounds)
            )
            speedups[(backend, n)] = walls["serial"] / walls[backend]
        rows.append(
            {
                "fleet (clients/round)": n,
                "serial s": f"{walls['serial']:.2f}",
                "thread s": f"{walls['thread']:.2f}",
                "process s": f"{walls['process']:.2f}",
                "thread speedup": f"{speedups[('thread', n)]:.2f}x",
                "process speedup": f"{speedups[('process', n)]:.2f}x",
            }
        )
    cores = os.cpu_count() or 1
    report(
        "executor_scaling",
        ascii_table(rows, f"round-executor scaling ({cores} cores)"),
    )
    if cores >= 4:
        # Acceptance bar: a 50-client round >= 2x faster than serial on a
        # multi-core host (process pool, best-of backends).
        best = max(speedups[("process", 50)], speedups[("thread", 50)])
        assert best >= 2.0, f"expected >=2x speedup at 50 clients, got {best:.2f}x"
    else:
        # Single-core host: parallel backends cannot outrun the hardware;
        # correctness (bit-identity above) is the meaningful check.
        assert all(s > 0 for s in speedups.values())
