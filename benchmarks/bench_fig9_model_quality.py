"""Fig. 9 — FedTrans-transformed architectures vs. hand-designed models.

Per Appendix A.1: each model (transformed or zoo) is fine-tuned with plain
FedAvg on every client — no capacity constraints, no transformation, no
soft aggregation — then its MACs/accuracy point is plotted.  The
transformed models should trace a better (or equal) accuracy-per-MAC
frontier than the fixed zoo ladder.
"""

import numpy as np

from repro.baselines import fedavg
from repro.bench import active_profile, ascii_table, build_dataset
from repro.bench.workloads import coordinator_config, run_method
from repro.device import DeviceTrace
from repro.fl import Coordinator, FLClient
from repro.nn import complexity_ladder


def _finetune_fedavg(model, ds, profile, seed=0):
    clients = [
        FLClient(c.client_id, c, DeviceTrace(c.client_id, 1e12, 1e9, 1e18))
        for c in ds.clients
    ]
    strategy = fedavg(model.clone(keep_id=True))
    log = Coordinator(strategy, clients, coordinator_config(profile, seed)).run()
    return log.final_accuracy()


def test_fig9_model_quality(once, report):
    profile = active_profile("femnist_like")
    ds = build_dataset(profile, seed=0)

    def run_all():
        ft = run_method("fedtrans", ds, profile, seed=0)
        transformed = sorted(ft.strategy.models().values(), key=lambda m: m.macs())
        # sample up to 4 transformed architectures, like the paper
        if len(transformed) > 4:
            idx = np.linspace(0, len(transformed) - 1, 4).astype(int)
            transformed = [transformed[i] for i in idx]
        rng = np.random.default_rng(1)
        ladder = complexity_ladder(
            ds.input_shape, ds.num_classes, rng, levels=5, base_width=8
        )
        points = []
        for tag, models in (("fedtrans", transformed), ("zoo", ladder)):
            for m in models:
                acc = _finetune_fedavg(m, ds, profile)
                points.append({"family": tag, "macs": m.macs(),
                               "accuracy_pct": round(acc * 100, 2)})
        return points

    points = once(run_all)
    report("fig9_model_quality", ascii_table(points, "Fig. 9 MACs vs accuracy"))

    ft_pts = [(p["macs"], p["accuracy_pct"]) for p in points if p["family"] == "fedtrans"]
    zoo_pts = [(p["macs"], p["accuracy_pct"]) for p in points if p["family"] == "zoo"]

    # Shape: the best transformed model beats every *strictly cheaper* zoo
    # model (<= 80% of its MACs).  The paper's full claim — dominance at
    # exactly matched MACs too — needs paper-scale training; at reduced
    # scale, freshly initialized models of equal size retain a plasticity
    # edge over warm-started ones (recorded in EXPERIMENTS.md).
    best_ft = max(ft_pts, key=lambda p: p[1])
    cheaper_zoo = [a for m, a in zoo_pts if m <= 0.8 * best_ft[0]]
    if cheaper_zoo:
        assert best_ft[1] >= max(cheaper_zoo) - 2.0
    # And the suite's capacity genuinely grows: the best transformed model
    # beats the smallest transformed one.
    smallest_ft = min(ft_pts, key=lambda p: p[0])
    assert best_ft[1] >= smallest_ft[1] - 1.0
