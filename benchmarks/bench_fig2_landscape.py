"""Fig. 2 — existing solutions are suboptimal for FL clients.

Single-model training is cheap but inaccurate; multi-model baselines cost
multiples more; everything sits below the centralized ("cloud") bound.
"""

import numpy as np

from repro.baselines import fedavg
from repro.bench import ascii_table
from repro.bench.workloads import coordinator_config
from repro.core.transform import reinitialize
from repro.device import DeviceTrace
from repro.fl import Coordinator, FLClient


class _Cloud:
    def __init__(self, accuracy: float, macs: float):
        self.mean_client_accuracy = accuracy
        self.total_macs = macs


def test_fig2_landscape(suite_for, once, report):
    profile, ds, results = suite_for("femnist_like")

    def feasible_global():
        # The deployable single-global-model baseline: a model every client
        # can actually run must be sized for the *weakest* device — i.e. the
        # initial model (the suite's cached "fedavg" trains FedTrans's
        # middle model, which half the fleet cannot host; it is reported as
        # a reference point but not a deployment option).
        from repro.bench.workloads import run_method

        return run_method("fedavg", ds, profile, seed=0)

    def cloud_point():
        # The paper's cloud bound: the data is centralized and shuffled to
        # be homogeneous.  We realize it with the same (known-good) training
        # recipe as the FL runs but with every constraint removed: every
        # client participates every round with unlimited device capacity —
        # equivalent to uniform mini-batch training over the pooled data.
        suite = results["fedtrans"].strategy.models()
        largest = max(suite.values(), key=lambda m: m.macs()).clone()
        reinitialize(largest, np.random.default_rng(0))
        clients = [
            FLClient(c.client_id, c, DeviceTrace(c.client_id, 1e12, 1e9, 1e18))
            for c in ds.clients
        ]
        cfg = coordinator_config(profile, 0, clients_per_round=len(clients))
        log = Coordinator(fedavg(largest), clients, cfg).run()
        return _Cloud(log.final_accuracy(), log.total_macs)

    def run_all():
        return cloud_point(), feasible_global()

    cloud, feasible = once(run_all)

    points = {m: (r.log.total_macs, r.log.final_accuracy()) for m, r in results.items()}
    points["fedavg (middle, infeasible)"] = points.pop("fedavg")
    points["fedavg (feasible global)"] = (
        feasible.log.total_macs,
        feasible.log.final_accuracy(),
    )
    rows = [
        {"method": m, "cost_macs": c, "accuracy_pct": round(a * 100, 2)}
        for m, (c, a) in points.items()
    ]
    rows.append(
        {
            "method": "cloud (upper bound)",
            "cost_macs": cloud.total_macs,
            "accuracy_pct": round(cloud.mean_client_accuracy * 100, 2),
        }
    )
    report("fig2_landscape", ascii_table(rows, "Fig. 2 cost/accuracy landscape"))

    # Cloud training with shuffled, homogeneous data upper-bounds FL accuracy
    # (tolerance: the CPU-budget centralized run is mildly undertrained
    # relative to the 240-round FL runs).
    fl_deployable = [
        a for m, (c, a) in points.items() if m != "fedavg (middle, infeasible)"
    ]
    assert cloud.mean_client_accuracy >= max(fl_deployable) - 0.05
    # Multi-model baselines cost multiples of a single model (the "orders of
    # magnitude" gap shrinks with our reduced round budget, but the ordering
    # must hold).
    feasible_cost = points["fedavg (feasible global)"][0]
    assert points["heterofl"][0] > feasible_cost
    assert points["splitmix"][0] > feasible_cost
    # FedTrans clearly beats every multi-model baseline in both accuracy
    # and cost (the asserted core of the landscape).
    for m in ("fluid", "heterofl", "splitmix"):
        assert points["fedtrans"][1] > points[m][1]
        assert points["fedtrans"][0] < points[m][0]
    # The single-global-model points are reported, not asserted: at the
    # 240-round gate the feasible (initial-size) model sits within a few
    # points of FedTrans; the raw gap the paper draws opens past the
    # convergence crossover (~400 rounds here — see the Fig. 8 bench, where
    # the longer horizon flips raw dominance to FedTrans+X over X).
