"""Table 5 — computation/communication overhead analysis.

The paper's bound: clients add **zero** computation and one float of
communication (the loss) per round; the coordinator adds
``r(mn + 1)c + |W|c`` operations for r rounds, m participants, n models.
We meter the actual FedTrans bookkeeping against that bound.
"""

from repro.bench import active_profile, ascii_table, build_dataset
from repro.bench.workloads import run_method


def test_table5_overheads(once, report):
    profile = active_profile("femnist_like")
    ds = build_dataset(profile, seed=0)
    res = once(run_method, "fedtrans", ds, profile, 0)

    log = res.log
    r = len(log.rounds)
    # Measured bookkeeping volumes from the run records.
    utility_updates = sum(
        sum(len(mids) for mids in rec.assignments.values()) * rec.num_models
        for rec in log.rounds
    )
    doc_updates = r  # one DoC refresh per round
    transforms = sum(1 for rec in log.rounds for e in rec.events if "spawned" in e)
    max_participants = max(len(rec.participants) for rec in log.rounds)
    max_models = max(rec.num_models for rec in log.rounds)
    bound = r * (max_participants * max_models + 1)

    rows = [
        {"overhead": "client computation", "measured": 0, "paper_bound": "0"},
        {
            "overhead": "client communication (floats/round)",
            "measured": 1,
            "paper_bound": "p floats (loss) per round",
        },
        {
            "overhead": "coordinator utility updates",
            "measured": utility_updates,
            "paper_bound": f"r*m*n = {bound}",
        },
        {
            "overhead": "coordinator DoC updates",
            "measured": doc_updates,
            "paper_bound": f"r = {r}",
        },
        {
            "overhead": "coordinator transformations",
            "measured": transforms,
            "paper_bound": "constant (<= max_models)",
        },
    ]
    report("table5_overheads", ascii_table(rows, "Table 5 overhead analysis"))

    # The measured coordinator work respects the paper's O(r(mn+1)) bound.
    assert utility_updates <= bound
    assert transforms <= profile.max_models
    # Clients run exactly the FedAvg local step: training MACs equal the
    # model cost, with no FedTrans additives (verified by construction in
    # LocalTrainer; here we assert the accounting matches).
    rec = log.rounds[0]
    assert rec.macs > 0
