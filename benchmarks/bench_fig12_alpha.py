"""Fig. 12 — picking the right cells (activeness threshold α).

Larger α selects fewer cells per transformation, so the spawned models are
smaller and training cost drops.
"""

from repro.bench import active_profile, alpha_sweep, ascii_table, build_dataset


def test_fig12_alpha_sweep(once, report):
    # A deeper initial model (4 transformable cells) gives the activeness
    # threshold real resolution — with 2 cells every alpha in [0.7, 0.99]
    # selects the same set.  Shorter horizon keeps transform timing relevant.
    profile = active_profile("femnist_like").with_(init_depth=4, rounds=120)
    ds = build_dataset(profile, seed=0)
    points = once(alpha_sweep, [0.70, 0.80, 0.90, 0.99], ds, profile, 0)

    rows = [
        {
            "alpha": p.value,
            "accuracy_pct": round(p.accuracy * 100, 2),
            "cost_macs": p.cost_macs,
            "models": p.num_models,
        }
        for p in points
    ]
    report("fig12_alpha", ascii_table(rows, "Fig. 12 activeness threshold alpha"))

    # Fewer cells selected at alpha=0.99 than at 0.70 => cheaper training
    # (small tolerance: the spawn schedule also shifts slightly).
    assert points[-1].cost_macs <= points[0].cost_macs * 1.01
    # Every setting still trains a usable suite.
    assert all(p.accuracy > 0.2 for p in points)
