"""Fig. 7 — cost-to-accuracy curves: FedTrans reaches any given accuracy
with the fewest cumulative MACs.
"""

import numpy as np
import pytest

from repro.bench import format_series

DATASETS = ("cifar10_like", "femnist_like", "speech_like", "openimage_like")
COMPARED = ("fedtrans", "fluid", "heterofl", "splitmix")


def _cost_to_reach(xs, ys, target):
    """First cumulative cost at which the curve reaches ``target`` accuracy."""
    for x, y in zip(xs, ys):
        if y >= target:
            return x
    return np.inf


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig7_curves(dataset, suite_for, once, report):
    profile, ds, results = once(suite_for, dataset)

    lines = []
    curves = {}
    for m in COMPARED:
        xs, ys = results[m].log.cost_accuracy_curve()
        curves[m] = (xs, ys)
        lines.append(format_series(m, xs, ys, "cum_MACs", "accuracy"))
    report(f"fig7_{dataset}", "\n".join(lines))

    # Shape: at the accuracy every method eventually reaches, FedTrans paid
    # the least (it starts from small models and grows judiciously).
    common = min(max(ys) for _, ys in curves.values())
    target = 0.9 * common
    costs = {m: _cost_to_reach(*curves[m], target) for m in COMPARED}
    assert costs["fedtrans"] <= min(costs[m] for m in COMPARED[1:])


def test_fig7_fedtrans_curve_monotone_cost(suite_for, report):
    _, _, results = suite_for("femnist_like")
    xs, _ = results["fedtrans"].log.cost_accuracy_curve()
    assert np.all(np.diff(xs) >= 0)
