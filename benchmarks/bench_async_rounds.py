"""Async round engine — simulated time-to-accuracy vs the sync barrier.

Not a paper table, but the engine-level companion to Table 6: on a
straggler-heavy fleet (a slow minority with ~100x less compute and ~50x
less bandwidth), the synchronous barrier pays the slowest participant every
round, while the buffered-async engine keeps aggregating from the fast
majority and the deadline policy stops waiting for stragglers entirely.

We run the same FedAvg workload in three configurations — sync, async
(buffer_k arrivals per step), async + deadline — and report the simulated
time to reach a shared target accuracy plus the deadline policy's wasted
work.  Two async runs of the same seed are also asserted bit-identical
(the engine's determinism contract).

Run directly via pytest:  PYTHONPATH=src python -m pytest -q -s benchmarks/bench_async_rounds.py
"""

import numpy as np

from repro.baselines import fedavg
from repro.bench import ascii_table
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device import DeviceTrace
from repro.fl import Coordinator, CoordinatorConfig, FLClient, LocalTrainerConfig
from repro.nn import mlp

NUM_CLIENTS = 20
NUM_SLOW = 4  # 20% stragglers: 100x slower compute, 50x slower network
ROUNDS = 24
CLIENTS_PER_ROUND = 8
BUFFER_K = 4
TRAINER = LocalTrainerConfig(batch_size=10, local_steps=8, lr=0.2)


def _workload(seed: int = 0):
    task = SyntheticTaskConfig(
        num_classes=6,
        input_shape=(16,),
        latent_dim=8,
        teacher_width=16,
        class_sep=2.5,
        seed=seed,
    )
    ds = build_federated_dataset(task, NUM_CLIENTS, mean_samples=40, seed=seed)
    clients = [
        FLClient(
            c.client_id,
            c,
            DeviceTrace(
                c.client_id,
                1e7 if c.client_id < NUM_SLOW else 1e9,
                2e4 if c.client_id < NUM_SLOW else 1e6,
                1e15,
            ),
        )
        for c in ds.clients
    ]
    model = mlp(ds.input_shape, ds.num_classes, np.random.default_rng(seed), width=32)
    return ds, model, clients


def _run(mode: str, seed: int = 0, **async_over):
    ds, model, clients = _workload(seed)
    cfg = dict(
        rounds=ROUNDS,
        clients_per_round=CLIENTS_PER_ROUND,
        trainer=TRAINER,
        eval_every=4,
        seed=seed,
        mode=mode,
    )
    cfg.update(async_over)
    coord = Coordinator(fedavg(model.clone(keep_id=True)), clients, CoordinatorConfig(**cfg))
    return coord.run()


def test_async_time_to_accuracy(report):
    # The deadline: generous for the fast majority, unreachable for the
    # slow minority (whose durations are ~50-100x longer).
    ds, model, clients = _workload()
    from repro.device.latency import client_round_time

    fast = max(
        client_round_time(
            c.device, model.macs(), model.nbytes(), TRAINER.batch_size, TRAINER.local_steps
        )
        for c in clients[NUM_SLOW:]
    )
    deadline = 3 * fast

    runs = {
        "sync": _run("sync"),
        "async": _run("async", buffer_k=BUFFER_K),
        "async+deadline": _run("async", buffer_k=BUFFER_K, deadline_s=deadline),
    }

    # Determinism: a repeat async run is bit-identical.
    repeat = _run("async", buffer_k=BUFFER_K)
    ref = runs["async"]
    assert all(a.mean_loss == b.mean_loss for a, b in zip(ref.rounds, repeat.rounds))
    assert all(a.round_time == b.round_time for a, b in zip(ref.rounds, repeat.rounds))
    assert all(
        (a.client_accuracy == b.client_accuracy).all()
        for a, b in zip(ref.evals, repeat.evals)
    )

    # Shared target: just under the weakest run's best accuracy, so every
    # configuration reaches it and times are comparable.
    target = 0.95 * min(log.best_eval().mean_accuracy for log in runs.values())
    rows = []
    times = {}
    for name, log in runs.items():
        t = log.time_to_accuracy(target)
        times[name] = t
        rows.append(
            {
                "engine": name,
                "sim_time_total_s": round(log.simulated_time(), 3),
                f"time_to_{target:.0%}_s": round(t, 3) if t is not None else "n/a",
                "final_acc_pct": round(log.final_accuracy() * 100, 2),
                "dropped": log.dropped_updates,
                "dropped_pmacs": round(log.dropped_macs / 1e15, 9),
            }
        )
    report(
        "async_rounds",
        ascii_table(rows, "sync vs buffered-async time-to-accuracy (straggler fleet)"),
    )

    assert all(t is not None for t in times.values())
    # The headline claim: removing the barrier (and stopping waiting on
    # stragglers) reaches the target accuracy in less simulated time.
    assert times["async+deadline"] < times["sync"]
    assert runs["async+deadline"].dropped_updates > 0
