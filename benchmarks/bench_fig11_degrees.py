"""Fig. 11 — robustness to widening and deepening degrees.

Accuracy and cost stay within a band across widen factors 1.1-3 and deepen
counts 1-3: larger degrees mean fewer but more aggressive transformations.
"""

import numpy as np

from repro.bench import active_profile, ascii_table, build_dataset, degree_sweep


def test_fig11_degree_sweeps(once, report):
    profile = active_profile("femnist_like")
    ds = build_dataset(profile, seed=0)
    widen, deepen = once(
        degree_sweep, [1.2, 1.5, 2.0, 3.0], [1, 2, 3], ds, profile, 0
    )

    rows = [
        {
            "knob": p.knob,
            "value": p.value,
            "accuracy_pct": round(p.accuracy * 100, 2),
            "cost_macs": p.cost_macs,
            "models": p.num_models,
        }
        for p in widen + deepen
    ]
    report("fig11_degrees", ascii_table(rows, "Fig. 11 widen/deepen degrees"))

    # Robustness: accuracy varies within a bounded band across degrees.
    for points in (widen, deepen):
        accs = np.array([p.accuracy for p in points])
        assert accs.max() - accs.min() < 0.30
        assert accs.min() > 0.2  # all settings still learn
