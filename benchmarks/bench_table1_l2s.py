"""Table 1 — disabling large-to-small weight sharing (l2s) helps.

Under-trained large models writing into converged small models adds noise;
the paper reports 15-23 point drops with l2s enabled.
"""

import pytest

from repro.bench import active_profile, ascii_table, build_dataset, l2s_comparison

DATASETS = ("femnist_like", "cifar10_like")


@pytest.mark.parametrize("dataset", DATASETS)
def test_table1_l2s(dataset, once, report):
    profile = active_profile(dataset)
    ds = build_dataset(profile, seed=0)
    points = once(l2s_comparison, profile, ds, 0)

    rows = [
        {"breakdown": name, "dataset": dataset,
         "accuracy_pct": round(p.accuracy * 100, 2)}
        for name, p in points.items()
    ]
    report(f"table1_l2s_{dataset}", ascii_table(rows, f"Table 1 — {dataset}"))

    # Scale note (recorded in EXPERIMENTS.md): the paper's 15-23 point l2s
    # harm requires a *maturity gap* — small models near convergence while
    # freshly spawned large models are still noisy, over 1000+ rounds.  At
    # reduced scale, warm-started family members stay correlated and l2s is
    # near-neutral, so the assertion is a tolerance band, not the paper's
    # full gap: l2s must never *win* materially.
    assert points["fedtrans"].accuracy >= points["fedtrans(l2s)"].accuracy - 0.05
    # Both variants train full multi-model suites.
    assert points["fedtrans"].num_models >= 2
    assert points["fedtrans(l2s)"].num_models >= 2
