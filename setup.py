"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so ``pip install -e .``
needs the legacy (non-PEP-517) editable path:

    pip install -e . --no-build-isolation --no-use-pep517

All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
