"""Model-transformation mechanics: widen, deepen, similarity, warmup.

Run:  python examples/transformation_demo.py

Demonstrates the Cell-level machinery of §4.1 directly, without an FL loop:

* function-preserving widening (Net2WiderNet) with and without
  symmetry-breaking noise;
* deepening via exact-identity cell insertion (Net2DeeperNet);
* the Fig. 5 alternation (a cell widened last time is deepened next);
* architectural similarity (§4.2) between family members.
"""

import numpy as np

from repro.core import apply_transform, model_similarity, select_cells
from repro.core.activeness import cell_gradient_norms
from repro.nn import small_cnn
from repro.nn.losses import softmax_cross_entropy


def main() -> None:
    rng = np.random.default_rng(0)
    model = small_cnn((1, 8, 8), num_classes=10, rng=rng, width=8)
    x = rng.normal(size=(16, 1, 8, 8))
    y = rng.integers(0, 10, size=16)

    print("--- initial model ---")
    print(model.summary())
    baseline = model.predict(x)

    # 1. Exact function preservation (noise=0)
    child = model.clone()
    target = child.transformable_cells()[0]
    child.widen_cell(target.cell_id, factor=2.0, rng=rng, noise=0.0)
    drift = np.abs(child.predict(x) - baseline).max()
    print(f"\nwiden x2 (noise=0): max output drift = {drift:.2e}  (exact)")

    # 2. Widening with symmetry-breaking noise: near-preserving, but the
    #    duplicated channels can now diverge during training.
    child2 = model.clone()
    child2.widen_cell(target.cell_id, factor=2.0, rng=rng, noise=0.05)
    drift2 = np.abs(child2.predict(x) - baseline).max()
    print(f"widen x2 (noise=0.05): max output drift = {drift2:.2e}  (near-preserving)")

    # 3. Deepening inserts an exact identity cell.
    child3 = model.clone()
    inserted = child3.deepen_after(target.cell_id, rng)
    drift3 = np.abs(child3.predict(x) - baseline).max()
    print(f"deepen (+{len(inserted)} identity cell): max output drift = {drift3:.2e}")
    print(f"macs: {model.macs():,} -> widen {child.macs():,} / deepen {child3.macs():,}")

    # 4. Gradient-based cell selection (activeness) and Fig. 5 alternation.
    model.zero_grad()
    logits = model.forward(x, train=True)
    _, dlogits = softmax_cross_entropy(logits, y)
    model.backward(dlogits)
    activeness = {
        cid: v
        for cid, v in cell_gradient_norms(model, model.grads()).items()
        if model.get_cell(cid).transformable
    }
    print("\n--- cell activeness (grad norm / weight norm) ---")
    for cid, act in activeness.items():
        print(f"  {cid}: {act:.4f}")
    selected = select_cells(activeness, alpha=0.9)
    print(f"selected at alpha=0.9: {selected}")

    gen1 = model.clone()
    events = apply_transform(gen1, selected, rng, widen_factor=2.0, deepen_cells=1,
                             round_idx=0, widen_noise=0.05)
    print(f"generation 1: {events}")
    gen2 = gen1.clone()
    events = apply_transform(gen2, selected, rng, widen_factor=2.0, deepen_cells=1,
                             round_idx=1, widen_noise=0.05)
    print(f"generation 2: {events}  (alternated to deepen)")

    # 5. Architectural similarity across the family (Eq. 4/5 weighting).
    print("\n--- architectural similarity ---")
    print(f"sim(parent, gen1) = {model_similarity(model, gen1):.3f}")
    print(f"sim(parent, gen2) = {model_similarity(model, gen2):.3f}")
    print(f"sim(gen1,   gen2) = {model_similarity(gen1, gen2):.3f}")
    print(f"sim(gen2,   gen2) = {model_similarity(gen2, gen2):.3f}")


if __name__ == "__main__":
    main()
