"""Quickstart: train a FedTrans model suite on a small federated workload.

Run:  python examples/quickstart.py

Walks the minimal path through the public API: build a federated dataset,
sample a heterogeneous device fleet, start from one small model, and let
FedTrans grow/assign/aggregate a multi-model suite.
"""

import numpy as np

from repro import (
    Coordinator,
    CoordinatorConfig,
    FedTransConfig,
    FedTransStrategy,
    FLClient,
    LocalTrainerConfig,
    calibrate_capacities,
    femnist_like,
    mlp,
    sample_device_traces,
    summarize,
)


def main() -> None:
    # 1. A federated dataset: ~40 clients with non-IID labels, per-client
    #    feature drift, and long-tailed sample counts.
    dataset = femnist_like(scale=0.012, seed=0)
    print(f"dataset: {dataset.name}, {dataset.num_clients} clients, "
          f"{dataset.num_classes} classes, input {dataset.input_shape}")

    # 2. The initial model — sized for the weakest client, per the paper.
    rng = np.random.default_rng(0)
    initial = mlp(dataset.input_shape, dataset.num_classes, rng, width=16)
    print(f"initial model: {initial.macs():,} MACs, {initial.num_params():,} params")

    # 3. A heterogeneous device fleet; capacities span 16x from the initial
    #    model's cost, so stronger devices can host larger models.
    traces = sample_device_traces(dataset.num_clients, rng)
    traces = calibrate_capacities(traces, initial.macs(), initial.macs() * 16)
    clients = [FLClient(c.client_id, c, t) for c, t in zip(dataset.clients, traces)]

    # 4. FedTrans: transformation schedule scaled to a 150-round budget.
    config = FedTransConfig(gamma=3, delta=4, beta=0.05, max_models=5)
    strategy = FedTransStrategy(
        initial, config, max_capacity_macs=max(t.capacity_macs for t in traces)
    )

    coordinator = Coordinator(
        strategy,
        clients,
        CoordinatorConfig(
            rounds=150,
            clients_per_round=8,
            trainer=LocalTrainerConfig(batch_size=10, local_steps=10, lr=0.15),
            eval_every=25,
            seed=0,
        ),
    )
    log = coordinator.run()

    # 5. What happened.
    print("\n--- training events ---")
    for record in log.rounds:
        for event in record.events:
            print(f"round {record.round_idx:>3}: {event}")
    print("\n--- model suite ---")
    print(strategy.suite_summary())
    print("\n--- results ---")
    summary = summarize(log)
    print(f"mean client accuracy: {summary.accuracy:.1%}")
    print(f"accuracy IQR across clients: {summary.accuracy_iqr:.1%}")
    print(f"total training cost: {log.total_macs:.3e} MACs")
    print(f"network transfer: {summary.network_mb:.1f} MB")


if __name__ == "__main__":
    main()
