"""Buffered-asynchronous rounds on a straggler-heavy fleet.

Run:  python examples/async_fleet.py

Synchronous FL pays the straggler tax every round: the barrier waits for
the slowest selected participant.  ``CoordinatorConfig(mode="async")``
switches the coordinator to the buffered-asynchronous engine
(``repro.fl.async_engine``): clients stay in flight on a simulated event
clock, the server aggregates the first ``buffer_k`` arrivals with a
staleness discount, and a ``deadline_s`` straggler policy stops waiting
for (and meters the wasted work of) devices that cannot finish in time.

The async engine keeps the executor determinism contract — run this twice
and the training logs are bit-identical.
"""

import numpy as np

from repro import (
    Coordinator,
    CoordinatorConfig,
    FLClient,
    LocalTrainerConfig,
    fedavg,
    femnist_like,
    mlp,
)
from repro.device.latency import client_round_time
from repro.device.traces import DeviceTrace

TRAINER = LocalTrainerConfig(batch_size=10, local_steps=10, lr=0.15)


def build_workload(seed: int = 0):
    """A ~40-client fleet where 20% of devices are severe stragglers."""
    dataset = femnist_like(scale=0.012, seed=seed)
    rng = np.random.default_rng(seed)
    model = mlp(dataset.input_shape, dataset.num_classes, rng, width=24)
    num_slow = max(1, dataset.num_clients // 5)
    clients = [
        FLClient(
            c.client_id,
            c,
            DeviceTrace(
                c.client_id,
                1e7 if c.client_id < num_slow else 1e9,  # 100x compute gap
                2e4 if c.client_id < num_slow else 1e6,  # 50x network gap
                1e15,
            ),
        )
        for c in dataset.clients
    ]
    fast_time = max(
        client_round_time(
            c.device, model.macs(), model.nbytes(), TRAINER.batch_size, TRAINER.local_steps
        )
        for c in clients[num_slow:]
    )
    return dataset, model, clients, fast_time


def run(mode: str, seed: int = 0, **async_knobs):
    dataset, model, clients, _ = build_workload(seed)
    coordinator = Coordinator(
        fedavg(model.clone(keep_id=True)),
        clients,
        CoordinatorConfig(
            rounds=24,
            clients_per_round=10,
            trainer=TRAINER,
            eval_every=8,
            seed=seed,
            mode=mode,
            **async_knobs,
        ),
    )
    return coordinator.run()


def main() -> None:
    _, _, _, fast_time = build_workload()
    configs = {
        "sync": {},
        "async": {"buffer_k": 5},
        "async+deadline": {"buffer_k": 5, "deadline_s": 3 * fast_time},
    }
    logs = {}
    for name, knobs in configs.items():
        mode = "async" if name.startswith("async") else "sync"
        logs[name] = run(mode, **knobs)

    # Time-to-accuracy is the fair lens: the async engine trades a little
    # per-step progress for a much faster simulated clock.
    target = 0.9 * min(log.best_eval().mean_accuracy for log in logs.values())
    for name, log in logs.items():
        dropped = f", {log.dropped_updates} dropped" if log.dropped_updates else ""
        t = log.time_to_accuracy(target)
        reach = f"{t:8.2f}" if t is not None else "   never"
        print(
            f"{name:>15}: {log.simulated_time():8.2f} simulated s total, "
            f"{reach} s to {target:.0%}, "
            f"final accuracy {log.final_accuracy():.1%}{dropped}"
        )

    a, b = run("async", buffer_k=5), run("async", buffer_k=5)
    assert all(ra.mean_loss == rb.mean_loss for ra, rb in zip(a.rounds, b.rounds))
    assert all(
        (ea.client_accuracy == eb.client_accuracy).all()
        for ea, eb in zip(a.evals, b.evals)
    )
    print("\nasync runs are bit-reproducible for a fixed seed")


if __name__ == "__main__":
    main()
