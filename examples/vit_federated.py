"""FedTrans on Vision-Transformer models (the Table 4 scenario).

Run:  python examples/vit_federated.py

FedTrans's transformations are architecture-generic: on ViT cells, widening
grows the encoder MLP hidden width and deepening inserts zero-residual
identity encoder blocks.  This example trains a tiny ViT federatedly with
and without FedTrans.
"""

import numpy as np

from repro.baselines import fedavg
from repro.core import FedTransConfig, FedTransStrategy
from repro.data import femnist_like
from repro.device import calibrate_capacities, sample_device_traces
from repro.fl import Coordinator, CoordinatorConfig, FLClient, LocalTrainerConfig
from repro.nn import vit_tiny


def main() -> None:
    # (1, 8, 8) images; 16 classes keeps the tiny ViT learnable on CPU.
    dataset = femnist_like(scale=0.012, seed=3, image=True, num_classes=16)
    rng = np.random.default_rng(3)
    initial = vit_tiny(
        dataset.input_shape, dataset.num_classes, rng,
        dim=12, heads=2, mlp_hidden=24, depth=2, patch=2,
    )
    print(f"initial ViT: {initial.macs():,} MACs, {initial.num_params():,} params")
    print(initial.summary())

    traces = calibrate_capacities(
        sample_device_traces(dataset.num_clients, rng),
        initial.macs(),
        initial.macs() * 16,
    )
    clients = [FLClient(c.client_id, c, t) for c, t in zip(dataset.clients, traces)]
    coord_cfg = CoordinatorConfig(
        rounds=120,
        clients_per_round=8,
        trainer=LocalTrainerConfig(batch_size=10, local_steps=8, lr=0.1),
        eval_every=30,
        seed=3,
    )

    # FedTrans over ViT cells
    strategy = FedTransStrategy(
        initial.clone(keep_id=True),
        FedTransConfig(gamma=3, delta=4, beta=0.05, max_models=4),
        max_capacity_macs=max(t.capacity_macs for t in traces),
    )
    ft_log = Coordinator(strategy, clients, coord_cfg).run()
    print("\n--- FedTrans-transformed ViT suite ---")
    print(strategy.suite_summary())
    for record in ft_log.rounds:
        for event in record.events:
            print(f"round {record.round_idx:>3}: {event}")

    # Plain FedAvg on the same initial ViT
    fa_log = Coordinator(fedavg(initial.clone(keep_id=True)), clients, coord_cfg).run()

    print("\n--- results (Table 4 scenario) ---")
    print(f"fedtrans+fedavg (ViT): accuracy {ft_log.final_accuracy():.1%}, "
          f"cost {ft_log.total_macs:.3e} MACs")
    print(f"fedavg (ViT):          accuracy {fa_log.final_accuracy():.1%}, "
          f"cost {fa_log.total_macs:.3e} MACs")


if __name__ == "__main__":
    main()
