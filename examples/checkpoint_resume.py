"""Kill a training run mid-flight and resume it bit-identically.

Run:  python examples/checkpoint_resume.py

Durable runs are the point of the checkpoint subsystem: with
``checkpoint_dir`` set, the coordinator periodically writes its *entire*
run state — model suite (architecture, lineage, weights), optimizer and
aggregator state, scheduling policies, RNG position, eval caches — as a
crash-consistent checkpoint (temp file + fsync + atomic rename, manifest
pointer moved only after the payload is durable).  ``resume=True`` picks
the run back up from the last good checkpoint, and the contract is
bit-identity: the resumed run's final export equals the uninterrupted
run's, byte for byte.

This example proves it the hard way.  It runs the same FedTrans workload
three times in child processes:

1. uninterrupted, as the reference;
2. checkpointed, with ``REPRO_CKPT_CRASH_POINT=after-manifest`` — the
   checkpoint writer's crash-injection hook — so the process SIGKILLs
   itself the instant its first checkpoint lands (a real ``kill -9``,
   not an exception);
3. with ``resume=True``, which finds the last good checkpoint in the
   config-hashed run directory and finishes the job.

It then byte-compares the resumed run's exported log with the reference.
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core import FedTransConfig, FedTransStrategy
from repro.data import cifar10_like
from repro.device import calibrate_capacities, sample_device_traces
from repro.fl import (
    Coordinator,
    CoordinatorConfig,
    FLClient,
    LocalTrainerConfig,
    load_checkpoint,
    save_log,
)
from repro.nn import mlp


def build_coordinator(checkpoint_dir: str | None, resume: bool) -> Coordinator:
    """The workload — identical in every child (same seed, same fleet)."""
    dataset = cifar10_like(scale=0.25, seed=4, image=False)
    rng = np.random.default_rng(4)
    initial = mlp(dataset.input_shape, dataset.num_classes, rng, width=16)
    traces = calibrate_capacities(
        sample_device_traces(dataset.num_clients, rng),
        initial.macs(),
        initial.macs() * 16,
    )
    clients = [FLClient(c.client_id, c, t) for c, t in zip(dataset.clients, traces)]
    strategy = FedTransStrategy(
        initial,
        FedTransConfig(gamma=2, delta=3, beta=0.05, max_models=4),
        max_capacity_macs=max(t.capacity_macs for t in traces),
    )
    extra = (
        dict(checkpoint_every=5, checkpoint_dir=checkpoint_dir, resume=resume)
        if checkpoint_dir
        else {}
    )
    return Coordinator(
        strategy,
        clients,
        CoordinatorConfig(
            rounds=20,
            clients_per_round=8,
            trainer=LocalTrainerConfig(batch_size=10, local_steps=5, lr=0.15),
            eval_every=5,
            seed=4,
            **extra,
        ),
    )


def worker(checkpoint_dir: str, out_path: str) -> None:
    """Child-process entry: run (or resume) the workload, export the log."""
    coord = build_coordinator(checkpoint_dir or None, resume=bool(checkpoint_dir))
    log = coord.run()
    save_log(log, Path(out_path))


def run_child(checkpoint_dir: str, out_path: str, crash_point: str | None = None):
    env = dict(os.environ)
    env.pop("REPRO_CKPT_CRASH_POINT", None)
    if crash_point:
        env["REPRO_CKPT_CRASH_POINT"] = crash_point
    return subprocess.run(
        [sys.executable, __file__, "--worker", checkpoint_dir, out_path],
        env=env,
        timeout=1800,
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp)
        run_root = out / "runs"

        print("[1/3] reference run (uninterrupted)...")
        proc = run_child("", str(out / "ref.json"))
        assert proc.returncode == 0

        print("[2/3] checkpointed run, SIGKILLed at its first checkpoint...")
        proc = run_child(str(run_root), str(out / "crashed.json"),
                         crash_point="after-manifest")
        assert proc.returncode == -9, "expected the child to SIGKILL itself"
        (run_dir,) = [p for p in run_root.iterdir() if p.is_dir()]
        found = load_checkpoint(run_dir)
        print(f"      killed; last good checkpoint: round {found['manifest']['round']}"
              f" in {run_dir.name}/ (completed={found['manifest']['completed']})")

        print("[3/3] resuming from the last good checkpoint...")
        proc = run_child(str(run_root), str(out / "resumed.json"))
        assert proc.returncode == 0

        ref = (out / "ref.json").read_bytes()
        resumed = (out / "resumed.json").read_bytes()
        identical = ref == resumed
        print(f"\nfinal exports byte-identical: {identical} "
              f"({len(ref)} bytes each)")
        if not identical:
            raise SystemExit("resume diverged from the uninterrupted run")

        final = json.loads(resumed)
        print(f"resumed run: {len(final['rounds'])} rounds, "
              f"{final['evals'][-1]['mean_accuracy']:.3f} final mean accuracy, "
              f"{final['rounds'][-1]['num_models']} models in the suite")


if __name__ == "__main__":
    if len(sys.argv) == 4 and sys.argv[1] == "--worker":
        worker(sys.argv[2], sys.argv[3])
    else:
        main()
