"""Checkpointing a FedTrans model suite and deploying from disk.

Run:  python examples/checkpoint_resume.py

Production FL coordinators persist their model suites between rounds and
ship individual models to devices.  This example trains briefly, saves
every model in the suite (architecture + lineage + weights) to ``.npz``
checkpoints, reloads them, and verifies the deployed predictions match.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import FedTransConfig, FedTransStrategy
from repro.data import cifar10_like
from repro.device import calibrate_capacities, sample_device_traces
from repro.fl import Coordinator, CoordinatorConfig, FLClient, LocalTrainerConfig, save_log
from repro.nn import load_model, mlp, save_model


def main() -> None:
    dataset = cifar10_like(scale=0.25, seed=4, image=False)
    rng = np.random.default_rng(4)
    initial = mlp(dataset.input_shape, dataset.num_classes, rng, width=16)
    traces = calibrate_capacities(
        sample_device_traces(dataset.num_clients, rng),
        initial.macs(),
        initial.macs() * 16,
    )
    clients = [FLClient(c.client_id, c, t) for c, t in zip(dataset.clients, traces)]

    strategy = FedTransStrategy(
        initial,
        FedTransConfig(gamma=3, delta=4, beta=0.05, max_models=4),
        max_capacity_macs=max(t.capacity_macs for t in traces),
    )
    log = Coordinator(
        strategy,
        clients,
        CoordinatorConfig(
            rounds=60,
            clients_per_round=8,
            trainer=LocalTrainerConfig(batch_size=10, local_steps=10, lr=0.15),
            eval_every=20,
            seed=4,
        ),
    ).run()
    print(strategy.suite_summary())

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp)
        # 1. Persist the whole suite + the run log.
        for mid, model in strategy.models().items():
            save_model(model, out / f"{mid}.npz")
        save_log(log, out / "run_log.json")
        print(f"\nsaved {len(strategy.models())} checkpoints + run log to {out}")

        # 2. Deploy from disk: reload each client's model and verify the
        #    predictions are bit-identical to the in-memory suite.
        mismatches = 0
        for client in clients[:10]:
            mid = strategy.eval_model_for(client)
            reloaded = load_model(out / f"{mid}.npz")
            a = strategy.models()[mid].predict(client.data.x_test)
            b = reloaded.predict(client.data.x_test)
            if not np.allclose(a, b):
                mismatches += 1
        print(f"deployment check on 10 clients: {10 - mismatches}/10 exact matches")

        # 3. Lineage survives: transformation history is in the checkpoint.
        largest_id = max(strategy.models(), key=lambda m: strategy.models()[m].macs())
        reloaded = load_model(out / f"{largest_id}.npz")
        print(f"\n{largest_id} transform history (from checkpoint):")
        for record in reloaded.history:
            print(f"  round {record.round:>3}: {record.op} @ {record.cell_id}")


if __name__ == "__main__":
    main()
