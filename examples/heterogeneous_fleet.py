"""Heterogeneous-fleet comparison: FedTrans vs HeteroFL vs FLuID.

Run:  python examples/heterogeneous_fleet.py

The paper's central scenario: a device fleet whose capability disparity
exceeds 29x, so no single model fits everyone.  Trains FedTrans first, then
hands its largest model to the width-scaling baselines (the Appendix A.1
protocol), and compares accuracy distributions and costs.
"""

import numpy as np

from repro.baselines import FLuIDStrategy, HeteroFLStrategy
from repro.bench.reporting import ascii_table, format_box_row
from repro.data import speech_like
from repro.device import disparity, sample_device_traces, calibrate_capacities
from repro.core import FedTransConfig, FedTransStrategy
from repro.fl import Coordinator, CoordinatorConfig, FLClient, LocalTrainerConfig, summarize
from repro.nn import mlp


def main() -> None:
    dataset = speech_like(scale=0.016, seed=1, image=False)
    rng = np.random.default_rng(1)
    initial = mlp(dataset.input_shape, dataset.num_classes, rng, width=16)

    traces = sample_device_traces(dataset.num_clients, rng)
    speeds = np.array([t.compute_speed for t in traces])
    print(f"fleet: {len(traces)} devices, p99/p1 compute disparity = "
          f"{disparity(speeds):.1f}x")
    traces = calibrate_capacities(traces, initial.macs(), initial.macs() * 16)
    clients = [FLClient(c.client_id, c, t) for c, t in zip(dataset.clients, traces)]

    coord_cfg = CoordinatorConfig(
        rounds=150,
        clients_per_round=8,
        trainer=LocalTrainerConfig(batch_size=10, local_steps=10, lr=0.15),
        eval_every=25,
        seed=1,
    )

    # --- FedTrans ---
    ft = FedTransStrategy(
        initial.clone(keep_id=True),
        FedTransConfig(gamma=3, delta=4, beta=0.05, max_models=5),
        max_capacity_macs=max(t.capacity_macs for t in traces),
    )
    ft_log = Coordinator(ft, clients, coord_cfg).run()
    largest = max(ft.models().values(), key=lambda m: m.macs())
    print(f"\nFedTrans grew {len(ft.models())} models "
          f"({initial.macs():,} -> {largest.macs():,} MACs)")

    # --- Baselines get FedTrans's largest model (Appendix A.1) ---
    het_log = Coordinator(HeteroFLStrategy(largest.clone()), clients, coord_cfg).run()
    fluid_log = Coordinator(FLuIDStrategy(largest.clone()), clients, coord_cfg).run()

    logs = {"fedtrans": ft_log, "heterofl": het_log, "fluid": fluid_log}
    rows = [summarize(log).row() for log in logs.values()]
    print()
    print(ascii_table(rows, "Headline comparison"))
    boxes = [
        format_box_row(name, log.final_eval().client_accuracy)
        for name, log in logs.items()
    ]
    print()
    print(ascii_table(boxes, "Per-client accuracy distribution (Fig. 6 style)"))

    # Which clients lose under width-scaling baselines?  The weakest ones.
    caps = np.array([c.capacity_macs for c in clients])
    weak = caps < np.median(caps)
    for name, log in logs.items():
        acc = log.final_eval().client_accuracy
        print(f"{name:>9}: weak-half accuracy {acc[weak].mean():.1%} | "
              f"strong-half {acc[~weak].mean():.1%}")


if __name__ == "__main__":
    main()
