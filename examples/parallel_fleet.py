"""Parallel fleet execution: the same round loop on three backends.

Run:  python examples/parallel_fleet.py

The coordinator dispatches local training and evaluation through a
pluggable round executor (``CoordinatorConfig.executor``): ``"serial"``
(one loop), ``"thread"`` (NumPy's BLAS kernels release the GIL), and
``"process"`` (a worker-process pool fed from a shared read-only model
snapshot).  Every backend derives each work item's RNG from the same
``SeedSequence`` spawn key, so the three runs below produce *bit-identical*
training logs — only the wall-clock differs.
"""

import time

import numpy as np

from repro import (
    Coordinator,
    CoordinatorConfig,
    FLClient,
    LocalTrainerConfig,
    calibrate_capacities,
    fedavg,
    femnist_like,
    mlp,
    sample_device_traces,
)


def build_workload(seed: int = 0):
    """A ~40-client fleet on the femnist-like task, FedAvg for clarity."""
    dataset = femnist_like(scale=0.012, seed=seed)
    rng = np.random.default_rng(seed)
    model = mlp(dataset.input_shape, dataset.num_classes, rng, width=24)
    traces = sample_device_traces(dataset.num_clients, rng)
    traces = calibrate_capacities(traces, model.macs(), model.macs() * 8)
    clients = [FLClient(c.client_id, c, t) for c, t in zip(dataset.clients, traces)]
    return dataset, model, clients


def run_backend(backend: str, seed: int = 0):
    dataset, model, clients = build_workload(seed)
    coordinator = Coordinator(
        fedavg(model.clone(keep_id=True)),
        clients,
        CoordinatorConfig(
            rounds=10,
            clients_per_round=12,
            trainer=LocalTrainerConfig(batch_size=10, local_steps=10, lr=0.15),
            eval_every=5,
            seed=seed,
            executor=backend,
        ),
    )
    start = time.perf_counter()
    log = coordinator.run()
    return log, time.perf_counter() - start


def main() -> None:
    results = {}
    for backend in ("serial", "thread", "process"):
        log, wall = run_backend(backend)
        results[backend] = (log, wall)
        print(
            f"{backend:>8}: {wall:6.2f}s wall, "
            f"final accuracy {log.final_accuracy():.1%}, "
            f"{len(log.rounds)} rounds"
        )

    ref = results["serial"][0]
    for backend, (log, _) in results.items():
        assert log.final_accuracy() == ref.final_accuracy()
        assert all(a.mean_loss == b.mean_loss for a, b in zip(log.rounds, ref.rounds))
        assert all(
            (a.client_accuracy == b.client_accuracy).all()
            for a, b in zip(log.evals, ref.evals)
        )
    print("\nall backends produced bit-identical training logs")
    serial_wall = results["serial"][1]
    for backend in ("thread", "process"):
        print(f"{backend} speedup over serial: {serial_wall / results[backend][1]:.2f}x")


if __name__ == "__main__":
    main()
