"""Fault-tolerant execution: chaos injection, self-healing, quarantine.

Run:  python examples/fault_tolerant_fleet.py

The coordinator can inject a deterministic fault plan into the round
loop (``CoordinatorConfig.faults``): worker SIGKILLs mid-task, task
exceptions, shared-memory publish failures, and NaN-poisoned updates,
each drawn from a ``SeedSequence`` spawn key so a chaos run replays
bit-for-bit.  Recovery is part of the contract (CONTRACTS.md I10):

* infrastructure faults (crashed workers, failed shm publishes) are
  healed by rebuilding the pool and re-dispatching only the lost items,
  at zero simulated time — the export is *byte-identical* to the
  fault-free run at the same seed;
* task-level failures retry under a bounded ``RetryPolicy`` that
  charges backoff into simulated time, so those runs legitimately
  differ from clean while still completing;
* a quarantine gate scans every update for NaN/Inf and norm outliers
  before aggregation, so 20% poisoned updates degrade accuracy
  gracefully instead of destroying the aggregate.
"""

import json
import re

import numpy as np

from repro import (
    Coordinator,
    CoordinatorConfig,
    FLClient,
    LocalTrainerConfig,
    calibrate_capacities,
    fedavg,
    femnist_like,
    mlp,
    recovery_summary,
    sample_device_traces,
)
from repro.fl import log_to_dict


def build_workload(seed: int = 0):
    """A ~40-client fleet on the femnist-like task, FedAvg for clarity."""
    dataset = femnist_like(scale=0.012, seed=seed)
    rng = np.random.default_rng(seed)
    model = mlp(dataset.input_shape, dataset.num_classes, rng, width=24)
    traces = sample_device_traces(dataset.num_clients, rng)
    traces = calibrate_capacities(traces, model.macs(), model.macs() * 8)
    clients = [FLClient(c.client_id, c, t) for c, t in zip(dataset.clients, traces)]
    return dataset, model, clients


def run(seed: int = 0, **overrides):
    dataset, model, clients = build_workload(seed)
    cfg = dict(
        rounds=8,
        clients_per_round=10,
        trainer=LocalTrainerConfig(batch_size=10, local_steps=8, lr=0.15),
        eval_every=4,
        seed=seed,
        executor="process",
        max_workers=2,
    )
    cfg.update(overrides)
    coordinator = Coordinator(
        fedavg(model.clone(keep_id=True)), clients, CoordinatorConfig(**cfg)
    )
    return coordinator.run()


def export(log) -> str:
    """Canonical export with process-global model ids normalized away."""
    raw = json.dumps(log_to_dict(log), sort_keys=True)
    ids: dict[str, str] = {}
    return re.sub(r"m\d+", lambda m: ids.setdefault(m.group(0), f"M{len(ids)}"), raw)


def main() -> None:
    clean = run()
    print(
        f"fault-free : final accuracy {clean.final_accuracy():.1%}, "
        f"{len(clean.rounds)} rounds"
    )

    # 1. Worker crashes and shm failures: healed, byte-invisible.
    chaos = run(faults="crash=0.3,shm=0.3")
    rec = recovery_summary(chaos)
    print(
        f"chaos      : final accuracy {chaos.final_accuracy():.1%}, "
        f"{rec['worker_restarts']} pool rebuilds, {rec['retries']} retries"
    )
    assert rec["worker_restarts"] + rec["retries"] >= 1
    assert export(chaos) == export(clean)
    print("             export byte-identical to fault-free (I10)")

    # 2. Task exceptions: retried to success on the serial backend too,
    #    charging backoff into simulated time.
    flaky = run(faults="exc=0.2", executor="serial")
    rec = recovery_summary(flaky)
    print(
        f"flaky tasks: final accuracy {flaky.final_accuracy():.1%}, "
        f"{rec['retries']} retries, {rec['failed_updates']} permanent failures"
    )
    assert flaky.final_accuracy() == clean.final_accuracy()
    assert flaky.simulated_time() > clean.simulated_time()
    print("             same trajectory, backoff charged to simulated time")

    # 3. Poisoned updates: quarantined before aggregation.
    poisoned = run(faults="poison=0.2", quarantine=True, executor="serial")
    rec = recovery_summary(poisoned)
    print(
        f"poisoned   : final accuracy {poisoned.final_accuracy():.1%}, "
        f"{rec['quarantined_updates']} updates quarantined"
    )
    assert rec["quarantined_updates"] >= 1
    assert len(poisoned.rounds) == len(clean.rounds)
    assert poisoned.final_accuracy() >= 0.7 * clean.final_accuracy()
    print("             poisoning gated, accuracy degrades gracefully")


if __name__ == "__main__":
    main()
