"""Which model does each client end up with, and why?

Run:  python examples/personalization_analysis.py

Looks inside the Client Manager after a FedTrans run: the utility-driven
deployment decision per client (§4.2), how deployments correlate with
device capacity, and how the soft assignment explored models over time.
"""

import collections

import numpy as np

from repro.core import FedTransConfig, FedTransStrategy
from repro.data import cifar10_like
from repro.device import calibrate_capacities, sample_device_traces
from repro.fl import Coordinator, CoordinatorConfig, FLClient, LocalTrainerConfig
from repro.nn import mlp


def main() -> None:
    dataset = cifar10_like(scale=0.4, seed=2, image=False)
    rng = np.random.default_rng(2)
    initial = mlp(dataset.input_shape, dataset.num_classes, rng, width=16)
    traces = calibrate_capacities(
        sample_device_traces(dataset.num_clients, rng),
        initial.macs(),
        initial.macs() * 16,
    )
    clients = [FLClient(c.client_id, c, t) for c, t in zip(dataset.clients, traces)]

    strategy = FedTransStrategy(
        initial,
        FedTransConfig(gamma=3, delta=4, beta=0.05, max_models=5),
        max_capacity_macs=max(t.capacity_macs for t in traces),
    )
    log = Coordinator(
        strategy,
        clients,
        CoordinatorConfig(
            rounds=150,
            clients_per_round=8,
            trainer=LocalTrainerConfig(batch_size=10, local_steps=10, lr=0.15),
            eval_every=30,
            seed=2,
        ),
    ).run()

    models = strategy.models()
    print(strategy.suite_summary())

    # 1. Deployment census: which model serves how many clients.
    deployments = [strategy.eval_model_for(c) for c in clients]
    census = collections.Counter(deployments)
    print("\n--- deployment census ---")
    for mid in models:
        print(f"  {mid} ({models[mid].macs():>7,} MACs): {census.get(mid, 0):>3} clients")

    # 2. Capacity vs deployed-model complexity.
    print("\n--- capacity quartiles vs deployed model ---")
    caps = np.array([c.capacity_macs for c in clients])
    deployed_macs = np.array([models[mid].macs() for mid in deployments])
    for q, (lo, hi) in enumerate(zip([0, 25, 50, 75], [25, 50, 75, 100])):
        a, b = np.percentile(caps, [lo, hi])
        mask = (caps >= a) & (caps <= b)
        print(f"  capacity Q{q + 1}: mean deployed complexity "
              f"{deployed_macs[mask].mean():>9,.0f} MACs")

    # 3. Exploration over time: training-assignment mix per phase.
    print("\n--- assignment mix over training (exploration -> exploitation) ---")
    phases = np.array_split(log.rounds, 3)
    for i, phase in enumerate(phases):
        counts = collections.Counter(
            mid for r in phase for mids in r.assignments.values() for mid in mids
        )
        total = sum(counts.values())
        mix = ", ".join(f"{mid}:{counts.get(mid, 0) / total:.0%}" for mid in models)
        print(f"  phase {i + 1}: {mix}")

    print(f"\nfinal mean accuracy: {log.final_accuracy():.1%}")


if __name__ == "__main__":
    main()
