"""Compressed transport turns deadline drops into on-time arrivals.

Run:  python examples/compressed_fleet.py

A quarter of this fleet sits behind a ~10x slower uplink.  Under async
pacing with a deadline (``--mode async --pacing ... --deadline``), those
devices train fast enough but cannot *upload* a raw float64 update in
time — every round they get dropped and their work is wasted.

``--compress update:topk0.05+int8,snapshot:rle --wire-time`` shrinks the
update to ~2% of its raw size and re-prices the upload leg of the
simulated clock (``CoordinatorConfig.wire_time``).  The same devices now
make the same deadline: fewer drops, more data per aggregate, and a
faster simulated clock to the same accuracy.  The byte ledger
(``TrainingLog.total_raw_bytes_up`` vs ``total_bytes_up``) shows what the
codec saved; note ``wire_time`` is honest about what compression does
*not* fix — the model download leg still pays full price.
"""

import numpy as np

from repro import (
    Coordinator,
    CoordinatorConfig,
    FLClient,
    LocalTrainerConfig,
    fedavg,
    mlp,
)
from repro.data import SyntheticTaskConfig, build_federated_dataset
from repro.device.traces import DeviceTrace

TRAINER = LocalTrainerConfig(batch_size=10, local_steps=10, lr=0.15)
COMPRESS = "update:topk0.05+int8,snapshot:rle"


def build_workload(seed: int = 0):
    """24 clients; every fourth device has a ~10x slower uplink."""
    task = SyntheticTaskConfig(
        num_classes=6,
        input_shape=(16,),
        latent_dim=8,
        teacher_width=16,
        class_sep=2.5,
        seed=seed,
    )
    dataset = build_federated_dataset(task, 24, mean_samples=40, seed=seed)
    clients = [
        FLClient(
            c.client_id,
            c,
            DeviceTrace(
                c.client_id,
                1e9,  # compute is NOT the bottleneck here
                1e5 if c.client_id % 4 == 0 else 1e6,  # 10x network gap
                1e15,
            ),
        )
        for c in dataset.clients
    ]
    rng = np.random.default_rng(seed)
    model = mlp(dataset.input_shape, dataset.num_classes, rng, width=32)
    return clients, model


def run(seed: int = 0, **knobs):
    clients, model = build_workload(seed)
    coordinator = Coordinator(
        fedavg(model.clone(keep_id=True)),
        clients,
        CoordinatorConfig(
            rounds=20,
            clients_per_round=8,
            trainer=TRAINER,
            eval_every=10,
            seed=seed,
            **knobs,
        ),
    )
    return coordinator.run()


def main() -> None:
    # Price one raw upload over the slow uplink to pick a deadline the
    # slow quarter can only meet with a compressed update.
    clients, model = build_workload()
    slow = next(c for c in clients if c.client_id % 4 == 0)
    raw_upload_s = model.nbytes() / slow.device.bandwidth
    deadline = 1.4 * raw_upload_s  # covers download + train, not 2 legs

    configs = {
        "raw": {},
        "compressed": {"compress": COMPRESS, "wire_time": True},
    }
    logs = {}
    for name, knobs in configs.items():
        logs[name] = run(
            mode="async", buffer_k=4, deadline_s=deadline, **knobs
        )

    print(f"async pacing, deadline {deadline:.2f} simulated s per client\n")
    target = 0.9 * max(log.best_eval().mean_accuracy for log in logs.values())
    for name, log in logs.items():
        t = log.time_to_accuracy(target)
        reach = f"{t:8.2f}" if t is not None else "   never"
        wire = log.total_bytes_up
        raw = log.total_raw_bytes_up
        print(
            f"{name:>12}: {log.dropped_updates:3d} deadline drops, "
            f"{log.simulated_time():8.2f} simulated s total, "
            f"{reach} s to {target:.0%}, "
            f"final accuracy {log.final_accuracy():.1%}, "
            f"update bytes {raw / 1e6:.2f} MB raw -> {wire / 1e6:.2f} MB wire"
        )

    def on_time_slow(log):
        return {
            a.client_id
            for r in log.rounds
            for a in r.arrivals
            if not a.dropped and a.client_id % 4 == 0
        }

    raw_log, comp_log = logs["raw"], logs["compressed"]
    assert comp_log.dropped_updates < raw_log.dropped_updates
    assert comp_log.total_bytes_up < raw_log.total_bytes_up / 10
    assert on_time_slow(comp_log) > on_time_slow(raw_log)  # strict superset
    print(
        "\ncompression fits the slow quarter inside the deadline: "
        f"{raw_log.dropped_updates} -> {comp_log.dropped_updates} drops at "
        f"{raw_log.total_bytes_up / comp_log.total_bytes_up:.0f}x fewer "
        "update bytes"
    )


if __name__ == "__main__":
    main()
