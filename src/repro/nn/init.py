"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so that
every model in the simulation is reproducible from a seed.

Every initializer emits tensors in the process-wide compute dtype
(:func:`repro.nn.compute.compute_dtype`).  Random draws are made in the
generator's native float64 and then cast, so a float32 run initializes with
the float32 rounding of exactly the float64 values — deterministic per
seed, and a float64 run is untouched (no cast, no copy).
"""

from __future__ import annotations

import numpy as np

from .compute import compute_dtype

__all__ = ["he_normal", "xavier_uniform", "zeros", "identity_conv_kernel", "identity_dense"]


def _cast(arr: np.ndarray) -> np.ndarray:
    dtype = compute_dtype()
    return arr if arr.dtype == dtype else arr.astype(dtype)


def he_normal(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    """He-normal initialization, suited to ReLU networks."""
    std = np.sqrt(2.0 / max(fan_in, 1))
    return _cast(rng.normal(0.0, std, size=shape))


def xavier_uniform(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return _cast(rng.uniform(-limit, limit, size=shape))


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros tensor (biases, zero-init residual branches)."""
    return np.zeros(shape, dtype=compute_dtype())


def identity_conv_kernel(channels: int, kernel: int = 3) -> np.ndarray:
    """A conv kernel computing the identity map over ``channels`` channels.

    The centre tap of each filter is a one-hot over its own input channel;
    all other taps are zero, so ``conv(x, K, pad=kernel//2) == x`` exactly.
    Used by FedTrans's deepen operation (Net2DeeperNet).
    """
    if kernel % 2 != 1:
        raise ValueError("identity kernels require odd kernel size")
    k = np.zeros((channels, channels, kernel, kernel), dtype=compute_dtype())
    centre = kernel // 2
    idx = np.arange(channels)
    k[idx, idx, centre, centre] = 1.0
    return k


def identity_dense(features: int) -> np.ndarray:
    """Identity weight matrix for a Dense layer (``x @ I == x``)."""
    return np.eye(features, dtype=compute_dtype())
