"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so that
every model in the simulation is reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "xavier_uniform", "zeros", "identity_conv_kernel", "identity_dense"]


def he_normal(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    """He-normal initialization, suited to ReLU networks."""
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros tensor (biases, zero-init residual branches)."""
    return np.zeros(shape)


def identity_conv_kernel(channels: int, kernel: int = 3) -> np.ndarray:
    """A conv kernel computing the identity map over ``channels`` channels.

    The centre tap of each filter is a one-hot over its own input channel;
    all other taps are zero, so ``conv(x, K, pad=kernel//2) == x`` exactly.
    Used by FedTrans's deepen operation (Net2DeeperNet).
    """
    if kernel % 2 != 1:
        raise ValueError("identity kernels require odd kernel size")
    k = np.zeros((channels, channels, kernel, kernel))
    centre = kernel // 2
    idx = np.arange(channels)
    k[idx, idx, centre, centre] = 1.0
    return k


def identity_dense(features: int) -> np.ndarray:
    """Identity weight matrix for a Dense layer (``x @ I == x``)."""
    return np.eye(features)
