"""Model checkpointing: save/load CellModels with full lineage metadata.

A checkpoint is a single ``.npz`` file holding every parameter and state
tensor plus a JSON header describing the architecture (cell types, shapes,
lineage ids, transform history).  ``load_model`` reconstructs the exact
architecture — including widened widths and inserted identity cells — and
restores the weights, so a FedTrans model suite can be persisted mid-run
and resumed or deployed later.

Dtype: tensors are stored at the run's compute dtype; loading rebuilds the
model at the *current* process-wide dtype (:mod:`repro.nn.compute`) and
writes the stored values into it, casting on assignment.  Reloading under
the dtype the checkpoint was saved at is lossless; crossing dtypes rounds
(float64 -> float32) or merely widens (float32 -> float64) the weights.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np

from ..atomicio import atomic_write
from .cells import (
    Cell,
    ConvCell,
    ConvClassifierCell,
    DenseCell,
    FlatClassifierCell,
    ResidualConvCell,
    TokenClassifierCell,
    ViTCell,
    ViTStemCell,
)
from .model import CellModel, TransformRecord

__all__ = [
    "save_model",
    "load_model",
    "model_spec",
    "model_from_spec",
    "model_state_dict",
    "model_from_state",
]


def _cell_spec(cell: Cell) -> dict:
    """JSON-serializable architecture description of one cell."""
    spec: dict = {
        "type": type(cell).__name__,
        "cell_id": cell.cell_id,
        "origin": cell.origin,
        "widen_count": cell.widen_count,
        "last_op": cell.last_op,
        "transformable": cell.transformable,
    }
    if isinstance(cell, ConvCell):
        spec.update(
            in_channels=cell.in_dim,
            out_channels=cell.out_dim,
            kernel=cell.conv.kernel,
            stride=cell.conv.stride,
            norm=cell.bn is not None,
            pool=cell._pool_kind,
        )
    elif isinstance(cell, ResidualConvCell):
        spec.update(
            in_channels=cell.in_dim,
            out_channels=cell.out_dim,
            hidden=cell.hidden_dim,
            stride=cell.conv1.stride,
        )
    elif isinstance(cell, DenseCell):
        spec.update(in_features=cell.in_dim, out_features=cell.out_dim)
    elif isinstance(cell, ViTCell):
        spec.update(dim=cell.in_dim, heads=cell.attn.heads, mlp_hidden=cell.hidden_dim)
    elif isinstance(cell, ViTStemCell):
        spec.update(
            in_channels=cell.embed.in_channels,
            image_size=cell.embed.image_size,
            patch=cell.embed.patch,
            dim=cell.embed.dim,
        )
    elif isinstance(cell, (ConvClassifierCell, FlatClassifierCell, TokenClassifierCell)):
        spec.update(in_dim=cell.in_dim, num_classes=cell.out_dim)
    else:  # pragma: no cover - future cell types
        raise TypeError(f"cannot serialize cell type {type(cell).__name__}")
    return spec


def _cell_from_spec(spec: dict) -> Cell:
    """Rebuild a cell (random weights; caller restores the real ones)."""
    rng = np.random.default_rng(0)
    kind = spec["type"]
    if kind == "ConvCell":
        cell: Cell = ConvCell(
            spec["in_channels"],
            spec["out_channels"],
            rng,
            kernel=spec["kernel"],
            stride=spec["stride"],
            norm=spec["norm"],
            pool=spec["pool"],
            transformable=spec["transformable"],
            cell_id=spec["cell_id"],
        )
    elif kind == "ResidualConvCell":
        cell = ResidualConvCell(
            spec["in_channels"],
            spec["out_channels"],
            rng,
            hidden=spec["hidden"],
            stride=spec["stride"],
            transformable=spec["transformable"],
            cell_id=spec["cell_id"],
        )
    elif kind == "DenseCell":
        cell = DenseCell(
            spec["in_features"],
            spec["out_features"],
            rng,
            transformable=spec["transformable"],
            cell_id=spec["cell_id"],
        )
    elif kind == "ViTCell":
        cell = ViTCell(
            spec["dim"],
            spec["heads"],
            spec["mlp_hidden"],
            rng,
            transformable=spec["transformable"],
            cell_id=spec["cell_id"],
        )
    elif kind == "ViTStemCell":
        cell = ViTStemCell(
            spec["in_channels"],
            spec["image_size"],
            spec["patch"],
            spec["dim"],
            rng,
            cell_id=spec["cell_id"],
        )
    elif kind == "ConvClassifierCell":
        cell = ConvClassifierCell(spec["in_dim"], spec["num_classes"], rng, cell_id=spec["cell_id"])
    elif kind == "FlatClassifierCell":
        cell = FlatClassifierCell(spec["in_dim"], spec["num_classes"], rng, cell_id=spec["cell_id"])
    elif kind == "TokenClassifierCell":
        cell = TokenClassifierCell(spec["in_dim"], spec["num_classes"], rng, cell_id=spec["cell_id"])
    else:
        raise TypeError(f"unknown cell type {kind!r} in checkpoint")
    cell.origin = spec["origin"]
    cell.widen_count = spec["widen_count"]
    cell.last_op = spec["last_op"]
    return cell


def model_spec(model: CellModel) -> dict:
    """Architecture + lineage of a model as a JSON-serializable dict."""
    return {
        "format": 1,
        "model_id": model.model_id,
        "parent_id": model.parent_id,
        "birth_round": model.birth_round,
        "input_shape": list(model.input_shape),
        "num_classes": model.num_classes,
        "cells": [_cell_spec(c) for c in model.cells],
        "history": [
            {"op": h.op, "cell_id": h.cell_id, "round": h.round, "detail": h.detail}
            for h in model.history
        ],
    }


def model_from_spec(spec: dict) -> CellModel:
    """Rebuild the architecture described by :func:`model_spec`."""
    if spec.get("format") != 1:
        raise ValueError(f"unsupported checkpoint format {spec.get('format')!r}")
    model = CellModel(
        [_cell_from_spec(c) for c in spec["cells"]],
        tuple(spec["input_shape"]),
        spec["num_classes"],
        model_id=spec["model_id"],
        parent_id=spec["parent_id"],
        birth_round=spec["birth_round"],
    )
    model.history = [
        TransformRecord(h["op"], h["cell_id"], h["round"], h["detail"])
        for h in spec["history"]
    ]
    return model


def save_model(model: CellModel, path: str | Path) -> None:
    """Write the model (architecture + weights + BN state) to ``path``.

    The write is crash-consistent: bytes land in a same-directory temp
    file and are renamed over ``path`` only once durable, so a crash
    mid-save never leaves a torn ``.npz`` where a good one used to be.
    """
    arrays = {f"param::{k}": v for k, v in model.params().items()}
    arrays.update({f"state::{k}": v for k, v in model.state().items()})
    arrays["__spec__"] = np.frombuffer(
        json.dumps(model_spec(model)).encode(), dtype=np.uint8
    )
    with atomic_write(path) as f:
        np.savez(f, **arrays)


def load_model(path: str | Path) -> CellModel:
    """Reconstruct a model saved by :func:`save_model`."""
    with np.load(path) as data:
        spec = json.loads(bytes(data["__spec__"]).decode())
        model = model_from_spec(spec)
        params = {
            k[len("param::"):]: data[k] for k in data.files if k.startswith("param::")
        }
        state = {
            k[len("state::"):]: data[k] for k in data.files if k.startswith("state::")
        }
    model.set_params(params)
    if state:
        model.set_state(state)
    return model


def model_state_dict(model: CellModel) -> dict:
    """In-memory Stateful payload of one model: spec + tensors + version.

    Unlike :func:`save_model` (a file format) this keeps the exact mutation
    ``version``, because version-keyed consumers — the coordinator's
    evaluation cache, the process executor's delta snapshots — must observe
    the restored model as *the same* version the checkpoint captured, not
    as freshly mutated.
    """
    return {
        "spec": model_spec(model),
        "params": {k: v.copy() for k, v in model.params().items()},
        "state": {k: v.copy() for k, v in model.state().items()},
        "version": model.version,
    }


def model_from_state(payload: dict) -> CellModel:
    """Rebuild the exact model :func:`model_state_dict` captured."""
    model = model_from_spec(payload["spec"])
    model.set_params({k: np.asarray(v) for k, v in payload["params"].items()})
    if payload["state"]:
        model.set_state({k: np.asarray(v) for k, v in payload["state"].items()})
    # set_params/set_state bumped the counter; restamp to the checkpoint's
    # value so version-keyed caches key identically after resume.
    model.sync_version(int(payload["version"]))
    return model
