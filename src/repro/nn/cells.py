"""The Cell abstraction: minimal transformable model-architecture blocks.

FedTrans (§3) performs every model transformation at the granularity of a
*Cell* — "the minimum component of the model architecture (e.g., a
convolution layer or a ResNet block)".  A model is an ordered list of cells
(:class:`repro.nn.model.CellModel`); widening and deepening rewrite cells
in a function-preserving way (Net2Net / network-morphism style):

* **widen** — output channels (or an internal hidden width) are duplicated by
  a random mapping that keeps the original channels first; the consumer of
  those channels divides the duplicated columns by their multiplicity so the
  pre- and post-widen models compute the same function.
* **deepen** — an identity cell is inserted.  Identity conv/dense cells carry
  exact identity weights (valid because cell outputs pass through ReLU, and
  ``relu(identity(x)) == x`` for ``x >= 0``); identity ViT cells zero their
  residual-branch output projections.

Each cell carries lineage metadata (``cell_id``, ``origin``, ``widen_count``,
``last_op``) used by FedTrans's architectural-similarity measure (§4.2) and
by the alternating widen/deepen control flow (Fig. 5).

Design notes recorded in DESIGN.md:

* Inserted identity cells are norm-free — a train-mode BatchNorm cannot be an
  exact identity on unseen batch statistics.
* Dense cells use no LayerNorm: normalizing across features breaks the
  function-preservation of channel duplication (BatchNorm, being
  per-channel, is safe and is kept in conv cells).
* Residual and ViT cells widen *internally* (hidden width), keeping their
  external interface fixed; plain conv/dense cells widen their output
  channels and propagate an expansion to the next cell.
"""

from __future__ import annotations

import itertools
from typing import Literal

import numpy as np

from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dense,
    GELU,
    GlobalAvgPool2d,
    Layer,
    LayerNorm,
    MaxPool2d,
    ReLU,
)
from .attention import MultiHeadSelfAttention, PatchEmbed
from .compute import accum_dtype
from .init import identity_conv_kernel, identity_dense

__all__ = [
    "Cell",
    "ConvCell",
    "ResidualConvCell",
    "DenseCell",
    "ViTCell",
    "ViTStemCell",
    "ConvClassifierCell",
    "FlatClassifierCell",
    "TokenClassifierCell",
    "WidenMapping",
    "make_widen_mapping",
    "cell_id_counter",
    "set_cell_id_counter",
]

Interface = Literal["chw", "flat", "tokens"]

_id_counter = itertools.count()
_id_counter_position = 0  # ids handed out so far (mirrors _id_counter)


def _new_cell_id(prefix: str) -> str:
    """Monotonic, human-readable, process-unique cell identifier."""
    global _id_counter_position
    _id_counter_position += 1
    return f"{prefix}{next(_id_counter):04d}"


def cell_id_counter() -> int:
    """How many cell ids this process has handed out (checkpointing)."""
    return _id_counter_position


def set_cell_id_counter(position: int) -> None:
    """Restore the id counter so cells minted after a resume (deepen
    transforms) get the same ids an uninterrupted run would mint."""
    global _id_counter, _id_counter_position
    if position < 0:
        raise ValueError(f"cell id counter must be >= 0, got {position}")
    _id_counter = itertools.count(position)
    _id_counter_position = position


class WidenMapping:
    """Result of widening a channel axis.

    Two function-preserving schemes share this record:

    * ``zero_new=False`` (Net2Net duplication, the paper's stated rule):
      ``mapping[j]`` is the source channel replicated into new channel
      ``j``; consumers divide duplicated input columns by the source's
      multiplicity so the composite function is unchanged.
    * ``zero_new=True`` (zero-expansion): new channels carry fresh random
      incoming weights while the consumer's new input columns start at
      zero, so the new pathway contributes nothing initially — also exactly
      function-preserving, but free of the duplicate-symmetry problem
      (identical twins receive no first-order force pulling them apart, so
      duplicated capacity can stay collapsed for a long time).
    """

    def __init__(self, mapping: np.ndarray, old_width: int, zero_new: bool = False):
        self.mapping = mapping
        self.old_width = old_width
        self.new_width = len(mapping)
        self.counts = np.bincount(mapping, minlength=old_width)
        self.zero_new = zero_new

    def scale_for_consumer(self) -> np.ndarray:
        """Per-new-channel divisor for the consuming layer (duplication)."""
        return self.counts[self.mapping].astype(accum_dtype())


def make_widen_mapping(
    old_width: int, factor: float, rng: np.random.Generator, mode: str = "dup"
) -> WidenMapping:
    """Build a widening map that keeps original channels first.

    The new width is ``ceil(old * factor)`` and must strictly exceed the old
    width.  With ``mode="dup"`` extra channels are uniform random duplicates
    of existing ones, exactly the paper's "randomly select columns from the
    pre-expanded Cell's weights" rule; ``mode="zero"`` marks the extra
    channels as fresh zero-outgoing pathways (see :class:`WidenMapping`).
    """
    if factor <= 1.0:
        raise ValueError(f"widen factor must exceed 1.0, got {factor}")
    if mode not in ("dup", "zero"):
        raise ValueError(f"unknown widen mode {mode!r}")
    new_width = int(np.ceil(old_width * factor))
    if new_width <= old_width:
        new_width = old_width + 1
    extra = rng.integers(0, old_width, size=new_width - old_width)
    return WidenMapping(
        np.concatenate([np.arange(old_width), extra]), old_width, zero_new=mode == "zero"
    )


def _grow_axis(
    arr: np.ndarray,
    wm: WidenMapping,
    axis: int,
    rng: np.random.Generator,
    noise: float,
    fresh_std: float | None = None,
) -> np.ndarray:
    """Widened-cell tensor growth along ``axis`` (incoming side).

    Duplication mode gathers by the mapping and perturbs the duplicates;
    zero mode appends fresh random channels (std ``fresh_std``, defaulting
    to the tensor's own std).
    """
    if wm.zero_new:
        shape = list(arr.shape)
        shape[axis] = wm.new_width - wm.old_width
        std = fresh_std if fresh_std is not None else max(float(arr.std()), 1e-8)
        extra = rng.normal(0.0, std, shape)
        if extra.dtype != arr.dtype:
            extra = extra.astype(arr.dtype)
        return np.concatenate([arr, extra], axis=axis)
    out = _dup_axis(arr, wm.mapping, axis)
    _break_symmetry(out, axis, wm.old_width, noise, rng)
    return out


def _grow_axis_fill(arr: np.ndarray, wm: WidenMapping, axis: int, fill: float) -> np.ndarray:
    """Per-channel vectors (bias, BN rows): duplicate, or append ``fill``."""
    if wm.zero_new:
        shape = list(arr.shape)
        shape[axis] = wm.new_width - wm.old_width
        return np.concatenate([arr, np.full(shape, fill, dtype=arr.dtype)], axis=axis)
    return _dup_axis(arr, wm.mapping, axis)


def _expand_consumer_axis(
    arr: np.ndarray,
    wm: WidenMapping,
    axis: int,
    rng: np.random.Generator | None = None,
    noise: float = 0.0,
) -> np.ndarray:
    """Consumer-side input expansion along ``axis``.

    Duplication mode divides the duplicated columns by their multiplicity
    (function preservation) and optionally perturbs them (symmetry
    breaking); zero mode appends zero columns so the new pathway starts
    silent.
    """
    if wm.zero_new:
        shape = list(arr.shape)
        shape[axis] = wm.new_width - wm.old_width
        return np.concatenate([arr, np.zeros(shape, dtype=arr.dtype)], axis=axis)
    out = _dup_axis(arr, wm.mapping, axis)
    scale_shape = [1] * arr.ndim
    scale_shape[axis] = wm.new_width
    # Duplication counts are small exact integers: casting the divisor to
    # the tensor dtype keeps float32 models float32 without changing the
    # float64 result.
    out = out / wm.scale_for_consumer().reshape(scale_shape).astype(out.dtype, copy=False)
    if rng is not None:
        _break_symmetry(out, axis, wm.old_width, noise, rng)
    return out


class Cell:
    """Base class for model cells.

    Subclasses implement forward/backward and the structural-transform
    primitives they support.  ``in_interface``/``out_interface`` describe the
    activation layout so :class:`~repro.nn.model.CellModel` can validate the
    chain and pick the right identity cell type when deepening.
    """

    kind: str = "cell"
    in_interface: Interface = "chw"
    out_interface: Interface = "chw"
    transformable: bool = True
    can_widen_output: bool = False
    can_widen_internal: bool = False

    def __init__(self, cell_id: str | None = None, origin: str = "root"):
        self.cell_id = cell_id or _new_cell_id("c")
        self.origin = origin  # 'root' | 'inserted'
        self.widen_count = 0
        self.last_op: str | None = None  # 'widen' | 'deepen' | None

    # -- execution ---------------------------------------------------------
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _named_layers(self) -> list[tuple[str, Layer]]:
        raise NotImplementedError

    # -- parameter access ----------------------------------------------------
    def params(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for lname, layer in self._named_layers():
            for pname, arr in layer.params().items():
                out[f"{lname}.{pname}"] = arr
        return out

    def grads(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for lname, layer in self._named_layers():
            for pname, arr in layer.grads().items():
                out[f"{lname}.{pname}"] = arr
        return out

    def state(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for lname, layer in self._named_layers():
            for sname, arr in layer.state().items():
                out[f"{lname}.{sname}"] = arr
        return out

    def zero_grad(self) -> None:
        for _, layer in self._named_layers():
            layer.zero_grad()

    def num_params(self) -> int:
        return int(sum(v.size for v in self.params().values()))

    # -- cost accounting -----------------------------------------------------
    def macs(self, input_shape: tuple[int, ...]) -> tuple[int, tuple[int, ...]]:
        total = 0
        shape = input_shape
        for _, layer in self._named_layers():
            m, shape = layer.macs(shape)
            total += m
        return total, shape

    # -- structural transforms ------------------------------------------------
    def widen_output(
        self,
        factor: float,
        rng: np.random.Generator,
        noise: float = 0.0,
        mode: str = "dup",
    ) -> WidenMapping:
        raise NotImplementedError(f"{self.kind} cells cannot widen their output")

    def widen_internal(
        self,
        factor: float,
        rng: np.random.Generator,
        noise: float = 0.0,
        mode: str = "dup",
    ) -> None:
        raise NotImplementedError(f"{self.kind} cells cannot widen internally")

    def expand_input(
        self, wm: WidenMapping, rng: np.random.Generator | None = None, noise: float = 0.0
    ) -> None:
        raise NotImplementedError(f"{self.kind} cells cannot expand their input")

    # -- subnet extraction (HeteroFL / FLuID machinery) -------------------
    #
    # ``narrow`` keeps only the given channel indices.  Unlike widen/deepen
    # it is *lossy by design* — HeteroFL-style submodels crop the global
    # model.  ``axis_roles`` names, for each parameter tensor, which axes
    # correspond to the cell's out / in / hidden channel dimensions so that
    # subnet updates can be scattered back into global coordinates.

    #: roles for narrowable axes: param key -> tuple of per-axis roles,
    #: each 'out' | 'in' | 'hidden' | None (None = axis never narrowed).
    def axis_roles(self) -> dict[str, tuple[str | None, ...]]:
        return {}

    def narrow(
        self,
        out_idx: np.ndarray | None = None,
        in_idx: np.ndarray | None = None,
        hidden_idx: np.ndarray | None = None,
    ) -> None:
        raise NotImplementedError(f"{self.kind} cells cannot be narrowed")

    def clone(self) -> "Cell":
        """Deep copy preserving the cell id and lineage metadata."""
        import copy

        new = copy.deepcopy(self)
        for _, layer in new._named_layers():
            # Drop forward caches so clones do not pin activation memory.
            for attr in ("_cache", "_x", "_mask", "_shape"):
                if hasattr(layer, attr):
                    setattr(layer, attr, None)
        return new

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.cell_id} params={self.num_params()}>"


def _dup_axis(arr: np.ndarray, mapping: np.ndarray, axis: int) -> np.ndarray:
    """Gather ``arr`` along ``axis`` using ``mapping`` (channel duplication)."""
    return np.take(arr, mapping, axis=axis)


def _break_symmetry(
    arr: np.ndarray,
    axis: int,
    old_width: int,
    noise: float,
    rng: np.random.Generator,
) -> None:
    """Perturb the *duplicated* channels of a widened tensor in place.

    Pure Net2Net duplication leaves the new channels exactly equal to their
    sources — identical incoming and outgoing weights mean identical
    gradients, so the duplicates never diverge and the widened model's
    effective capacity stays that of its parent.  Following Chen et al.
    (Net2Net), a small noise (``noise`` x the tensor's std) on the new
    channels breaks the symmetry; ``noise=0`` keeps the transform exactly
    function-preserving (used by the property tests).
    """
    if noise <= 0.0 or arr.shape[axis] <= old_width:
        return
    sl = [slice(None)] * arr.ndim
    sl[axis] = slice(old_width, None)
    target = arr[tuple(sl)]
    scale = noise * max(float(arr.std()), 1e-8)
    target += rng.normal(0.0, scale, size=target.shape)


class ConvCell(Cell):
    """Conv -> (BatchNorm) -> ReLU -> (pool).

    The workhorse cell for CNN models.  Supports output widening, input
    expansion, and identity construction (for deepen).
    """

    kind = "conv"
    in_interface = "chw"
    out_interface = "chw"
    can_widen_output = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator,
        kernel: int = 3,
        stride: int = 1,
        norm: bool = True,
        pool: str | None = None,
        transformable: bool = True,
        cell_id: str | None = None,
        origin: str = "root",
    ):
        super().__init__(cell_id, origin)
        self.transformable = transformable
        # A bias ahead of BatchNorm is redundant (BN subtracts the mean), so
        # it exists only on norm-free cells.
        self.conv = Conv2d(in_channels, out_channels, kernel, rng, stride=stride, bias=not norm)
        self.bn = BatchNorm2d(out_channels) if norm else None
        self.act = ReLU()
        if pool is None:
            self.pool = None
        elif pool == "max":
            self.pool = MaxPool2d(2)
        elif pool == "avg":
            self.pool = AvgPool2d(2)
        else:
            raise ValueError(f"unknown pool kind {pool!r}")
        self._pool_kind = pool

    @property
    def in_dim(self) -> int:
        return self.conv.in_channels

    @property
    def out_dim(self) -> int:
        return self.conv.out_channels

    def _named_layers(self) -> list[tuple[str, Layer]]:
        layers: list[tuple[str, Layer]] = [("conv", self.conv)]
        if self.bn is not None:
            layers.append(("bn", self.bn))
        layers.append(("act", self.act))
        if self.pool is not None:
            layers.append(("pool", self.pool))
        return layers

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        for _, layer in self._named_layers():
            x = layer.forward(x, train)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        for _, layer in reversed(self._named_layers()):
            dout = layer.backward(dout)
        return dout

    def widen_output(
        self,
        factor: float,
        rng: np.random.Generator,
        noise: float = 0.0,
        mode: str = "dup",
    ) -> WidenMapping:
        wm = make_widen_mapping(self.out_dim, factor, rng, mode)
        fan_in = self.conv.in_channels * self.conv.kernel**2
        self.conv.w = _grow_axis(
            self.conv.w, wm, 0, rng, noise, fresh_std=np.sqrt(2.0 / fan_in)
        )
        if self.conv.b is not None:
            self.conv.b = _grow_axis_fill(self.conv.b, wm, 0, 0.0)
        self.conv.resize_grads()
        if self.bn is not None:
            self.bn.gamma = _grow_axis_fill(self.bn.gamma, wm, 0, 1.0)
            self.bn.beta = _grow_axis_fill(self.bn.beta, wm, 0, 0.0)
            self.bn.running_mean = _grow_axis_fill(self.bn.running_mean, wm, 0, 0.0)
            self.bn.running_var = _grow_axis_fill(self.bn.running_var, wm, 0, 1.0)
            self.bn.resize_grads()
        return wm

    def expand_input(
        self, wm: WidenMapping, rng: np.random.Generator | None = None, noise: float = 0.0
    ) -> None:
        # Duplication mode: outgoing-side symmetry breaking matters — a
        # duplicate's incoming-weight gradient is driven by its *outgoing*
        # columns.  Zero mode: the new columns start silent (zero).
        self.conv.w = _expand_consumer_axis(self.conv.w, wm, 1, rng, noise)
        self.conv.resize_grads()

    def axis_roles(self) -> dict[str, tuple[str | None, ...]]:
        roles: dict[str, tuple[str | None, ...]] = {"conv.w": ("out", "in", None, None)}
        if self.conv.b is not None:
            roles["conv.b"] = ("out",)
        if self.bn is not None:
            roles.update(
                {
                    "bn.gamma": ("out",),
                    "bn.beta": ("out",),
                    "bn.running_mean": ("out",),
                    "bn.running_var": ("out",),
                }
            )
        return roles

    def narrow(self, out_idx=None, in_idx=None, hidden_idx=None) -> None:
        if hidden_idx is not None:
            raise ValueError("conv cells have no hidden axis")
        if out_idx is not None:
            self.conv.w = _dup_axis(self.conv.w, out_idx, 0)
            if self.conv.b is not None:
                self.conv.b = _dup_axis(self.conv.b, out_idx, 0)
            if self.bn is not None:
                self.bn.gamma = _dup_axis(self.bn.gamma, out_idx, 0)
                self.bn.beta = _dup_axis(self.bn.beta, out_idx, 0)
                self.bn.running_mean = _dup_axis(self.bn.running_mean, out_idx, 0)
                self.bn.running_var = _dup_axis(self.bn.running_var, out_idx, 0)
                self.bn.resize_grads()
        if in_idx is not None:
            self.conv.w = _dup_axis(self.conv.w, in_idx, 1)
        self.conv.resize_grads()

    @classmethod
    def identity(cls, channels: int, kernel: int = 3) -> "ConvCell":
        """An exact-identity conv cell (norm-free; see module docstring)."""
        rng = np.random.default_rng(0)  # immediately overwritten below
        cell = cls(
            channels,
            channels,
            rng,
            kernel=kernel,
            norm=False,
            transformable=True,
            origin="inserted",
        )
        cell.conv.w = identity_conv_kernel(channels, kernel)
        cell.conv.b = np.zeros(channels, dtype=cell.conv.w.dtype)
        cell.conv.resize_grads()
        return cell


class ResidualConvCell(Cell):
    """ResNet-style block: conv-bn-relu-conv-bn + 1x1 projection skip, relu.

    The skip path always uses an explicit 1x1 projection so that input
    expansion (after an upstream widen) has a uniform implementation.  The
    block widens *internally* — its hidden channel count grows while the
    external interface stays fixed.
    """

    kind = "residual"
    in_interface = "chw"
    out_interface = "chw"
    can_widen_internal = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator,
        hidden: int | None = None,
        stride: int = 1,
        transformable: bool = True,
        cell_id: str | None = None,
        origin: str = "root",
    ):
        super().__init__(cell_id, origin)
        self.transformable = transformable
        hidden = hidden or out_channels
        self.conv1 = Conv2d(in_channels, hidden, 3, rng, stride=stride, bias=False)
        self.bn1 = BatchNorm2d(hidden)
        self.act1 = ReLU()
        self.conv2 = Conv2d(hidden, out_channels, 3, rng, bias=False)
        self.bn2 = BatchNorm2d(out_channels)
        self.proj = Conv2d(in_channels, out_channels, 1, rng, stride=stride, pad=0)
        self.act_out = ReLU()

    @property
    def in_dim(self) -> int:
        return self.conv1.in_channels

    @property
    def out_dim(self) -> int:
        return self.conv2.out_channels

    @property
    def hidden_dim(self) -> int:
        return self.conv1.out_channels

    def _named_layers(self) -> list[tuple[str, Layer]]:
        return [
            ("conv1", self.conv1),
            ("bn1", self.bn1),
            ("act1", self.act1),
            ("conv2", self.conv2),
            ("bn2", self.bn2),
            ("proj", self.proj),
            ("act_out", self.act_out),
        ]

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        h = self.act1.forward(self.bn1.forward(self.conv1.forward(x, train), train), train)
        y = self.bn2.forward(self.conv2.forward(h, train), train)
        s = self.proj.forward(x, train)
        return self.act_out.forward(y + s, train)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        d = self.act_out.backward(dout)
        ds = self.proj.backward(d)
        dy = self.conv2.backward(self.bn2.backward(d))
        dh = self.conv1.backward(self.bn1.backward(self.act1.backward(dy)))
        return dh + ds

    def macs(self, input_shape: tuple[int, ...]) -> tuple[int, tuple[int, ...]]:
        m1, shape1 = self.conv1.macs(input_shape)
        m2, shape2 = self.conv2.macs(shape1)
        mp, _ = self.proj.macs(input_shape)
        return m1 + m2 + mp, shape2

    def widen_internal(
        self,
        factor: float,
        rng: np.random.Generator,
        noise: float = 0.0,
        mode: str = "dup",
    ) -> None:
        wm = make_widen_mapping(self.hidden_dim, factor, rng, mode)
        fan_in = self.conv1.in_channels * self.conv1.kernel**2
        self.conv1.w = _grow_axis(
            self.conv1.w, wm, 0, rng, noise, fresh_std=np.sqrt(2.0 / fan_in)
        )
        if self.conv1.b is not None:
            self.conv1.b = _grow_axis_fill(self.conv1.b, wm, 0, 0.0)
        self.conv1.resize_grads()
        self.bn1.gamma = _grow_axis_fill(self.bn1.gamma, wm, 0, 1.0)
        self.bn1.beta = _grow_axis_fill(self.bn1.beta, wm, 0, 0.0)
        self.bn1.running_mean = _grow_axis_fill(self.bn1.running_mean, wm, 0, 0.0)
        self.bn1.running_var = _grow_axis_fill(self.bn1.running_var, wm, 0, 1.0)
        self.bn1.resize_grads()
        self.conv2.w = _expand_consumer_axis(self.conv2.w, wm, 1, rng, noise)
        self.conv2.resize_grads()

    def expand_input(
        self, wm: WidenMapping, rng: np.random.Generator | None = None, noise: float = 0.0
    ) -> None:
        self.conv1.w = _expand_consumer_axis(self.conv1.w, wm, 1, rng, noise)
        self.conv1.resize_grads()
        self.proj.w = _expand_consumer_axis(self.proj.w, wm, 1, rng, noise)
        self.proj.resize_grads()

    def axis_roles(self) -> dict[str, tuple[str | None, ...]]:
        roles: dict[str, tuple[str | None, ...]] = {
            "conv1.w": ("hidden", "in", None, None),
            "bn1.gamma": ("hidden",),
            "bn1.beta": ("hidden",),
            "bn1.running_mean": ("hidden",),
            "bn1.running_var": ("hidden",),
            "conv2.w": ("out", "hidden", None, None),
            "bn2.gamma": ("out",),
            "bn2.beta": ("out",),
            "bn2.running_mean": ("out",),
            "bn2.running_var": ("out",),
            "proj.w": ("out", "in", None, None),
        }
        if self.proj.b is not None:
            roles["proj.b"] = ("out",)
        return roles

    def narrow(self, out_idx=None, in_idx=None, hidden_idx=None) -> None:
        if hidden_idx is not None:
            self.conv1.w = _dup_axis(self.conv1.w, hidden_idx, 0)
            self.bn1.gamma = _dup_axis(self.bn1.gamma, hidden_idx, 0)
            self.bn1.beta = _dup_axis(self.bn1.beta, hidden_idx, 0)
            self.bn1.running_mean = _dup_axis(self.bn1.running_mean, hidden_idx, 0)
            self.bn1.running_var = _dup_axis(self.bn1.running_var, hidden_idx, 0)
            self.bn1.resize_grads()
            self.conv2.w = _dup_axis(self.conv2.w, hidden_idx, 1)
        if out_idx is not None:
            self.conv2.w = _dup_axis(self.conv2.w, out_idx, 0)
            self.bn2.gamma = _dup_axis(self.bn2.gamma, out_idx, 0)
            self.bn2.beta = _dup_axis(self.bn2.beta, out_idx, 0)
            self.bn2.running_mean = _dup_axis(self.bn2.running_mean, out_idx, 0)
            self.bn2.running_var = _dup_axis(self.bn2.running_var, out_idx, 0)
            self.bn2.resize_grads()
            self.proj.w = _dup_axis(self.proj.w, out_idx, 0)
            if self.proj.b is not None:
                self.proj.b = _dup_axis(self.proj.b, out_idx, 0)
        if in_idx is not None:
            self.conv1.w = _dup_axis(self.conv1.w, in_idx, 1)
            self.proj.w = _dup_axis(self.proj.w, in_idx, 1)
        self.conv1.resize_grads()
        self.conv2.resize_grads()
        self.proj.resize_grads()

    @classmethod
    def identity(cls, channels: int) -> "ResidualConvCell":
        """Residual cell computing the identity: zeroed main branch, identity skip."""
        rng = np.random.default_rng(0)
        cell = cls(channels, channels, rng, origin="inserted")
        cell.conv2.w = np.zeros_like(cell.conv2.w)
        if cell.conv2.b is not None:
            cell.conv2.b = np.zeros_like(cell.conv2.b)
        cell.conv2.resize_grads()
        cell.proj.w = identity_conv_kernel(channels, 1)
        cell.proj.b = np.zeros(channels, dtype=cell.proj.w.dtype)
        cell.proj.resize_grads()
        return cell


class DenseCell(Cell):
    """Dense -> ReLU; the MLP analogue of :class:`ConvCell`."""

    kind = "dense"
    in_interface = "flat"
    out_interface = "flat"
    can_widen_output = True

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        transformable: bool = True,
        cell_id: str | None = None,
        origin: str = "root",
    ):
        super().__init__(cell_id, origin)
        self.transformable = transformable
        self.fc = Dense(in_features, out_features, rng)
        self.act = ReLU()

    @property
    def in_dim(self) -> int:
        return self.fc.in_features

    @property
    def out_dim(self) -> int:
        return self.fc.out_features

    def _named_layers(self) -> list[tuple[str, Layer]]:
        return [("fc", self.fc), ("act", self.act)]

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        return self.act.forward(self.fc.forward(x, train), train)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        return self.fc.backward(self.act.backward(dout))

    def widen_output(
        self,
        factor: float,
        rng: np.random.Generator,
        noise: float = 0.0,
        mode: str = "dup",
    ) -> WidenMapping:
        wm = make_widen_mapping(self.out_dim, factor, rng, mode)
        self.fc.w = _grow_axis(
            self.fc.w, wm, 1, rng, noise, fresh_std=np.sqrt(2.0 / self.in_dim)
        )
        self.fc.b = _grow_axis_fill(self.fc.b, wm, 0, 0.0)
        self.fc.resize_grads()
        return wm

    def expand_input(
        self, wm: WidenMapping, rng: np.random.Generator | None = None, noise: float = 0.0
    ) -> None:
        self.fc.w = _expand_consumer_axis(self.fc.w, wm, 0, rng, noise)
        self.fc.resize_grads()

    def axis_roles(self) -> dict[str, tuple[str | None, ...]]:
        return {"fc.w": ("in", "out"), "fc.b": ("out",)}

    def narrow(self, out_idx=None, in_idx=None, hidden_idx=None) -> None:
        if hidden_idx is not None:
            raise ValueError("dense cells have no hidden axis")
        if out_idx is not None:
            self.fc.w = _dup_axis(self.fc.w, out_idx, 1)
            self.fc.b = _dup_axis(self.fc.b, out_idx, 0)
        if in_idx is not None:
            self.fc.w = _dup_axis(self.fc.w, in_idx, 0)
        self.fc.resize_grads()

    @classmethod
    def identity(cls, features: int) -> "DenseCell":
        rng = np.random.default_rng(0)
        cell = cls(features, features, rng, origin="inserted")
        cell.fc.w = identity_dense(features)
        cell.fc.b = np.zeros(features, dtype=cell.fc.w.dtype)
        cell.fc.resize_grads()
        return cell


class ViTCell(Cell):
    """Pre-norm transformer encoder block; widens its MLP hidden width."""

    kind = "vit"
    in_interface = "tokens"
    out_interface = "tokens"
    can_widen_internal = True

    def __init__(
        self,
        dim: int,
        heads: int,
        mlp_hidden: int,
        rng: np.random.Generator,
        transformable: bool = True,
        cell_id: str | None = None,
        origin: str = "root",
    ):
        super().__init__(cell_id, origin)
        self.transformable = transformable
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, heads, rng)
        self.ln2 = LayerNorm(dim)
        self.fc1 = Dense(dim, mlp_hidden, rng)
        self.act = GELU()
        self.fc2 = Dense(mlp_hidden, dim, rng)

    @property
    def in_dim(self) -> int:
        return self.ln1.features

    @property
    def out_dim(self) -> int:
        return self.ln1.features

    @property
    def hidden_dim(self) -> int:
        return self.fc1.out_features

    def _named_layers(self) -> list[tuple[str, Layer]]:
        return [
            ("ln1", self.ln1),
            ("attn", self.attn),
            ("ln2", self.ln2),
            ("fc1", self.fc1),
            ("act", self.act),
            ("fc2", self.fc2),
        ]

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        a = self.attn.forward(self.ln1.forward(x, train), train)
        x1 = x + a
        n, t, d = x1.shape
        h = self.ln2.forward(x1, train)
        h2 = self.fc1.forward(h.reshape(n * t, d), train)
        h3 = self.fc2.forward(self.act.forward(h2, train), train)
        self._tok_shape = (n, t, d)
        return x1 + h3.reshape(n, t, d)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        n, t, d = self._tok_shape
        dh3 = dout.reshape(n * t, d)
        dh = self.fc1.backward(self.act.backward(self.fc2.backward(dh3)))
        dx1 = dout + self.ln2.backward(dh.reshape(n, t, d))
        da = self.attn.backward(dx1)
        return dx1 + self.ln1.backward(da)

    def macs(self, input_shape: tuple[int, ...]) -> tuple[int, tuple[int, ...]]:
        t, d = input_shape
        m_attn, _ = self.attn.macs((t, d))
        m_mlp = t * (d * self.hidden_dim + self.hidden_dim * d)
        return m_attn + m_mlp, (t, d)

    def widen_internal(
        self,
        factor: float,
        rng: np.random.Generator,
        noise: float = 0.0,
        mode: str = "dup",
    ) -> None:
        wm = make_widen_mapping(self.hidden_dim, factor, rng, mode)
        self.fc1.w = _grow_axis(
            self.fc1.w, wm, 1, rng, noise, fresh_std=np.sqrt(2.0 / self.in_dim)
        )
        self.fc1.b = _grow_axis_fill(self.fc1.b, wm, 0, 0.0)
        self.fc1.resize_grads()
        self.fc2.w = _expand_consumer_axis(self.fc2.w, wm, 0, rng, noise)
        self.fc2.resize_grads()

    def axis_roles(self) -> dict[str, tuple[str | None, ...]]:
        # The token dimension is shared by every ViT cell and is never
        # narrowed; only the MLP hidden width shrinks in subnets.
        return {
            "fc1.w": (None, "hidden"),
            "fc1.b": ("hidden",),
            "fc2.w": ("hidden", None),
        }

    def narrow(self, out_idx=None, in_idx=None, hidden_idx=None) -> None:
        if out_idx is not None or in_idx is not None:
            raise ValueError("ViT cells only narrow their MLP hidden width")
        if hidden_idx is not None:
            self.fc1.w = _dup_axis(self.fc1.w, hidden_idx, 1)
            self.fc1.b = _dup_axis(self.fc1.b, hidden_idx, 0)
            self.fc2.w = _dup_axis(self.fc2.w, hidden_idx, 0)
            self.fc1.resize_grads()
            self.fc2.resize_grads()

    @classmethod
    def identity(
        cls, dim: int, heads: int, mlp_hidden: int, rng: np.random.Generator
    ) -> "ViTCell":
        """Exact-identity block: both residual branches project to zero."""
        cell = cls(dim, heads, mlp_hidden, rng, origin="inserted")
        cell.attn.w_out = np.zeros_like(cell.attn.w_out)
        cell.attn.b_out = np.zeros_like(cell.attn.b_out)
        cell.fc2.w = np.zeros_like(cell.fc2.w)
        cell.fc2.b = np.zeros_like(cell.fc2.b)
        cell.fc2.resize_grads()
        return cell


class ViTStemCell(Cell):
    """Patch embedding stem; not transformable."""

    kind = "vit_stem"
    in_interface = "chw"
    out_interface = "tokens"
    transformable = False

    def __init__(
        self,
        in_channels: int,
        image_size: int,
        patch: int,
        dim: int,
        rng: np.random.Generator,
        cell_id: str | None = None,
    ):
        super().__init__(cell_id)
        self.transformable = False
        self.embed = PatchEmbed(in_channels, image_size, patch, dim, rng)

    @property
    def in_dim(self) -> int:
        return self.embed.in_channels

    @property
    def out_dim(self) -> int:
        return self.embed.dim

    def _named_layers(self) -> list[tuple[str, Layer]]:
        return [("embed", self.embed)]

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        return self.embed.forward(x, train)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        return self.embed.backward(dout)


class ConvClassifierCell(Cell):
    """Global average pool + linear head for CHW features; not transformable."""

    kind = "classifier"
    in_interface = "chw"
    out_interface = "flat"
    transformable = False

    def __init__(
        self,
        in_channels: int,
        num_classes: int,
        rng: np.random.Generator,
        cell_id: str | None = None,
    ):
        super().__init__(cell_id)
        self.transformable = False
        self.gap = GlobalAvgPool2d()
        self.head = Dense(in_channels, num_classes, rng)

    @property
    def in_dim(self) -> int:
        return self.head.in_features

    @property
    def out_dim(self) -> int:
        return self.head.out_features

    def _named_layers(self) -> list[tuple[str, Layer]]:
        return [("gap", self.gap), ("head", self.head)]

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        return self.head.forward(self.gap.forward(x, train), train)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        return self.gap.backward(self.head.backward(dout))

    def expand_input(
        self, wm: WidenMapping, rng: np.random.Generator | None = None, noise: float = 0.0
    ) -> None:
        self.head.w = _expand_consumer_axis(self.head.w, wm, 0, rng, noise)
        self.head.resize_grads()

    def axis_roles(self) -> dict[str, tuple[str | None, ...]]:
        return {"head.w": ("in", None)}

    def narrow(self, out_idx=None, in_idx=None, hidden_idx=None) -> None:
        if out_idx is not None or hidden_idx is not None:
            raise ValueError("classifier cells only narrow their input")
        if in_idx is not None:
            self.head.w = _dup_axis(self.head.w, in_idx, 0)
            self.head.resize_grads()


class FlatClassifierCell(Cell):
    """Linear head over flat features; not transformable."""

    kind = "classifier"
    in_interface = "flat"
    out_interface = "flat"
    transformable = False

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        rng: np.random.Generator,
        cell_id: str | None = None,
    ):
        super().__init__(cell_id)
        self.transformable = False
        self.head = Dense(in_features, num_classes, rng)

    @property
    def in_dim(self) -> int:
        return self.head.in_features

    @property
    def out_dim(self) -> int:
        return self.head.out_features

    def _named_layers(self) -> list[tuple[str, Layer]]:
        return [("head", self.head)]

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        return self.head.forward(x, train)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        return self.head.backward(dout)

    def expand_input(
        self, wm: WidenMapping, rng: np.random.Generator | None = None, noise: float = 0.0
    ) -> None:
        self.head.w = _expand_consumer_axis(self.head.w, wm, 0, rng, noise)
        self.head.resize_grads()

    def axis_roles(self) -> dict[str, tuple[str | None, ...]]:
        return {"head.w": ("in", None)}

    def narrow(self, out_idx=None, in_idx=None, hidden_idx=None) -> None:
        if out_idx is not None or hidden_idx is not None:
            raise ValueError("classifier cells only narrow their input")
        if in_idx is not None:
            self.head.w = _dup_axis(self.head.w, in_idx, 0)
            self.head.resize_grads()


class TokenClassifierCell(Cell):
    """Mean-pool tokens + linear head (ViT); not transformable."""

    kind = "classifier"
    in_interface = "tokens"
    out_interface = "flat"
    transformable = False

    def __init__(
        self,
        dim: int,
        num_classes: int,
        rng: np.random.Generator,
        cell_id: str | None = None,
    ):
        super().__init__(cell_id)
        self.transformable = False
        self.head = Dense(dim, num_classes, rng)
        self._tokens: int | None = None

    @property
    def in_dim(self) -> int:
        return self.head.in_features

    @property
    def out_dim(self) -> int:
        return self.head.out_features

    def _named_layers(self) -> list[tuple[str, Layer]]:
        return [("head", self.head)]

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        self._tokens = x.shape[1]
        return self.head.forward(x.mean(axis=1), train)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        dpool = self.head.backward(dout)
        t = self._tokens
        return np.broadcast_to(dpool[:, None, :], (dpool.shape[0], t, dpool.shape[1])) / t

    def macs(self, input_shape: tuple[int, ...]) -> tuple[int, tuple[int, ...]]:
        t, d = input_shape
        m, out_shape = self.head.macs((d,))
        return m, out_shape
