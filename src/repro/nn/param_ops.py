"""Operations on parameter trees (``dict[str, np.ndarray]``).

Models expose their weights as flat string-keyed dictionaries.  Federated
aggregation, server optimizers, and FedTrans's cross-model soft aggregation
are all expressed as algebra on these trees.  All functions return new trees
and never mutate their inputs unless explicitly documented.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from .compute import accum_dtype

ParamTree = dict[str, np.ndarray]

__all__ = [
    "ParamTree",
    "tree_copy",
    "tree_zeros_like",
    "tree_add",
    "tree_sub",
    "tree_scale",
    "tree_axpy",
    "tree_average",
    "tree_norm",
    "tree_dot",
    "tree_num_params",
    "tree_nbytes",
    "tree_allclose",
    "crop_to_shape",
    "embed_into",
]


def tree_copy(tree: Mapping[str, np.ndarray]) -> ParamTree:
    """Deep-copy a parameter tree."""
    return {k: v.copy() for k, v in tree.items()}


def tree_zeros_like(tree: Mapping[str, np.ndarray]) -> ParamTree:
    """A tree of zeros with the same keys/shapes."""
    return {k: np.zeros_like(v) for k, v in tree.items()}


def _check_keys(a: Mapping[str, np.ndarray], b: Mapping[str, np.ndarray]) -> None:
    if a.keys() != b.keys():
        missing = set(a) ^ set(b)
        raise KeyError(f"parameter trees differ on keys: {sorted(missing)[:8]}")


def tree_add(a: Mapping[str, np.ndarray], b: Mapping[str, np.ndarray]) -> ParamTree:
    """Elementwise ``a + b``."""
    _check_keys(a, b)
    return {k: a[k] + b[k] for k in a}


def tree_sub(a: Mapping[str, np.ndarray], b: Mapping[str, np.ndarray]) -> ParamTree:
    """Elementwise ``a - b``."""
    _check_keys(a, b)
    return {k: a[k] - b[k] for k in a}


def tree_scale(a: Mapping[str, np.ndarray], s: float) -> ParamTree:
    """Elementwise ``s * a``."""
    return {k: v * s for k, v in a.items()}


def tree_axpy(
    y: Mapping[str, np.ndarray], alpha: float, x: Mapping[str, np.ndarray]
) -> ParamTree:
    """``y + alpha * x``."""
    _check_keys(y, x)
    return {k: y[k] + alpha * x[k] for k in y}


def tree_average(
    trees: Iterable[Mapping[str, np.ndarray]],
    weights: Iterable[float] | None = None,
) -> ParamTree:
    """Weighted average of parameter trees.

    Weights are normalized internally; with no weights, the plain mean is
    returned.  Raises on an empty input.

    Accumulation is in place: one output tree plus one scratch tensor per
    key, instead of a fresh intermediate tree per contributor (the old
    ``tree_axpy`` chain).  The per-element operation order is unchanged —
    each contributor adds ``weight * value`` in input order — so results
    are bit-identical to the chained form.
    """
    trees = list(trees)
    if not trees:
        raise ValueError("cannot average zero parameter trees")
    if weights is None:
        w = np.ones(len(trees))
    else:
        w = np.asarray(list(weights), dtype=accum_dtype())
        if len(w) != len(trees):
            raise ValueError("weights length must match number of trees")
        if np.any(w < 0):
            raise ValueError("aggregation weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("aggregation weights sum to zero")
    w = w / total
    out = tree_scale(trees[0], float(w[0]))
    scratch: dict[str, np.ndarray] = {}
    for wi, tree in zip(w[1:], trees[1:]):
        _check_keys(out, tree)
        alpha = float(wi)
        for k, acc in out.items():
            s = scratch.get(k)
            if s is None:
                s = scratch[k] = np.empty_like(acc)
            # alpha * x == x * alpha; acc += t == acc + t elementwise.
            np.multiply(tree[k], alpha, out=s)
            acc += s
    return out


def tree_norm(a: Mapping[str, np.ndarray]) -> float:
    """Global L2 norm across every tensor in the tree."""
    total = 0.0
    for v in a.values():
        total += float(np.sum(v.astype(accum_dtype()) ** 2))
    return float(np.sqrt(total))


def tree_dot(a: Mapping[str, np.ndarray], b: Mapping[str, np.ndarray]) -> float:
    """Global inner product of two trees."""
    _check_keys(a, b)
    return float(sum(np.sum(a[k] * b[k]) for k in a))


def tree_num_params(a: Mapping[str, np.ndarray]) -> int:
    """Total scalar parameter count."""
    return int(sum(v.size for v in a.values()))


def tree_nbytes(a: Mapping[str, np.ndarray]) -> int:
    """Total storage footprint in bytes."""
    return int(sum(v.nbytes for v in a.values()))


def tree_allclose(
    a: Mapping[str, np.ndarray], b: Mapping[str, np.ndarray], atol: float = 1e-8
) -> bool:
    """True when two trees match key-for-key within tolerance."""
    if a.keys() != b.keys():
        return False
    return all(np.allclose(a[k], b[k], atol=atol) for k in a)


def crop_to_shape(src: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Leading-slice crop of ``src`` down to ``shape`` (HeteroFL-style).

    Every axis of ``src`` must be >= the corresponding target axis.  Because
    FedTrans widening always places inherited channels first, the leading
    slice is exactly the sub-tensor shared with the smaller model.
    """
    if src.ndim != len(shape):
        raise ValueError(f"rank mismatch cropping {src.shape} -> {shape}")
    if any(s < t for s, t in zip(src.shape, shape)):
        raise ValueError(f"cannot crop {src.shape} down to larger {shape}")
    return src[tuple(slice(0, t) for t in shape)].copy()


def embed_into(small: np.ndarray, big: np.ndarray) -> np.ndarray:
    """Write ``small`` into the leading slice of a copy of ``big``.

    The complement of the leading slice keeps ``big``'s values.  Used when a
    smaller model contributes its weights to an architecturally larger one.
    """
    if small.ndim != big.ndim:
        raise ValueError(f"rank mismatch embedding {small.shape} -> {big.shape}")
    if any(s > b for s, b in zip(small.shape, big.shape)):
        raise ValueError(f"cannot embed {small.shape} into smaller {big.shape}")
    out = big.copy()
    out[tuple(slice(0, s) for s in small.shape)] = small
    return out
