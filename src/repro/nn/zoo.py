"""Model zoo: the architecture families used across the experiments.

The paper's initial models (NASBench201 base cell, MobileNetV3-small, a
trimmed ResNet18) are proprietary to their frameworks; here each is mapped
to a cell-based analogue of matching *role*:

* :func:`small_cnn` — the generic initial model: conv stem, a few conv
  cells, global-average-pool classifier (NASBench201-base analogue).
* :func:`small_resnet` — residual initial model (trimmed-ResNet18 analogue,
  used for the Speech/OpenImage-like workloads).
* :func:`mlp` — flat dense-cell model; the fastest substrate, used by the
  scaled-down bench profiles.
* :func:`vit_tiny` — transformer model for the Table 4 experiment.
* :func:`complexity_ladder` — a family with roughly doubling MACs per level,
  the analogue of the 7 NASBench201 complexity levels in Fig. 1b.
* :func:`reference_device_models` — three models with distinct complexity
  for the Fig. 1a latency study (MobileNet-V2/V3, EfficientNet-B4 roles).
"""

from __future__ import annotations

import numpy as np

from .cells import (
    ConvCell,
    ConvClassifierCell,
    DenseCell,
    FlatClassifierCell,
    ResidualConvCell,
    TokenClassifierCell,
    ViTCell,
    ViTStemCell,
)
from .model import CellModel

__all__ = [
    "small_cnn",
    "small_resnet",
    "mlp",
    "vit_tiny",
    "complexity_ladder",
    "reference_device_models",
]


def small_cnn(
    input_shape: tuple[int, int, int],
    num_classes: int,
    rng: np.random.Generator,
    width: int = 8,
    depth: int = 2,
    pool_first: bool = True,
) -> CellModel:
    """Conv stem + ``depth`` transformable conv cells + GAP classifier."""
    c, h, w = input_shape
    cells = [
        ConvCell(c, width, rng, pool="max" if pool_first and h >= 8 else None,
                 transformable=False)
    ]
    for _ in range(depth):
        cells.append(ConvCell(width, width, rng))
    cells.append(ConvClassifierCell(width, num_classes, rng))
    return CellModel(cells, input_shape, num_classes)


def small_resnet(
    input_shape: tuple[int, int, int],
    num_classes: int,
    rng: np.random.Generator,
    width: int = 8,
    blocks: int = 2,
) -> CellModel:
    """Conv stem + ``blocks`` residual cells + GAP classifier."""
    c, h, w = input_shape
    cells = [
        ConvCell(c, width, rng, pool="max" if h >= 8 else None, transformable=False)
    ]
    for _ in range(blocks):
        cells.append(ResidualConvCell(width, width, rng))
    cells.append(ConvClassifierCell(width, num_classes, rng))
    return CellModel(cells, input_shape, num_classes)


def mlp(
    input_shape: tuple[int, ...],
    num_classes: int,
    rng: np.random.Generator,
    width: int = 32,
    depth: int = 2,
) -> CellModel:
    """Dense-cell model over flat features; the fast bench substrate."""
    (features,) = input_shape
    cells = [DenseCell(features, width, rng, transformable=False)]
    for _ in range(depth - 1):
        cells.append(DenseCell(width, width, rng))
    cells.append(FlatClassifierCell(width, num_classes, rng))
    return CellModel(cells, input_shape, num_classes)


def vit_tiny(
    input_shape: tuple[int, int, int],
    num_classes: int,
    rng: np.random.Generator,
    dim: int = 16,
    heads: int = 2,
    mlp_hidden: int = 32,
    depth: int = 2,
    patch: int = 4,
) -> CellModel:
    """Small ViT: patch stem + ``depth`` encoder cells + token classifier."""
    c, h, w = input_shape
    if h != w:
        raise ValueError("vit_tiny expects square inputs")
    cells = [ViTStemCell(c, h, patch, dim, rng)]
    for _ in range(depth):
        cells.append(ViTCell(dim, heads, mlp_hidden, rng))
    cells.append(TokenClassifierCell(dim, num_classes, rng))
    return CellModel(cells, input_shape, num_classes)


def complexity_ladder(
    input_shape: tuple[int, ...],
    num_classes: int,
    rng: np.random.Generator,
    levels: int = 7,
    base_width: int = 8,
    kind: str = "auto",
) -> list[CellModel]:
    """A family of models whose MACs roughly double per level.

    Conv/dense MACs scale ~quadratically in width, so each level multiplies
    the width by sqrt(2).  This mirrors the Fig. 1b setup of seven
    NASBench201 models where "each increase [in complexity level] doubles"
    the MAC count.
    """
    if kind == "auto":
        kind = "cnn" if len(input_shape) == 3 else "mlp"
    models = []
    for level in range(levels):
        width = max(2, int(round(base_width * (2 ** (level / 2)))))
        if kind == "cnn":
            models.append(small_cnn(input_shape, num_classes, rng, width=width))
        else:
            models.append(mlp(input_shape, num_classes, rng, width=width))
    return models


def reference_device_models(
    input_shape: tuple[int, int, int],
    num_classes: int,
    rng: np.random.Generator,
) -> dict[str, CellModel]:
    """Three models of distinct complexity, standing in for the Fig. 1a trio.

    Roles (not weights) of MobileNet-V2 < MobileNet-V3 < EfficientNet-B4:
    complexity strictly increases so their latency distributions across a
    heterogeneous device fleet spread and overlap like the paper's figure.
    """
    return {
        "mobilenet_v2_like": small_cnn(input_shape, num_classes, rng, width=8, depth=2),
        "mobilenet_v3_like": small_cnn(input_shape, num_classes, rng, width=16, depth=3),
        "efficientnet_b4_like": small_cnn(input_shape, num_classes, rng, width=32, depth=4),
    }
