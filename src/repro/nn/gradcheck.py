"""Numerical gradient checking.

Used by the test suite to certify every hand-written backward pass against
central finite differences.  Two guards deal with piecewise-linear
nonlinearities (ReLU, max-pool):

* **Jitter** — all parameters receive a tiny random offset before checking.
  Zero-initialized biases otherwise park pre-activations *exactly* on the
  ReLU kink (e.g. a dead upstream sample makes pre-activation == bias == 0),
  where a central difference measures the mean of the one-sided slopes, not
  the subgradient the backward pass returns.  Jitter makes exact kinks a
  measure-zero event.
* **Two-eps consistency** — each coordinate is probed at ``eps`` and
  ``eps/5``; when the two estimates disagree the probe straddles a kink and
  the coordinate is skipped rather than reported as a gradient bug.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = ["max_relative_grad_error", "check_model_gradients"]


def max_relative_grad_error(
    loss_fn: Callable[[], float],
    params: dict[str, np.ndarray],
    grads: dict[str, np.ndarray],
    rng: np.random.Generator,
    eps: float = 1e-5,
    samples_per_tensor: int = 6,
    abs_floor: float = 1e-7,
) -> float:
    """Largest relative error between analytic and numeric gradients.

    ``loss_fn`` must recompute the loss from the *live* parameter arrays in
    ``params``; ``grads`` holds the analytic gradients already accumulated
    for the same loss.  Differences below ``abs_floor`` are ignored —
    central differences of an O(1) loss bottom out around 1e-11 of noise,
    which would otherwise register as a large *relative* error on
    coordinates whose true gradient is exactly zero.
    """
    worst = 0.0
    for name, p in params.items():
        g = grads[name]
        flat_p = p.reshape(-1)
        flat_g = g.reshape(-1)
        n = flat_p.size
        idxs = rng.choice(n, size=min(samples_per_tensor, n), replace=False)
        for i in idxs:
            orig = flat_p[i]

            def probe(e: float) -> float:
                flat_p[i] = orig + e
                up = loss_fn()
                flat_p[i] = orig - e
                down = loss_fn()
                flat_p[i] = orig
                return (up - down) / (2 * e)

            n1 = probe(eps)
            diff = abs(n1 - flat_g[i])
            if diff < abs_floor:
                continue
            n2 = probe(eps / 5)
            if abs(n1 - n2) > 0.05 * max(abs(n1), abs(n2), 1e-6):
                continue  # probe straddles a kink; not a gradient bug
            denom = max(abs(n1), abs(flat_g[i]), 1e-8)
            worst = max(worst, abs(n1 - flat_g[i]) / denom)
    return worst


def check_model_gradients(
    model,
    x: np.ndarray,
    y: np.ndarray,
    rng: np.random.Generator,
    samples_per_tensor: int = 4,
    jitter: float = 1e-3,
) -> float:
    """Gradcheck a :class:`~repro.nn.model.CellModel` on a batch.

    Gradients are checked in training mode — exactly the code path FL local
    steps use.  ``jitter`` nudges every parameter off exact nonlinearity
    kinks first (see module docstring); pass 0 to disable.
    """
    from .losses import softmax_cross_entropy

    if jitter:
        for p in model.params().values():
            p += rng.uniform(-jitter, jitter, size=p.shape)

    def loss_fn() -> float:
        logits = model.forward(x, train=True)
        loss, _ = softmax_cross_entropy(logits, y)
        return loss

    model.zero_grad()
    logits = model.forward(x, train=True)
    _, dlogits = softmax_cross_entropy(logits, y)
    model.backward(dlogits)
    return max_relative_grad_error(
        loss_fn, model.params(), model.grads(), rng, samples_per_tensor=samples_per_tensor
    )
