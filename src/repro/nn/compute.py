"""Process-wide compute substrate knobs: dtype and workspace pooling.

Two global switches govern the NumPy substrate's hot path:

* **Compute dtype** — every tensor the substrate creates (initializers,
  layer buffers, synthetic data, transform-grown channels) uses the
  process-wide compute dtype.  ``float64`` is the default and the
  *bit-identity* dtype: golden fixtures, the executor determinism
  contract, and the eval-cache identity guarantees are all stated at
  float64.  ``float32`` halves memory traffic and roughly doubles BLAS
  throughput; results are deterministic per seed but numerically distinct
  from float64 runs (see ROADMAP "Hot-path compute substrate" for the
  exact contract).  The knob is resolved in one place —
  ``CoordinatorConfig.compute_dtype`` / ``FedTransConfig.compute_dtype``
  / ``--dtype`` all funnel into :func:`set_compute_dtype` — and shipped
  to process-pool workers through the pool initializer.

* **Workspace pooling** — hot-path kernels (im2col, BatchNorm
  temporaries, ReLU, softmax/cross-entropy scratch) write into
  per-layer :class:`Workspace` buffers sized on first use and reused
  across steps, so the steady-state training step performs no large heap
  allocations.  Pooling is arithmetic-transparent (bit-identical on or
  off; the regression test pins both the identity and the allocation
  saving) and on by default; :func:`set_workspace_pooling` exists for the
  allocation benchmark's baseline and for debugging.

Both knobs are plain module globals: they are set once at run start
(before models and data are built) and only read on the hot path.
Changing the dtype mid-run does not retype existing models — mixing
dtypes silently upcasts, so runs should build everything under one
setting.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "COMPUTE_DTYPES",
    "ACCUM_DTYPE",
    "accum_dtype",
    "compute_dtype",
    "compute_dtype_name",
    "set_compute_dtype",
    "workspace_pooling_enabled",
    "set_workspace_pooling",
    "Workspace",
]

#: The dtypes the substrate supports, by config/CLI name.
COMPUTE_DTYPES = ("float32", "float64")

_DTYPES = {name: np.dtype(name) for name in COMPUTE_DTYPES}

#: The accumulator dtype: reductions that must stay numerically stable
#: regardless of the working precision (norms, weighted averages over
#: many clients, Eq. 5 cross-model sums) accumulate here.  Fixed at
#: float64 — under the default compute dtype this is the identity, and
#: under float32 it keeps long reductions from losing low-order bits.
#: This is the "accumulator allowlist" repro-lint's RL003 points at:
#: kernels name their accumulation precision through :func:`accum_dtype`
#: instead of hard-coding ``np.float64``.
ACCUM_DTYPE: np.dtype = np.dtype("float64")

_compute_dtype: np.dtype = np.dtype("float64")
_pooling_enabled: bool = True


def compute_dtype() -> np.dtype:
    """The process-wide dtype of every tensor the substrate creates."""
    return _compute_dtype


def accum_dtype() -> np.dtype:
    """The dtype for precision-critical reductions (always float64)."""
    return ACCUM_DTYPE


def compute_dtype_name() -> str:
    """The current compute dtype as its config/CLI name."""
    return _compute_dtype.name


def set_compute_dtype(dtype: str | np.dtype | None) -> np.dtype:
    """Set the process-wide compute dtype; returns the resolved dtype.

    ``None`` leaves the current setting untouched (the config-layer
    "inherit" value).  Anything other than float32/float64 is rejected:
    the substrate's kernels and the latency model are written for IEEE
    floats of those two widths.
    """
    global _compute_dtype
    if dtype is None:
        return _compute_dtype
    name = dtype if isinstance(dtype, str) else np.dtype(dtype).name
    if name not in _DTYPES:
        raise ValueError(
            f"compute dtype must be one of {COMPUTE_DTYPES}, got {dtype!r}"
        )
    _compute_dtype = _DTYPES[name]
    return _compute_dtype


def workspace_pooling_enabled() -> bool:
    """Whether hot-path kernels reuse pooled workspace buffers."""
    return _pooling_enabled


def set_workspace_pooling(enabled: bool) -> None:
    """Toggle workspace pooling (bit-identical either way; default on)."""
    global _pooling_enabled
    _pooling_enabled = bool(enabled)


class Workspace:
    """Named scratch buffers reused across steps by one owner.

    Each layer (and the aggregator) owns a private workspace, so reuse is
    free of cross-thread races: parallel backends clone models per work
    item, and a clone starts with a fresh (empty) workspace.  ``get``
    hands back the buffer registered under ``name`` when its shape and
    dtype still match, else allocates a replacement — steady-state
    training (fixed batch shape) allocates exactly once per buffer.

    Contents are *not* preserved between calls: callers must fully
    overwrite a buffer before reading it (``zero_first`` zeroes only
    freshly allocated buffers, for pad-border style invariants).  With
    pooling disabled (:func:`set_workspace_pooling`) every call allocates
    fresh, which is the allocation benchmark's baseline.
    """

    __slots__ = ("_bufs",)

    def __init__(self) -> None:
        self._bufs: dict[object, np.ndarray] = {}

    def get(
        self,
        name: object,
        shape: tuple[int, ...],
        dtype: np.dtype,
        zero_first: bool = False,
    ) -> np.ndarray:
        shape = tuple(shape)
        if not _pooling_enabled:
            buf = np.zeros(shape, dtype) if zero_first else np.empty(shape, dtype)
            return buf
        buf = self._bufs.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.zeros(shape, dtype) if zero_first else np.empty(shape, dtype)
            self._bufs[name] = buf
        return buf

    def clear(self) -> None:
        self._bufs.clear()

    def prune(self, keep) -> None:
        """Drop every buffer whose name fails the ``keep`` predicate."""
        self._bufs = {k: v for k, v in self._bufs.items() if keep(k)}

    # Workspaces are caches: cloning or pickling an owner must never drag
    # the buffers along (process payloads, deep-copied models).
    def __deepcopy__(self, memo) -> "Workspace":
        return Workspace()

    def __reduce__(self):
        return (Workspace, ())
