"""Low-level array kernels for the NumPy neural-network substrate.

Everything here is a pure function on :class:`numpy.ndarray` values, written
with vectorized NumPy idioms (no per-element Python loops on the hot path).
The convolution kernels use the classic im2col/col2im lowering so the heavy
lifting happens inside BLAS matmuls.

Hot-path kernels take an optional :class:`~repro.nn.compute.Workspace`:
when given, large intermediates (padded inputs, im2col columns, matmul
outputs) land in pooled buffers reused across steps instead of fresh
allocations.  The workspace path performs *exactly* the same arithmetic as
the allocating path — pooling is bit-transparent — and every buffer is
fully overwritten before it is read, so stale contents can never leak into
results.
"""

from __future__ import annotations

import numpy as np

from .compute import Workspace

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "relu",
    "relu_grad",
    "gelu",
    "gelu_grad",
    "softmax",
    "log_softmax",
]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size {out} "
            f"(input={size}, kernel={kernel}, stride={stride}, pad={pad})"
        )
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int, ws: Workspace | None = None
) -> tuple[np.ndarray, int, int]:
    """Lower sliding convolution windows into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    ws:
        Optional workspace: the padded input and the column buffer come
        from the pool instead of fresh allocations.

    Returns
    -------
    cols:
        Array of shape ``(N, C*kh*kw, OH*OW)``.
    oh, ow:
        Spatial output sizes.
    """
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w, kw, stride, pad)
    if pad > 0:
        if ws is None:
            x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        else:
            # The border is written only when the buffer is born (it is
            # always zero); the interior is rewritten every call.
            xp = ws.get(
                "im2col_pad",
                (n, c, h + 2 * pad, w + 2 * pad),
                x.dtype,
                zero_first=True,
            )
            xp[:, :, pad : pad + h, pad : pad + w] = x
            x = xp
    if ws is None:
        cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    else:
        cols = ws.get("im2col_cols", (n, c, kh, kw, oh, ow), x.dtype)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            cols[:, :, i, j] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(n, c * kh * kw, oh * ow), oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    ws: Workspace | None = None,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an image."""
    n, c, h, w = x_shape
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w, kw, stride, pad)
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    if ws is None:
        xp = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    else:
        # Scatter-add target: must start from zero on every call.
        xp = ws.get("col2im_xp", (n, c, h + 2 * pad, w + 2 * pad), cols.dtype)
        xp[...] = 0.0
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            xp[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
    if pad > 0:
        return xp[:, :, pad : pad + h, pad : pad + w]
    return xp


def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    pad: int,
    ws: Workspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """2-D convolution forward pass.

    Parameters
    ----------
    x:
        ``(N, C, H, W)`` input.
    weight:
        ``(F, C, kh, kw)`` filters.
    bias:
        ``(F,)`` or ``None``.
    ws:
        Optional workspace for the column and output buffers.

    Returns
    -------
    out:
        ``(N, F, OH, OW)``.
    cols:
        The im2col buffer, cached for the backward pass.
    """
    f, c, kh, kw = weight.shape
    cols, oh, ow = im2col(x, kh, kw, stride, pad, ws)
    wm = weight.reshape(f, c * kh * kw)
    n = x.shape[0]
    if ws is None:
        out = np.matmul(wm[None], cols)  # (N, F, OH*OW)
    else:
        out = ws.get("conv_out", (n, f, oh * ow), cols.dtype)
        np.matmul(wm[None], cols, out=out)
    if bias is not None:
        out += bias[None, :, None]
    return out.reshape(n, f, oh, ow), cols


def conv2d_backward(
    dout: np.ndarray,
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    weight: np.ndarray,
    stride: int,
    pad: int,
    with_bias: bool = True,
    ws: Workspace | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(dx, dweight, dbias)``; ``dbias`` is ``None`` when
    ``with_bias`` is false.
    """
    f, c, kh, kw = weight.shape
    n = dout.shape[0]
    dflat = dout.reshape(n, f, -1)  # (N, F, OH*OW)
    wm = weight.reshape(f, c * kh * kw)
    if ws is None:
        dw = np.einsum("nfo,nko->fk", dflat, cols).reshape(weight.shape)
        dcols = np.matmul(wm.T[None], dflat)  # (N, K, OH*OW)
    else:
        dw = ws.get("conv_dw", (f, c * kh * kw), weight.dtype)
        np.einsum("nfo,nko->fk", dflat, cols, out=dw)
        dw = dw.reshape(weight.shape)
        dcols = ws.get("conv_dcols", (n, c * kh * kw, dflat.shape[2]), cols.dtype)
        np.matmul(wm.T[None], dflat, out=dcols)
    dx = col2im(dcols, x_shape, kh, kw, stride, pad, ws)
    db = dflat.sum(axis=(0, 2)) if with_bias else None
    return dx, dw, db


# repro: hotpath
def relu(x: np.ndarray, ws: Workspace | None = None) -> np.ndarray:
    """Rectified linear unit."""
    if ws is None:
        return np.maximum(x, 0.0)
    out = ws.get("relu_out", x.shape, x.dtype)
    np.maximum(x, 0.0, out=out)
    return out


# repro: hotpath
def relu_grad(
    x: np.ndarray, dout: np.ndarray, ws: Workspace | None = None
) -> np.ndarray:
    """Gradient of ReLU with respect to its input."""
    if ws is None:
        return dout * (x > 0)
    mask = ws.get("relu_mask", x.shape, np.dtype(bool))
    np.greater(x, 0, out=mask)
    dx = ws.get("relu_dx", dout.shape, dout.dtype)
    np.multiply(dout, mask, out=dx)
    return dx


# A Python float (not a NumPy scalar) so NEP-50 weak promotion keeps
# float32 activations in float32.
_GELU_C = float(np.sqrt(2.0 / np.pi))


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation)."""
    return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * x**3)))


def gelu_grad(x: np.ndarray, dout: np.ndarray) -> np.ndarray:
    """Gradient of the tanh-approximated GELU."""
    t = np.tanh(_GELU_C * (x + 0.044715 * x**3))
    dt = (1.0 - t**2) * _GELU_C * (1.0 + 3 * 0.044715 * x**2)
    return dout * (0.5 * (1.0 + t) + 0.5 * x * dt)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    z = x - x.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    z = x - x.max(axis=axis, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=axis, keepdims=True))
