"""CellModel: an ordered chain of cells with lineage-aware parameter naming.

Parameters are keyed ``"{cell_id}/{layer}.{tensor}"``.  Because a widened
cell keeps its ``cell_id`` and an inserted cell mints a fresh one, two models
related by FedTrans transformations share keys exactly on their common
lineage — which is what makes cross-model weight sharing (soft aggregation,
HeteroFL-style cropping) a pure dictionary operation.

Version contract
----------------
Every model carries a monotone :attr:`~CellModel.version` counter.  All
mutating entry points bump it — :meth:`~CellModel.set_params`,
:meth:`~CellModel.set_state`, :meth:`~CellModel.widen_cell`,
:meth:`~CellModel.deepen_after` — and code that writes parameters through
the live references returned by :meth:`~CellModel.params` (optimizer steps,
re-initialization) must call :meth:`~CellModel.bump_version` itself.
``clone(keep_id=True)`` carries the version (a replica of server state);
a fresh-id clone starts a new version history at 0.

Two subsystems key caches on ``(model_id, version)``: the coordinator's
incremental evaluation cache and the process executor's delta snapshot
publishing.  The cost accessors :meth:`~CellModel.macs`,
:meth:`~CellModel.num_params`, and :meth:`~CellModel.nbytes` are memoized
per version, so hot paths (compatible-model filtering per client) stop
re-walking every cell.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from .cells import (
    Cell,
    ConvCell,
    DenseCell,
    ResidualConvCell,
    ViTCell,
    WidenMapping,
)
from .losses import accuracy, softmax_cross_entropy
from .param_ops import ParamTree

__all__ = [
    "CellModel",
    "TransformRecord",
    "model_id_counter",
    "set_model_id_counter",
]

_model_counter = itertools.count()
_model_counter_position = 0  # ids handed out so far (mirrors _model_counter)


def _new_model_id() -> str:
    global _model_counter_position
    _model_counter_position += 1
    return f"m{next(_model_counter):03d}"


def model_id_counter() -> int:
    """How many model ids this process has handed out (checkpointing)."""
    return _model_counter_position


def set_model_id_counter(position: int) -> None:
    """Restore the id counter so future models get the same ids as an
    uninterrupted run would (resume bit-identity requires the lineage's
    ``m%03d`` names to continue exactly where the checkpoint stopped)."""
    global _model_counter, _model_counter_position
    if position < 0:
        raise ValueError(f"model id counter must be >= 0, got {position}")
    _model_counter = itertools.count(position)
    _model_counter_position = position


@dataclass
class TransformRecord:
    """One structural edit applied to a model (for lineage/similarity)."""

    op: str  # 'widen' | 'deepen'
    cell_id: str  # the cell widened, or the anchor cell deepened after
    round: int
    detail: dict = field(default_factory=dict)


class CellModel:
    """A neural network as an ordered list of :class:`Cell` objects.

    Parameters
    ----------
    cells:
        The cell chain; interfaces must line up (validated).
    input_shape:
        Per-sample input shape — ``(C, H, W)`` for image cells, ``(F,)`` for
        flat cells.
    num_classes:
        Output dimensionality (for validation and reporting).
    """

    def __init__(
        self,
        cells: list[Cell],
        input_shape: tuple[int, ...],
        num_classes: int,
        model_id: str | None = None,
        parent_id: str | None = None,
        birth_round: int = 0,
    ):
        if not cells:
            raise ValueError("a model needs at least one cell")
        for prev, nxt in zip(cells, cells[1:]):
            if prev.out_interface != nxt.in_interface:
                raise ValueError(
                    f"interface mismatch: {prev.cell_id} emits {prev.out_interface}, "
                    f"{nxt.cell_id} expects {nxt.in_interface}"
                )
        self.cells = cells
        self.input_shape = tuple(input_shape)
        self.num_classes = num_classes
        self.model_id = model_id or _new_model_id()
        self.parent_id = parent_id
        self.birth_round = birth_round
        self.history: list[TransformRecord] = []
        # Monotone mutation counter (see module docstring).  Cost metrics
        # are memoized against it: ``_cost_version`` records the version the
        # cached macs/params/nbytes triple was computed at.
        self._version = 0
        self._cost_version = -1
        self._macs_cache = 0
        self._num_params_cache = 0
        self._nbytes_cache = 0
        # Chain validation: raises if shapes are inconsistent.
        self.macs()

    # ------------------------------------------------------------------
    # versioning
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone counter of parameter/state/structure mutations."""
        return self._version

    def bump_version(self) -> None:
        """Record a mutation.

        Called automatically by every mutating ``CellModel`` method; code
        that writes through the live arrays of :meth:`params` /
        :meth:`state` (e.g. in-place optimizer steps) must call this so
        version-keyed caches (evaluation cache, snapshot deltas, cost
        memoization) observe the change.
        """
        self._version += 1

    def sync_version(self, version: int) -> None:
        """Restamp the counter to ``version`` — the derived-model pattern.

        For models *derived* from a source model and republished under a
        stable id (subnet crops rebuilt from a global model every round):
        the derived weights are a pure function of the source, so carrying
        the source's version lets version-keyed caches see a
        rebuilt-but-identical derivation as unchanged and a
        rebuilt-after-training one as changed.  A currently valid memoized
        cost triple is restamped along with it (restamping never changes
        structure); a stale one is explicitly invalidated so it cannot
        collide with the new stamp.
        """
        if self._cost_version == self._version:
            self._cost_version = version
        else:
            self._cost_version = -1
        self._version = version

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        for cell in self.cells:
            x = cell.forward(x, train)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        for cell in reversed(self.cells):
            dout = cell.backward(dout)
        return dout

    def loss_and_grad(self, x: np.ndarray, y: np.ndarray) -> float:
        """One forward/backward pass; gradients accumulate into the cells."""
        logits = self.forward(x, train=True)
        loss, dlogits = softmax_cross_entropy(logits, y)
        self.backward(dlogits)
        return loss

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Inference logits, evaluated in batches with train=False."""
        outs = []
        for start in range(0, len(x), batch_size):
            outs.append(self.forward(x[start : start + batch_size], train=False))
        return np.concatenate(outs, axis=0)

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> tuple[float, float]:
        """Return ``(mean_loss, accuracy)`` on a dataset."""
        logits = self.predict(x, batch_size)
        loss, _ = softmax_cross_entropy(logits, y)
        return loss, accuracy(logits, y)

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------
    def params(self) -> ParamTree:
        """Live references, keyed by ``cell_id/layer.tensor``."""
        out: ParamTree = {}
        for cell in self.cells:
            for k, v in cell.params().items():
                out[f"{cell.cell_id}/{k}"] = v
        return out

    def grads(self) -> ParamTree:
        out: ParamTree = {}
        for cell in self.cells:
            for k, v in cell.grads().items():
                out[f"{cell.cell_id}/{k}"] = v
        return out

    def state(self) -> ParamTree:
        out: ParamTree = {}
        for cell in self.cells:
            for k, v in cell.state().items():
                out[f"{cell.cell_id}/{k}"] = v
        return out

    def get_params(self) -> ParamTree:
        """Deep copies of all parameters."""
        return {k: v.copy() for k, v in self.params().items()}

    def get_state(self) -> ParamTree:
        return {k: v.copy() for k, v in self.state().items()}

    def set_params(self, tree: ParamTree, strict: bool = True) -> None:
        """Write values into the live parameter arrays (shape-checked)."""
        live = self.params()
        if strict and live.keys() != tree.keys():
            missing = set(live) ^ set(tree)
            raise KeyError(f"param keys mismatch: {sorted(missing)[:8]}")
        for k, v in tree.items():
            if k not in live:
                if strict:
                    raise KeyError(k)
                continue
            if live[k].shape != v.shape:
                raise ValueError(f"shape mismatch for {k}: {live[k].shape} vs {v.shape}")
            live[k][...] = v
        self.bump_version()

    def set_state(self, tree: ParamTree, strict: bool = True) -> None:
        live = self.state()
        for k, v in tree.items():
            if k not in live:
                if strict:
                    raise KeyError(k)
                continue
            live[k][...] = v
        self.bump_version()

    def zero_grad(self) -> None:
        for cell in self.cells:
            cell.zero_grad()

    def num_params(self) -> int:
        if self._cost_version != self._version:
            self._recompute_costs()
        return self._num_params_cache

    def nbytes(self) -> int:
        """Serialized size of the parameters in bytes."""
        if self._cost_version != self._version:
            self._recompute_costs()
        return self._nbytes_cache

    # ------------------------------------------------------------------
    # cost accounting
    # ------------------------------------------------------------------
    def _recompute_costs(self) -> None:
        """Walk the chain once; validate it and cache macs/params/nbytes.

        ``_cost_version`` is stamped last so a validation failure mid-walk
        leaves the cache invalid (the next call re-raises instead of
        serving a half-computed total).
        """
        total = 0
        shape = self.input_shape
        for cell in self.cells:
            m, shape = cell.macs(shape)
            total += m
        if shape != (self.num_classes,):
            raise ValueError(
                f"model emits shape {shape}, expected ({self.num_classes},)"
            )
        num_params = 0
        nbytes = 0
        for v in self.params().values():
            num_params += v.size
            nbytes += v.nbytes
        self._macs_cache = total
        self._num_params_cache = int(num_params)
        self._nbytes_cache = int(nbytes)
        self._cost_version = self._version

    def macs(self) -> int:
        """Per-sample forward multiply-accumulate operations (memoized)."""
        if self._cost_version != self._version:
            self._recompute_costs()
        return self._macs_cache

    def train_macs_per_sample(self) -> int:
        """Training cost per sample: forward + backward ~= 3x forward MACs."""
        return 3 * self.macs()

    def cell_macs(self) -> dict[str, int]:
        """Per-cell forward MACs (used by activeness diagnostics)."""
        out: dict[str, int] = {}
        shape = self.input_shape
        for cell in self.cells:
            m, shape = cell.macs(shape)
            out[cell.cell_id] = m
        return out

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def cell_index(self, cell_id: str) -> int:
        for i, cell in enumerate(self.cells):
            if cell.cell_id == cell_id:
                return i
        raise KeyError(f"no cell {cell_id} in model {self.model_id}")

    def get_cell(self, cell_id: str) -> Cell:
        return self.cells[self.cell_index(cell_id)]

    def transformable_cells(self) -> list[Cell]:
        return [c for c in self.cells if c.transformable]

    def clone(self, birth_round: int | None = None, keep_id: bool = False) -> "CellModel":
        """Deep copy; lineage (cell ids) is always preserved.

        ``keep_id=True`` keeps the same ``model_id`` — used for per-client
        training workspaces, which are *replicas* of a server model rather
        than new family members — and carries the :attr:`version` counter,
        so a replica answers version-keyed cache lookups exactly like its
        original.  The default mints a fresh id (the transformation path)
        and starts a fresh version history.
        """
        new = CellModel(
            [c.clone() for c in self.cells],
            self.input_shape,
            self.num_classes,
            model_id=self.model_id if keep_id else None,
            parent_id=self.parent_id if keep_id else self.model_id,
            birth_round=self.birth_round if birth_round is None else birth_round,
        )
        new.history = list(self.history)
        if keep_id:
            # The constructor already validated and cached costs for this
            # structure; restamp them under the carried version.
            new._version = self._version
            new._cost_version = self._version
        return new

    def widen_cell(
        self,
        cell_id: str,
        factor: float,
        rng: np.random.Generator,
        round_idx: int = 0,
        noise: float = 0.0,
        mode: str = "dup",
    ) -> None:
        """Function-preserving widen of one cell (Net2WiderNet).

        Output-widening cells propagate a :class:`WidenMapping` expansion to
        the next cell in the chain; interface-stable cells widen internally.

        ``mode="dup"`` follows the paper's stated rule (random column
        duplication with multiplicity division); ``noise`` then perturbs the
        duplicates to break their gradient symmetry.  ``mode="zero"`` grows
        fresh random channels behind zeroed outgoing weights — also exactly
        function-preserving, with immediately-trainable new capacity (see
        :class:`repro.nn.cells.WidenMapping`).
        """
        idx = self.cell_index(cell_id)
        cell = self.cells[idx]
        if not cell.transformable:
            raise ValueError(f"cell {cell_id} is not transformable")
        before = cell.num_params()
        if cell.can_widen_output:
            if idx + 1 >= len(self.cells):
                raise ValueError("cannot widen the terminal cell's output")
            wm = cell.widen_output(factor, rng, noise, mode)
            self.cells[idx + 1].expand_input(wm, rng, noise)
        elif cell.can_widen_internal:
            cell.widen_internal(factor, rng, noise, mode)
        else:
            raise ValueError(f"cell {cell_id} supports no widening")
        cell.widen_count += 1
        cell.last_op = "widen"
        self.history.append(
            TransformRecord(
                "widen",
                cell_id,
                round_idx,
                {"factor": factor, "params_before": before, "params_after": cell.num_params()},
            )
        )
        self.bump_version()
        self.macs()  # re-validate the chain (recomputes: the version moved)

    def deepen_after(
        self, cell_id: str, rng: np.random.Generator, count: int = 1, round_idx: int = 0
    ) -> list[str]:
        """Insert ``count`` identity cells right after ``cell_id`` (Net2DeeperNet)."""
        idx = self.cell_index(cell_id)
        anchor = self.cells[idx]
        inserted: list[str] = []
        for offset in range(count):
            new_cell = self._make_identity_like(anchor, rng)
            self.cells.insert(idx + 1 + offset, new_cell)
            inserted.append(new_cell.cell_id)
        anchor.last_op = "deepen"
        self.history.append(
            TransformRecord("deepen", cell_id, round_idx, {"inserted": inserted})
        )
        self.bump_version()
        self.macs()
        return inserted

    @staticmethod
    def _make_identity_like(anchor: Cell, rng: np.random.Generator) -> Cell:
        """Build an identity cell compatible with ``anchor``'s output."""
        if anchor.out_interface == "chw":
            if isinstance(anchor, ResidualConvCell):
                return ResidualConvCell.identity(anchor.out_dim)
            return ConvCell.identity(anchor.out_dim)
        if anchor.out_interface == "flat":
            return DenseCell.identity(anchor.out_dim)
        if anchor.out_interface == "tokens":
            if not isinstance(anchor, ViTCell):
                raise ValueError("token identity cells require a ViT anchor")
            return ViTCell.identity(anchor.out_dim, anchor.attn.heads, anchor.hidden_dim, rng)
        raise ValueError(f"unknown interface {anchor.out_interface}")

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable architecture table."""
        lines = [
            f"model {self.model_id} (parent={self.parent_id}) "
            f"macs={self.macs():,} params={self.num_params():,}"
        ]
        shape = self.input_shape
        for cell in self.cells:
            m, shape = cell.macs(shape)
            flags = "" if cell.transformable else " [fixed]"
            lines.append(
                f"  {cell.cell_id:<8} {cell.kind:<10} out={shape} "
                f"params={cell.num_params():>8,} macs={m:>12,}{flags}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CellModel {self.model_id} cells={len(self.cells)} macs={self.macs():,}>"
