"""Trainable layers with explicit forward/backward passes.

Every layer follows the same contract:

* ``forward(x, train)`` returns the activation and caches what backward needs.
* ``backward(dout)`` returns ``dx`` and accumulates parameter gradients into
  the layer's ``.g_*`` buffers (read them via :meth:`Layer.grads`).
* ``params()``/``grads()`` expose live references keyed by short names
  (``"w"``, ``"b"``, ``"gamma"``, ``"beta"``); cells add prefixes.
* ``macs(input_shape)`` returns ``(per_sample_macs, output_shape)`` so models
  can chain cost accounting without running data through the network.

Layers are single-use per step: call ``forward`` then ``backward``.

Hot layers (Conv2d, BatchNorm2d, ReLU) own a private
:class:`~repro.nn.compute.Workspace`: their large intermediates are pooled
buffers sized on first use and reused across steps (bit-identical to fresh
allocations).  Because a layer's buffers are overwritten by its next
``forward``, layer outputs are only valid until that layer runs again —
which the single-use-per-step contract already guarantees.  Cloned cells
start with fresh workspaces (``Workspace.__deepcopy__``), so parallel
backends never share scratch memory.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .compute import Workspace, compute_dtype
from .init import he_normal, zeros

__all__ = [
    "Layer",
    "Dense",
    "Conv2d",
    "BatchNorm2d",
    "LayerNorm",
    "ReLU",
    "GELU",
    "AvgPool2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
]


class Layer:
    """Base class; subclasses override the marked methods."""

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> dict[str, np.ndarray]:
        """Live references to trainable tensors (may be empty)."""
        return {}

    def grads(self) -> dict[str, np.ndarray]:
        """Gradients matching :meth:`params` keys."""
        return {}

    def state(self) -> dict[str, np.ndarray]:
        """Non-trainable buffers (e.g. BatchNorm running stats)."""
        return {}

    def zero_grad(self) -> None:
        for g in self.grads().values():
            g[...] = 0.0

    def macs(self, input_shape: tuple[int, ...]) -> tuple[int, tuple[int, ...]]:
        """Per-sample multiply-accumulate count and the output shape."""
        return 0, input_shape


class Dense(Layer):
    """Affine map ``y = x @ w + b`` with ``w`` of shape ``(in, out)``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        self.w = he_normal(rng, (in_features, out_features), fan_in=in_features)
        self.b = zeros((out_features,))
        self.g_w = np.zeros_like(self.w)
        self.g_b = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    @property
    def in_features(self) -> int:
        return self.w.shape[0]

    @property
    def out_features(self) -> int:
        return self.w.shape[1]

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        self._x = x
        return x @ self.w + self.b

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward before forward"
        self.g_w += self._x.T @ dout
        self.g_b += dout.sum(axis=0)
        return dout @ self.w.T

    def params(self) -> dict[str, np.ndarray]:
        return {"w": self.w, "b": self.b}

    def grads(self) -> dict[str, np.ndarray]:
        return {"w": self.g_w, "b": self.g_b}

    def resize_grads(self) -> None:
        """Re-allocate gradient buffers after a structural transform."""
        self.g_w = np.zeros_like(self.w)
        self.g_b = np.zeros_like(self.b)

    def macs(self, input_shape: tuple[int, ...]) -> tuple[int, tuple[int, ...]]:
        (features,) = input_shape
        if features != self.in_features:
            raise ValueError(f"Dense expects {self.in_features} features, got {features}")
        return self.in_features * self.out_features, (self.out_features,)


class Conv2d(Layer):
    """2-D convolution over NCHW input, weight shape ``(F, C, kh, kw)``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        rng: np.random.Generator,
        stride: int = 1,
        pad: int | None = None,
        bias: bool = True,
    ):
        self.stride = stride
        self.pad = kernel // 2 if pad is None else pad
        self.kernel = kernel
        fan_in = in_channels * kernel * kernel
        self.w = he_normal(rng, (out_channels, in_channels, kernel, kernel), fan_in)
        self.b = zeros((out_channels,)) if bias else None
        self.g_w = np.zeros_like(self.w)
        self.g_b = np.zeros_like(self.b) if bias else None
        self._cache: tuple[np.ndarray, tuple[int, int, int, int]] | None = None
        self._ws = Workspace()

    @property
    def in_channels(self) -> int:
        return self.w.shape[1]

    @property
    def out_channels(self) -> int:
        return self.w.shape[0]

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        out, cols = F.conv2d_forward(x, self.w, self.b, self.stride, self.pad, self._ws)
        self._cache = (cols, x.shape)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before forward"
        cols, x_shape = self._cache
        dx, dw, db = F.conv2d_backward(
            dout, cols, x_shape, self.w, self.stride, self.pad,
            with_bias=self.b is not None, ws=self._ws,
        )
        self.g_w += dw
        if db is not None:
            self.g_b += db
        return dx

    def params(self) -> dict[str, np.ndarray]:
        p = {"w": self.w}
        if self.b is not None:
            p["b"] = self.b
        return p

    def grads(self) -> dict[str, np.ndarray]:
        g = {"w": self.g_w}
        if self.g_b is not None:
            g["b"] = self.g_b
        return g

    def resize_grads(self) -> None:
        self.g_w = np.zeros_like(self.w)
        if self.b is not None:
            self.g_b = np.zeros_like(self.b)

    def macs(self, input_shape: tuple[int, ...]) -> tuple[int, tuple[int, ...]]:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(f"Conv2d expects {self.in_channels} channels, got {c}")
        oh = F.conv_output_size(h, self.kernel, self.stride, self.pad)
        ow = F.conv_output_size(w, self.kernel, self.stride, self.pad)
        m = oh * ow * self.out_channels * self.in_channels * self.kernel * self.kernel
        return m, (self.out_channels, oh, ow)


class BatchNorm2d(Layer):
    """Per-channel batch normalization over NCHW activations."""

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5):
        dtype = compute_dtype()
        self.gamma = np.ones(channels, dtype=dtype)
        self.beta = np.zeros(channels, dtype=dtype)
        self.running_mean = np.zeros(channels, dtype=dtype)
        self.running_var = np.ones(channels, dtype=dtype)
        self.momentum = momentum
        self.eps = eps
        self.g_gamma = np.zeros_like(self.gamma)
        self.g_beta = np.zeros_like(self.beta)
        self._cache: tuple | None = None
        self._ws = Workspace()

    @property
    def channels(self) -> int:
        return self.gamma.shape[0]

    # repro: hotpath
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        ws = self._ws
        xhat = ws.get("bn_xhat", x.shape, x.dtype)
        if train:
            mean = x.mean(axis=(0, 2, 3))
            # Centered input lands straight in the xhat buffer; the
            # variance is mean((x - mean)^2) over the same pooled scratch —
            # the same reduction np.var performs internally, minus np.var's
            # two input-sized temporaries.
            np.subtract(x, mean[None, :, None, None], out=xhat)
            sq = ws.get("bn_tmp", x.shape, x.dtype)
            np.multiply(xhat, xhat, out=sq)
            var = sq.mean(axis=(0, 2, 3))
            # In place, NOT `rm = momentum * rm + ...`: rebinding to a fresh
            # array every step would invalidate the live references handed
            # out by state() (the version-tracking contract: consumers hold
            # those arrays across steps) and allocate twice per step.
            self.running_mean *= self.momentum
            self.running_mean += (1 - self.momentum) * mean
            self.running_var *= self.momentum
            self.running_var += (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
            np.subtract(x, mean[None, :, None, None], out=xhat)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat *= inv_std[None, :, None, None]
        self._cache = (xhat, inv_std, train)
        out = ws.get("bn_out", x.shape, x.dtype)
        np.multiply(self.gamma[None, :, None, None], xhat, out=out)
        out += self.beta[None, :, None, None]
        return out

    # repro: hotpath
    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before forward"
        xhat, inv_std, train = self._cache
        ws = self._ws
        tmp = ws.get("bn_tmp", dout.shape, dout.dtype)
        np.multiply(dout, xhat, out=tmp)
        self.g_gamma += tmp.sum(axis=(0, 2, 3))
        self.g_beta += dout.sum(axis=(0, 2, 3))
        dxhat = ws.get("bn_dxhat", dout.shape, dout.dtype)
        np.multiply(dout, self.gamma[None, :, None, None], out=dxhat)
        if not train:
            dxhat *= inv_std[None, :, None, None]
            return dxhat
        n = dout.shape[0] * dout.shape[2] * dout.shape[3]
        # Full batch-stat backward: dx = (1/N) inv_std (N dxhat - sum dxhat - xhat * sum(dxhat*xhat))
        sum_dxhat = dxhat.sum(axis=(0, 2, 3), keepdims=True)
        np.multiply(dxhat, xhat, out=tmp)
        sum_dxhat_xhat = tmp.sum(axis=(0, 2, 3), keepdims=True)
        np.subtract(dxhat, sum_dxhat / n, out=dxhat)
        np.multiply(xhat, sum_dxhat_xhat, out=tmp)
        tmp /= n
        dxhat -= tmp
        dxhat *= inv_std[None, :, None, None]
        return dxhat

    def params(self) -> dict[str, np.ndarray]:
        return {"gamma": self.gamma, "beta": self.beta}

    def grads(self) -> dict[str, np.ndarray]:
        return {"gamma": self.g_gamma, "beta": self.g_beta}

    def state(self) -> dict[str, np.ndarray]:
        return {"running_mean": self.running_mean, "running_var": self.running_var}

    def resize_grads(self) -> None:
        self.g_gamma = np.zeros_like(self.gamma)
        self.g_beta = np.zeros_like(self.beta)


class LayerNorm(Layer):
    """Layer normalization over the last dimension."""

    def __init__(self, features: int, eps: float = 1e-5):
        dtype = compute_dtype()
        self.gamma = np.ones(features, dtype=dtype)
        self.beta = np.zeros(features, dtype=dtype)
        self.eps = eps
        self.g_gamma = np.zeros_like(self.gamma)
        self.g_beta = np.zeros_like(self.beta)
        self._cache: tuple | None = None

    @property
    def features(self) -> int:
        return self.gamma.shape[0]

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean) * inv_std
        self._cache = (xhat, inv_std)
        return self.gamma * xhat + self.beta

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before forward"
        xhat, inv_std = self._cache
        axes = tuple(range(dout.ndim - 1))
        self.g_gamma += (dout * xhat).sum(axis=axes)
        self.g_beta += dout.sum(axis=axes)
        dxhat = dout * self.gamma
        n = xhat.shape[-1]
        dx = (
            dxhat
            - dxhat.mean(axis=-1, keepdims=True)
            - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
        ) * inv_std
        return dx

    def params(self) -> dict[str, np.ndarray]:
        return {"gamma": self.gamma, "beta": self.beta}

    def grads(self) -> dict[str, np.ndarray]:
        return {"gamma": self.g_gamma, "beta": self.g_beta}

    def resize_grads(self) -> None:
        self.g_gamma = np.zeros_like(self.gamma)
        self.g_beta = np.zeros_like(self.beta)


class ReLU(Layer):
    """Elementwise max(x, 0)."""

    def __init__(self) -> None:
        self._x: np.ndarray | None = None
        self._ws = Workspace()

    # repro: hotpath
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        self._x = x
        return F.relu(x, self._ws)

    # repro: hotpath
    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._x is not None
        return F.relu_grad(self._x, dout, self._ws)


class GELU(Layer):
    """Elementwise GELU (tanh approximation)."""

    def __init__(self) -> None:
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        self._x = x
        return F.gelu(x)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._x is not None
        return F.gelu_grad(self._x, dout)


class _Pool2d(Layer):
    """Common plumbing for non-overlapping 2-D pooling (kernel == stride)."""

    def __init__(self, kernel: int = 2):
        self.kernel = kernel
        self._cache: tuple | None = None

    def _split(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel
        if h % k or w % k:
            raise ValueError(f"pooling kernel {k} must divide spatial dims {(h, w)}")
        return x.reshape(n, c, h // k, k, w // k, k)

    def macs(self, input_shape: tuple[int, ...]) -> tuple[int, tuple[int, ...]]:
        c, h, w = input_shape
        k = self.kernel
        return 0, (c, h // k, w // k)


class AvgPool2d(_Pool2d):
    """Non-overlapping average pooling."""

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        self._cache = (x.shape,)
        return self._split(x).mean(axis=(3, 5))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        (x_shape,) = self._cache
        k = self.kernel
        d = np.repeat(np.repeat(dout, k, axis=2), k, axis=3) / (k * k)
        return d.reshape(x_shape)


class MaxPool2d(_Pool2d):
    """Non-overlapping max pooling."""

    def __init__(self, kernel: int = 2):
        super().__init__(kernel)
        self._ws = Workspace()

    # repro: hotpath
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        split = self._split(x)
        n, c, oh, k, ow, _ = split.shape
        # Window-major copy into a pooled buffer: assigning through the
        # 6-D view writes the transposed data straight into contiguous
        # memory (the old transpose().reshape() materialized the same copy
        # as a fresh allocation every call).
        flat = self._ws.get("mp_flat", (n, c, oh, ow, k * k), x.dtype)
        flat.reshape(n, c, oh, ow, k, k)[...] = split.transpose(0, 1, 2, 4, 3, 5)
        idx = self._ws.get("mp_idx", (n, c, oh, ow), np.dtype(np.intp))
        flat.argmax(axis=-1, out=idx)
        self._cache = (x.shape, idx)
        return np.take_along_axis(flat, idx[..., None], axis=-1)[..., 0]

    # repro: hotpath
    def backward(self, dout: np.ndarray) -> np.ndarray:
        x_shape, idx = self._cache
        n, c, h, w = x_shape
        k = self.kernel
        oh, ow = h // k, w // k
        dflat = self._ws.get("mp_dflat", (n, c, oh, ow, k * k), dout.dtype)
        dflat[...] = 0.0
        np.put_along_axis(dflat, idx[..., None], dout[..., None], axis=-1)
        dx = self._ws.get("mp_dx", x_shape, dout.dtype)
        dx.reshape(n, c, oh, k, ow, k)[...] = dflat.reshape(
            n, c, oh, ow, k, k
        ).transpose(0, 1, 2, 4, 3, 5)
        return dx


class GlobalAvgPool2d(Layer):
    """Collapse NCHW activations to NC by spatial averaging."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None
        self._ws = Workspace()

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    # repro: hotpath
    def backward(self, dout: np.ndarray) -> np.ndarray:
        n, c, h, w = self._shape
        dx = self._ws.get("gap_dx", (n, c, h, w), dout.dtype)
        np.divide(np.broadcast_to(dout[:, :, None, None], (n, c, h, w)), h * w, out=dx)
        return dx

    def macs(self, input_shape: tuple[int, ...]) -> tuple[int, tuple[int, ...]]:
        c, h, w = input_shape
        return 0, (c,)


class Flatten(Layer):
    """Reshape any trailing dims into a feature vector."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        return dout.reshape(self._shape)

    def macs(self, input_shape: tuple[int, ...]) -> tuple[int, tuple[int, ...]]:
        return 0, (int(np.prod(input_shape)),)


class Dropout(Layer):
    """Inverted dropout; identity when evaluating."""

    def __init__(self, rate: float, rng: np.random.Generator):
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if not train or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dout
        return dout * self._mask
