"""Loss functions.

Losses return ``(value, dlogits)`` so training code can immediately start the
backward pass.  Values are means over the batch, matching the convention used
by the FL cost accounting (per-sample losses aggregate across clients by
sample-count weighting).
"""

from __future__ import annotations

import numpy as np

from .functional import log_softmax, softmax

__all__ = ["softmax_cross_entropy", "accuracy"]


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray, label_smoothing: float = 0.0
) -> tuple[float, np.ndarray]:
    """Mean softmax cross-entropy and its gradient w.r.t. the logits.

    Parameters
    ----------
    logits:
        ``(N, K)`` unnormalized scores.
    labels:
        ``(N,)`` integer class labels.
    label_smoothing:
        Mass spread uniformly over the other classes.
    """
    n, k = logits.shape
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} does not match logits {logits.shape}")
    if np.any(labels < 0) or np.any(labels >= k):
        raise ValueError("labels out of range for logits")
    logp = log_softmax(logits, axis=-1)
    if label_smoothing > 0.0:
        smooth = label_smoothing / (k - 1) if k > 1 else 0.0
        target = np.full((n, k), smooth)
        target[np.arange(n), labels] = 1.0 - label_smoothing
    else:
        target = np.zeros((n, k))
        target[np.arange(n), labels] = 1.0
    loss = float(-(target * logp).sum() / n)
    dlogits = (softmax(logits, axis=-1) - target) / n
    return loss, dlogits


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy."""
    if len(labels) == 0:
        return 0.0
    return float((logits.argmax(axis=-1) == labels).mean())
