"""Loss functions.

Losses return ``(value, dlogits)`` so training code can immediately start the
backward pass.  Values are means over the batch, matching the convention used
by the FL cost accounting (per-sample losses aggregate across clients by
sample-count weighting).

:func:`softmax_cross_entropy` runs on pooled scratch buffers (one
:class:`~repro.nn.compute.Workspace` per thread, so parallel backends never
share scratch): at a steady batch shape the loss allocates nothing per step.
The pooled path performs exactly the arithmetic of the naive expression —
``z - log(exp(z).sum())``, ``(softmax - target) / n`` — so it is
bit-identical to the pre-pooling implementation.  The returned ``dlogits``
is freshly allocated (callers may hold it across later loss calls); only
the internal intermediates are pooled.
"""

from __future__ import annotations

import threading

import numpy as np

from .compute import Workspace

__all__ = ["softmax_cross_entropy", "accuracy"]

_tls = threading.local()


def _ws() -> Workspace:
    ws = getattr(_tls, "ws", None)
    if ws is None:
        ws = _tls.ws = Workspace()
    return ws


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray, label_smoothing: float = 0.0
) -> tuple[float, np.ndarray]:
    """Mean softmax cross-entropy and its gradient w.r.t. the logits.

    Parameters
    ----------
    logits:
        ``(N, K)`` unnormalized scores.
    labels:
        ``(N,)`` integer class labels.
    label_smoothing:
        Mass spread uniformly over the other classes.
    """
    n, k = logits.shape
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} does not match logits {logits.shape}")
    if np.any(labels < 0) or np.any(labels >= k):
        raise ValueError("labels out of range for logits")
    ws = _ws()
    rows = np.arange(n)
    # log_softmax: z = x - max; logp = z - log(exp(z).sum())
    z = ws.get("xent_z", logits.shape, logits.dtype)
    np.subtract(logits, logits.max(axis=-1, keepdims=True), out=z)
    e = ws.get("xent_e", logits.shape, logits.dtype)
    np.exp(z, out=e)
    esum = e.sum(axis=-1, keepdims=True)
    logp = z  # z is dead after this point; reuse it in place
    np.subtract(z, np.log(esum), out=logp)
    # The target distribution follows the logits dtype (float32 runs stay
    # float32 end to end).
    target = ws.get("xent_target", logits.shape, logits.dtype)
    if label_smoothing > 0.0:
        smooth = label_smoothing / (k - 1) if k > 1 else 0.0
        target[...] = smooth
        target[rows, labels] = 1.0 - label_smoothing
    else:
        target[...] = 0.0
        target[rows, labels] = 1.0
    tmp = ws.get("xent_tmp", logits.shape, logits.dtype)
    np.multiply(target, logp, out=tmp)
    loss = float(-tmp.sum() / n)
    # softmax = exp(z) / exp(z).sum(); dlogits = (softmax - target) / n.
    # dlogits is the one fresh allocation per call: callers may hold it
    # across later loss calls (numeric-gradient checks do), so it must not
    # alias the pooled scratch.
    dlogits = np.divide(e, esum)
    np.subtract(dlogits, target, out=dlogits)
    dlogits /= n
    return loss, dlogits


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy."""
    if len(labels) == 0:
        return 0.0
    return float((logits.argmax(axis=-1) == labels).mean())
