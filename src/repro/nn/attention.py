"""Transformer building blocks: patch embedding and multi-head self-attention.

These power the ViT cells used by the paper's Table 4 experiment (FedTrans on
ViT models).  Shapes follow the ``(N, T, D)`` token convention.
"""

from __future__ import annotations

import numpy as np

from .functional import softmax
from .init import xavier_uniform, zeros
from .layers import Layer

__all__ = ["PatchEmbed", "MultiHeadSelfAttention"]


class PatchEmbed(Layer):
    """Split an NCHW image into flat patches and project them to tokens.

    Adds a learnable positional embedding.  ``H`` and ``W`` must be divisible
    by ``patch``.
    """

    def __init__(
        self,
        in_channels: int,
        image_size: int,
        patch: int,
        dim: int,
        rng: np.random.Generator,
    ):
        if image_size % patch != 0:
            raise ValueError(f"patch {patch} must divide image size {image_size}")
        self.patch = patch
        self.in_channels = in_channels
        self.image_size = image_size
        self.tokens = (image_size // patch) ** 2
        in_features = in_channels * patch * patch
        self.w = xavier_uniform(rng, (in_features, dim), in_features, dim)
        self.b = zeros((dim,))
        self.pos = rng.normal(0.0, 0.02, size=(self.tokens, dim)).astype(
            self.w.dtype, copy=False
        )
        self.g_w = np.zeros_like(self.w)
        self.g_b = np.zeros_like(self.b)
        self.g_pos = np.zeros_like(self.pos)
        self._cache: np.ndarray | None = None

    @property
    def dim(self) -> int:
        return self.w.shape[1]

    def _to_patches(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        p = self.patch
        x = x.reshape(n, c, h // p, p, w // p, p)
        # (N, gh, gw, C, p, p) -> (N, T, C*p*p)
        return x.transpose(0, 2, 4, 1, 3, 5).reshape(n, self.tokens, c * p * p)

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        patches = self._to_patches(x)
        self._cache = patches
        self._x_shape = x.shape
        return patches @ self.w + self.b + self.pos

    def backward(self, dout: np.ndarray) -> np.ndarray:
        patches = self._cache
        self.g_pos += dout.sum(axis=0)
        self.g_b += dout.sum(axis=(0, 1))
        self.g_w += np.einsum("ntf,ntd->fd", patches, dout)
        dpatches = dout @ self.w.T
        n, c, h, w = self._x_shape
        p = self.patch
        d = dpatches.reshape(n, h // p, w // p, c, p, p).transpose(0, 3, 1, 4, 2, 5)
        return d.reshape(n, c, h, w)

    def params(self) -> dict[str, np.ndarray]:
        return {"w": self.w, "b": self.b, "pos": self.pos}

    def grads(self) -> dict[str, np.ndarray]:
        return {"w": self.g_w, "b": self.g_b, "pos": self.g_pos}

    def macs(self, input_shape: tuple[int, ...]) -> tuple[int, tuple[int, ...]]:
        c, h, w = input_shape
        m = self.tokens * self.w.shape[0] * self.w.shape[1]
        return m, (self.tokens, self.dim)


class MultiHeadSelfAttention(Layer):
    """Standard multi-head self-attention over ``(N, T, D)`` tokens."""

    def __init__(self, dim: int, heads: int, rng: np.random.Generator):
        if dim % heads != 0:
            raise ValueError(f"heads {heads} must divide dim {dim}")
        self.heads = heads
        self.w_qkv = xavier_uniform(rng, (dim, 3 * dim), dim, 3 * dim)
        self.b_qkv = zeros((3 * dim,))
        self.w_out = xavier_uniform(rng, (dim, dim), dim, dim)
        self.b_out = zeros((dim,))
        self.g_w_qkv = np.zeros_like(self.w_qkv)
        self.g_b_qkv = np.zeros_like(self.b_qkv)
        self.g_w_out = np.zeros_like(self.w_out)
        self.g_b_out = np.zeros_like(self.b_out)
        self._cache: tuple | None = None

    @property
    def dim(self) -> int:
        return self.w_out.shape[0]

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        n, t, d = x.shape
        h = self.heads
        hd = d // h
        qkv = x @ self.w_qkv + self.b_qkv  # (N, T, 3D)
        q, k, v = np.split(qkv, 3, axis=-1)
        # (N, h, T, hd)
        q = q.reshape(n, t, h, hd).transpose(0, 2, 1, 3)
        k = k.reshape(n, t, h, hd).transpose(0, 2, 1, 3)
        v = v.reshape(n, t, h, hd).transpose(0, 2, 1, 3)
        # A Python float so NEP-50 weak promotion keeps float32 scores float32.
        scale = float(1.0 / np.sqrt(hd))
        scores = np.matmul(q, k.transpose(0, 1, 3, 2)) * scale  # (N, h, T, T)
        probs = softmax(scores, axis=-1)
        ctx = np.matmul(probs, v)  # (N, h, T, hd)
        ctx_flat = ctx.transpose(0, 2, 1, 3).reshape(n, t, d)
        out = ctx_flat @ self.w_out + self.b_out
        self._cache = (x, q, k, v, probs, ctx_flat, scale)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        x, q, k, v, probs, ctx_flat, scale = self._cache
        n, t, d = x.shape
        h = self.heads
        hd = d // h
        self.g_b_out += dout.sum(axis=(0, 1))
        self.g_w_out += np.einsum("ntd,nte->de", ctx_flat, dout)
        dctx_flat = dout @ self.w_out.T
        dctx = dctx_flat.reshape(n, t, h, hd).transpose(0, 2, 1, 3)
        dprobs = np.matmul(dctx, v.transpose(0, 1, 3, 2))
        dv = np.matmul(probs.transpose(0, 1, 3, 2), dctx)
        # softmax backward
        dscores = probs * (dprobs - (dprobs * probs).sum(axis=-1, keepdims=True))
        dscores *= scale
        dq = np.matmul(dscores, k)
        dk = np.matmul(dscores.transpose(0, 1, 3, 2), q)
        dqkv = np.concatenate(
            [
                dq.transpose(0, 2, 1, 3).reshape(n, t, d),
                dk.transpose(0, 2, 1, 3).reshape(n, t, d),
                dv.transpose(0, 2, 1, 3).reshape(n, t, d),
            ],
            axis=-1,
        )
        self.g_b_qkv += dqkv.sum(axis=(0, 1))
        self.g_w_qkv += np.einsum("ntd,nte->de", x, dqkv)
        return dqkv @ self.w_qkv.T

    def params(self) -> dict[str, np.ndarray]:
        return {
            "w_qkv": self.w_qkv,
            "b_qkv": self.b_qkv,
            "w_out": self.w_out,
            "b_out": self.b_out,
        }

    def grads(self) -> dict[str, np.ndarray]:
        return {
            "w_qkv": self.g_w_qkv,
            "b_qkv": self.g_b_qkv,
            "w_out": self.g_w_out,
            "b_out": self.g_b_out,
        }

    def macs(self, input_shape: tuple[int, ...]) -> tuple[int, tuple[int, ...]]:
        t, d = input_shape
        qkv = t * d * 3 * d
        attn = 2 * self.heads * t * t * (d // self.heads)
        out = t * d * d
        return qkv + attn + out, (t, d)
