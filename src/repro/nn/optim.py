"""Optimizers.

Two kinds live here:

* **Local optimizers** (:class:`SGD`) drive the client-side steps of local
  training.  They operate directly on a model's live parameter tree.
* **Server optimizers** (:class:`ServerSGD`, :class:`Yogi`) consume the
  *pseudo-gradient* (global weights minus aggregated client weights) and
  produce the next global weights.  ``Yogi`` implements the adaptive server
  update used by the paper's FedYogi baseline (Reddi et al., "Adaptive
  Federated Optimization").
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..stateful import Stateful, check_schema, schema_tag
from .param_ops import ParamTree, tree_copy

__all__ = ["SGD", "ServerSGD", "Yogi"]


class SGD(Stateful):
    """Stochastic gradient descent with optional momentum and weight decay.

    Operates in place on the live ``params`` references a model exposes, so a
    single optimizer instance follows the model through structural
    transformations as long as :meth:`reset` is called after a transform (the
    momentum buffers are keyed by parameter name and validated by shape).

    The step is allocation-free at steady state: per-parameter scratch and
    velocity buffers are allocated once (keyed by name, revalidated by
    shape) and every update lands through in-place ufuncs whose operand
    order reproduces the naive ``p -= lr * (momentum * v + g + wd * p)``
    expression bit for bit.
    """

    def __init__(self, lr: float, momentum: float = 0.0, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[str, np.ndarray] = {}
        self._scratch: dict[str, np.ndarray] = {}

    def reset(self) -> None:
        """Drop momentum state (call after a structural transform)."""
        self._velocity.clear()
        self._scratch.clear()

    def step(self, params: Mapping[str, np.ndarray], grads: Mapping[str, np.ndarray]) -> None:
        """Apply one update in place."""
        for name, p in params.items():
            g = grads[name]
            s = self._scratch.get(name)
            if s is None or s.shape != p.shape or s.dtype != p.dtype:
                s = self._scratch[name] = np.empty_like(p)
            if self.weight_decay:
                # wd * p + g == g + wd * p (addition commutes exactly)
                np.multiply(p, self.weight_decay, out=s)
                s += g
                g = s
            if self.momentum:
                v = self._velocity.get(name)
                if v is None or v.shape != p.shape:
                    v = np.zeros_like(p)
                    self._velocity[name] = v
                v *= self.momentum
                v += g
                g = v
            np.multiply(g, self.lr, out=s)  # aliasing-safe when g is s
            p -= s

    schema = schema_tag("SGD")

    def state_dict(self) -> dict:
        # Velocity is trajectory; scratch is write-before-read per step and
        # is rebuilt lazily, so it is omitted (Stateful payload convention).
        return {
            "schema": self.schema,
            "velocity": {k: v.copy() for k, v in self._velocity.items()},
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        self._velocity = {k: np.array(v) for k, v in payload["velocity"].items()}
        self._scratch = {}


class ServerSGD(Stateful):
    """Plain server update: ``w <- w - lr * pseudo_grad`` (lr=1 is FedAvg)."""

    def __init__(self, lr: float = 1.0):
        self.lr = lr

    def step(self, weights: ParamTree, pseudo_grad: Mapping[str, np.ndarray]) -> ParamTree:
        return {k: weights[k] - self.lr * pseudo_grad[k] for k in weights}

    schema = schema_tag("ServerSGD")

    def state_dict(self) -> dict:
        return {"schema": self.schema}  # stateless: lr is configuration

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)


class Yogi(Stateful):
    """Yogi adaptive server optimizer (the FedYogi server step).

    ``v`` grows only where the squared pseudo-gradient exceeds it, which keeps
    the effective step size from collapsing under heterogeneous client
    updates — the property FedYogi relies on in non-IID FL.
    """

    def __init__(
        self,
        lr: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.99,
        tau: float = 1e-3,
    ):
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.tau = tau
        self._m: ParamTree | None = None
        self._v: ParamTree | None = None

    def reset(self) -> None:
        self._m = None
        self._v = None

    def step(self, weights: ParamTree, pseudo_grad: Mapping[str, np.ndarray]) -> ParamTree:
        if self._m is None or self._m.keys() != weights.keys() or any(
            self._m[k].shape != weights[k].shape for k in weights
        ):
            self._m = {k: np.zeros_like(v) for k, v in weights.items()}
            self._v = {k: np.full_like(v, self.tau**2) for k, v in weights.items()}
        out: ParamTree = {}
        for k, w in weights.items():
            g = pseudo_grad[k]
            self._m[k] = self.beta1 * self._m[k] + (1 - self.beta1) * g
            g2 = g * g
            self._v[k] = self._v[k] - (1 - self.beta2) * g2 * np.sign(self._v[k] - g2)
            out[k] = w - self.lr * self._m[k] / (np.sqrt(self._v[k]) + self.tau)
        return out

    def snapshot(self) -> tuple[ParamTree | None, ParamTree | None]:
        """Copies of the optimizer state, for tests and checkpointing."""
        m = tree_copy(self._m) if self._m is not None else None
        v = tree_copy(self._v) if self._v is not None else None
        return m, v

    schema = schema_tag("Yogi")

    def state_dict(self) -> dict:
        m, v = self.snapshot()
        return {"schema": self.schema, "m": m, "v": v}

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        self._m = (
            {k: np.array(a) for k, a in payload["m"].items()}
            if payload["m"] is not None
            else None
        )
        self._v = (
            {k: np.array(a) for k, a in payload["v"].items()}
            if payload["v"] is not None
            else None
        )
