"""Command-line entry point: run experiments without writing code.

Examples::

    python -m repro run --dataset femnist_like --method fedtrans
    python -m repro run --dataset cifar10_like --method heterofl --rounds 100
    python -m repro --mode async --buffer-k 5 --deadline 120  # run is implied
    python -m repro --dtype float32 --executor thread  # fast low-precision run
    python -m repro suite --dataset femnist_like --out results.json
    python -m repro profiles

``run`` executes one (method, dataset) workload at the profile selected by
``--profile`` / ``REPRO_PROFILE`` and prints the summary row; ``suite``
runs the paper's full comparison protocol (FedTrans first, then the
baselines on its largest model).  ``--save-log`` exports the full training
log as JSON; ``--save-models`` checkpoints the final model suite.

Durable runs: ``--checkpoint-dir RUNS --checkpoint-every 10`` writes
crash-consistent round checkpoints into a config-hashed run directory, and
adding ``--resume`` picks a killed run back up bit-identically::

    python -m repro run --checkpoint-dir runs --checkpoint-every 10 --resume
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .bench import active_profile, ascii_table, build_dataset, run_method, run_workload_suite
from .bench.profiles import DATASETS, PROFILES
from .bench.workloads import METHODS
from .fl.executor import EXECUTOR_BACKENDS
from .fl.scheduling import PACING_POLICIES, SELECTOR_POLICIES, STRAGGLER_POLICIES
from .fl.export import log_to_dict, save_log, save_recovery, save_transport
from .fl.metrics import recovery_summary
from .nn.compute import COMPUTE_DTYPES, set_compute_dtype
from .nn.serialization import save_model

__all__ = ["main"]


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", choices=DATASETS, default="femnist_like")
    p.add_argument("--profile", choices=sorted(PROFILES), default=None,
                   help="scale profile (default: $REPRO_PROFILE or 'tiny')")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--rounds", type=int, default=None, help="override round budget")
    p.add_argument("--save-log", type=Path, default=None, help="write run log JSON here")
    p.add_argument("--executor", choices=EXECUTOR_BACKENDS, default="serial",
                   help="round-execution backend (all bit-identical per seed)")
    p.add_argument("--dtype", choices=COMPUTE_DTYPES, default=None,
                   help="compute dtype of the whole run (models, data, "
                        "aggregation).  float64 (default) is the "
                        "bit-identity dtype golden fixtures are stated at; "
                        "float32 halves memory traffic and roughly doubles "
                        "BLAS throughput at lower precision")
    p.add_argument("--workers", type=int, default=None,
                   help="worker count for thread/process backends (default: cpu count)")
    p.add_argument("--mode", choices=("sync", "async"), default="sync",
                   help="round engine: synchronous barrier or buffered-async "
                        "(FedBuff-style; bit-reproducible per seed)")
    p.add_argument("--buffer-k", type=int, default=None,
                   help="async: aggregate on this many arrivals "
                        "(default: clients_per_round // 2)")
    p.add_argument("--deadline", type=float, default=None,
                   help="async: drop arrivals slower than this many simulated "
                        "seconds after dispatch (wasted work is metered)")
    p.add_argument("--staleness-discount", type=float, default=None,
                   help="async: per-missed-aggregation discount base in (0, 1] "
                        "(default 0.5; 1 disables)")
    p.add_argument("--no-eval-cache", dest="eval_cache", action="store_false",
                   default=True,
                   help="disable the incremental evaluation cache (bit-identical "
                        "either way; on by default)")
    p.add_argument("--sanitize", action="store_true", default=False,
                   help="enable the runtime sanitizer (repro.analysis.sanitize; "
                        "equivalent to REPRO_SANITIZE=1): freeze published "
                        "models read-only during rounds and cross-check model "
                        "versions against content fingerprints.  Requires the "
                        "eval cache; incompatible with --no-eval-cache")
    p.add_argument("--selector", choices=SELECTOR_POLICIES, default="uniform",
                   help="client selection policy (uniform reproduces the "
                        "pre-subsystem behavior bit-for-bit)")
    p.add_argument("--pacing", choices=PACING_POLICIES, default="static",
                   help="async aggregation pacing: static buffer_k/deadline, "
                        "adaptive buffer_k (arrival-rate scaled), or per-device-"
                        "class deadline quantiles")
    p.add_argument("--straggler", choices=STRAGGLER_POLICIES, default="drop",
                   help="async straggler policy: drop late arrivals, or downsize "
                        "predicted-late clients to a smaller compatible model")
    p.add_argument("--availability-trace", type=str, default=None, metavar="SPEC",
                   help="availability churn model for --selector availability: "
                        "'bernoulli:<rate>', 'diurnal:base=0.8,amplitude=0.5,"
                        "period=24,class_phase=0.25' (per-device-class diurnal "
                        "waves), or 'trace:<path.json>' (periodic per-class "
                        "rate table)")
    p.add_argument("--evict-after", type=int, default=None,
                   help="evict a client's utility state after this many rounds "
                        "of inactivity (FedTrans strategy dict and the fleet "
                        "store's Oort utility column; default: keep forever)")
    p.add_argument("--faults", type=str, default=None, metavar="SPEC",
                   help="deterministic fault-injection spec, e.g. "
                        "'crash=0.05,exc=0.1,poison=0.2' (kinds: crash, exc, "
                        "shm, hang, poison, plus hang_factor).  Chaos runs "
                        "are replayable bit-for-bit at the same seed; "
                        "crash/shm recovery is trajectory-neutral")
    p.add_argument("--retries", type=int, default=None,
                   help="max attempts per work item (default 3 when --faults "
                        "is set; without --faults this enables the retry "
                        "layer for real failures)")
    p.add_argument("--quarantine", action="store_true", default=False,
                   help="validate every update before aggregation (NaN/Inf "
                        "scan + norm-outlier gate); rejects go to the "
                        "quarantine ledger.  Bit-identical on clean runs")
    p.add_argument("--quarantine-norm-mult", type=float, default=None,
                   help="norm-outlier threshold as a multiple of the running "
                        "mean update norm (default 8; 0 disables the norm "
                        "gate, keeping the NaN/Inf scan)")
    p.add_argument("--save-recovery", type=Path, default=None,
                   help="write the fault-recovery ledger JSON here (separate "
                        "from --save-log: the run export stays byte-identical "
                        "to a fault-free run's, recovery telemetry does not)")
    p.add_argument("--compress", type=str, default=None, metavar="SPEC",
                   help="transport codec spec, e.g. "
                        "'update:int8+topk0.01,snapshot:rle'.  update codecs: "
                        "rle (lossless), int8/bf16 quantization and topk<rate> "
                        "sparsification (lossy, with server-side error "
                        "feedback); snapshot:rle delta-encodes shared-memory "
                        "publishes (lossless).  Lossy specs change the "
                        "trajectory and must be declared here (CONTRACTS.md "
                        "I11)")
    p.add_argument("--wire-time", action="store_true", default=False,
                   help="re-price each client's upload leg at its compressed "
                        "size, so compression shortens simulated round time "
                        "(requires --compress with an update section)")
    p.add_argument("--save-transport", type=Path, default=None,
                   help="write the transport-cost ledger JSON here (raw vs "
                        "on-wire bytes per round for both the update and "
                        "snapshot-publish directions; separate from "
                        "--save-log because publish telemetry is barred from "
                        "the run export by CONTRACTS.md I10)")
    p.add_argument("--checkpoint-dir", type=Path, default=None,
                   help="run-registry root for durable runs: each run "
                        "checkpoints into a subdirectory keyed by its config "
                        "hash (repro.fl.registry)")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   help="write a crash-consistent checkpoint every N rounds "
                        "(requires --checkpoint-dir)")
    p.add_argument("--resume", action="store_true", default=False,
                   help="resume from the last good checkpoint in the run's "
                        "registry directory (requires --checkpoint-dir; a "
                        "fresh start when none exists — safe to use "
                        "unconditionally in restart loops)")


def _coordinator_overrides(args) -> dict:
    over = {}
    if args.executor != "serial":
        over["executor"] = args.executor
    if args.dtype is not None:
        over["compute_dtype"] = args.dtype
    if not args.eval_cache:
        over["eval_cache"] = False
    if args.sanitize:
        if not args.eval_cache:
            # Surface the conflict as a CLI usage error instead of letting
            # CoordinatorConfig raise mid-run with a config-level message.
            raise SystemExit(
                "--sanitize requires the eval cache (the missed-bump "
                "cross-check rides the cache-read path); drop "
                "--no-eval-cache to use it"
            )
        over["sanitize"] = True
    if args.workers is not None:
        if args.executor == "serial":
            raise SystemExit(
                "--workers only applies to parallel backends; "
                "pass --executor thread or --executor process"
            )
        over["max_workers"] = args.workers
    if args.selector != "uniform":
        over["selector"] = args.selector
    if args.availability_trace is not None:
        if args.selector != "availability":
            raise SystemExit(
                "--availability-trace requires --selector availability"
            )
        over["availability_trace"] = args.availability_trace
    if args.evict_after is not None:
        over["evict_after"] = args.evict_after
    if args.mode != "sync":
        over["mode"] = args.mode
        if args.buffer_k is not None:
            over["buffer_k"] = args.buffer_k
        if args.deadline is not None:
            over["deadline_s"] = args.deadline
        if args.staleness_discount is not None:
            over["staleness_discount"] = args.staleness_discount
        if args.pacing != "static":
            over["pacing"] = args.pacing
        if args.straggler != "drop":
            over["straggler"] = args.straggler
    elif any(v is not None for v in (args.buffer_k, args.deadline, args.staleness_discount)):
        raise SystemExit(
            "--buffer-k/--deadline/--staleness-discount require --mode async"
        )
    elif args.pacing != "static" or args.straggler != "drop":
        raise SystemExit("--pacing/--straggler require --mode async")
    if args.faults is not None:
        over["faults"] = args.faults
    if args.retries is not None:
        over["retries"] = args.retries
    if args.quarantine:
        over["quarantine"] = True
    if args.quarantine_norm_mult is not None:
        if not args.quarantine:
            raise SystemExit("--quarantine-norm-mult requires --quarantine")
        over["quarantine_norm_mult"] = args.quarantine_norm_mult
    if args.compress is not None:
        over["compress"] = args.compress
    if args.wire_time:
        if args.compress is None:
            raise SystemExit("--wire-time requires --compress with an update section")
        over["wire_time"] = True
    if args.checkpoint_every is not None or args.resume:
        if args.checkpoint_dir is None:
            raise SystemExit("--checkpoint-every/--resume require --checkpoint-dir")
    if args.checkpoint_dir is not None:
        over["checkpoint_dir"] = str(args.checkpoint_dir)
        if args.checkpoint_every is not None:
            over["checkpoint_every"] = args.checkpoint_every
        if args.resume:
            over["resume"] = True
    return over


def _fedtrans_overrides(args) -> dict:
    over = {}
    if args.evict_after is not None:
        over["evict_after"] = args.evict_after
    if args.dtype is not None:
        over["compute_dtype"] = args.dtype
    return over


def _profile(args):
    profile = active_profile(args.dataset, override=args.profile)
    if args.rounds is not None:
        profile = profile.with_(rounds=args.rounds)
    return profile


def _apply_dtype(args) -> None:
    # Must land before the dataset and initial models are built — the
    # whole run (data, weights, transforms, workers) uses one dtype.
    set_compute_dtype(args.dtype)


def cmd_run(args) -> int:
    profile = _profile(args)
    _apply_dtype(args)
    dataset = build_dataset(profile, seed=args.seed)
    coord_over = _coordinator_overrides(args)
    ft_over = _fedtrans_overrides(args)
    if args.method in ("heterofl", "splitmix", "fluid"):
        # These need FedTrans's largest model (the Appendix A.1 protocol).
        ft = run_method(
            "fedtrans", dataset, profile, seed=args.seed,
            fedtrans_overrides=ft_over, coordinator_overrides=coord_over,
        )
        largest = max(ft.strategy.models().values(), key=lambda m: m.macs())
        res = run_method(
            args.method, dataset, profile, seed=args.seed, global_model=largest,
            coordinator_overrides=coord_over,
        )
    else:
        res = run_method(
            args.method, dataset, profile, seed=args.seed,
            fedtrans_overrides=ft_over, coordinator_overrides=coord_over,
        )
    print(ascii_table([res.summary.row()], f"{args.method} on {args.dataset}"))
    if args.save_log:
        save_log(res.log, args.save_log)
        print(f"log written to {args.save_log}")
    if args.save_recovery:
        save_recovery(res.log, args.save_recovery)
        print(f"recovery ledger written to {args.save_recovery}")
    if args.save_transport:
        save_transport(res.log, args.save_transport)
        print(f"transport ledger written to {args.save_transport}")
    rec = recovery_summary(res.log)
    if any(rec.values()):
        print(
            "recovery: "
            + ", ".join(f"{k}={v}" for k, v in rec.items() if k != "fault_records")
        )
    if args.save_models:
        args.save_models.mkdir(parents=True, exist_ok=True)
        for mid, model in res.strategy.models().items():
            save_model(model, args.save_models / f"{mid}.npz")
        print(f"{len(res.strategy.models())} model(s) written to {args.save_models}/")
    return 0


def cmd_suite(args) -> int:
    profile = _profile(args)
    _apply_dtype(args)
    dataset = build_dataset(profile, seed=args.seed)
    results = run_workload_suite(
        dataset, profile, seed=args.seed,
        fedtrans_overrides=_fedtrans_overrides(args),
        coordinator_overrides=_coordinator_overrides(args),
    )
    rows = [r.summary.row() for r in results.values()]
    print(ascii_table(rows, f"suite on {args.dataset} ({profile.name} profile)"))
    if args.out:
        payload = {m: log_to_dict(r.log) for m, r in results.items()}
        with open(args.out, "w") as f:
            json.dump(payload, f, indent=1)
        print(f"full logs written to {args.out}")
    return 0


def cmd_profiles(args) -> int:
    rows = []
    for pname, table in PROFILES.items():
        for ds, p in table.items():
            rows.append(
                {
                    "profile": pname,
                    "dataset": ds,
                    "clients_scale": p.scale,
                    "rounds": p.rounds,
                    "clients/round": p.clients_per_round,
                    "model": p.model_kind,
                    "beta": p.beta,
                    "gamma": p.gamma,
                    "delta": p.delta,
                }
            )
    print(ascii_table(rows, "available scale profiles"))
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Option-first invocations (`python -m repro --mode async ...`) default
    # to the `run` subcommand, so the common path needs no subcommand.
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        argv = ["run", *argv]
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one method on one dataset")
    _add_common(p_run)
    p_run.add_argument("--method", choices=METHODS, default="fedtrans")
    p_run.add_argument("--save-models", type=Path, default=None,
                       help="directory for final model checkpoints")
    p_run.set_defaults(fn=cmd_run)

    p_suite = sub.add_parser("suite", help="run the full comparison protocol")
    _add_common(p_suite)
    p_suite.add_argument("--out", type=Path, default=None, help="write all logs JSON")
    p_suite.set_defaults(fn=cmd_suite)

    p_prof = sub.add_parser("profiles", help="list scale profiles")
    p_prof.set_defaults(fn=cmd_profiles)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
