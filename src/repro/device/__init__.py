"""Client-device capability traces and latency modelling."""

from .latency import (
    client_round_time,
    inference_latency,
    round_completion_time,
    training_latency,
    transfer_latency,
)
from .traces import DeviceTrace, calibrate_capacities, disparity, sample_device_traces

__all__ = [
    "client_round_time",
    "inference_latency",
    "round_completion_time",
    "training_latency",
    "transfer_latency",
    "DeviceTrace",
    "calibrate_capacities",
    "disparity",
    "sample_device_traces",
]
