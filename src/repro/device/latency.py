"""Latency model over device traces.

Replaces the paper's AI-Benchmark smartphone measurements (Fig. 1a) and
FedScale round-time simulation (Table 6) with a first-order cost model:

* inference latency  = model forward MACs / device compute speed
* training latency   = train MACs x samples / speed
* transfer latency   = model bytes / bandwidth (download + upload)
* round completion   = max over participants of download + train + upload
  (synchronous FL: the round waits for the slowest participant).

The buffered-asynchronous engine (:mod:`repro.fl.async_engine`) consumes
the same per-client times but never takes the max: each client's
download + train + upload schedules a completion event on a simulated
clock, and an aggregation step's ``round_time`` is the clock advance
needed to buffer its first ``buffer_k`` arrivals.
"""

from __future__ import annotations

import numpy as np

from .traces import DeviceTrace

__all__ = [
    "inference_latency",
    "training_latency",
    "transfer_latency",
    "client_round_time",
    "round_completion_time",
]


def inference_latency(model_macs: int, device: DeviceTrace) -> float:
    """Seconds for one forward pass of a ``model_macs``-MAC model."""
    return model_macs / device.compute_speed


def training_latency(
    train_macs_per_sample: int, num_samples: int, device: DeviceTrace
) -> float:
    """Seconds of local computation for ``num_samples`` training samples."""
    return train_macs_per_sample * num_samples / device.compute_speed


def transfer_latency(model_bytes: int, device: DeviceTrace) -> float:
    """Seconds for one direction of a model transfer."""
    return model_bytes / device.bandwidth


def client_round_time(
    device: DeviceTrace,
    model_macs: int,
    model_bytes: int,
    batch_size: int,
    local_steps: int,
) -> float:
    """Download + local training + upload time for one participant."""
    samples = batch_size * local_steps
    train_macs = 3 * model_macs  # forward + backward
    return (
        transfer_latency(model_bytes, device)
        + training_latency(train_macs, samples, device)
        + transfer_latency(model_bytes, device)
    )


def round_completion_time(per_client_times: list[float]) -> float:
    """Synchronous-FL round time: the straggler defines the round."""
    if not per_client_times:
        raise ValueError("round with no participants")
    return float(np.max(per_client_times))
