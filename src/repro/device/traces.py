"""Synthetic client-device capability traces.

The paper samples client hardware from FedScale's traces of ~500k real
mobile devices, reporting a >29x disparity between the most and least
capable participants (§5.1).  Offline we substitute log-normal samplers
whose spread is *calibrated* so that the p99/p1 compute-capability ratio
meets a target disparity, preserving the property the experiments rely on:
a wide, heavy-tailed capability distribution that forces multiple model
complexities.

A trace carries three quantities per device:

* ``compute_speed`` — sustainable training throughput in MACs/second;
* ``bandwidth`` — network throughput in bytes/second (down == up for
  simplicity; FL round time is dominated by compute at our scales);
* ``capacity_macs`` — the *model-complexity budget*: the largest
  per-sample forward MACs the device tolerates (the paper's "hardware
  capability T_c" used for compatible-model filtering).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DeviceTrace", "sample_device_traces", "calibrate_capacities", "disparity"]


@dataclass(frozen=True)
class DeviceTrace:
    """Capabilities of one client device."""

    device_id: int
    compute_speed: float  # MACs / second
    bandwidth: float  # bytes / second
    capacity_macs: float  # max per-sample model MACs this device accepts

    def scaled(self, capacity_macs: float) -> "DeviceTrace":
        """Copy with a recalibrated capacity budget."""
        return DeviceTrace(self.device_id, self.compute_speed, self.bandwidth, capacity_macs)


def disparity(values: np.ndarray, lo: float = 1.0, hi: float = 99.0) -> float:
    """p_hi / p_lo percentile ratio — the paper's 'disparity exceeds 29x'."""
    a, b = np.percentile(values, [lo, hi])
    if a <= 0:
        raise ValueError("disparity undefined for non-positive lower percentile")
    return float(b / a)


def sample_device_traces(
    num_devices: int,
    rng: np.random.Generator,
    median_speed: float = 2e9,
    speed_sigma: float = 0.75,
    median_bandwidth: float = 1.25e6,
    bandwidth_sigma: float = 0.6,
    target_disparity: float = 29.0,
) -> list[DeviceTrace]:
    """Sample a heterogeneous device fleet.

    ``speed_sigma`` is adjusted upward if the sampled fleet's p99/p1
    compute disparity falls short of ``target_disparity``, so every fleet
    used in experiments satisfies the paper's stated heterogeneity.
    Capacity budgets default to `speed * 50ms` (an interactive-latency
    budget); workloads recalibrate them onto the model family in use via
    :func:`calibrate_capacities`.
    """
    if num_devices < 2:
        raise ValueError("a fleet needs at least two devices")
    sigma = speed_sigma
    for _ in range(16):
        speeds = rng.lognormal(np.log(median_speed), sigma, num_devices)
        if num_devices < 64 or disparity(speeds) >= target_disparity:
            break
        sigma *= 1.15
    bandwidths = rng.lognormal(np.log(median_bandwidth), bandwidth_sigma, num_devices)
    return [
        DeviceTrace(i, float(s), float(b), capacity_macs=float(s) * 0.05)
        for i, (s, b) in enumerate(zip(speeds, bandwidths))
    ]


def calibrate_capacities(
    traces: list[DeviceTrace],
    min_macs: float,
    max_macs: float,
) -> list[DeviceTrace]:
    """Map the fleet's capacity budgets onto a model family's MAC range.

    The paper sets "the initial model's complexity [to] the client with the
    lowest computation and communication capacities, while the maximum
    model's complexity aligns with the client possessing the highest
    resource capacities."  This helper realizes that: device capability
    quantiles are mapped log-linearly onto ``[min_macs, max_macs]``, so the
    weakest device can run exactly the initial model and the strongest can
    run the largest.
    """
    if min_macs <= 0 or max_macs < min_macs:
        raise ValueError("need 0 < min_macs <= max_macs")
    speeds = np.array([t.compute_speed for t in traces])
    order = speeds.argsort()
    ranks = np.empty(len(traces))
    ranks[order] = np.linspace(0.0, 1.0, len(traces))
    caps = np.exp(np.log(min_macs) + ranks * (np.log(max_macs) - np.log(min_macs)))
    return [t.scaled(float(c)) for t, c in zip(traces, caps)]
