"""End-to-end experiment runners: one (method, dataset, profile) per call.

``run_workload_suite`` reproduces the paper's comparison protocol
(Appendix A.1): FedTrans runs first from the initial model; the *largest
model FedTrans produced* is then handed to HeteroFL / SplitMix / FLuID as
their input large model, and single-model baselines get FedTrans's
middle-sized model.  All methods share the same fleet, data, and trainer
settings so cost/accuracy comparisons are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines import (
    FLuIDStrategy,
    HeteroFLStrategy,
    SplitMixStrategy,
    fedavg,
    fedprox_trainer_config,
    fedyogi,
)
from ..core import FedTransConfig, FedTransStrategy
from ..data import DATASET_BUILDERS, FederatedDataset
from ..device import calibrate_capacities, sample_device_traces
from ..fl import (
    Coordinator,
    CoordinatorConfig,
    FLClient,
    LocalTrainerConfig,
    RunSummary,
    Strategy,
    TrainingLog,
    summarize,
)
from ..nn import CellModel, mlp, small_cnn, small_resnet, vit_tiny
from .profiles import ScaleProfile

__all__ = [
    "WorkloadResult",
    "build_dataset",
    "build_fleet",
    "make_initial_model",
    "fedtrans_config",
    "coordinator_config",
    "run_method",
    "run_workload_suite",
]

METHODS = ("fedtrans", "fluid", "heterofl", "splitmix", "fedavg", "fedprox", "fedyogi")


@dataclass
class WorkloadResult:
    """One finished run plus everything reporting needs."""

    method: str
    dataset: str
    log: TrainingLog
    summary: RunSummary
    strategy: Strategy


def build_dataset(profile: ScaleProfile, seed: int = 0, **overrides) -> FederatedDataset:
    """Instantiate the profile's dataset."""
    builder = DATASET_BUILDERS[profile.dataset]
    kwargs = dict(scale=profile.scale, seed=seed, image=profile.image)
    kwargs.update(overrides)
    return builder(**kwargs)


def make_initial_model(
    dataset: FederatedDataset, profile: ScaleProfile, rng: np.random.Generator
) -> CellModel:
    """The initial (smallest) model per the profile's substrate family."""
    kind = profile.model_kind
    if kind == "mlp":
        return mlp(
            dataset.input_shape, dataset.num_classes, rng,
            width=profile.init_width, depth=profile.init_depth,
        )
    if kind == "cnn":
        return small_cnn(
            dataset.input_shape, dataset.num_classes, rng,
            width=profile.init_width, depth=profile.init_depth,
        )
    if kind == "resnet":
        return small_resnet(
            dataset.input_shape, dataset.num_classes, rng,
            width=profile.init_width, blocks=profile.init_depth,
        )
    if kind == "vit":
        image_size = dataset.input_shape[-1]
        return vit_tiny(
            dataset.input_shape,
            dataset.num_classes,
            rng,
            dim=profile.init_width,
            heads=2,
            mlp_hidden=2 * profile.init_width,
            patch=max(2, image_size // 4),
        )
    raise ValueError(f"unknown model kind {kind!r}")


def build_fleet(
    dataset: FederatedDataset,
    init_macs: int,
    profile: ScaleProfile,
    seed: int = 0,
) -> tuple[list[FLClient], float]:
    """Clients with calibrated capacities: weakest fits the initial model."""
    rng = np.random.default_rng(seed + 7)
    traces = sample_device_traces(dataset.num_clients, rng)
    traces = calibrate_capacities(traces, init_macs, init_macs * profile.capacity_span)
    clients = [FLClient(c.client_id, c, t) for c, t in zip(dataset.clients, traces)]
    return clients, max(t.capacity_macs for t in traces)


def fedtrans_config(profile: ScaleProfile, **overrides) -> FedTransConfig:
    """FedTrans config scaled to the profile's round budget."""
    base = FedTransConfig(
        gamma=profile.gamma,
        delta=profile.delta,
        beta=profile.beta,
        max_models=profile.max_models,
    )
    return base.scaled(**overrides) if overrides else base


def coordinator_config(profile: ScaleProfile, seed: int = 0, **overrides) -> CoordinatorConfig:
    trainer = LocalTrainerConfig(
        batch_size=profile.batch_size,
        local_steps=profile.local_steps,
        lr=profile.lr,
    )
    kwargs = dict(
        rounds=profile.rounds,
        clients_per_round=profile.clients_per_round,
        trainer=trainer,
        eval_every=profile.eval_every,
        seed=seed,
    )
    kwargs.update(overrides)
    return CoordinatorConfig(**kwargs)


def run_method(
    method: str,
    dataset: FederatedDataset,
    profile: ScaleProfile,
    seed: int = 0,
    global_model: CellModel | None = None,
    middle_model: CellModel | None = None,
    fedtrans_overrides: dict | None = None,
    coordinator_overrides: dict | None = None,
) -> WorkloadResult:
    """Run one method on one dataset.

    ``global_model`` (required by heterofl/splitmix/fluid) is the large
    model spanning the complexity range — per Appendix A.1, FedTrans's
    largest transformed model.  ``middle_model`` feeds the single-model
    baselines (FedTrans's middle-sized model); if omitted they use the
    initial model.
    """
    rng = np.random.default_rng(seed)
    init = make_initial_model(dataset, profile, rng)
    clients, max_cap = build_fleet(dataset, init.macs(), profile, seed)
    coord_over = dict(coordinator_overrides or {})

    if method == "fedtrans":
        cfg = fedtrans_config(profile, **(fedtrans_overrides or {}))
        strategy: Strategy = FedTransStrategy(init, cfg, max_capacity_macs=max_cap)
        # The codec lives in the coordinator; a spec on FedTransConfig is
        # a convenience that flows through unless the caller already set
        # one at the coordinator level (the more specific knob wins).
        if cfg.compress is not None:
            coord_over.setdefault("compress", cfg.compress)
    elif method == "heterofl":
        strategy = HeteroFLStrategy(_require_global(global_model))
    elif method == "splitmix":
        strategy = SplitMixStrategy(_require_global(global_model), k=4, seed=seed)
    elif method == "fluid":
        strategy = FLuIDStrategy(_require_global(global_model))
    elif method == "fedavg":
        strategy = fedavg((middle_model or init).clone(keep_id=True))
    elif method == "fedyogi":
        strategy = fedyogi((middle_model or init).clone(keep_id=True))
    elif method == "fedprox":
        strategy = fedavg((middle_model or init).clone(keep_id=True))
        strategy.name = "fedprox"
        base_trainer = coordinator_config(profile, seed).trainer
        coord_over["trainer"] = fedprox_trainer_config(base_trainer, mu=0.01)
    else:
        raise ValueError(f"unknown method {method!r}; choose from {METHODS}")

    coord = Coordinator(strategy, clients, coordinator_config(profile, seed, **coord_over))
    log = coord.run()
    return WorkloadResult(method, dataset.name, log, summarize(log), strategy)


def _require_global(model: CellModel | None) -> CellModel:
    if model is None:
        raise ValueError(
            "heterofl/splitmix/fluid need the large global model "
            "(FedTrans's largest transformed model, per Appendix A.1)"
        )
    return model.clone()


def run_workload_suite(
    dataset: FederatedDataset,
    profile: ScaleProfile,
    methods: tuple[str, ...] = ("fedtrans", "fluid", "heterofl", "splitmix"),
    seed: int = 0,
    fedtrans_overrides: dict | None = None,
    coordinator_overrides: dict | None = None,
) -> dict[str, WorkloadResult]:
    """The paper's comparison protocol: FedTrans first, baselines on its models.

    ``coordinator_overrides`` (e.g. ``{"executor": "process"}``) applies to
    every method's coordinator, so the whole suite runs on one backend;
    ``fedtrans_overrides`` (e.g. ``{"evict_after": 50}``) applies to the
    leading FedTrans run only.
    """
    results: dict[str, WorkloadResult] = {}
    ft = run_method(
        "fedtrans", dataset, profile, seed,
        fedtrans_overrides=fedtrans_overrides,
        coordinator_overrides=coordinator_overrides,
    )
    results["fedtrans"] = ft
    suite = ft.strategy.models()
    by_macs = sorted(suite.values(), key=lambda m: m.macs())
    largest = by_macs[-1]
    middle = by_macs[len(by_macs) // 2]
    for method in methods:
        if method == "fedtrans":
            continue
        results[method] = run_method(
            method,
            dataset,
            profile,
            seed,
            global_model=largest,
            middle_model=middle,
            coordinator_overrides=coordinator_overrides,
        )
    return results
