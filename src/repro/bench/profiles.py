"""Scale profiles: how far each experiment is shrunk from paper scale.

The paper trained on 15 V100s for hundreds/thousands of rounds over up to
14k clients; this reproduction runs on one CPU.  A profile fixes, per
dataset, the client-count scale, round budget, model substrate, and the
FedTrans schedule parameters (γ/δ shrink with the round budget so the DoC
still has room to trigger).

Select with ``REPRO_PROFILE`` ∈ {``tiny``, ``default``, ``paper``}:

* ``tiny`` — CI/benchmark gate; flat-feature (MLP-cell) substrates, tens of
  clients, finishes in seconds per run.
* ``default`` — the numbers recorded in EXPERIMENTS.md; image substrates
  where the paper uses CNNs, ~10x tiny's client counts.
* ``paper`` — structure-faithful (full client counts, paper Table 7
  schedule); provided for completeness, expect hours on CPU.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

__all__ = ["ScaleProfile", "PROFILES", "active_profile", "DATASETS"]

DATASETS = ("cifar10_like", "femnist_like", "speech_like", "openimage_like")


@dataclass(frozen=True)
class ScaleProfile:
    """Every scale knob for one (profile, dataset) pair."""

    name: str
    dataset: str
    scale: float  # client-count multiplier vs. the paper
    image: bool  # image (conv/resnet substrate) or flat (MLP cells)
    rounds: int
    clients_per_round: int
    batch_size: int
    local_steps: int
    lr: float
    eval_every: int
    # FedTrans schedule (γ/δ/β shrink with the round budget)
    gamma: int
    delta: int
    beta: float
    # model family + capacity ladder
    model_kind: str  # 'mlp' | 'cnn' | 'resnet' | 'vit'
    init_width: int
    init_depth: int  # transformable cells in the initial model
    capacity_span: float  # max/min client capacity ratio (paper: >= 29x)
    max_models: int

    def with_(self, **kw) -> "ScaleProfile":
        return replace(self, **kw)


def _tiny(dataset: str, **kw) -> ScaleProfile:
    base = dict(
        name="tiny",
        dataset=dataset,
        scale=0.012,
        image=False,
        rounds=240,
        clients_per_round=8,
        batch_size=10,
        local_steps=10,
        lr=0.15,
        eval_every=20,
        gamma=3,
        delta=4,
        beta=0.05,
        model_kind="mlp",
        init_width=16,
        init_depth=2,
        capacity_span=16.0,
        max_models=5,
    )
    base.update(kw)
    return ScaleProfile(**base)


def _default(dataset: str, **kw) -> ScaleProfile:
    base = dict(
        name="default",
        dataset=dataset,
        scale=0.03,
        image=False,
        rounds=120,
        clients_per_round=10,
        batch_size=10,
        local_steps=15,
        lr=0.08,
        eval_every=10,
        gamma=4,
        delta=6,
        beta=0.01,
        model_kind="mlp",
        init_width=16,
        init_depth=2,
        capacity_span=32.0,
        max_models=5,
    )
    base.update(kw)
    return ScaleProfile(**base)


def _paper(dataset: str, **kw) -> ScaleProfile:
    base = dict(
        name="paper",
        dataset=dataset,
        scale=1.0,
        image=True,
        rounds=2000,
        clients_per_round=100,
        batch_size=10,
        local_steps=20,
        lr=0.05,
        eval_every=25,
        gamma=10,
        delta=30,
        beta=0.003,
        model_kind="cnn",
        init_width=16,
        init_depth=2,
        capacity_span=29.0,
        max_models=8,
    )
    base.update(kw)
    return ScaleProfile(**base)


PROFILES: dict[str, dict[str, ScaleProfile]] = {
    "tiny": {
        "cifar10_like": _tiny("cifar10_like", scale=0.4),  # paper: 100 clients
        "femnist_like": _tiny("femnist_like"),
        "speech_like": _tiny("speech_like", scale=0.016),
        "openimage_like": _tiny("openimage_like", scale=0.003),
    },
    "default": {
        "cifar10_like": _default("cifar10_like", scale=0.6, image=True, model_kind="cnn", init_width=6),
        "femnist_like": _default("femnist_like"),
        "speech_like": _default("speech_like", image=True, model_kind="resnet", init_width=6),
        "openimage_like": _default("openimage_like", scale=0.006, image=True, model_kind="resnet", init_width=6),
    },
    "paper": {
        "cifar10_like": _paper("cifar10_like", rounds=1000, clients_per_round=10, delta=20),
        "femnist_like": _paper("femnist_like", delta=30),
        "speech_like": _paper("speech_like", rounds=1500, delta=100, model_kind="resnet"),
        "openimage_like": _paper("openimage_like", delta=50, model_kind="resnet"),
    },
}


def active_profile(dataset: str, override: str | None = None) -> ScaleProfile:
    """The profile selected by ``REPRO_PROFILE`` (default ``tiny``)."""
    name = override or os.environ.get("REPRO_PROFILE", "tiny")
    if name not in PROFILES:
        raise ValueError(f"unknown profile {name!r}; choose from {sorted(PROFILES)}")
    if dataset not in PROFILES[name]:
        raise ValueError(f"unknown dataset {dataset!r}; choose from {DATASETS}")
    return PROFILES[name][dataset]
