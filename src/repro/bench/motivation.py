"""Motivation experiments: Fig. 1a, Fig. 1b, and Fig. 2.

These reproduce §2's empirical arguments:

* **Fig. 1a** — three models of increasing complexity across a ~700-device
  fleet produce wide, overlapping inference-latency distributions, so no
  single architecture suits every device.
* **Fig. 1b** — across a 7-level model-complexity ladder, no single level
  achieves the best accuracy for the majority of clients.
* **Fig. 2** — existing solutions either cost orders of magnitude more than
  single-model training or fall far short of the centralized ("cloud")
  accuracy bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines import train_centralized
from ..data import FederatedDataset
from ..device import inference_latency, sample_device_traces
from ..nn import complexity_ladder, reference_device_models
from .profiles import ScaleProfile
from .workloads import run_workload_suite

__all__ = [
    "fig1a_latency_distributions",
    "fig1b_best_model_histogram",
    "Fig2Point",
    "fig2_landscape",
]


def fig1a_latency_distributions(
    num_devices: int = 700, seed: int = 0
) -> dict[str, np.ndarray]:
    """Per-model inference-latency samples across a heterogeneous fleet."""
    rng = np.random.default_rng(seed)
    traces = sample_device_traces(num_devices, rng)
    models = reference_device_models((3, 8, 8), 10, rng)
    out: dict[str, np.ndarray] = {}
    for name, model in models.items():
        macs = model.macs()
        out[name] = np.array([inference_latency(macs, t) for t in traces])
    return out


def fig1b_best_model_histogram(
    dataset: FederatedDataset,
    levels: int = 7,
    seed: int = 0,
    epochs: int = 10,
    lr: float = 0.2,
) -> tuple[np.ndarray, np.ndarray]:
    """Percent of clients whose best accuracy comes from each ladder level.

    The paper trains 7 NASBench201 models federatedly; at simulation scale
    we train the ladder centrally on pooled data (each model sees identical
    data) and evaluate per client, which isolates exactly the quantity the
    figure argues about: the client-level argmax over model complexities.
    Ties are split by the smaller model (cheaper deployment wins).

    Returns ``(percent_best_per_level, per_client_argmax)``.
    """
    rng = np.random.default_rng(seed)
    ladder = complexity_ladder(dataset.input_shape, dataset.num_classes, rng, levels=levels)
    acc = np.zeros((len(ladder), dataset.num_clients))
    for li, model in enumerate(ladder):
        train_centralized(model, dataset, epochs=epochs, batch_size=16, lr=lr, seed=seed)
        for ci, c in enumerate(dataset.clients):
            acc[li, ci] = model.evaluate(c.x_test, c.y_test)[1]
    best = acc.argmax(axis=0)
    counts = np.bincount(best, minlength=levels)
    return 100.0 * counts / dataset.num_clients, best


@dataclass(frozen=True)
class Fig2Point:
    """One (method, cost, accuracy) point of the landscape plot."""

    method: str
    cost_macs: float
    accuracy: float


def fig2_landscape(
    dataset: FederatedDataset,
    profile: ScaleProfile,
    seed: int = 0,
    cloud_epochs: int = 15,
) -> list[Fig2Point]:
    """Cost/accuracy landscape of existing solutions plus the cloud bound."""
    results = run_workload_suite(
        dataset,
        profile,
        methods=("fedtrans", "fluid", "heterofl", "splitmix", "fedavg"),
        seed=seed,
    )
    points = [
        Fig2Point(m, r.log.total_macs, r.log.final_accuracy())
        for m, r in results.items()
    ]
    # Cloud bound: centralized training of the largest FedTrans model.
    suite = results["fedtrans"].strategy.models()
    largest = max(suite.values(), key=lambda m: m.macs()).clone()
    cloud = train_centralized(
        largest, dataset, epochs=cloud_epochs, batch_size=16, lr=0.2, seed=seed
    )
    points.append(Fig2Point("cloud", cloud.total_macs, cloud.mean_client_accuracy))
    return points
