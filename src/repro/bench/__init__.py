"""Experiment harness: profiles, workload runners, ablations, reporting."""

from .ablations import (
    BREAKDOWN_VARIANTS,
    SweepPoint,
    alpha_sweep,
    beta_sweep,
    breakdown,
    degree_sweep,
    gamma_sweep,
    heterogeneity_sweep,
    l2s_comparison,
)
from .motivation import (
    Fig2Point,
    fig1a_latency_distributions,
    fig1b_best_model_histogram,
    fig2_landscape,
)
from .profiles import PROFILES, ScaleProfile, active_profile
from .reporting import ascii_table, box_stats, format_box_row, format_series
from .workloads import (
    WorkloadResult,
    build_dataset,
    build_fleet,
    make_initial_model,
    run_method,
    run_workload_suite,
)

__all__ = [
    "BREAKDOWN_VARIANTS",
    "SweepPoint",
    "alpha_sweep",
    "beta_sweep",
    "breakdown",
    "degree_sweep",
    "gamma_sweep",
    "heterogeneity_sweep",
    "l2s_comparison",
    "Fig2Point",
    "fig1a_latency_distributions",
    "fig1b_best_model_histogram",
    "fig2_landscape",
    "PROFILES",
    "ScaleProfile",
    "active_profile",
    "ascii_table",
    "box_stats",
    "format_box_row",
    "format_series",
    "WorkloadResult",
    "build_dataset",
    "build_fleet",
    "make_initial_model",
    "run_method",
    "run_workload_suite",
]
