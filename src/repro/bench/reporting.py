"""Plain-text reporting: the tables and figure-series the benches print.

Figures are emitted as aligned data series (x, y per method) rather than
graphics — the repository is headless — but every series carries exactly
the data the paper plots, so re-plotting is a one-liner for downstream
users.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

__all__ = ["ascii_table", "box_stats", "format_series", "format_box_row"]


def ascii_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render dict-rows as an aligned text table (stable column order)."""
    if not rows:
        return "(empty table)"
    cols: list[str] = []
    for row in rows:
        for k in row:
            if k not in cols:
                cols.append(k)
    rendered = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def box_stats(values: np.ndarray) -> dict[str, float]:
    """Five-number summary for one box of a box plot (Fig. 6)."""
    values = np.asarray(values, dtype=float)
    lo, q25, med, q75, hi = np.percentile(values, [0, 25, 50, 75, 100])
    return {
        "min": float(lo),
        "q25": float(q25),
        "median": float(med),
        "q75": float(q75),
        "max": float(hi),
        "mean": float(values.mean()),
    }


def format_box_row(label: str, values: np.ndarray, scale: float = 100.0) -> dict[str, object]:
    """A Fig. 6-style box-plot row in percent."""
    s = box_stats(values)
    return {
        "method": label,
        "min%": round(s["min"] * scale, 1),
        "q25%": round(s["q25"] * scale, 1),
        "median%": round(s["median"] * scale, 1),
        "q75%": round(s["q75"] * scale, 1),
        "max%": round(s["max"] * scale, 1),
        "mean%": round(s["mean"] * scale, 1),
    }


def format_series(
    label: str, xs: Sequence[float], ys: Sequence[float], x_name: str = "x", y_name: str = "y"
) -> str:
    """One figure series as aligned text: ``label: (x, y) ...``."""
    pairs = "  ".join(f"({_fmt(float(x))}, {_fmt(float(y))})" for x, y in zip(xs, ys))
    return f"{label} [{x_name} -> {y_name}]: {pairs}"
