"""Parameter sweeps for the ablation studies (§5.4).

Each sweep runs FedTrans end-to-end with one knob varied, reporting the
(knob, accuracy, cost) series the corresponding figure plots:

* :func:`beta_sweep` — Fig. 10a (DoC threshold);
* :func:`gamma_sweep` — Fig. 10b (DoC window size);
* :func:`degree_sweep` — Fig. 11 (widen factor / deepen count);
* :func:`alpha_sweep` — Fig. 12 (cell-activeness threshold);
* :func:`heterogeneity_sweep` — Fig. 13 (Dirichlet h);
* :func:`breakdown` — Table 3 (component knock-outs);
* :func:`l2s_comparison` — Table 1 (large-to-small weight sharing).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data import FederatedDataset, femnist_like
from .profiles import ScaleProfile
from .workloads import build_dataset, run_method

__all__ = [
    "SweepPoint",
    "beta_sweep",
    "gamma_sweep",
    "alpha_sweep",
    "degree_sweep",
    "heterogeneity_sweep",
    "breakdown",
    "l2s_comparison",
    "BREAKDOWN_VARIANTS",
]


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sweep."""

    knob: str
    value: float
    accuracy: float
    cost_macs: float
    num_models: int


def _run_point(
    knob: str,
    value: float,
    dataset: FederatedDataset,
    profile: ScaleProfile,
    seed: int,
    overrides: dict,
) -> SweepPoint:
    res = run_method(
        "fedtrans", dataset, profile, seed=seed, fedtrans_overrides=overrides
    )
    return SweepPoint(
        knob,
        value,
        res.log.final_accuracy(),
        res.log.total_macs,
        len(res.strategy.models()),
    )


def beta_sweep(
    values: list[float], dataset: FederatedDataset, profile: ScaleProfile, seed: int = 0
) -> list[SweepPoint]:
    """Fig. 10a: larger β transforms more eagerly (more models, more cost)."""
    return [
        _run_point("beta", v, dataset, profile, seed, {"beta": v}) for v in values
    ]


def gamma_sweep(
    values: list[int], dataset: FederatedDataset, profile: ScaleProfile, seed: int = 0
) -> list[SweepPoint]:
    """Fig. 10b: larger γ makes the DoC harder to reach (fewer transforms)."""
    return [
        _run_point("gamma", v, dataset, profile, seed, {"gamma": int(v)}) for v in values
    ]


def alpha_sweep(
    values: list[float], dataset: FederatedDataset, profile: ScaleProfile, seed: int = 0
) -> list[SweepPoint]:
    """Fig. 12: larger α selects fewer cells (smaller expansions, lower cost)."""
    return [
        _run_point("alpha", v, dataset, profile, seed, {"alpha": v}) for v in values
    ]


def degree_sweep(
    widen_values: list[float],
    deepen_values: list[int],
    dataset: FederatedDataset,
    profile: ScaleProfile,
    seed: int = 0,
) -> tuple[list[SweepPoint], list[SweepPoint]]:
    """Fig. 11: robustness to the widen factor and deepen count."""
    widen = [
        _run_point("widen_factor", v, dataset, profile, seed, {"widen_factor": v})
        for v in widen_values
    ]
    deepen = [
        _run_point("deepen_cells", v, dataset, profile, seed, {"deepen_cells": int(v)})
        for v in deepen_values
    ]
    return widen, deepen


def heterogeneity_sweep(
    h_values: list[float], profile: ScaleProfile, seed: int = 0
) -> list[SweepPoint]:
    """Fig. 13: Dirichlet(h) label heterogeneity on the FEMNIST-like task."""
    points = []
    for h in h_values:
        ds = femnist_like(
            scale=profile.scale, seed=seed, image=profile.image, h=h
        )
        points.append(_run_point("h", h, ds, profile, seed, {}))
    return points


#: Table 3 rows: cumulative component knock-outs.
#: 'l' layer selection, 's' soft aggregation, 'w' warmup, 'd' decay.
BREAKDOWN_VARIANTS: dict[str, dict] = {
    "fedtrans": {},
    "fedtrans-l": {"gradient_cell_selection": False},
    "fedtrans-ls": {"gradient_cell_selection": False, "soft_aggregation": False},
    "fedtrans-lsw": {
        "gradient_cell_selection": False,
        "soft_aggregation": False,
        "warmup": False,
    },
    "fedtrans-lswd": {
        "gradient_cell_selection": False,
        "soft_aggregation": False,
        "warmup": False,
        "decay": False,
    },
}


def breakdown(
    dataset: FederatedDataset, profile: ScaleProfile, seed: int = 0
) -> dict[str, SweepPoint]:
    """Table 3: contribution of each FedTrans component."""
    out: dict[str, SweepPoint] = {}
    for name, overrides in BREAKDOWN_VARIANTS.items():
        out[name] = _run_point(name, 0.0, dataset, profile, seed, overrides)
    return out


def l2s_comparison(
    profile: ScaleProfile, dataset: FederatedDataset, seed: int = 0
) -> dict[str, SweepPoint]:
    """Table 1: weight sharing from large models to small models on/off."""
    return {
        "fedtrans": _run_point("l2s", 0.0, dataset, profile, seed, {}),
        "fedtrans(l2s)": _run_point(
            "l2s", 1.0, dataset, profile, seed, {"share_l2s": True}
        ),
    }
