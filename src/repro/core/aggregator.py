"""Model Aggregator: within-model FedAvg + cross-model soft aggregation (§4.3).

Aggregation runs in two stages each round:

1. **Within-model FedAvg** — each model's participant updates are averaged
   weighted by local sample counts (weights *and* BatchNorm statistics).
2. **Cross-model soft aggregation (Eq. 5)** — model ``j`` additionally
   absorbs the weights of earlier-born models ``i < j``, weighted by
   ``η^{t} · sim(M_i, M_j)``.  Sharing is small→large only by default: the
   paper's Table 1 shows large→small ("l2s") sharing hurts small-model
   accuracy (``share_l2s=True`` re-enables it for that experiment).  The
   decay ``η^t`` phases out cross-model noise as training converges; the
   '-d' ablation disables it.

Shape mismatches between related models are resolved per tensor by
*leading-overlap projection* (HeteroFL-style cropping): the overlapping
leading region of the source tensor is written over a copy of the
destination tensor.  Because widening always places inherited channels
first, the leading region is exactly the shared lineage.

Normalization deviates from Eq. 5's literal form — see DESIGN.md §2 and
``strict_eq5``.
"""

from __future__ import annotations

import numpy as np

from ..fl.types import ClientUpdate
from ..nn.model import CellModel
from ..nn.param_ops import ParamTree, tree_average
from .client_manager import SimilarityCache
from .config import FedTransConfig

__all__ = ["project_overlap", "ModelAggregator"]


def project_overlap(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Write ``src``'s leading-overlap region into a copy of ``dst``.

    Handles every shape relation (crop, embed, and mixed axes) in one rule:
    ``out[:o1, :o2, ...] = src[:o1, :o2, ...]`` with ``o = min(shapes)``.
    """
    if src.shape == dst.shape:
        return src.copy()
    if src.ndim != dst.ndim:
        raise ValueError(f"rank mismatch projecting {src.shape} -> {dst.shape}")
    overlap = tuple(slice(0, min(s, d)) for s, d in zip(src.shape, dst.shape))
    out = dst.copy()
    out[overlap] = src[overlap]
    return out


class ModelAggregator:
    """Implements Algorithm 1's ``UpdateWeight`` step.

    ``server_opt_factory`` optionally supplies a per-model server optimizer
    (e.g. ``lambda: Yogi()``) applied to each model's FedAvg pseudo-gradient
    — this is how "FedTrans + FedYogi" (Fig. 8) composes.  Each model gets
    its own optimizer state, created lazily at first aggregation.
    """

    def __init__(
        self,
        config: FedTransConfig,
        sim_cache: SimilarityCache,
        server_opt_factory=None,
    ):
        self.config = config
        self.sim_cache = sim_cache
        self.server_opt_factory = server_opt_factory
        self._server_opts: dict[str, object] = {}

    # ------------------------------------------------------------------
    def aggregate(
        self,
        models: dict[str, CellModel],
        birth_order: list[str],
        updates: list[ClientUpdate],
        round_idx: int,
    ) -> None:
        """Run both aggregation stages, mutating the server models in place."""
        self._within_model(models, updates)
        if self.config.soft_aggregation and len(models) > 1:
            self._across_models(models, birth_order, round_idx)

    # ------------------------------------------------------------------
    def _within_model(
        self, models: dict[str, CellModel], updates: list[ClientUpdate]
    ) -> None:
        by_model: dict[str, list[ClientUpdate]] = {}
        for u in updates:
            by_model.setdefault(u.model_id, []).append(u)
        for mid, ups in by_model.items():
            model = models[mid]
            weights = [float(u.num_samples) for u in ups]
            avg = tree_average([u.params for u in ups], weights)
            if self.server_opt_factory is None:
                model.set_params(avg)
            else:
                opt = self._server_opts.get(mid)
                if opt is None:
                    opt = self._server_opts[mid] = self.server_opt_factory()
                current = model.get_params()
                pseudo_grad = {k: current[k] - avg[k] for k in current}
                model.set_params(opt.step(current, pseudo_grad))
            states = [u.state for u in ups]
            if states and states[0]:
                model.set_state(tree_average(states, weights))

    # ------------------------------------------------------------------
    def _decay_factor(self, round_idx: int, dst: CellModel) -> float:
        """η^t for cross-model terms; 1 when the '-d' ablation disables decay."""
        if not self.config.decay:
            return 1.0
        t = round_idx - dst.birth_round if self.config.decay_by_model_age else round_idx
        return float(self.config.eta ** max(t, 0))

    def _across_models(
        self,
        models: dict[str, CellModel],
        birth_order: list[str],
        round_idx: int,
    ) -> None:
        """Eq. 5 over every model, oldest first.

        Snapshots all post-FedAvg weights first so each destination model
        aggregates from its peers' *this-round* weights rather than from
        partially soft-aggregated ones.
        """
        snapshot: dict[str, ParamTree] = {
            mid: models[mid].get_params() for mid in birth_order
        }
        for j, dst_id in enumerate(birth_order):
            dst = models[dst_id]
            if self.config.share_l2s:
                source_ids = list(birth_order)
            else:
                source_ids = birth_order[: j + 1]
            if len(source_ids) == 1:
                continue  # only itself: aggregation is the identity
            decay = self._decay_factor(round_idx, dst)
            new_params: ParamTree = {}
            dst_params = snapshot[dst_id]
            for key, dst_val in dst_params.items():
                num = np.zeros_like(dst_val)
                den = 0.0
                for src_id in source_ids:
                    src_params = snapshot[src_id]
                    if key not in src_params:
                        continue  # cell absent from the source's lineage
                    sim = self.sim_cache.get(models[src_id], dst)
                    if sim <= 0.0:
                        continue
                    w_num = sim if src_id == dst_id else decay * sim
                    w_den = sim if self.config.strict_eq5 else w_num
                    num += w_num * project_overlap(src_params[key], dst_val)
                    den += w_den
                new_params[key] = num / den if den > 0 else dst_val
            dst.set_params(new_params)
