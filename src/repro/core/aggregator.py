"""Model Aggregator: within-model FedAvg + cross-model soft aggregation (§4.3).

Aggregation runs in two stages each round:

1. **Within-model FedAvg** — each model's participant updates are averaged
   weighted by local sample counts (weights *and* BatchNorm statistics).
2. **Cross-model soft aggregation (Eq. 5)** — model ``j`` additionally
   absorbs the weights of earlier-born models ``i < j``, weighted by
   ``η^{t} · sim(M_i, M_j)``.  Sharing is small→large only by default: the
   paper's Table 1 shows large→small ("l2s") sharing hurts small-model
   accuracy (``share_l2s=True`` re-enables it for that experiment).  The
   decay ``η^t`` phases out cross-model noise as training converges; the
   '-d' ablation disables it.

Shape mismatches between related models are resolved per tensor by
*leading-overlap projection* (HeteroFL-style cropping): the overlapping
leading region of the source tensor is written over a copy of the
destination tensor.  Because widening always places inherited channels
first, the leading region is exactly the shared lineage.

Eq. 5 hot path
--------------
The inner loop is vectorized around two per-pair caches, exploiting the
same invariant :class:`~repro.core.client_manager.SimilarityCache` relies
on (a model's architecture is immutable after birth — transformations
clone into a new model id):

* similarities are looked up once per ``(src, dst)`` pair per round, not
  once per parameter key;
* each ``(src, dst)`` pair caches an *overlap plan* per shared key: either
  "same shape" (add ``w · src`` over the whole tensor) or the overlap
  slice plus the slab decomposition of its complement (add ``w · src``
  on the overlap, ``w · dst`` on the complement) — the exact element-wise
  contributions ``project_overlap`` produced, without materializing a
  destination-sized copy per (source, key);
* accumulation lands in per-``(dst, key)`` workspace buffers reused
  across rounds.

The contribution order per element is unchanged (sources in birth order),
so the vectorized path is bit-identical to the naive
``num += w * project_overlap(src, dst)`` loop.

Normalization deviates from Eq. 5's literal form — see DESIGN.md §2 and
``strict_eq5``.
"""

from __future__ import annotations

import numpy as np

from ..fl.types import ClientUpdate
from ..nn.compute import Workspace
from ..nn.model import CellModel
from ..nn.param_ops import ParamTree, tree_average
from ..stateful import Stateful, check_schema, schema_tag
from .client_manager import SimilarityCache
from .config import FedTransConfig

__all__ = ["project_overlap", "ModelAggregator"]


def project_overlap(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Write ``src``'s leading-overlap region into a copy of ``dst``.

    Handles every shape relation (crop, embed, and mixed axes) in one rule:
    ``out[:o1, :o2, ...] = src[:o1, :o2, ...]`` with ``o = min(shapes)``.
    """
    if src.shape == dst.shape:
        return src.copy()
    if src.ndim != dst.ndim:
        raise ValueError(f"rank mismatch projecting {src.shape} -> {dst.shape}")
    overlap = tuple(slice(0, min(s, d)) for s, d in zip(src.shape, dst.shape))
    out = dst.copy()
    out[overlap] = src[overlap]
    return out


def _overlap_plan(
    src_shape: tuple[int, ...], dst_shape: tuple[int, ...]
) -> tuple | None:
    """How ``src`` contributes to a ``dst``-shaped accumulator.

    ``None`` means the shapes match (whole-tensor contribution).  Otherwise
    returns ``(overlap, slabs)``: the leading-overlap slice (``w · src``
    region) and the disjoint slabs covering its complement in ``dst``
    coordinates (``w · dst`` regions).  Slab ``a`` holds the elements whose
    first out-of-overlap axis is ``a`` — together the slabs tile the
    complement exactly once.
    """
    if src_shape == dst_shape:
        return None
    if len(src_shape) != len(dst_shape):
        raise ValueError(f"rank mismatch projecting {src_shape} -> {dst_shape}")
    overlap = tuple(slice(0, min(s, d)) for s, d in zip(src_shape, dst_shape))
    slabs = []
    for axis, (o, d) in enumerate(zip(overlap, dst_shape)):
        if o.stop >= d:
            continue  # this axis is fully covered; no complement slab
        slab = list(overlap[:axis]) + [slice(o.stop, d)] + [slice(None)] * (
            len(dst_shape) - axis - 1
        )
        slabs.append(tuple(slab))
    return overlap, tuple(slabs)


class ModelAggregator(Stateful):
    """Implements Algorithm 1's ``UpdateWeight`` step.

    ``server_opt_factory`` optionally supplies a per-model server optimizer
    (e.g. ``lambda: Yogi()``) applied to each model's FedAvg pseudo-gradient
    — this is how "FedTrans + FedYogi" (Fig. 8) composes.  Each model gets
    its own optimizer state, created lazily at first aggregation.
    """

    def __init__(
        self,
        config: FedTransConfig,
        sim_cache: SimilarityCache,
        server_opt_factory=None,
    ):
        self.config = config
        self.sim_cache = sim_cache
        self.server_opt_factory = server_opt_factory
        self._server_opts: dict[str, object] = {}
        # (src_id, dst_id) -> {key: overlap plan}; valid for the life of the
        # pair because architectures are immutable after birth.
        self._plans: dict[tuple[str, str], dict[str, tuple | None]] = {}
        # Accumulator/scratch buffers reused across rounds, keyed by
        # (dst_id, key).
        self._ws = Workspace()

    # ------------------------------------------------------------------
    def aggregate(
        self,
        models: dict[str, CellModel],
        birth_order: list[str],
        updates: list[ClientUpdate],
        round_idx: int,
    ) -> None:
        """Run both aggregation stages, mutating the server models in place."""
        self._prune_caches(models)
        self._within_model(models, updates)
        if self.config.soft_aggregation and len(models) > 1:
            self._across_models(models, birth_order, round_idx)

    # ------------------------------------------------------------------
    def _within_model(
        self, models: dict[str, CellModel], updates: list[ClientUpdate]
    ) -> None:
        by_model: dict[str, list[ClientUpdate]] = {}
        for u in updates:
            by_model.setdefault(u.model_id, []).append(u)
        for mid, ups in by_model.items():
            model = models[mid]
            weights = [float(u.num_samples) for u in ups]
            avg = tree_average([u.params for u in ups], weights)
            if self.server_opt_factory is None:
                model.set_params(avg)
            else:
                opt = self._server_opts.get(mid)
                if opt is None:
                    opt = self._server_opts[mid] = self.server_opt_factory()
                # The pseudo-gradient reads the *live* parameter references
                # — the server optimizer only consumes their values and
                # returns fresh arrays, so the former full deep copy
                # (get_params) per model per round bought nothing.
                current = model.params()
                pseudo_grad = {k: current[k] - avg[k] for k in current}
                model.set_params(opt.step(current, pseudo_grad))
            states = [u.state for u in ups]
            if states and states[0]:
                model.set_state(tree_average(states, weights))

    # ------------------------------------------------------------------
    def _decay_factor(self, round_idx: int, dst: CellModel) -> float:
        """η^t for cross-model terms; 1 when the '-d' ablation disables decay."""
        if not self.config.decay:
            return 1.0
        t = round_idx - dst.birth_round if self.config.decay_by_model_age else round_idx
        return float(self.config.eta ** max(t, 0))

    def _prune_caches(self, models: dict[str, CellModel]) -> None:
        """Drop per-model caches for models no longer in the suite.

        Transformation retires models (``max_models`` cap), and without
        eviction the per-pair plans, the per-``(dst, key)`` accumulators,
        and the per-model server-optimizer state would grow with every
        model ever born rather than with the live suite.
        """
        stale_pairs = [p for p in self._plans if p[0] not in models or p[1] not in models]
        for p in stale_pairs:
            del self._plans[p]
        self._ws.prune(lambda name: name[0] in models)
        for mid in [m for m in self._server_opts if m not in models]:
            del self._server_opts[mid]

    def _pair_plan(
        self, src_id: str, dst_id: str, src_params: ParamTree, dst_params: ParamTree
    ) -> dict[str, tuple | None]:
        cached = self._plans.get((src_id, dst_id))
        if cached is None:
            cached = {
                key: _overlap_plan(src_params[key].shape, val.shape)
                for key, val in dst_params.items()
                if key in src_params  # cell absent from the source's lineage
            }
            self._plans[(src_id, dst_id)] = cached
        return cached

    # repro: hotpath
    def _across_models(
        self,
        models: dict[str, CellModel],
        birth_order: list[str],
        round_idx: int,
    ) -> None:
        """Eq. 5 over every model, oldest first.

        Snapshots all post-FedAvg weights first so each destination model
        aggregates from its peers' *this-round* weights rather than from
        partially soft-aggregated ones.
        """
        snapshot: dict[str, ParamTree] = {
            mid: models[mid].get_params() for mid in birth_order
        }
        for j, dst_id in enumerate(birth_order):
            dst = models[dst_id]
            if self.config.share_l2s:
                source_ids = list(birth_order)
            else:
                source_ids = birth_order[: j + 1]
            if len(source_ids) == 1:
                continue  # only itself: aggregation is the identity
            decay = self._decay_factor(round_idx, dst)
            dst_params = snapshot[dst_id]
            # Similarity, weights, and overlap plans resolved once per
            # (src, dst) pair — not once per parameter key.
            contribs = []
            for src_id in source_ids:
                sim = self.sim_cache.get(models[src_id], dst)
                if sim <= 0.0:
                    continue
                w_num = sim if src_id == dst_id else decay * sim
                w_den = sim if self.config.strict_eq5 else w_num
                plan = self._pair_plan(src_id, dst_id, snapshot[src_id], dst_params)
                contribs.append((src_id, w_num, w_den, plan))
            new_params: ParamTree = {}
            for key, dst_val in dst_params.items():
                num = self._ws.get((dst_id, key), dst_val.shape, dst_val.dtype)
                num[...] = 0.0
                scratch = self._ws.get(
                    (dst_id, key, "scr"), dst_val.shape, dst_val.dtype
                )
                den = 0.0
                for src_id, w_num, w_den, plan in contribs:
                    if key not in plan:
                        continue  # cell absent from the source's lineage
                    src_val = snapshot[src_id][key]
                    p = plan[key]
                    if p is None:
                        # Same shape: num += w * src over the whole tensor.
                        np.multiply(src_val, w_num, out=scratch)
                        num += scratch
                    else:
                        # num += w * project_overlap(src, dst), region-wise:
                        # the overlap takes src values, the complement slabs
                        # take dst values — identical element contributions
                        # in identical order, no dst-sized copy.
                        overlap, slabs = p
                        np.multiply(src_val[overlap], w_num, out=scratch[overlap])
                        num[overlap] += scratch[overlap]
                        for slab in slabs:
                            np.multiply(dst_val[slab], w_num, out=scratch[slab])
                            num[slab] += scratch[slab]
                    den += w_den
                if den > 0:
                    num /= den
                    new_params[key] = num  # set_params copies immediately
                else:
                    new_params[key] = dst_val
            dst.set_params(new_params)

    # ------------------------------------------------------------------
    schema = schema_tag("ModelAggregator")

    def state_dict(self) -> dict:
        # Overlap plans and workspace buffers are pure derived caches —
        # rebuilt on first aggregation — so only the per-model server
        # optimizer trajectories need to survive a restart.
        return {
            "schema": self.schema,
            "server_opts": {
                mid: opt.state_dict() for mid, opt in self._server_opts.items()
            },
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        opts = payload["server_opts"]
        if opts and self.server_opt_factory is None:
            raise ValueError(
                "checkpoint carries server-optimizer state but this aggregator "
                "was built without a server_opt_factory"
            )
        self._server_opts = {}
        for mid, opt_payload in opts.items():
            opt = self.server_opt_factory()
            opt.load_state_dict(opt_payload)
            self._server_opts[mid] = opt
        self._plans = {}
        self._ws = Workspace()
