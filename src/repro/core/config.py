"""FedTrans configuration (paper Table 7 + §5.1 defaults).

Every knob the paper names has a field here; the ablation benches sweep
them (β → Fig. 10a, γ → Fig. 10b, widen/deepen degrees → Fig. 11, α →
Fig. 12) and the Table 3 component breakdown toggles the feature flags.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..fl.transport import TransportConfig
from ..nn.compute import COMPUTE_DTYPES

__all__ = ["FedTransConfig", "PAPER_DEFAULTS"]


@dataclass(frozen=True)
class FedTransConfig:
    """All FedTrans hyperparameters.

    Attributes
    ----------
    alpha:
        Cell-activeness selection threshold — cells whose activeness exceeds
        ``alpha * max(activeness)`` are transformed (§4.1, default 0.9).
    beta:
        Degree-of-convergence threshold; transformation triggers when
        ``DoC <= beta`` (default 0.003).
    gamma:
        Number of consecutive loss slopes averaged by the DoC (default 10).
    delta:
        Step size (in rounds) of each loss slope (paper Table 7: 20-100
        depending on dataset; scaled-down profiles use smaller values).
    eta:
        Decay base of cross-model soft aggregation, ``η^t`` (default 0.98).
    activeness_window:
        ``T``, rounds of gradients averaged into cell activeness (default 5).
    widen_factor:
        Width multiplier of a widen operation (default 2; Fig. 11 sweeps it).
    widen_noise:
        Relative noise on duplicated channels during widening (``dup``
        mode).  Pure Net2Net duplication leaves new channels in exact
        gradient symmetry with their sources (they would never diverge, and
        the widened model would keep its parent's effective capacity);
        Net2Net's standard fix is a small symmetry-breaking noise.
        Expressed as a fraction of the widened tensor's standard deviation.
    widen_mode:
        ``"zero"`` (default) grows fresh random channels behind zeroed
        outgoing weights — exactly function-preserving with immediately
        trainable new capacity.  ``"dup"`` is the paper's stated random-
        column duplication; at reduced simulation scale duplicated twins
        separate too slowly for capacity to materialize (DESIGN.md §2
        records this deviation), so duplication is kept as the faithful
        alternative rather than the default.
    deepen_cells:
        Identity cells inserted per deepen operation (default 1).
    max_models:
        Safety cap on the model-suite size (memory bound for simulation).
    utility_decay:
        Per-participation exponential forgetting of a client's utilities
        (Client Manager).  1.0 disables; without decay/clamp utilities grow
        without bound and the Eq. 3 softmax degenerates to a one-hot.
    utility_clamp:
        Hard bound on ``|utility|`` so assignment probabilities stay
        non-degenerate (worst-case softmax gap is ``2 * clamp``).  0.0
        disables.
    evict_after:
        Rounds of inactivity before a client's utility state is evicted
        from the Client Manager's sparse store (memory proportional to the
        *active* fleet; an evicted client rehydrates as a fresh one).
        ``None`` (default) disables eviction — the dense legacy behavior.
    compute_dtype:
        Floating dtype of every tensor the strategy creates from here on
        (transform-grown channels, re-initialized models):
        ``"float32"`` / ``"float64"``, or ``None`` (default) to inherit
        the process-wide setting (float64 unless the run changed it —
        see :mod:`repro.nn.compute`).  The whole run must use one dtype:
        the strategy applies this at construction, before any model it
        manages is transformed.  Interaction with the runtime sanitizer
        (``CoordinatorConfig.sanitize`` / ``--sanitize`` /
        ``REPRO_SANITIZE=1``): the sanitizer's checks compare raw bytes
        and are dtype-independent, so ``"float32"`` + sanitize is a
        valid combination — it validates the write-after-publish and
        version-bump invariants — but the engine's bit-identity claims
        (golden fixtures, cross-backend digests) are stated at float64,
        so only a float64 sanitized run also asserts those digests.
        See ``CONTRACTS.md``.
    min_rounds_between_transforms:
        Extra cooldown after a transformation; the DoC history reset already
        enforces ``gamma + delta`` rounds, this only adds to it.

    Feature flags (Table 3 breakdown / Table 1):

    * ``gradient_cell_selection`` — 'l': activeness-ranked cell choice; when
      off, one uniformly random transformable cell is picked.
    * ``soft_aggregation`` — 's': cross-model weight sharing (Eq. 5); when
      off, models aggregate independently (within-model FedAvg only).
    * ``warmup`` — 'w': function-preserving weight inheritance; when off,
      new models are re-initialized from scratch.
    * ``decay`` — 'd': the η^t factor; when off, cross-model contributions
      never fade.
    * ``share_l2s`` — Table 1: when True, larger (newer) models also write
      into smaller ones during soft aggregation; the paper shows this hurts
      and defaults it off.
    * ``strict_eq5`` — keep Eq. 5's literal (un-decayed) denominator rather
      than a proper weighted mean; see DESIGN.md §2 for why the default
      deviates.
    """

    alpha: float = 0.9
    beta: float = 0.003
    gamma: int = 10
    delta: int = 30
    eta: float = 0.98
    activeness_window: int = 5
    widen_factor: float = 2.0
    widen_noise: float = 0.05
    widen_mode: str = "zero"
    deepen_cells: int = 1
    max_models: int = 8
    min_rounds_between_transforms: int = 0
    utility_decay: float = 0.99
    utility_clamp: float = 5.0
    evict_after: int | None = None
    compute_dtype: str | None = None
    # Transport codec spec for the round loop (repro.fl.transport), e.g.
    # "update:int8+topk0.01,snapshot:rle".  None keeps transport raw.
    # Lossy specs change the trajectory and must be declared explicitly
    # (CONTRACTS.md I11); the bench harness forwards this into
    # CoordinatorConfig.compress.
    compress: str | None = None
    gradient_cell_selection: bool = True
    soft_aggregation: bool = True
    warmup: bool = True
    decay: bool = True
    share_l2s: bool = False
    strict_eq5: bool = False
    decay_by_model_age: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if self.gamma < 1 or self.delta < 1:
            raise ValueError("gamma and delta must be >= 1")
        if not 0.0 <= self.eta <= 1.0:
            raise ValueError("eta must lie in [0, 1]")
        if self.widen_factor <= 1.0:
            raise ValueError("widen_factor must exceed 1")
        if self.widen_noise < 0:
            raise ValueError("widen_noise must be non-negative")
        if self.deepen_cells < 1:
            raise ValueError("deepen_cells must be >= 1")
        if self.max_models < 1:
            raise ValueError("max_models must be >= 1")
        if not 0.0 < self.utility_decay <= 1.0:
            raise ValueError("utility_decay must lie in (0, 1]")
        if self.utility_clamp < 0.0:
            raise ValueError("utility_clamp must be non-negative (0 disables)")
        if self.evict_after is not None and self.evict_after < 1:
            raise ValueError("evict_after must be >= 1 (None disables eviction)")
        if self.compute_dtype is not None and self.compute_dtype not in COMPUTE_DTYPES:
            raise ValueError(
                f"compute_dtype must be one of {COMPUTE_DTYPES} or None "
                f"(inherit), got {self.compute_dtype!r}"
            )
        if self.compress is not None:
            TransportConfig.parse(self.compress)  # raises ValueError on a bad spec

    def scaled(self, **overrides) -> "FedTransConfig":
        """A copy with fields replaced (bench profiles shrink γ/δ)."""
        return replace(self, **overrides)


#: The exact values Table 7 reports for the paper-scale runs.
PAPER_DEFAULTS = FedTransConfig()
