"""Degree-of-convergence tracking (paper Eq. 1).

The DoC at round *i* averages γ consecutive loss slopes, each computed with
a step of δ rounds::

    DoC = (1/γ) Σ_{j=i-γ+1..i} ( L(j-δ) - L(j) ) / δ

A *small* DoC means the moving training loss has flattened — the elbow of
the curve — which is FedTrans's cue that the current model suite has
matured enough to warm up a larger model (§4.1, "Identifying the right
time to transform").

The tracker is reset after every transformation so the γ+δ history
requirement naturally enforces a warm-up period for each new frontier
model.
"""

from __future__ import annotations

from ..stateful import Stateful, check_schema, schema_tag

__all__ = ["DoCTracker"]


class DoCTracker(Stateful):
    """Accumulates per-round training losses and evaluates Eq. 1."""

    schema = schema_tag("DoCTracker")

    def __init__(self, gamma: int, delta: int):
        if gamma < 1 or delta < 1:
            raise ValueError("gamma and delta must be >= 1")
        self.gamma = gamma
        self.delta = delta
        self._losses: list[float] = []

    def update(self, loss: float) -> None:
        """Record one round's (mean) training loss."""
        self._losses.append(float(loss))

    def reset(self) -> None:
        """Clear history (called after each model transformation)."""
        self._losses.clear()

    @property
    def history(self) -> list[float]:
        return list(self._losses)

    def ready(self) -> bool:
        """True once enough history exists for a full γ-slope window."""
        return len(self._losses) >= self.gamma + self.delta

    def value(self) -> float | None:
        """The DoC, or ``None`` until enough history has accumulated."""
        if not self.ready():
            return None
        L = self._losses
        n = len(L)
        total = 0.0
        for j in range(n - self.gamma, n):
            total += (L[j - self.delta] - L[j]) / self.delta
        return total / self.gamma

    def should_transform(self, beta: float) -> bool:
        """Eq. 1 trigger: DoC has fallen to or below the threshold β.

        A *negative* DoC (loss rising over the window) also triggers — the
        model is certainly not improving, which the elbow rule treats the
        same as a flat curve.
        """
        doc = self.value()
        return doc is not None and doc <= beta

    def state_dict(self) -> dict:
        return {"schema": self.schema, "losses": list(self._losses)}

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        self._losses = [float(x) for x in payload["losses"]]
