"""Model Transformer: when / where / how to transform (§4.1).

Watches the frontier (newest, largest) model's convergence through a
:class:`~repro.core.doc.DoCTracker` and its per-cell gradient dynamics
through an :class:`~repro.core.activeness.ActivenessTracker`.  When the DoC
crosses β, it spawns a new model from the frontier:

1. clone the frontier model (inheriting all weights — the warmup);
2. rank cells by activeness, select those above ``α · max`` (or one random
   cell under the '-l' ablation);
3. widen or deepen each selected cell, alternating per cell (Fig. 5);
4. optionally re-initialize (the '-w' ablation measures warmup's value).

A transformation is suppressed when the frontier already exceeds the
fleet's maximum capacity (the paper's stopping rule: "the model
architecture complexity reaches the maximum supported by any participant")
or when the suite is at ``max_models``.
"""

from __future__ import annotations

import numpy as np

from ..nn.model import CellModel
from ..nn.param_ops import ParamTree
from ..stateful import Stateful, check_schema, schema_tag
from .activeness import ActivenessTracker
from .config import FedTransConfig
from .doc import DoCTracker
from .transform import apply_transform, reinitialize, select_cells, select_cells_random

__all__ = ["ModelTransformer"]


class ModelTransformer(Stateful):
    """Decides and performs model transformations during training."""

    schema = schema_tag("ModelTransformer")

    def __init__(self, config: FedTransConfig, max_capacity_macs: float):
        self.config = config
        self.max_capacity_macs = max_capacity_macs
        self.doc = DoCTracker(config.gamma, config.delta)
        self.activeness = ActivenessTracker(config.activeness_window)
        self._rounds_since_transform = 10**9
        self.transforms_done = 0
        self.exhausted = False  # frontier hit the fleet's max capacity

    # ------------------------------------------------------------------
    def observe_round(
        self, frontier: CellModel, mean_loss: float, aggregate_grad: ParamTree | None
    ) -> None:
        """Feed one round's training feedback (loss + aggregate gradients)."""
        self.doc.update(mean_loss)
        if aggregate_grad is not None:
            self.activeness.update(frontier, aggregate_grad)
        self._rounds_since_transform += 1

    # ------------------------------------------------------------------
    def should_transform(self, num_models: int) -> bool:
        """The Eq. 1 trigger plus the budget/capacity guards."""
        cfg = self.config
        if self.exhausted or num_models >= cfg.max_models:
            return False
        if self._rounds_since_transform < cfg.min_rounds_between_transforms:
            return False
        if not self.activeness.ready():
            return False
        return self.doc.should_transform(cfg.beta)

    # ------------------------------------------------------------------
    def transform(
        self, frontier: CellModel, rng: np.random.Generator, round_idx: int
    ) -> tuple[CellModel | None, list[str]]:
        """Spawn a transformed child of ``frontier``.

        Returns ``(child, events)``; ``child`` is ``None`` when the
        transformation would exceed the fleet's maximum capacity, in which
        case the transformer marks itself exhausted.
        """
        cfg = self.config
        if cfg.gradient_cell_selection:
            selected = select_cells(self.activeness.activeness(frontier), cfg.alpha)
        else:
            selected = select_cells_random(frontier, rng)
        if not selected:
            return None, ["transform skipped: no active cells"]

        child = frontier.clone(birth_round=round_idx)
        events = apply_transform(
            child,
            selected,
            rng,
            cfg.widen_factor,
            cfg.deepen_cells,
            round_idx,
            widen_noise=cfg.widen_noise,
            widen_mode=cfg.widen_mode,
        )
        if not events:
            return None, ["transform skipped: no transformable cells selected"]
        if child.macs() > self.max_capacity_macs:
            self.exhausted = True
            return None, [
                f"transform suppressed: child macs {child.macs():,} exceeds "
                f"fleet capacity {self.max_capacity_macs:,.0f}"
            ]
        if not cfg.warmup:
            reinitialize(child, rng)
            events.append("warmup disabled: child re-initialized")

        self.doc.reset()
        self.activeness.reset()
        self._rounds_since_transform = 0
        self.transforms_done += 1
        return child, events

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "schema": self.schema,
            "doc": self.doc.state_dict(),
            "activeness": self.activeness.state_dict(),
            "rounds_since_transform": self._rounds_since_transform,
            "transforms_done": self.transforms_done,
            "exhausted": self.exhausted,
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        self.doc.load_state_dict(payload["doc"])
        self.activeness.load_state_dict(payload["activeness"])
        self._rounds_since_transform = int(payload["rounds_since_transform"])
        self.transforms_done = int(payload["transforms_done"])
        self.exhausted = bool(payload["exhausted"])
