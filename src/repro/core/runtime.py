"""FedTransStrategy: Algorithm 1 as a :class:`~repro.fl.strategy.Strategy`.

Per round (matching the pseudo-code's line numbers):

* **assign** (l.5-8) — for each selected client, filter the suite to
  compatible models (``MAC(M) <= T_c``) and sample one from the utility
  softmax (Client Manager, Eqs. 2-3).
* **aggregate** (l.11-22) — update utilities from the round's losses
  (Eq. 4); run within-model FedAvg plus cross-model soft aggregation
  (Eq. 5); feed the frontier model's mean loss and aggregate gradient to
  the Model Transformer, which maintains the DoC (Eq. 1) and per-cell
  activeness; when the DoC crosses β, clone the frontier, transform its
  most-active cells (Fig. 5), and register the child with inherited
  weights and utilities.

Deployment (``eval_model_for``) gives each client its highest-utility
compatible model — the rule §5.1 uses for all reported accuracies.
"""

from __future__ import annotations

import numpy as np

from ..fl.strategy import Strategy, compatible_model_ids
from ..fl.types import ClientUpdate, FLClient
from ..nn.compute import set_compute_dtype
from ..nn.model import CellModel
from ..nn.param_ops import ParamTree
from ..nn.serialization import model_from_state, model_state_dict
from ..stateful import check_schema, schema_tag
from .aggregator import ModelAggregator
from .client_manager import ClientManager, SimilarityCache
from .config import FedTransConfig
from .transformer import ModelTransformer

__all__ = ["FedTransStrategy"]


class FedTransStrategy(Strategy):
    """The FedTrans multi-model training runtime."""

    name = "fedtrans"

    def __init__(
        self,
        initial_model: CellModel,
        config: FedTransConfig,
        max_capacity_macs: float,
        server_opt_factory=None,
    ):
        if initial_model.macs() > max_capacity_macs:
            raise ValueError(
                "initial model exceeds the fleet's maximum capacity; the paper "
                "sizes it to the *least* capable client"
            )
        self.config = config
        # None = inherit the process-wide dtype; a concrete value pins the
        # dtype of everything the strategy creates from here on (grown
        # channels, inserted cells, re-initialized models).
        set_compute_dtype(config.compute_dtype)
        self.sim_cache = SimilarityCache()
        self.client_manager = ClientManager(
            self.sim_cache,
            utility_decay=config.utility_decay,
            utility_clamp=config.utility_clamp,
            evict_after=config.evict_after,
        )
        self.aggregator = ModelAggregator(config, self.sim_cache, server_opt_factory)
        self.transformer = ModelTransformer(config, max_capacity_macs)
        self._models: dict[str, CellModel] = {initial_model.model_id: initial_model}
        self._birth_order: list[str] = [initial_model.model_id]
        # Capacity budget per client, remembered at assignment time so
        # aggregate() can re-derive each updater's compatible set (the
        # Eq. 4 walk skips models the client could never run).
        self._capacity: dict[int, float] = {}
        self._evicted_unreported = 0

    # ------------------------------------------------------------------
    # Strategy interface
    # ------------------------------------------------------------------
    def models(self) -> dict[str, CellModel]:
        return dict(self._models)

    @property
    def frontier(self) -> CellModel:
        """The newest (largest) model — the transformation target."""
        return self._models[self._birth_order[-1]]

    def assign(
        self,
        round_idx: int,
        participants: list[FLClient],
        rng: np.random.Generator,
    ) -> dict[int, list[str]]:
        out: dict[int, list[str]] = {}
        for client in participants:
            compatible = self.compatible_models(client)
            self._capacity[client.client_id] = client.capacity_macs
            out[client.client_id] = [
                self.client_manager.sample_model(client.client_id, compatible, rng)
            ]
        return out

    def aggregate(
        self,
        round_idx: int,
        updates: list[ClientUpdate],
        rng: np.random.Generator,
    ) -> list[str]:
        events: list[str] = []
        # Sparse-store bookkeeping: advance the activity clock first so a
        # client evicted for long inactivity that participates *this* round
        # rehydrates fresh below rather than surviving on a stale stamp.
        evicted_ids = self.client_manager.advance_round(round_idx)
        if evicted_ids:
            self._evicted_unreported += len(evicted_ids)
            for cid in evicted_ids:
                self._capacity.pop(cid, None)
            events.append(
                f"evicted {len(evicted_ids)} inactive client(s) from utility store"
            )
        # l.11 — joint utility learning from this round's losses, restricted
        # to each updater's compatible set (capacities remembered at assign;
        # a client seen without one falls back to the all-models walk).
        # compatible_model_ids carries the cheapest-model fallback, so a
        # too-weak client's trained-and-deployed model keeps learning.
        compatible = {
            cid: set(compatible_model_ids(self._models, self._capacity[cid]))
            for cid in {u.client_id for u in updates}
            if cid in self._capacity
        }
        self.client_manager.update(updates, self._models, compatible)
        # l.13 — inter-model weight aggregation.
        self.aggregator.aggregate(self._models, self._birth_order, updates, round_idx)
        # l.15 — convergence + activeness feedback for the frontier model.
        frontier = self.frontier
        mean_loss = float(np.mean([u.train_loss for u in updates]))
        agg_grad = self._aggregate_gradient(
            [u for u in updates if u.model_id == frontier.model_id]
        )
        self.transformer.observe_round(frontier, mean_loss, agg_grad)
        # l.16-22 — transformation.
        if self.transformer.should_transform(len(self._models)):
            child, ev = self.transformer.transform(frontier, rng, round_idx)
            events.extend(ev)
            if child is not None:
                self._models[child.model_id] = child
                self._birth_order.append(child.model_id)
                self.client_manager.register_model(child.model_id, frontier.model_id)
                events.append(
                    f"spawned {child.model_id} from {frontier.model_id} "
                    f"(macs {frontier.macs():,} -> {child.macs():,})"
                )
        return events

    def eval_model_for(self, client: FLClient) -> str:
        compatible = self.compatible_models(client)
        return self.client_manager.best_model(client.client_id, compatible)

    def scheduler_counters(self) -> dict[str, int]:
        evicted, self._evicted_unreported = self._evicted_unreported, 0
        return {"evicted": evicted} if evicted else {}

    # ------------------------------------------------------------------
    @staticmethod
    def _aggregate_gradient(updates: list[ClientUpdate]) -> ParamTree | None:
        """Sample-weighted mean of participant gradients (privacy: aggregate only)."""
        if not updates:
            return None
        total = float(sum(u.num_samples for u in updates))
        out: ParamTree = {}
        for u in updates:
            w = u.num_samples / total
            for k, g in u.grad.items():
                if k in out:
                    out[k] += w * g
                else:
                    out[k] = w * g
        return out

    # ------------------------------------------------------------------
    # durability (Stateful) — the suite grows mid-run, so the default
    # fixed-suite restore does not apply: models are rebuilt from their
    # serialized specs (weights, lineage, exact versions) and every
    # component's trajectory is composed into one payload.
    # ------------------------------------------------------------------
    schema = schema_tag("FedTransStrategy")

    def state_dict(self) -> dict:
        return {
            "schema": self.schema,
            "models": {
                mid: model_state_dict(m) for mid, m in self._models.items()
            },
            "birth_order": list(self._birth_order),
            "capacity": {str(cid): float(c) for cid, c in self._capacity.items()},
            "evicted_unreported": self._evicted_unreported,
            "client_manager": self.client_manager.state_dict(),
            "aggregator": self.aggregator.state_dict(),
            "transformer": self.transformer.state_dict(),
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        self._models = {
            mid: model_from_state(mp) for mid, mp in payload["models"].items()
        }
        self._birth_order = list(payload["birth_order"])
        self._capacity = {
            int(cid): float(c) for cid, c in payload["capacity"].items()
        }
        self._evicted_unreported = int(payload["evicted_unreported"])
        self.client_manager.load_state_dict(payload["client_manager"])
        self.aggregator.load_state_dict(payload["aggregator"])
        self.transformer.load_state_dict(payload["transformer"])

    # ------------------------------------------------------------------
    def suite_summary(self) -> str:
        """Human-readable description of the current model suite."""
        lines = [f"FedTrans suite: {len(self._models)} models"]
        for mid in self._birth_order:
            m = self._models[mid]
            lines.append(
                f"  {mid}: macs={m.macs():,} params={m.num_params():,} "
                f"cells={len(m.cells)} born=r{m.birth_round}"
            )
        return "\n".join(lines)
