"""FedTrans core: the paper's contribution.

* :class:`~repro.core.config.FedTransConfig` — every hyperparameter and
  ablation flag (Table 7).
* :class:`~repro.core.transformer.ModelTransformer` — when/where/how to
  transform (§4.1: DoC, activeness, widen/deepen).
* :class:`~repro.core.client_manager.ClientManager` — utility-based model
  assignment (§4.2, Eqs. 2-4).
* :class:`~repro.core.aggregator.ModelAggregator` — soft multi-model
  aggregation (§4.3, Eq. 5).
* :class:`~repro.core.runtime.FedTransStrategy` — Algorithm 1, pluggable
  into the :class:`~repro.fl.coordinator.Coordinator`.
"""

from .activeness import ActivenessTracker, cell_gradient_norms
from .aggregator import ModelAggregator, project_overlap
from .client_manager import ClientManager, SimilarityCache
from .config import PAPER_DEFAULTS, FedTransConfig
from .doc import DoCTracker
from .runtime import FedTransStrategy
from .similarity import cell_matching_degree, model_similarity
from .transform import apply_transform, reinitialize, select_cells, select_cells_random
from .transformer import ModelTransformer

__all__ = [
    "ActivenessTracker",
    "cell_gradient_norms",
    "ModelAggregator",
    "project_overlap",
    "ClientManager",
    "SimilarityCache",
    "PAPER_DEFAULTS",
    "FedTransConfig",
    "DoCTracker",
    "FedTransStrategy",
    "cell_matching_degree",
    "model_similarity",
    "apply_transform",
    "reinitialize",
    "select_cells",
    "select_cells_random",
    "ModelTransformer",
]
