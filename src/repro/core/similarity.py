"""Architectural similarity between models of one transformation family (§4.2).

The paper measures similarity "in terms of the Cell-wise number of
parameters that we can transform".  For each cell ``l`` of the reference
model, the matching degree ``mc(l)`` against another model is:

(a) ``1``                            — inherited unchanged;
(b) ``#param(l') / #param(l)``       — widened from cell ``l'`` (the portion
                                       of inherited weights);
(c) ``0``                            — inserted by a deepen (no inherited
                                       weights);
(d) ``-1``                           — a cell that *lost* its parent weights
                                       (cannot arise from widen/deepen, kept
                                       for API completeness).

``sim(M_i, M_j)`` cumulates the per-cell degrees; we normalize by the
reference model's cell count and clip at 0 so that ``sim ∈ [0, 1]`` as the
paper requires, with ``sim(M, M) = 1``.

Because widening preserves a cell's ``cell_id`` and deepening mints fresh
ids, matching is an exact id lookup — no graph alignment needed.
"""

from __future__ import annotations

from ..nn.model import CellModel

__all__ = ["cell_matching_degree", "model_similarity"]


def cell_matching_degree(ref_cell, other: CellModel) -> float:
    """Matching degree of ``ref_cell`` against model ``other`` (cases a-d)."""
    try:
        counterpart = other.get_cell(ref_cell.cell_id)
    except KeyError:
        # The cell exists only on the reference side: it was inserted after
        # the two models diverged -> case (c).
        return 0.0
    p_ref = ref_cell.num_params()
    p_other = counterpart.num_params()
    if p_ref == p_other:
        return 1.0  # case (a)
    # case (b): widened one way or the other; the inherited portion is the
    # smaller parameter count over the larger.
    return min(p_ref, p_other) / max(p_ref, p_other)


def model_similarity(src: CellModel, dst: CellModel) -> float:
    """``sim(src, dst)`` — how much of ``dst``'s architecture ``src`` covers.

    Evaluated over ``dst``'s cells (the model *receiving* information in
    Eqs. 4-5), normalized to [0, 1].
    """
    if src.model_id == dst.model_id:
        return 1.0
    degrees = [cell_matching_degree(cell, src) for cell in dst.cells]
    if not degrees:
        return 0.0
    value = sum(degrees) / len(degrees)
    return max(0.0, min(1.0, value))
