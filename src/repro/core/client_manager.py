"""Client Manager: utility-based model assignment (§4.2, Eqs. 2-4).

Per registered client the manager keeps a loss-based utility per model.
When a client participates, a model is *sampled* from the softmax of its
utilities over the compatible set (Eqs. 2-3) — soft assignment that keeps
exploring while favouring models that fit the client's data.  After each
round the utilities of **all** models are jointly updated from the round's
standardized training loss, scaled by architectural similarity (Eq. 4), so
new and rarely-trained models inherit signal from their relatives.
"""

from __future__ import annotations

import numpy as np

from ..nn.model import CellModel
from .similarity import model_similarity

__all__ = ["SimilarityCache", "ClientManager"]


class SimilarityCache:
    """Memoized ``sim(src, dst)`` lookups.

    Safe to key on model ids because a model's *architecture* is immutable
    after birth — transformations always clone the frontier into a new
    model rather than editing one in place.
    """

    def __init__(self) -> None:
        self._cache: dict[tuple[str, str], float] = {}

    def get(self, src: CellModel, dst: CellModel) -> float:
        key = (src.model_id, dst.model_id)
        if key not in self._cache:
            self._cache[key] = model_similarity(src, dst)
        return self._cache[key]


class ClientManager:
    """Tracks per-client model utilities and samples assignments.

    Utilities are kept bounded: without a bound they accumulate without
    limit round over round, the Eq. 3 softmax saturates to a one-hot, and
    assignment stops exploring.  ``utility_decay`` multiplies a client's
    utilities each round it participates (exponential forgetting, recency-
    weighted signal) and ``utility_clamp`` hard-limits ``|u|`` so the
    softmax temperature stays finite — even at the worst case of two
    models pinned to opposite clamps, the softmax gap is ``2 * clamp``
    (probability floor ``~e^-10`` at the default 5.0), so assignment
    keeps exploring.  Set ``1.0`` / ``0.0`` respectively to disable
    either.
    """

    def __init__(
        self,
        sim_cache: SimilarityCache | None = None,
        utility_decay: float = 0.99,
        utility_clamp: float = 5.0,
    ):
        if not 0.0 < utility_decay <= 1.0:
            raise ValueError("utility_decay must lie in (0, 1]")
        if utility_clamp < 0.0:
            raise ValueError("utility_clamp must be non-negative (0 disables)")
        self.sim_cache = sim_cache or SimilarityCache()
        self.utility_decay = utility_decay
        self.utility_clamp = utility_clamp
        self._utilities: dict[int, dict[str, float]] = {}

    # ------------------------------------------------------------------
    def utility(self, client_id: int, model_id: str) -> float:
        """Current utility (0 for never-updated pairs)."""
        return self._utilities.get(client_id, {}).get(model_id, 0.0)

    def register_model(self, new_id: str, parent_id: str) -> None:
        """New model inherits its parent's utility per client (Alg. 1 l.18)."""
        for utils in self._utilities.values():
            if parent_id in utils:
                utils[new_id] = utils[parent_id]

    # ------------------------------------------------------------------
    def assignment_probabilities(
        self, client_id: int, compatible_ids: list[str]
    ) -> np.ndarray:
        """Eq. 3: softmax of the client's utilities over compatible models."""
        if not compatible_ids:
            raise ValueError("no compatible models to sample from")
        u = np.array([self.utility(client_id, mid) for mid in compatible_ids])
        z = u - u.max()
        e = np.exp(z)
        return e / e.sum()

    def sample_model(
        self, client_id: int, compatible_ids: list[str], rng: np.random.Generator
    ) -> str:
        """Eq. 2: probabilistic model assignment."""
        p = self.assignment_probabilities(client_id, compatible_ids)
        return compatible_ids[int(rng.choice(len(compatible_ids), p=p))]

    def best_model(self, client_id: int, compatible_ids: list[str]) -> str:
        """Deployment choice: the compatible model with the highest utility.

        Ties (e.g. clients that never participated) break toward the model
        with the highest fleet-wide mean utility, then the earliest-born
        (most-trained) model.
        """
        if not compatible_ids:
            raise ValueError("no compatible models")

        def global_mean(mid: str) -> float:
            vals = [u[mid] for u in self._utilities.values() if mid in u]
            return float(np.mean(vals)) if vals else 0.0

        ranked = sorted(
            range(len(compatible_ids)),
            key=lambda i: (
                self.utility(client_id, compatible_ids[i]),
                global_mean(compatible_ids[i]),
                -i,
            ),
            reverse=True,
        )
        return compatible_ids[ranked[0]]

    # ------------------------------------------------------------------
    def update(self, updates, models: dict[str, CellModel]) -> None:
        """Eq. 4 joint utility update after a round.

        ``updates`` is the round's list of :class:`ClientUpdate`; losses are
        standardized *across the round's participants* so a below-average
        loss raises utility and an above-average loss lowers it.
        """
        if not updates:
            return
        losses = np.array([u.train_loss for u in updates], dtype=float)
        mean = losses.mean()
        std = losses.std()
        if std < 1e-12:
            standardized = np.zeros_like(losses)
        else:
            standardized = (losses - mean) / std
        if self.utility_decay < 1.0:
            for cid in dict.fromkeys(u.client_id for u in updates):
                utils = self._utilities.get(cid)
                if utils:
                    for mid in utils:
                        utils[mid] *= self.utility_decay
        for u, l_std in zip(updates, standardized):
            assigned = models[u.model_id]
            utils = self._utilities.setdefault(u.client_id, {})
            for mid, model in models.items():
                sim = self.sim_cache.get(model, assigned)
                if sim <= 0.0:
                    continue
                val = utils.get(mid, 0.0) - float(l_std) * sim
                if self.utility_clamp:
                    val = min(max(val, -self.utility_clamp), self.utility_clamp)
                utils[mid] = val
