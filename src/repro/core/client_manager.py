"""Client Manager: utility-based model assignment (§4.2, Eqs. 2-4).

Per client the manager keeps a loss-based utility per model.  When a
client participates, a model is *sampled* from the softmax of its
utilities over the compatible set (Eqs. 2-3) — soft assignment that keeps
exploring while favouring models that fit the client's data.  After each
round the utilities of the client's **compatible** models are jointly
updated from the round's standardized training loss, scaled by
architectural similarity (Eq. 4), so new and rarely-trained models inherit
signal from their relatives.  (Models outside a client's compatible set
are skipped: the client can never train or deploy them — capacities are
fixed and the suite only grows upward — so maintaining their utilities was
pure per-update cost.)

Utility state lives in a sparse
:class:`~repro.fl.scheduling.store.ClientStateStore`: entries materialize
on first participation and, with ``evict_after`` set, clients inactive for
that many rounds are evicted — memory stays proportional to the *active*
fleet, not the registered one.  Decay/clamp already bound utility
magnitudes, so a rehydrated client restarts from the all-zero prior
(exactly a fresh client) and relearns within a few participations.
"""

from __future__ import annotations

import numpy as np

from ..fl.scheduling.store import ClientStateStore
from ..nn.model import CellModel
from ..stateful import Stateful, check_schema, schema_tag
from .similarity import model_similarity

__all__ = ["SimilarityCache", "ClientManager"]


class SimilarityCache(Stateful):
    """Memoized ``sim(src, dst)`` lookups.

    Safe to key on model ids because a model's *architecture* is immutable
    after birth — transformations always clone the frontier into a new
    model rather than editing one in place.
    """

    schema = schema_tag("SimilarityCache")

    def __init__(self) -> None:
        self._cache: dict[tuple[str, str], float] = {}

    def get(self, src: CellModel, dst: CellModel) -> float:
        key = (src.model_id, dst.model_id)
        if key not in self._cache:
            self._cache[key] = model_similarity(src, dst)
        return self._cache[key]

    def state_dict(self) -> dict:
        # The cache is a pure memo over immutable architectures: every
        # entry is recomputable from the restored model suite, so the
        # payload is just the tag and restore starts cold.
        return {"schema": self.schema}

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        self._cache = {}


class ClientManager(Stateful):
    """Tracks per-client model utilities and samples assignments.

    Utilities are kept bounded: without a bound they accumulate without
    limit round over round, the Eq. 3 softmax saturates to a one-hot, and
    assignment stops exploring.  ``utility_decay`` multiplies a client's
    utilities each round it participates (exponential forgetting, recency-
    weighted signal) and ``utility_clamp`` hard-limits ``|u|`` so the
    softmax temperature stays finite — even at the worst case of two
    models pinned to opposite clamps, the softmax gap is ``2 * clamp``
    (probability floor ``~e^-10`` at the default 5.0), so assignment
    keeps exploring.  Set ``1.0`` / ``0.0`` respectively to disable
    either.  ``evict_after`` bounds *memory*: clients inactive for that
    many rounds (see :meth:`advance_round`) are dropped from the store;
    ``None`` (the default) keeps every entry forever.
    """

    def __init__(
        self,
        sim_cache: SimilarityCache | None = None,
        utility_decay: float = 0.99,
        utility_clamp: float = 5.0,
        evict_after: int | None = None,
    ):
        if not 0.0 < utility_decay <= 1.0:
            raise ValueError("utility_decay must lie in (0, 1]")
        if utility_clamp < 0.0:
            raise ValueError("utility_clamp must be non-negative (0 disables)")
        self.sim_cache = sim_cache or SimilarityCache()
        self.utility_decay = utility_decay
        self.utility_clamp = utility_clamp
        self.store = ClientStateStore(evict_after=evict_after)

    @property
    def _utilities(self) -> dict[int, dict[str, float]]:
        # Legacy view of the raw per-client dicts (shared with the store).
        return self.store.data

    # ------------------------------------------------------------------
    def utility(self, client_id: int, model_id: str) -> float:
        """Current utility (0 for never-updated or evicted pairs)."""
        st = self.store.get(client_id)
        return st.get(model_id, 0.0) if st else 0.0

    def register_model(self, new_id: str, parent_id: str) -> None:
        """New model inherits its parent's utility per client (Alg. 1 l.18)."""
        for utils in self.store.values():
            if parent_id in utils:
                utils[new_id] = utils[parent_id]

    def advance_round(self, round_idx: int) -> list[int]:
        """Advance the store's activity clock; returns the evicted ids."""
        return self.store.advance(round_idx)

    # ------------------------------------------------------------------
    def assignment_probabilities(
        self, client_id: int, compatible_ids: list[str]
    ) -> np.ndarray:
        """Eq. 3: softmax of the client's utilities over compatible models."""
        if not compatible_ids:
            raise ValueError("no compatible models to sample from")
        u = np.array([self.utility(client_id, mid) for mid in compatible_ids])
        z = u - u.max()
        e = np.exp(z)
        return e / e.sum()

    def sample_model(
        self, client_id: int, compatible_ids: list[str], rng: np.random.Generator
    ) -> str:
        """Eq. 2: probabilistic model assignment."""
        p = self.assignment_probabilities(client_id, compatible_ids)
        return compatible_ids[int(rng.choice(len(compatible_ids), p=p))]

    def best_model(self, client_id: int, compatible_ids: list[str]) -> str:
        """Deployment choice: the compatible model with the highest utility.

        Ties (e.g. clients that never participated) break toward the model
        with the highest fleet-wide mean utility, then the earliest-born
        (most-trained) model.
        """
        if not compatible_ids:
            raise ValueError("no compatible models")

        def global_mean(mid: str) -> float:
            vals = [u[mid] for u in self.store.values() if mid in u]
            return float(np.mean(vals)) if vals else 0.0

        ranked = sorted(
            range(len(compatible_ids)),
            key=lambda i: (
                self.utility(client_id, compatible_ids[i]),
                global_mean(compatible_ids[i]),
                -i,
            ),
            reverse=True,
        )
        return compatible_ids[ranked[0]]

    # ------------------------------------------------------------------
    def update(
        self,
        updates,
        models: dict[str, CellModel],
        compatible: dict[int, set[str]] | None = None,
    ) -> None:
        """Eq. 4 joint utility update after a round.

        ``updates`` is the round's list of :class:`ClientUpdate`; losses are
        standardized *across the round's participants* so a below-average
        loss raises utility and an above-average loss lowers it.
        ``compatible`` maps client ids to their compatible model ids; when
        given, the similarity-scaled update only walks that set (a missing
        client id, or ``compatible=None``, falls back to all models — the
        legacy behavior, still right for callers without capacity
        information).
        """
        if not updates:
            return
        losses = np.array([u.train_loss for u in updates], dtype=float)
        mean = losses.mean()
        std = losses.std()
        if std < 1e-12:
            standardized = np.zeros_like(losses)
        else:
            standardized = (losses - mean) / std
        if self.utility_decay < 1.0:
            for cid in dict.fromkeys(u.client_id for u in updates):
                utils = self.store.get(cid)
                if utils:
                    for mid in utils:
                        utils[mid] *= self.utility_decay
        for u, l_std in zip(updates, standardized):
            assigned = models[u.model_id]
            allowed = compatible.get(u.client_id) if compatible is not None else None
            utils = self.store.materialize(u.client_id)
            for mid, model in models.items():
                if allowed is not None and mid not in allowed:
                    continue
                sim = self.sim_cache.get(model, assigned)
                if sim <= 0.0:
                    continue
                val = utils.get(mid, 0.0) - float(l_std) * sim
                if self.utility_clamp:
                    val = min(max(val, -self.utility_clamp), self.utility_clamp)
                utils[mid] = val

    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Serializable snapshot of the utility store (checkpointing)."""
        return self.store.state_dict()

    def set_state(self, payload: dict) -> None:
        """Restore a :meth:`get_state` snapshot (keeps this manager's knobs)."""
        evict_after = self.store.evict_after
        self.store.load_state_dict(payload)
        # The eviction horizon is configuration, not checkpoint payload.
        self.store.evict_after = evict_after

    schema = schema_tag("ClientManager")

    def state_dict(self) -> dict:
        return {
            "schema": self.schema,
            "store": self.store.state_dict(),
            "sim_cache": self.sim_cache.state_dict(),
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        self.set_state(payload["store"])
        self.sim_cache.load_state_dict(payload["sim_cache"])
