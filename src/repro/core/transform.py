"""Transformation policy: which cells, and widen vs. deepen (§4.1, Fig. 5).

Pure functions here; :mod:`repro.core.transformer` wires them into the
training loop.  The control flow per selected cell ``l`` follows Fig. 5::

    act_l > α · max(act) ?   no  -> keep l
                             yes -> widened in last transformation?
                                        no  -> widen l
                                        yes -> deepen l (insert identity)

alternating width and depth per the compound-scaling insight of
EfficientNet (Tan & Le) that the paper cites.
"""

from __future__ import annotations

import numpy as np

from ..nn.model import CellModel

__all__ = ["select_cells", "select_cells_random", "apply_transform", "reinitialize"]


def select_cells(activeness: dict[str, float], alpha: float) -> list[str]:
    """Cells whose activeness exceeds ``alpha`` times the maximum (§4.1)."""
    if not activeness:
        return []
    peak = max(activeness.values())
    if peak <= 0.0:
        return []
    return [cid for cid, act in activeness.items() if act >= alpha * peak]


def select_cells_random(
    model: CellModel, rng: np.random.Generator, count: int = 1
) -> list[str]:
    """Random-cell fallback used by the Table 3 '-l' ablation."""
    candidates = [c.cell_id for c in model.transformable_cells()]
    if not candidates:
        return []
    count = min(count, len(candidates))
    picked = rng.choice(len(candidates), size=count, replace=False)
    return [candidates[i] for i in picked]


def apply_transform(
    model: CellModel,
    cell_ids: list[str],
    rng: np.random.Generator,
    widen_factor: float,
    deepen_cells: int,
    round_idx: int,
    widen_noise: float = 0.0,
    widen_mode: str = "dup",
) -> list[str]:
    """Widen/deepen each selected cell of ``model`` in place (Fig. 5).

    Returns event strings describing what happened.  The widen/deepen
    alternation keys off each cell's ``last_op`` marker, which survives
    cloning, so a cell widened when model ``M1`` was spawned is deepened
    when ``M2`` is spawned from ``M1``.  ``widen_noise`` breaks duplicated-
    channel gradient symmetry (Net2Net's noise trick).
    """
    events: list[str] = []
    for cell_id in cell_ids:
        cell = model.get_cell(cell_id)
        if not cell.transformable:
            continue
        if cell.last_op == "widen":
            inserted = model.deepen_after(cell_id, rng, count=deepen_cells, round_idx=round_idx)
            events.append(f"deepen {cell_id} (+{len(inserted)} identity cells)")
        else:
            model.widen_cell(
                cell_id,
                widen_factor,
                rng,
                round_idx=round_idx,
                noise=widen_noise,
                mode=widen_mode,
            )
            events.append(f"widen {cell_id} x{widen_factor:g}")
    return events


def reinitialize(model: CellModel, rng: np.random.Generator) -> None:
    """Replace all weights with fresh random values (the '-w' ablation).

    Used to measure the value of function-preserving warmup (Table 3):
    identical architecture, no inherited knowledge.  Initialization mimics
    the he/xavier conventions by key suffix.
    """
    for key, p in model.params().items():
        leaf = key.rsplit(".", 1)[-1]
        if leaf in ("b", "beta", "b_qkv", "b_out"):
            p[...] = 0.0
        elif leaf == "gamma":
            p[...] = 1.0
        elif leaf == "pos":
            p[...] = rng.normal(0.0, 0.02, p.shape)
        else:  # weight matrices / conv kernels
            fan_in = int(np.prod(p.shape[1:])) if p.ndim > 1 else p.shape[0]
            p[...] = rng.normal(0.0, np.sqrt(2.0 / max(fan_in, 1)), p.shape)
    for key, s in model.state().items():
        if key.endswith("running_mean"):
            s[...] = 0.0
        elif key.endswith("running_var"):
            s[...] = 1.0
    model.bump_version()  # wrote through live references, not set_params
