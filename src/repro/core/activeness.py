"""Cell-activeness tracking: which cells bottleneck model accuracy (§4.1).

FedTrans selects the cells to transform by *activeness*, the weight-
normalized gradient norm ``‖∇w_l‖ / ‖w_l‖`` of each cell, averaged over the
last ``T`` rounds (Table 7: T = 5).  Normalizing by the weight norm
"mitigate[s] the bias in selecting cells due to gradient vanishing".

Only *aggregate* gradients are used — the per-round sample-weighted mean of
participant gradients — matching the paper's privacy posture ("FedTrans
solely utilizes aggregate gradients, not the gradients of individual
clients").
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..nn.model import CellModel
from ..nn.param_ops import ParamTree
from ..stateful import Stateful, check_schema, schema_tag

__all__ = ["cell_gradient_norms", "ActivenessTracker"]


def cell_gradient_norms(model: CellModel, grad: ParamTree) -> dict[str, float]:
    """Per-cell ``‖∇w_l‖ / ‖w_l‖`` for one aggregate gradient tree.

    Keys missing from ``grad`` (possible when aggregating across model
    generations) contribute nothing to that cell's norm.
    """
    out: dict[str, float] = {}
    params = model.params()
    for cell in model.cells:
        g2 = 0.0
        w2 = 0.0
        for key in cell.params():
            full = f"{cell.cell_id}/{key}"
            w2 += float(np.sum(params[full] ** 2))
            if full in grad:
                g2 += float(np.sum(grad[full] ** 2))
        out[cell.cell_id] = float(np.sqrt(g2) / max(np.sqrt(w2), 1e-12))
    return out


class ActivenessTracker(Stateful):
    """Sliding-window (length ``T``) average of per-cell activeness."""

    schema = schema_tag("ActivenessTracker")

    def __init__(self, window: int):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._history: dict[str, deque[float]] = {}

    def update(self, model: CellModel, aggregate_grad: ParamTree) -> None:
        """Record one round's aggregate gradient for ``model``."""
        norms = cell_gradient_norms(model, aggregate_grad)
        for cell_id, value in norms.items():
            dq = self._history.setdefault(cell_id, deque(maxlen=self.window))
            dq.append(value)

    def reset(self) -> None:
        """Clear all history (called when the frontier model changes)."""
        self._history.clear()

    def activeness(self, model: CellModel) -> dict[str, float]:
        """Windowed mean activeness for every *transformable* cell."""
        out: dict[str, float] = {}
        for cell in model.cells:
            if not cell.transformable:
                continue
            dq = self._history.get(cell.cell_id)
            out[cell.cell_id] = float(np.mean(dq)) if dq else 0.0
        return out

    def ready(self) -> bool:
        """True once at least one full observation exists."""
        return any(len(dq) > 0 for dq in self._history.values())

    def state_dict(self) -> dict:
        return {
            "schema": self.schema,
            "history": {cid: list(dq) for cid, dq in self._history.items()},
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        self._history = {
            cid: deque((float(x) for x in vals), maxlen=self.window)
            for cid, vals in payload["history"].items()
        }
