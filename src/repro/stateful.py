"""The ``Stateful`` protocol: one seam for every layer's durable run state.

A resumed run must be **bit-identical** to an uninterrupted one
(CONTRACTS.md I1/I2 make that falsifiable), which is only possible if
every layer that holds mutable run state can hand it over and take it
back.  This module defines that seam:

* :class:`Stateful` — ``state_dict() -> dict`` / ``load_state_dict(payload)``.
  Every payload carries a versioned schema tag under ``"schema"``
  (``"<Name>/v<N>"``, built with :func:`schema_tag`), so a checkpoint
  written by one code revision fails loudly — not subtly — against an
  incompatible reader.
* :func:`check_schema` — the guard every ``load_state_dict`` runs first.
* :func:`collect_schemas` — walks a nested payload gathering every schema
  tag, so the checkpoint manifest can list all registrants
  (CONTRACTS.md I9: every registrant appears in the manifest).

Payload conventions (what makes a ``state_dict`` checkpointable):

* JSON-serializable skeleton — dicts with ``str`` keys, lists, ``str`` /
  ``int`` / ``float`` / ``bool`` / ``None`` leaves — plus ``numpy``
  arrays anywhere a leaf is bulk data.  The checkpoint writer
  (:mod:`repro.fl.checkpoint`) splits arrays out losslessly; everything
  else round-trips through JSON, whose shortest-repr float encoding is
  exact, so bit-identity survives the disk.
* Scalars are native Python (``float(x)``, ``int(x)``) — never numpy
  scalars — and integer dict keys are stringified by the owner.
* Tuples come back as lists; a ``load_state_dict`` that cares about
  tuple-ness converts on the way in.
* Configuration (hyperparameters, policy knobs) is **not** payload: the
  restored object keeps its own construction-time config, and payloads
  carry only what training mutated.  Derived caches that a resumed run
  rebuilds deterministically may be omitted.
"""

from __future__ import annotations

__all__ = ["Stateful", "schema_tag", "check_schema", "collect_schemas"]


def schema_tag(name: str, version: int = 1) -> str:
    """The canonical schema tag: ``"<name>/v<version>"``."""
    return f"{name}/v{version}"


def check_schema(payload: object, expected: str) -> dict:
    """Validate a payload's schema tag; returns the payload for chaining."""
    if not isinstance(payload, dict):
        raise TypeError(
            f"state payload for {expected!r} must be a dict, "
            f"got {type(payload).__name__}"
        )
    got = payload.get("schema")
    if got != expected:
        raise ValueError(f"state schema mismatch: expected {expected!r}, got {got!r}")
    return payload


def collect_schemas(payload: object) -> list[str]:
    """Every ``"schema"`` tag in a nested payload, sorted and deduplicated.

    The checkpoint manifest records this list so "every Stateful
    registrant appears in the manifest" is checkable from the file alone.
    """
    found: set[str] = set()

    def walk(node: object) -> None:
        if isinstance(node, dict):
            tag = node.get("schema")
            if isinstance(tag, str):
                found.add(tag)
            for v in node.values():
                walk(v)
        elif isinstance(node, (list, tuple)):
            for v in node:
                walk(v)

    walk(payload)
    return sorted(found)


class Stateful:
    """Base protocol for objects whose run state survives a restart.

    Subclasses define both methods **in their own class body** (the
    repro-lint RL008 rule checks exactly that: an inherited default
    cannot capture state the subclass added) and set ``schema`` to their
    :func:`schema_tag`.  ``state_dict`` returns a fresh payload — no live
    references — and ``load_state_dict`` restores *exactly* the captured
    trajectory: after a restore, every future draw, cache hit, and
    version comparison behaves as if the run had never stopped.
    """

    schema: str = ""

    def state_dict(self) -> dict:
        raise NotImplementedError(
            f"{type(self).__name__} must implement state_dict()"
        )

    def load_state_dict(self, payload: dict) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} must implement load_state_dict()"
        )
