"""Federated datasets: synthetic tasks, partitioners, and named workloads."""

from .federated import ClientData, FederatedDataset, build_federated_dataset
from .partition import (
    dirichlet_partition,
    lognormal_sample_counts,
    natural_partition,
    shard_partition,
)
from .registry import (
    DATASET_BUILDERS,
    cifar10_like,
    femnist_like,
    openimage_like,
    speech_like,
)
from .synthetic import SyntheticTask, SyntheticTaskConfig

__all__ = [
    "ClientData",
    "FederatedDataset",
    "build_federated_dataset",
    "dirichlet_partition",
    "lognormal_sample_counts",
    "natural_partition",
    "shard_partition",
    "DATASET_BUILDERS",
    "cifar10_like",
    "femnist_like",
    "openimage_like",
    "speech_like",
    "SyntheticTask",
    "SyntheticTaskConfig",
]
