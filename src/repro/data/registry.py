"""Named dataset constructors mirroring the paper's four workloads.

Each constructor returns a :class:`~repro.data.federated.FederatedDataset`
shaped like its namesake (classes, partition style, relative client scale)
but procedurally generated and scaled down for CPU simulation.  The
``scale`` argument multiplies client counts; bench profiles pass ~0.03-0.1
(tiny) to 1.0 (paper-scale structure).  EXPERIMENTS.md records the scale
used for every reported number.

Paper workloads (§5.1):

=============  ========  =========  ===========  =====================
dataset        classes   clients    partition    initial model (paper)
=============  ========  =========  ===========  =====================
CIFAR-10       10        100        Dirichlet    MobileNetV3-small
FEMNIST        62        3,400      natural      NASBench201 base
Speech         35        2,618      natural      trimmed ResNet18
OpenImage      600       14,477     natural      trimmed ResNet18
=============  ========  =========  ===========  =====================
"""

from __future__ import annotations

from .federated import FederatedDataset, build_federated_dataset
from .synthetic import SyntheticTaskConfig

__all__ = [
    "cifar10_like",
    "femnist_like",
    "speech_like",
    "openimage_like",
    "DATASET_BUILDERS",
]


def cifar10_like(
    scale: float = 1.0,
    seed: int = 0,
    image: bool = True,
    h: float = 0.5,
    mean_samples: float = 60,
) -> FederatedDataset:
    """CIFAR-10 analogue: 10 classes, 100 clients, Dirichlet partition."""
    shape = (3, 8, 8) if image else (96,)
    cfg = SyntheticTaskConfig(
        num_classes=10,
        input_shape=shape,
        latent_dim=16,
        teacher_width=64,
        class_sep=1.5,
        feature_noise=0.5,
        drift_std=0.4,
        complexity_mix=0.0,
        seed=seed,
    )
    return build_federated_dataset(
        cfg,
        num_clients=max(8, int(100 * scale)),
        mean_samples=mean_samples,
        seed=seed,
        partition="dirichlet",
        h=h,
        name="cifar10_like",
    )


def femnist_like(
    scale: float = 1.0,
    seed: int = 0,
    image: bool = False,
    h: float | None = None,
    mean_samples: float = 50,
    num_classes: int = 62,
) -> FederatedDataset:
    """FEMNIST analogue: 62 classes, 3400 clients, natural partition.

    Passing ``h`` switches to a Dirichlet partition — that is exactly the
    Fig. 13 synthetic-heterogeneity experiment ("we synthesize different
    data heterogeneity levels by controlling the label distribution with a
    Dirichlet distribution and parameter h").
    """
    shape = (1, 8, 8) if image else (64,)
    cfg = SyntheticTaskConfig(
        num_classes=num_classes,
        input_shape=shape,
        latent_dim=24,
        teacher_width=96,
        class_sep=1.6,
        feature_noise=0.5,
        drift_std=0.5,
        complexity_mix=0.0,
        seed=seed,
    )
    return build_federated_dataset(
        cfg,
        num_clients=max(8, int(3400 * scale)),
        mean_samples=mean_samples,
        seed=seed,
        partition="natural" if h is None else "dirichlet",
        h=h if h is not None else 0.5,
        name="femnist_like",
    )


def speech_like(
    scale: float = 1.0,
    seed: int = 0,
    image: bool = True,
    mean_samples: float = 40,
) -> FederatedDataset:
    """Speech-Commands analogue: 35 keywords as (1, 8, 8) 'spectrograms'."""
    shape = (1, 8, 8) if image else (64,)
    cfg = SyntheticTaskConfig(
        num_classes=35,
        input_shape=shape,
        latent_dim=20,
        teacher_width=80,
        class_sep=1.8,
        feature_noise=0.45,
        drift_std=0.35,
        complexity_mix=0.0,
        seed=seed,
    )
    return build_federated_dataset(
        cfg,
        num_clients=max(8, int(2618 * scale)),
        mean_samples=mean_samples,
        seed=seed,
        partition="natural",
        name="speech_like",
    )


def openimage_like(
    scale: float = 1.0,
    seed: int = 0,
    image: bool = True,
    mean_samples: float = 80,
    num_classes: int = 48,
) -> FederatedDataset:
    """OpenImage analogue.

    The paper's OpenImage uses 600 categories over 14,477 clients; we keep
    the *hard-task* role (most classes, most clients, highest per-class
    confusability) at a reduced 48 classes so per-client test sets remain
    meaningful at simulation scale.  Recorded as a substitution in DESIGN.md.
    """
    shape = (3, 8, 8) if image else (96,)
    cfg = SyntheticTaskConfig(
        num_classes=num_classes,
        input_shape=shape,
        latent_dim=28,
        teacher_width=112,
        class_sep=1.3,
        feature_noise=0.55,
        drift_std=0.6,
        complexity_mix=0.0,
        seed=seed,
    )
    return build_federated_dataset(
        cfg,
        num_clients=max(8, int(14477 * scale)),
        mean_samples=mean_samples,
        seed=seed,
        partition="natural",
        name="openimage_like",
    )


DATASET_BUILDERS = {
    "cifar10_like": cifar10_like,
    "femnist_like": femnist_like,
    "speech_like": speech_like,
    "openimage_like": openimage_like,
}
