"""Procedural classification tasks standing in for the paper's datasets.

The offline environment has no FEMNIST/CIFAR-10/Speech-Commands/OpenImage
downloads, so we synthesize tasks with the properties FedTrans actually
exercises (see DESIGN.md §2):

* **learnable but capacity-limited** — inputs are a *nonlinear teacher warp*
  of Gaussian class mixtures, so wider/deeper student models achieve higher
  accuracy and model complexity genuinely matters (Fig. 1b's premise);
* **client heterogeneity** — each client adds its own feature drift and has
  its own label distribution (injected by the partitioners), so per-client
  accuracy varies and personalization is meaningful;
* **image or flat layouts** — features can be emitted flat (``(F,)``) for
  MLP substrates or reshaped + spatially smoothed into ``(C, H, W)`` images
  with local correlations for conv substrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.compute import compute_dtype

__all__ = ["SyntheticTaskConfig", "SyntheticTask"]


@dataclass(frozen=True)
class SyntheticTaskConfig:
    """Parameters of one synthetic classification task family.

    Attributes
    ----------
    num_classes:
        Label cardinality (62 for the FEMNIST-like task, etc.).
    input_shape:
        ``(F,)`` for flat features or ``(C, H, W)`` for images.
    latent_dim:
        Dimensionality of the class-mixture latent space.
    teacher_width:
        Hidden width of the random nonlinear teacher that warps latents into
        observations; larger widths make the task harder for small students.
    class_sep:
        Scale of the class prototype spread; larger is easier.
    within_class_std:
        Latent within-class standard deviation.
    feature_noise:
        Observation noise added after the teacher warp.
    drift_std:
        Standard deviation of per-client feature drift (client non-IID-ness
        beyond label skew).
    complexity_mix:
        Strength of *per-client task-complexity heterogeneity*.  Each client
        carries a complexity level ``c in [0, 1]``; its effective task
        hardness is ``h = 1 - complexity_mix·(1 - c)`` and observations are
        ``(1-h)·linear(z) + h·teacher(z)``.  At 0 every client sees the full
        nonlinear teacher task (capacity helps all clients equally); at 1,
        hardness equals the client's own complexity level — simple clients
        get near-linear tasks a small model fits, complex clients need
        capacity.
    seed:
        Seed for the task-level randomness (prototypes, teacher weights).
    """

    num_classes: int
    input_shape: tuple[int, ...]
    latent_dim: int = 16
    teacher_width: int = 32
    class_sep: float = 3.0
    within_class_std: float = 1.0
    feature_noise: float = 0.3
    drift_std: float = 0.5
    complexity_mix: float = 0.0
    seed: int = 0

    @property
    def num_features(self) -> int:
        return int(np.prod(self.input_shape))


def _smooth_images(x: np.ndarray, shape: tuple[int, int, int]) -> np.ndarray:
    """Reshape flat features to images and apply a 3x3 box blur.

    The blur creates the local spatial correlations conv models exploit; a
    plain reshape of white-ish features would make convolution pointless.
    """
    c, h, w = shape
    imgs = x.reshape(-1, c, h, w)
    padded = np.pad(imgs, ((0, 0), (0, 0), (1, 1), (1, 1)), mode="edge")
    out = np.zeros_like(imgs)
    for di in range(3):
        for dj in range(3):
            out += padded[:, :, di : di + h, dj : dj + w]
    return out / 9.0


@dataclass
class SyntheticTask:
    """A sampler bound to one :class:`SyntheticTaskConfig`.

    Class prototypes and the teacher network are fixed at construction from
    ``config.seed``; per-sample randomness comes from the generator passed to
    :meth:`sample`, so distinct clients draw i.i.d. conditional on their
    class mix and drift.
    """

    config: SyntheticTaskConfig
    _prototypes: np.ndarray = field(init=False, repr=False)
    _w1: np.ndarray = field(init=False, repr=False)
    _w2: np.ndarray = field(init=False, repr=False)
    _w_linear: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self._prototypes = rng.normal(0.0, cfg.class_sep, (cfg.num_classes, cfg.latent_dim))
        self._w1 = rng.normal(0.0, 1.0 / np.sqrt(cfg.latent_dim), (cfg.latent_dim, cfg.teacher_width))
        self._w2 = rng.normal(
            0.0, 1.0 / np.sqrt(cfg.teacher_width), (cfg.teacher_width, cfg.num_features)
        )
        # The "easy" observation map used by low-complexity clients.
        self._w_linear = rng.normal(
            0.0, 1.0 / np.sqrt(cfg.latent_dim), (cfg.latent_dim, cfg.num_features)
        )

    def sample(
        self,
        class_counts: np.ndarray,
        rng: np.random.Generator,
        drift: np.ndarray | None = None,
        complexity: float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw a labelled sample set.

        Parameters
        ----------
        class_counts:
            ``(num_classes,)`` integer counts per class.
        rng:
            Per-client generator.
        drift:
            Optional ``(num_features,)`` client-specific feature offset.
        complexity:
            This client's task-complexity level in [0, 1]; blended with
            ``config.complexity_mix`` (see :class:`SyntheticTaskConfig`).

        Returns
        -------
        x, y:
            Shuffled features (``input_shape``-shaped) and integer labels.
        """
        cfg = self.config
        class_counts = np.asarray(class_counts, dtype=int)
        if class_counts.shape != (cfg.num_classes,):
            raise ValueError(
                f"class_counts must have shape ({cfg.num_classes},), got {class_counts.shape}"
            )
        if not 0.0 <= complexity <= 1.0:
            raise ValueError("complexity must lie in [0, 1]")
        total = int(class_counts.sum())
        if total == 0:
            raise ValueError("cannot sample an empty dataset")
        y = np.repeat(np.arange(cfg.num_classes), class_counts)
        z = self._prototypes[y] + rng.normal(0.0, cfg.within_class_std, (total, cfg.latent_dim))
        hard = np.tanh(z @ self._w1) @ self._w2
        hardness = 1.0 - cfg.complexity_mix * (1.0 - complexity)
        if hardness < 1.0:
            easy = z @ self._w_linear
            x = (1.0 - hardness) * easy + hardness * hard
        else:
            x = hard
        x += rng.normal(0.0, cfg.feature_noise, x.shape)
        if drift is not None:
            x += drift
        perm = rng.permutation(total)
        x, y = x[perm], y[perm]
        if len(cfg.input_shape) == 3:
            x = _smooth_images(x, cfg.input_shape)  # type: ignore[arg-type]
        else:
            x = x.reshape(total, *cfg.input_shape)
        # Features follow the process-wide compute dtype so a float32 run
        # stays float32 through the whole forward/backward (sampling is
        # done in float64 and cast, keeping draws deterministic per seed
        # across dtypes).  A float64 run is untouched.
        dtype = compute_dtype()
        if x.dtype != dtype:
            x = x.astype(dtype)
        return x, y

    def sample_drift(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one client's feature-drift vector."""
        return rng.normal(0.0, self.config.drift_std, self.config.num_features)

    def sample_complexity(self, rng: np.random.Generator) -> float:
        """Draw one client's task-complexity level (uniform in [0, 1])."""
        return float(rng.uniform(0.0, 1.0))
