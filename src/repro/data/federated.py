"""Federated dataset containers: per-client train/test splits."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .partition import dirichlet_partition, natural_partition
from .synthetic import SyntheticTask, SyntheticTaskConfig

__all__ = ["ClientData", "FederatedDataset", "build_federated_dataset"]


@dataclass
class ClientData:
    """One client's local data."""

    client_id: int
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    complexity: float = 1.0  # task-complexity level (diagnostics; see synthetic.py)

    @property
    def num_train(self) -> int:
        return len(self.y_train)

    @property
    def num_test(self) -> int:
        return len(self.y_test)


@dataclass
class FederatedDataset:
    """All clients of one federated task plus task metadata."""

    clients: list[ClientData]
    num_classes: int
    input_shape: tuple[int, ...]
    name: str = "synthetic"

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    def total_train_samples(self) -> int:
        return sum(c.num_train for c in self.clients)

    def pooled_train(self) -> tuple[np.ndarray, np.ndarray]:
        """Concatenate every client's training data (the 'cloud' setting)."""
        x = np.concatenate([c.x_train for c in self.clients])
        y = np.concatenate([c.y_train for c in self.clients])
        return x, y

    def pooled_test(self) -> tuple[np.ndarray, np.ndarray]:
        x = np.concatenate([c.x_test for c in self.clients])
        y = np.concatenate([c.y_test for c in self.clients])
        return x, y

    def label_histogram(self) -> np.ndarray:
        """``(num_clients, num_classes)`` train-label counts (diagnostics)."""
        out = np.zeros((self.num_clients, self.num_classes), dtype=int)
        for i, c in enumerate(self.clients):
            np.add.at(out[i], c.y_train, 1)
        return out


def build_federated_dataset(
    task_config: SyntheticTaskConfig,
    num_clients: int,
    mean_samples: float,
    seed: int,
    partition: str = "natural",
    h: float = 0.5,
    test_fraction: float = 0.25,
    name: str = "synthetic",
) -> FederatedDataset:
    """Generate a full federated dataset.

    Parameters
    ----------
    partition:
        ``"natural"`` (organic skew + size imbalance) or ``"dirichlet"``
        (heterogeneity controlled by ``h``; the Fig. 13 knob).
    test_fraction:
        Per-client held-out fraction, stratified implicitly by sampling the
        same class mixture.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    task = SyntheticTask(task_config)
    rng = np.random.default_rng(seed)
    if partition == "natural":
        counts = natural_partition(num_clients, task_config.num_classes, mean_samples, rng)
    elif partition == "dirichlet":
        counts = dirichlet_partition(
            num_clients, task_config.num_classes, h, int(mean_samples), rng
        )
    else:
        raise ValueError(f"unknown partition scheme {partition!r}")

    clients: list[ClientData] = []
    for cid in range(num_clients):
        crng = np.random.default_rng(seed + 1000 + cid)
        drift = task.sample_drift(crng)
        complexity = task.sample_complexity(crng)
        train_counts = counts[cid]
        # Per-class test counts proportional to train counts (same local
        # distribution), at least 1 test sample for any observed class.
        test_counts = np.where(
            train_counts > 0,
            np.maximum((train_counts * test_fraction).astype(int), 1),
            0,
        )
        if test_counts.sum() == 0:
            test_counts[np.argmax(train_counts)] = 1
        x_tr, y_tr = task.sample(train_counts, crng, drift, complexity)
        x_te, y_te = task.sample(test_counts, crng, drift, complexity)
        clients.append(ClientData(cid, x_tr, y_tr, x_te, y_te, complexity))
    return FederatedDataset(clients, task_config.num_classes, task_config.input_shape, name)
