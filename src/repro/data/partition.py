"""Label-distribution partitioners for federated datasets.

A partitioner decides *how many samples of each class* every client holds.
The output is always an integer matrix of shape ``(num_clients,
num_classes)`` whose row sums equal the requested per-client sample counts.

Three schemes cover the paper's setups:

* :func:`dirichlet_partition` — per-client class mix drawn from
  ``Dirichlet(h)``; lower ``h`` means higher heterogeneity.  This is the
  knob swept in Fig. 13 and the CIFAR-10 partition of §5.1.
* :func:`natural_partition` — the "realistic partition" analogue: strongly
  skewed class mixes (low-concentration Dirichlet) plus log-normal
  per-client sample counts, mirroring FEMNIST/OpenImage's organic imbalance.
* :func:`shard_partition` — the classic pathological sort-and-shard split
  of McMahan et al., kept for tests and comparisons.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dirichlet_partition",
    "natural_partition",
    "shard_partition",
    "lognormal_sample_counts",
]


def lognormal_sample_counts(
    num_clients: int,
    mean_samples: float,
    rng: np.random.Generator,
    sigma: float = 0.6,
    minimum: int = 8,
) -> np.ndarray:
    """Per-client sample counts with realistic long-tailed imbalance."""
    if mean_samples <= 0:
        raise ValueError("mean_samples must be positive")
    mu = np.log(mean_samples) - 0.5 * sigma**2  # so E[count] == mean_samples
    counts = rng.lognormal(mu, sigma, num_clients)
    return np.maximum(counts.round().astype(int), minimum)


def _counts_from_probs(
    probs: np.ndarray, totals: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Multinomial draw per client: probabilities -> integer class counts."""
    out = np.zeros(probs.shape, dtype=int)
    for i, (p, n) in enumerate(zip(probs, totals)):
        out[i] = rng.multinomial(int(n), p)
    return out


def dirichlet_partition(
    num_clients: int,
    num_classes: int,
    h: float,
    samples_per_client: np.ndarray | int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Dirichlet(h) label partition (paper Fig. 13; Diao et al. setup).

    ``h`` is the concentration parameter the paper calls the *data
    heterogeneity level*: lower ``h`` concentrates each client on fewer
    classes.
    """
    if h <= 0:
        raise ValueError("Dirichlet concentration h must be positive")
    totals = (
        np.full(num_clients, samples_per_client, dtype=int)
        if np.isscalar(samples_per_client)
        else np.asarray(samples_per_client, dtype=int)
    )
    probs = rng.dirichlet(np.full(num_classes, h), size=num_clients)
    return _counts_from_probs(probs, totals, rng)


def natural_partition(
    num_clients: int,
    num_classes: int,
    mean_samples: float,
    rng: np.random.Generator,
    concentration: float = 0.5,
    sigma: float = 0.6,
) -> np.ndarray:
    """Organic non-IID partition: skewed classes + long-tailed sizes."""
    totals = lognormal_sample_counts(num_clients, mean_samples, rng, sigma=sigma)
    probs = rng.dirichlet(np.full(num_classes, concentration), size=num_clients)
    return _counts_from_probs(probs, totals, rng)


def shard_partition(
    num_clients: int,
    num_classes: int,
    samples_per_client: int,
    shards_per_client: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sort-and-shard partition: each client sees ``shards_per_client`` classes."""
    if shards_per_client > num_classes:
        raise ValueError("shards_per_client cannot exceed num_classes")
    counts = np.zeros((num_clients, num_classes), dtype=int)
    per_shard = samples_per_client // shards_per_client
    remainder = samples_per_client - per_shard * shards_per_client
    for i in range(num_clients):
        classes = rng.choice(num_classes, size=shards_per_client, replace=False)
        counts[i, classes] += per_shard
        counts[i, classes[0]] += remainder
    return counts
