"""The repro-lint engine: file discovery, context building, suppression.

The engine owns everything that is not rule logic: walking the argument
paths for ``*.py`` files, parsing each one once into a shared
:class:`FileContext` (AST, comment map, import tables, hot-path
markers), dispatching the rule set from :mod:`repro.analysis.rules`, and
applying ``# repro-lint: disable=...`` pragmas.

Pragma grammar::

    # repro-lint: disable=RL003 float64 accumulator for Eq. 5 stability
    # repro-lint: disable=RL001,RL005 fixture exercises both rules

The comma-separated rule ids are followed by a mandatory free-text
reason.  A pragma suppresses matching violations on its own line and —
when it is a standalone comment line — on the next line.  A pragma with
no reason suppresses nothing and is itself reported as ``RL000
bare-pragma``: unexplained suppressions are how contracts rot.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .rules import RULES, Rule, Violation

__all__ = [
    "FileContext",
    "FileReport",
    "LintReport",
    "Linter",
    "lint_paths",
    "lint_source",
]

PRAGMA_RE = re.compile(r"repro-lint:\s*disable=(\S+)(?:\s+(.*\S))?\s*$")
HOTPATH_RE = re.compile(r"#\s*repro:\s*hotpath\b")


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: Path
    #: normalized posix-style path used for rule scoping and reporting
    rel: str
    source: str
    tree: ast.Module
    #: dotted module name when the file sits under a ``repro`` package root
    module: str | None
    is_package: bool
    #: lineno -> full comment text (including the leading ``#``)
    comments: dict[int, str] = field(default_factory=dict)
    #: top-level module names bound by ``import X`` / ``import X.Y``
    imports: set[str] = field(default_factory=set)
    #: name -> source module for ``from M import name``
    from_imports: dict[str, str] = field(default_factory=dict)
    #: linenos of ``def`` statements marked ``# repro: hotpath``
    hotpath_defs: set[int] = field(default_factory=set)
    #: linenos whose only content is a comment
    comment_only_lines: set[int] = field(default_factory=set)


@dataclass(frozen=True)
class _Pragma:
    lineno: int
    rule_ids: tuple[str, ...]
    reason: str


@dataclass
class FileReport:
    """Lint outcome for one file."""

    rel: str
    violations: list[Violation]
    suppressed: int = 0

    def format_lines(self) -> list[str]:
        return [v.format(self.rel) for v in self.violations]


@dataclass
class LintReport:
    """Aggregate outcome over every scanned file."""

    files: list[FileReport] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def violations(self) -> list[Violation]:
        return [v for f in self.files for v in f.violations]

    @property
    def suppressed(self) -> int:
        return sum(f.suppressed for f in self.files)

    @property
    def ok(self) -> bool:
        return not self.violations

    def format_lines(self) -> list[str]:
        return [line for f in self.files for line in f.format_lines()]


def _normalize_rel(path: Path, root: Path | None) -> str:
    p = path
    if root is not None:
        try:
            p = path.resolve().relative_to(root.resolve())
        except ValueError:
            p = path
    return p.as_posix()


def _module_name(rel: str) -> tuple[str | None, bool]:
    """Derive a dotted module name for files under a ``repro`` tree."""
    parts = rel.split("/")
    if "repro" not in parts:
        return None, False
    sub = parts[parts.index("repro") :]
    if not sub[-1].endswith(".py"):
        return None, False
    is_package = sub[-1] == "__init__.py"
    if is_package:
        sub = sub[:-1]
    else:
        sub[-1] = sub[-1][: -len(".py")]
    return ".".join(sub), is_package


def build_context(source: str, rel: str, path: Path | None = None) -> FileContext:
    """Parse one file into the shared rule-facing context.

    Raises :class:`SyntaxError` when the source does not parse; the
    caller converts that into a reported violation.
    """
    tree = ast.parse(source, filename=rel)
    module, is_package = _module_name(rel)
    ctx = FileContext(
        path=path if path is not None else Path(rel),
        rel=rel,
        source=source,
        tree=tree,
        module=module,
        is_package=is_package,
    )
    _collect_comments(ctx)
    _collect_imports(ctx)
    _collect_hotpath_defs(ctx)
    return ctx


def _collect_comments(ctx: FileContext) -> None:
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(ctx.source).readline))
    except tokenize.TokenError:  # unterminated strings etc.; AST parsed, so rare
        return
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        lineno = tok.start[0]
        ctx.comments[lineno] = tok.string
        line = tok.line.strip()
        if line.startswith("#"):
            ctx.comment_only_lines.add(lineno)


def _collect_imports(ctx: FileContext) -> None:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                ctx.imports.add(alias.name.split(".")[0])
                if alias.asname:
                    ctx.imports.add(alias.asname)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                ctx.from_imports[alias.asname or alias.name] = node.module


def _collect_hotpath_defs(ctx: FileContext) -> None:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # marker sits on the def line or the line directly above it
        # (above any decorators, too, so both placements work)
        candidates = {node.lineno, node.lineno - 1}
        if node.decorator_list:
            first = min(d.lineno for d in node.decorator_list)
            candidates.update({first - 1})
        for lineno in candidates:
            comment = ctx.comments.get(lineno)
            if comment and HOTPATH_RE.search(comment):
                ctx.hotpath_defs.add(node.lineno)
                break


def _collect_pragmas(ctx: FileContext) -> tuple[list[_Pragma], list[Violation]]:
    pragmas: list[_Pragma] = []
    bare: list[Violation] = []
    for lineno, comment in ctx.comments.items():
        m = PRAGMA_RE.search(comment)
        if not m:
            continue
        rule_ids = tuple(r for r in m.group(1).split(",") if r)
        reason = (m.group(2) or "").strip()
        if not reason:
            bare.append(
                Violation(
                    rule_id="RL000",
                    rule_name="bare-pragma",
                    lineno=lineno,
                    col=0,
                    message=(
                        "suppression pragma without a reason; write "
                        "'# repro-lint: disable=<ids> <why>' (the reason is "
                        "mandatory, and the bare pragma suppresses nothing)"
                    ),
                )
            )
            continue
        pragmas.append(_Pragma(lineno=lineno, rule_ids=rule_ids, reason=reason))
    return pragmas, bare


def _suppression_map(
    ctx: FileContext, pragmas: list[_Pragma]
) -> dict[int, set[str]]:
    suppress: dict[int, set[str]] = {}
    for p in pragmas:
        lines = [p.lineno]
        if p.lineno in ctx.comment_only_lines:
            lines.append(p.lineno + 1)
        for lineno in lines:
            suppress.setdefault(lineno, set()).update(p.rule_ids)
    return suppress


class Linter:
    """Run a rule set over files or in-memory sources."""

    def __init__(
        self, rules: Sequence[Rule] | None = None, root: Path | None = None
    ) -> None:
        self.rules: tuple[Rule, ...] = tuple(rules) if rules is not None else RULES
        self.root = root

    # -- discovery --------------------------------------------------------

    @staticmethod
    def iter_python_files(paths: Iterable[Path]) -> list[Path]:
        files: list[Path] = []
        for path in paths:
            if path.is_dir():
                files.extend(
                    p
                    for p in sorted(path.rglob("*.py"))
                    if "__pycache__" not in p.parts
                    and not any(part.startswith(".") for part in p.parts)
                )
            elif path.suffix == ".py":
                files.append(path)
        return files

    # -- entry points -----------------------------------------------------

    def lint_paths(self, paths: Iterable[Path]) -> LintReport:
        report = LintReport()
        for path in self.iter_python_files(paths):
            rel = _normalize_rel(path, self.root)
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as exc:
                report.files.append(
                    FileReport(
                        rel=rel,
                        violations=[
                            Violation("RL000", "unreadable", 1, 0, str(exc))
                        ],
                    )
                )
                continue
            report.files.append(self.lint_source(source, rel, path=path))
            report.files_scanned += 1
        return report

    def lint_source(
        self, source: str, rel: str, path: Path | None = None
    ) -> FileReport:
        """Lint one in-memory source blob as if it lived at ``rel``.

        ``rel`` drives rule scoping (e.g. ``src/repro/nn/kernels.py``
        opts into RL003), which is what the fixture tests lean on.
        """
        try:
            ctx = build_context(source, rel, path=path)
        except SyntaxError as exc:
            return FileReport(
                rel=rel,
                violations=[
                    Violation(
                        "RL000",
                        "syntax-error",
                        exc.lineno or 1,
                        (exc.offset or 1) - 1,
                        f"file does not parse: {exc.msg}",
                    )
                ],
            )
        pragmas, bare = _collect_pragmas(ctx)
        suppress = _suppression_map(ctx, pragmas)
        raw: list[Violation] = []
        for rule in self.rules:
            if rule.applies(ctx):
                raw.extend(rule.check(ctx))
        kept: list[Violation] = list(bare)
        suppressed = 0
        for v in raw:
            if v.rule_id in suppress.get(v.lineno, ()):  # pragma matched
                suppressed += 1
            else:
                kept.append(v)
        kept.sort(key=lambda v: (v.lineno, v.col, v.rule_id))
        return FileReport(rel=rel, violations=kept, suppressed=suppressed)


def lint_paths(
    paths: Iterable[Path], rules: Sequence[Rule] | None = None
) -> LintReport:
    """Module-level convenience wrapper used by the CLI and tests."""
    return Linter(rules=rules).lint_paths(paths)


def lint_source(
    source: str, rel: str, rules: Sequence[Rule] | None = None
) -> FileReport:
    """Lint an in-memory snippet under a virtual path (fixture tests)."""
    return Linter(rules=rules).lint_source(source, rel)
