"""The repro-lint rule set.

Each rule guards one named engine contract (see ``CONTRACTS.md``).  Rules
are plain objects with an ``applies(ctx)`` scope predicate and a
``check(ctx)`` generator yielding :class:`Violation` records; the engine
in :mod:`repro.analysis.engine` handles file discovery, pragma
suppression, and reporting, so rules stay purely syntactic.

Rule ids are stable and individually suppressible::

    total = float(np.sum(sq))  # repro-lint: disable=RL003 float64 accumulator

A pragma without a trailing reason does not suppress anything — the
engine reports it as ``RL000 bare-pragma`` instead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import FileContext

__all__ = ["Violation", "Rule", "RULES", "RULES_BY_ID"]


@dataclass(frozen=True)
class Violation:
    """One rule hit at a source location (lineno is 1-based)."""

    rule_id: str
    rule_name: str
    lineno: int
    col: int
    message: str

    def format(self, path: str) -> str:
        return (
            f"{path}:{self.lineno}:{self.col}: "
            f"{self.rule_id} {self.rule_name}: {self.message}"
        )


def dotted_name(node: ast.AST) -> str | None:
    """Render an ``ast.Attribute``/``ast.Name`` chain as ``a.b.c``.

    Returns None for anything that is not a pure name chain (calls,
    subscripts, literals) — rules only match static attribute paths.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def walk_no_nested_defs(stmts: Iterable[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statement bodies without descending into nested def/class.

    Used by scope-sensitive rules (RL004) where a nested closure has its
    own contract and must not satisfy — or trip — the enclosing method's.
    """
    stack: list[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.append(child)


class Rule:
    """Base class: subclasses set ``rule_id``/``rule_name`` and ``check``."""

    rule_id: str = "RL000"
    rule_name: str = "unnamed"
    #: one-line contract statement, shown by ``lint --list-rules``
    summary: str = ""

    def applies(self, ctx: "FileContext") -> bool:
        return True

    def check(self, ctx: "FileContext") -> Iterator[Violation]:  # pragma: no cover
        raise NotImplementedError

    def violation(self, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule_id=self.rule_id,
            rule_name=self.rule_name,
            lineno=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


# ---------------------------------------------------------------------------
# RL001 — no global RNG streams in library code
# ---------------------------------------------------------------------------


class NoGlobalRng(Rule):
    """Library code must draw from explicit, seeded ``Generator`` objects.

    The determinism contract routes every random draw through
    ``SeedSequence(seed, spawn_key=...)``-derived generators so results
    are independent of call order, thread interleaving, and process
    placement.  ``np.random.<fn>`` module-level calls and the stdlib
    ``random`` module share hidden global state and break all three.
    """

    rule_id = "RL001"
    rule_name = "no-global-rng"
    summary = (
        "no np.random.<fn> / random.* global-state draws; "
        "default_rng() needs an explicit seed"
    )

    # Constructors that take (or are) explicit entropy are fine.
    _NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence", "BitGenerator"})

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            yield from self._check_call(ctx, node, chain)

    def _check_call(
        self, ctx: "FileContext", node: ast.Call, chain: str
    ) -> Iterator[Violation]:
        parts = chain.split(".")
        root = parts[0]
        # np.random.<fn>(...) / numpy.random.<fn>(...)
        if len(parts) >= 3 and parts[1] == "random" and root in ("np", "numpy"):
            fn = parts[-1]
            if fn not in self._NP_RANDOM_OK:
                yield self.violation(
                    node,
                    f"{chain}() draws from the process-global NumPy RNG; "
                    "pass an explicit np.random.Generator instead",
                )
                return
            if fn == "default_rng" and not node.args and not node.keywords:
                yield self.violation(
                    node,
                    "default_rng() without a seed pulls OS entropy; pass a "
                    "seed or a spawned SeedSequence",
                )
            return
        # bare default_rng() via `from numpy.random import default_rng`
        if (
            chain == "default_rng"
            and ctx.from_imports.get("default_rng") in ("numpy.random", "np.random")
            and not node.args
            and not node.keywords
        ):
            yield self.violation(
                node,
                "default_rng() without a seed pulls OS entropy; pass a "
                "seed or a spawned SeedSequence",
            )
            return
        # stdlib random: `random.shuffle(...)` or `from random import shuffle`
        if root == "random" and len(parts) > 1 and "random" in ctx.imports:
            yield self.violation(
                node,
                f"{chain}() uses the stdlib global RNG; draw from an "
                "explicit np.random.Generator",
            )
            return
        if len(parts) == 1 and ctx.from_imports.get(root) == "random":
            yield self.violation(
                node,
                f"{root}() (from the stdlib random module) uses the global "
                "RNG; draw from an explicit np.random.Generator",
            )


# ---------------------------------------------------------------------------
# RL002 — no wall-clock reads in simulation paths
# ---------------------------------------------------------------------------


class NoWallclock(Rule):
    """Simulation code runs on virtual time from ``DeviceTrace`` models.

    A ``time.time()``/``datetime.now()`` read in `repro/fl/` or
    `repro/core/` couples round pacing and straggler decisions to host
    load, which destroys run-to-run bit-identity and makes the
    checkpoint/resume roadmap item (resume must equal uninterrupted)
    impossible.  Benchmarq harnesses may measure wall time; the engine
    may not.
    """

    rule_id = "RL002"
    rule_name = "no-wallclock"
    summary = "no time.time/monotonic/datetime.now in repro/fl + repro/core"

    _BANNED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "datetime.now",
            "datetime.utcnow",
            "datetime.today",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "date.today",
            "datetime.date.today",
        }
    )
    _FROM_TIME = frozenset(
        {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
            "process_time",
        }
    )

    def applies(self, ctx: "FileContext") -> bool:
        return "repro/fl/" in ctx.rel or "repro/core/" in ctx.rel

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            root = chain.split(".")[0]
            known = root in ctx.imports or root in ctx.from_imports
            if chain in self._BANNED and known:
                yield self.violation(
                    node,
                    f"{chain}() reads the wall clock inside the simulator; "
                    "use virtual time from the device/pacing models",
                )
            elif (
                "." not in chain
                and ctx.from_imports.get(chain) == "time"
                and chain in self._FROM_TIME
            ):
                yield self.violation(
                    node,
                    f"{chain}() (from time) reads the wall clock inside the "
                    "simulator; use virtual time from the device/pacing models",
                )


# ---------------------------------------------------------------------------
# RL003 — dtype hygiene in nn kernels
# ---------------------------------------------------------------------------


class DtypeHygiene(Rule):
    """`repro/nn/` kernels take their working dtype from ``repro.nn.compute``.

    Hard-coding ``np.float64``/``np.float32``/``dtype=float`` in a kernel
    silently pins it to one precision and breaks the configurable
    substrate from PR 5.  Reductions that intentionally accumulate at
    float64 should call :func:`repro.nn.compute.accum_dtype` (the
    documented accumulator allowlist) instead of naming the dtype.
    """

    rule_id = "RL003"
    rule_name = "dtype-hygiene"
    summary = (
        "no hard-coded np.float64/np.float32/dtype=float in repro/nn "
        "kernels; use compute_dtype()/accum_dtype()"
    )

    _BANNED = frozenset(
        {"np.float64", "np.float32", "numpy.float64", "numpy.float32"}
    )

    def applies(self, ctx: "FileContext") -> bool:
        return "repro/nn/" in ctx.rel and not ctx.rel.endswith("nn/compute.py")

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                chain = dotted_name(node)
                if chain in self._BANNED:
                    yield self.violation(
                        node,
                        f"hard-coded {chain}; route through "
                        "repro.nn.compute (compute_dtype()/accum_dtype())",
                    )
            elif isinstance(node, ast.keyword) and node.arg == "dtype":
                if isinstance(node.value, ast.Name) and node.value.id == "float":
                    yield self.violation(
                        node.value,
                        "dtype=float pins the platform double; route through "
                        "repro.nn.compute (compute_dtype()/accum_dtype())",
                    )


# ---------------------------------------------------------------------------
# RL004 — bump_version() on every exit path
# ---------------------------------------------------------------------------


class VersionBump(Rule):
    """Mutating methods on ``CellModel``/``Cell`` must bump the version.

    The eval cache, delta snapshot publishing, and memoized cost model
    are all keyed on ``CellModel.version``; a method that writes into
    ``params()``/``state()``-reachable arrays and returns without
    ``bump_version()`` leaves every one of those caches stale.  The rule
    requires a bump on *every* non-raising exit path (``raise`` exits are
    failures and may skip it; bumps only inside a loop body do not count
    because the loop may run zero times).
    """

    rule_id = "RL004"
    rule_name = "version-bump"
    summary = (
        "CellModel/Cell methods writing params()/state() arrays must "
        "bump_version() on every exit path"
    )

    _EXEMPT = frozenset(
        {"bump_version", "sync_version", "__init__", "__deepcopy__", "__reduce__"}
    )

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not (node.name in ("CellModel", "Cell") or node.name.endswith("Cell")):
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if item.name in self._EXEMPT:
                    continue
                yield from self._check_method(item)

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def _is_live_tree_call(node: ast.AST) -> bool:
        """True for ``<expr>.params()`` / ``<expr>.state()`` calls."""
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("params", "state")
        )

    @classmethod
    def _subscript_base(cls, node: ast.AST) -> ast.AST:
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        return node

    def _collect_writes(self, fn: ast.FunctionDef) -> list[int]:
        """Line numbers of assignments into params()/state()-reachable arrays."""
        tracked: set[str] = set()
        for node in walk_no_nested_defs(fn.body):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                tgt = node.targets[0]
                if isinstance(tgt, ast.Name) and self._is_live_tree_call(node.value):
                    tracked.add(tgt.id)
        writes: list[int] = []
        for node in walk_no_nested_defs(fn.body):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for tgt in targets:
                if not isinstance(tgt, ast.Subscript):
                    continue
                base = self._subscript_base(tgt)
                if isinstance(base, ast.Name) and base.id in tracked:
                    writes.append(node.lineno)
                elif self._is_live_tree_call(base):
                    writes.append(node.lineno)
        return writes

    @staticmethod
    def _is_bump_stmt(stmt: ast.stmt) -> bool:
        if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
            return False
        func = stmt.value.func
        if isinstance(func, ast.Attribute):
            return func.attr == "bump_version"
        return isinstance(func, ast.Name) and func.id == "bump_version"

    def _scan(
        self, stmts: list[ast.stmt], bumped: bool
    ) -> tuple[bool, list[int], bool]:
        """Abstract-interpret a statement list for the 'bumped' flag.

        Returns ``(bumped_at_fallthrough, bad_exit_linenos, terminated)``
        where ``terminated`` means every path through the list returns or
        raises (no fall-through).
        """
        bad: list[int] = []
        for stmt in stmts:
            if self._is_bump_stmt(stmt):
                bumped = True
            elif isinstance(stmt, ast.Return):
                if not bumped:
                    bad.append(stmt.lineno)
                return bumped, bad, True
            elif isinstance(stmt, ast.Raise):
                # error exits are allowed to skip the bump
                return bumped, bad, True
            elif isinstance(stmt, ast.If):
                b_then, bad_t, t_then = self._scan(stmt.body, bumped)
                b_else, bad_e, t_else = self._scan(stmt.orelse, bumped)
                bad += bad_t + bad_e
                if t_then and t_else:
                    return bumped, bad, True
                conts = []
                if not t_then:
                    conts.append(b_then)
                if not t_else:
                    conts.append(b_else)
                bumped = all(conts)
            elif isinstance(stmt, (ast.For, ast.While)):
                # body may run zero times: a bump inside does not count
                _, bad_b, _ = self._scan(stmt.body, bumped)
                _, bad_o, _ = self._scan(stmt.orelse, bumped)
                bad += bad_b + bad_o
            elif isinstance(stmt, ast.With):
                b, bad_w, term = self._scan(stmt.body, bumped)
                bad += bad_w
                if term:
                    return b, bad, True
                bumped = b
            elif isinstance(stmt, ast.Try):
                b_try, bad_t, t_try = self._scan(stmt.body, bumped)
                bad += bad_t
                for handler in stmt.handlers:
                    _, bad_h, _ = self._scan(handler.body, bumped)
                    bad += bad_h
                if stmt.finalbody:
                    b_fin, bad_f, t_fin = self._scan(stmt.finalbody, bumped)
                    bad += bad_f
                    if t_fin:
                        return b_fin, bad, True
                    bumped = b_fin or (b_try and not t_try)
                elif not t_try:
                    bumped = b_try
        return bumped, bad, False

    def _check_method(self, fn: ast.FunctionDef) -> Iterator[Violation]:
        writes = self._collect_writes(fn)
        if not writes:
            return
        bumped, bad, terminated = self._scan(fn.body, False)
        if not terminated and not bumped:
            bad.append(fn.body[-1].lineno if fn.body else fn.lineno)
        for lineno in sorted(set(bad)):
            yield Violation(
                rule_id=self.rule_id,
                rule_name=self.rule_name,
                lineno=lineno,
                col=0,
                message=(
                    f"{fn.name}() writes into params()/state() arrays "
                    f"(first write at line {min(writes)}) but exits here "
                    "without bump_version(); stale version corrupts the "
                    "eval cache and delta publishing"
                ),
            )


# ---------------------------------------------------------------------------
# RL005 — no fresh allocations inside hot-path functions
# ---------------------------------------------------------------------------


class HotpathAlloc(Rule):
    """Functions marked ``# repro: hotpath`` must not allocate per call.

    PR 5 moved the per-round compute onto pooled ``Workspace`` buffers;
    a stray ``np.empty``/``np.zeros``/``np.concatenate`` in a marked
    function reintroduces per-call allocation churn exactly where the
    profiler said it hurts.  Mark the function only when it is
    allocation-free (or acquires scratch via ``Workspace.get``).
    """

    rule_id = "RL005"
    rule_name = "hotpath-alloc"
    summary = (
        "no np.empty/np.zeros/np.concatenate inside functions marked "
        "'# repro: hotpath'; use pooled Workspace buffers"
    )

    _BANNED_FNS = frozenset(
        {"empty", "zeros", "concatenate", "empty_like", "zeros_like"}
    )

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        if not ctx.hotpath_defs:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.lineno not in ctx.hotpath_defs:
                continue
            for sub in walk_no_nested_defs(node.body):
                if not isinstance(sub, ast.Call):
                    continue
                chain = dotted_name(sub.func)
                if chain is None:
                    continue
                parts = chain.split(".")
                if (
                    len(parts) == 2
                    and parts[0] in ("np", "numpy")
                    and parts[1] in self._BANNED_FNS
                ):
                    yield self.violation(
                        sub,
                        f"{chain}() allocates inside hot-path function "
                        f"{node.name}(); acquire a pooled Workspace buffer "
                        "instead",
                    )


# ---------------------------------------------------------------------------
# RL006 — shared-memory segment lifecycle
# ---------------------------------------------------------------------------


class ShmLifecycle(Rule):
    """Every created shm segment needs a guaranteed unlink in scope.

    ``SharedMemory(create=True)`` allocates a kernel object that outlives
    the process on abnormal exit.  The creating class (or module, for
    free functions) must also call ``.unlink()`` with the call protected
    by a ``try/finally`` **or** register a ``weakref.finalize`` backstop,
    the pattern established in ``repro.fl.shm``.
    """

    rule_id = "RL006"
    rule_name = "shm-lifecycle"
    summary = (
        "SharedMemory(create=True) must pair with unlink in a "
        "finally/finalizer in the same class or module"
    )

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        creates = [
            node
            for node in ast.walk(ctx.tree)
            if self._is_create_call(node)
        ]
        if not creates:
            return
        parents = self._parent_map(ctx.tree)
        for node in creates:
            scope = self._enclosing_scope(node, parents, ctx.tree)
            # Finalizer callbacks are often module-level functions (a bound
            # method would keep the owner alive and never fire), so fall
            # back to module scope before flagging.
            ok = self._scope_has_guarded_unlink(scope, parents) or (
                scope is not ctx.tree
                and self._scope_has_guarded_unlink(ctx.tree, parents)
            )
            if not ok:
                yield self.violation(
                    node,
                    "SharedMemory(create=True) without a guaranteed "
                    "unlink (try/finally or weakref.finalize) in the same "
                    "scope; leaked segments survive the process",
                )

    @staticmethod
    def _is_create_call(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        chain = dotted_name(node.func)
        if chain is None or chain.split(".")[-1] != "SharedMemory":
            return False
        return any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )

    @staticmethod
    def _parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        return parents

    @staticmethod
    def _enclosing_scope(
        node: ast.AST, parents: dict[ast.AST, ast.AST], tree: ast.AST
    ) -> ast.AST:
        cur = node
        while cur in parents:
            cur = parents[cur]
            if isinstance(cur, ast.ClassDef):
                return cur
        return tree

    @staticmethod
    def _scope_has_guarded_unlink(
        scope: ast.AST, parents: dict[ast.AST, ast.AST]
    ) -> bool:
        has_guarded_unlink = False
        has_finalizer = False
        has_unlink = False
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            leaf = chain.split(".")[-1]
            if leaf == "unlink":
                has_unlink = True
                cur: ast.AST = node
                while cur in parents:
                    cur = parents[cur]
                    if isinstance(cur, ast.Try):
                        has_guarded_unlink = True
                        break
                    if isinstance(cur, (ast.FunctionDef, ast.ClassDef)):
                        break
            elif leaf in ("finalize", "make_finalizer"):
                has_finalizer = True
        return has_guarded_unlink or (has_unlink and has_finalizer)


# ---------------------------------------------------------------------------
# RL007 — no imports of deprecated modules
# ---------------------------------------------------------------------------


class DeprecatedImport(Rule):
    """Retired shims must not regrow callers.

    PR 4 replaced ``repro.fl.selection`` with the pluggable
    ``repro.fl.scheduling`` subsystem; this PR deletes the shim.  The
    rule keeps the old import path from quietly coming back in new code.
    """

    rule_id = "RL007"
    rule_name = "deprecated-import"
    summary = "no imports of retired modules (repro.fl.selection)"

    _DEPRECATED = {
        "repro.fl.selection": (
            "use repro.fl.scheduling (ClientSelector / uniform_choice)"
        ),
    }

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    hit = self._match(alias.name)
                    if hit:
                        yield self._flag(node, hit)
            elif isinstance(node, ast.ImportFrom):
                module = self._resolve_from(node, ctx)
                if module is None:
                    continue
                hit = self._match(module)
                if hit:
                    yield self._flag(node, hit)
                    continue
                for alias in node.names:
                    hit = self._match(f"{module}.{alias.name}")
                    if hit:
                        yield self._flag(node, hit)

    def _match(self, module: str) -> str | None:
        for dep in self._DEPRECATED:
            if module == dep or module.startswith(dep + "."):
                return dep
        return None

    def _flag(self, node: ast.AST, dep: str) -> Violation:
        return self.violation(
            node, f"import of retired module {dep}; {self._DEPRECATED[dep]}"
        )

    @staticmethod
    def _resolve_from(node: ast.ImportFrom, ctx: "FileContext") -> str | None:
        if node.level == 0:
            return node.module
        if ctx.module is None:
            return None
        parts = ctx.module.split(".")
        # for module a.b.c, level 1 anchors at package a.b; for package
        # a.b (an __init__), level 1 anchors at a.b itself
        anchor = parts if ctx.is_package else parts[:-1]
        if node.level - 1 > len(anchor):
            return None
        base = anchor[: len(anchor) - (node.level - 1)]
        if not base and not node.module:
            return None
        return ".".join(base + ([node.module] if node.module else []))


# ---------------------------------------------------------------------------
# RL008 — mutable run state must register as Stateful
# ---------------------------------------------------------------------------


class StatefulCoverage(Rule):
    """Engine classes holding mutable run state must be checkpointable.

    The durable-runs contract (CONTRACTS.md I9) says a checkpoint captures
    *everything* the trajectory depends on.  That only holds if every class
    in the engine that accumulates state across calls participates in the
    ``Stateful`` protocol — a class that mutates ``self`` outside its
    constructor but defines no ``state_dict``/``load_state_dict`` is state
    a checkpoint silently drops, and the resulting resume diverges in ways
    no test points at the culprit for.

    The rule is syntactic on purpose: a top-level class in ``repro/fl/`` or
    ``repro/core/`` whose methods (other than ``__init__`` /
    ``__post_init__``) assign to ``self``-rooted targets or call mutating
    container methods on them must define **both** protocol methods *in its
    own class body* (the Stateful docstring's registration convention —
    inheriting a parent's payload silently misses the subclass's extra
    fields, which is exactly the bug class this rule exists to catch).
    Derived-state classes satisfy it with explicit empty payloads (see
    ``repro.fl.executor``), which documents the drop instead of defaulting
    into it.
    """

    rule_id = "RL008"
    rule_name = "stateful-coverage"
    summary = (
        "repro/fl + repro/core classes mutating self outside __init__ "
        "must define state_dict() and load_state_dict() in their own body"
    )

    _MUTATORS = frozenset(
        {
            "append",
            "appendleft",
            "add",
            "extend",
            "update",
            "insert",
            "setdefault",
            "pop",
            "popitem",
            "remove",
            "discard",
            "clear",
        }
    )
    _CONSTRUCTORS = frozenset({"__init__", "__post_init__"})
    _PROTOCOL = frozenset({"state_dict", "load_state_dict"})

    def applies(self, ctx: "FileContext") -> bool:
        return "repro/fl/" in ctx.rel or "repro/core/" in ctx.rel

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(node)

    def _check_class(self, cls: ast.ClassDef) -> Iterator[Violation]:
        defined = {
            item.name
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if self._PROTOCOL <= defined:
            return
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in self._CONSTRUCTORS or self._is_static(item):
                continue
            self_name = self._self_name(item)
            if self_name is None:
                continue
            site = self._first_mutation(item, self_name)
            if site is not None:
                missing = sorted(self._PROTOCOL - defined)
                yield self.violation(
                    site,
                    f"{cls.name}.{item.name}() mutates run state on self but "
                    f"{cls.name} does not define {' / '.join(missing)} in its "
                    "own class body; register it as Stateful (empty payload "
                    "if the state is derived) so checkpoints stay complete",
                )
                return  # one violation per class is enough to act on

    @staticmethod
    def _is_static(fn: ast.AST) -> bool:
        return any(
            isinstance(d, ast.Name) and d.id == "staticmethod"
            for d in fn.decorator_list
        )

    @staticmethod
    def _self_name(fn: ast.AST) -> str | None:
        args = fn.args.posonlyargs + fn.args.args
        return args[0].arg if args else None

    @classmethod
    def _is_self_rooted(cls, node: ast.AST, self_name: str) -> bool:
        """True when an attribute/subscript chain bottoms out at ``self.x``."""
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            inner = node.value
            if isinstance(node, ast.Attribute) and isinstance(inner, ast.Name):
                return inner.id == self_name
            node = inner
        return False

    def _first_mutation(self, fn: ast.AST, self_name: str) -> ast.AST | None:
        for node in walk_no_nested_defs(fn.body):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for tgt in targets:
                if self._is_self_rooted(tgt, self_name):
                    return node
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._MUTATORS
                and self._is_self_rooted(node.func, self_name)
            ):
                return node
        return None


# ---------------------------------------------------------------------------
# RL009 — no silently swallowed exceptions in the engine
# ---------------------------------------------------------------------------


class SilentExcept(Rule):
    """Fault handling in ``repro/fl/`` must record what it caught.

    The fault-tolerance contract (CONTRACTS.md I10) meters every failure:
    injected or real, each crash/retry/quarantine lands in the recovery
    ledger.  A bare ``except:`` / ``except Exception:`` whose body is just
    ``pass`` destroys that accounting — the error vanishes without a log
    line, a counter bump, or a re-raise, which is exactly how the shm
    cleanup path silently leaked segments before this PR.  Handlers must
    either scope the exception type narrowly or do something observable
    (log, meter, re-raise) in the body.
    """

    rule_id = "RL009"
    rule_name = "silent-except"
    summary = (
        "no bare/broad except with a pass-only body in repro/fl/; "
        "log, meter, or re-raise instead"
    )

    _BROAD = frozenset({"Exception", "BaseException"})

    def applies(self, ctx: "FileContext") -> bool:
        return "repro/fl/" in ctx.rel

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._body_is_silent(node.body):
                caught = "bare except" if node.type is None else (
                    f"except {dotted_name(node.type) or 'Exception'}"
                )
                yield self.violation(
                    node,
                    f"{caught} with a pass-only body swallows the error "
                    "without metering it; log it, record a fault, narrow "
                    "the exception type, or re-raise",
                )

    def _is_broad(self, type_node: ast.expr | None) -> bool:
        if type_node is None:
            return True  # bare except:
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(elt) for elt in type_node.elts)
        chain = dotted_name(type_node)
        return chain is not None and chain.split(".")[-1] in self._BROAD

    @staticmethod
    def _body_is_silent(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and (
                    stmt.value.value is Ellipsis
                    or isinstance(stmt.value.value, str)  # docstring-only
                )
            ):
                continue
            return False
        return True


RULES: tuple[Rule, ...] = (
    NoGlobalRng(),
    NoWallclock(),
    DtypeHygiene(),
    VersionBump(),
    HotpathAlloc(),
    ShmLifecycle(),
    DeprecatedImport(),
    StatefulCoverage(),
    SilentExcept(),
)

RULES_BY_ID: dict[str, Rule] = {rule.rule_id: rule for rule in RULES}
