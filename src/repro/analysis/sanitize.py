"""Runtime sanitizer: dynamic checks for what the AST cannot see.

Two checks, both off by default and enabled together via the
``REPRO_SANITIZE=1`` environment variable, the CLI ``--sanitize`` flag,
or :func:`set_sanitizer`:

**Write-after-publish guard** — while an executor round is in flight the
server models are *published*: workers clone them (train) or read them
(eval/logits), and any concurrent write corrupts an unpredictable subset
of the round.  :func:`published` flips every ``params()``/``state()``
array read-only for the duration of the round, so a racing write raises
NumPy's ``ValueError: assignment destination is read-only`` at the
exact offending statement instead of silently skewing results.  Worker-
side shared-memory views are *always* read-only (see ``repro.fl.shm``);
this guard extends the same protection to the coordinator-side originals
on every backend, including serial and thread where memory is shared.

**Version/fingerprint cross-check** — the eval cache, logits cache, and
delta snapshot publishing all trust ``CellModel.version``.  The static
rule RL004 catches the *pattern* of a missed ``bump_version()``; the
:class:`VersionWatch` catches the *effect*: at every cache-read and
snapshot-publish point it hashes the model's parameter/state bytes and
raises :class:`SanitizerError` when the content moved while the version
counter did not.

Both checks are dtype-independent: they compare raw bytes, so they work
identically under ``compute_dtype="float32"`` — but note the engine's
bit-identity *claims* are stated at float64 (see ``CONTRACTS.md``), so a
float32 + sanitize run validates the invariants without asserting the
float64 golden digests.

Overhead is one ``blake2b`` over the model bytes per checkpointed model
per check site, plus a flag flip per array per round; tiny next to the
numeric work, but nonzero — hence opt-in.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nn.model import CellModel

__all__ = [
    "SanitizerError",
    "sanitizer_enabled",
    "set_sanitizer",
    "model_fingerprint",
    "published",
    "VersionWatch",
]


class SanitizerError(RuntimeError):
    """A dynamic contract violation caught by the sanitizer."""


def _env_enabled() -> bool:
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


_enabled: bool = _env_enabled()


def sanitizer_enabled() -> bool:
    """True when runtime sanitizer checks are active in this process."""
    return _enabled


def set_sanitizer(enabled: bool) -> None:
    """Switch the sanitizer on or off process-wide.

    The coordinator calls this when configured with ``sanitize=True``;
    tests use it to scope checks.  Subprocesses inherit the setting via
    ``REPRO_SANITIZE`` (fork) or re-read it from the environment (spawn).
    """
    global _enabled
    _enabled = bool(enabled)


def model_fingerprint(model: "CellModel") -> str:
    """Content hash over every parameter and state tensor.

    Keys are sorted and mixed into the digest together with shape and
    dtype, so two models agree iff their live trees are byte-identical.
    """
    h = hashlib.blake2b(digest_size=16)
    for scope, tree in (("p", model.params()), ("s", model.state())):
        for key in sorted(tree):
            arr = tree[key]
            h.update(scope.encode())
            h.update(key.encode())
            h.update(str(arr.shape).encode())
            h.update(arr.dtype.str.encode())
            h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _model_arrays(models: Mapping[str, "CellModel"]) -> Iterator[np.ndarray]:
    for model in models.values():
        yield from model.params().values()
        yield from model.state().values()


@contextmanager
def published(models: Mapping[str, "CellModel"]) -> Iterator[None]:
    """Freeze the published models' live arrays for the guarded block.

    No-op when the sanitizer is off.  Only arrays that were writable on
    entry are restored on exit, so nesting and pre-frozen views (worker
    shm mappings) are safe.
    """
    if not _enabled:
        yield
        return
    frozen: list[np.ndarray] = []
    try:
        for arr in _model_arrays(models):
            if arr.flags.writeable:
                arr.flags.writeable = False
                frozen.append(arr)
        yield
    finally:
        for arr in frozen:
            arr.flags.writeable = True


class VersionWatch:
    """Detect content drift that skipped ``bump_version()``.

    Remembers ``(version, fingerprint)`` per model id; on every
    :meth:`check` it recomputes the fingerprint and raises
    :class:`SanitizerError` if the bytes moved while the version stood
    still.  Version bumps (with or without content change — re-stamping
    is legal) simply refresh the record.
    """

    def __init__(self) -> None:
        self._seen: dict[str, tuple[int, str]] = {}

    def reset(self) -> None:
        self._seen.clear()

    def check(self, model: "CellModel", where: str = "cache read") -> None:
        if not _enabled:
            return
        fp = model_fingerprint(model)
        prev = self._seen.get(model.model_id)
        if prev is not None:
            prev_version, prev_fp = prev
            if model.version == prev_version and fp != prev_fp:
                raise SanitizerError(
                    f"model {model.model_id} content changed at version "
                    f"{model.version} without bump_version() (detected at "
                    f"{where}); version-keyed caches would serve stale "
                    "results"
                )
        self._seen[model.model_id] = (model.version, fp)

    def check_all(
        self, models: Mapping[str, "CellModel"], where: str = "cache read"
    ) -> None:
        if not _enabled:
            return
        for model in models.values():
            self.check(model, where=where)
