"""repro-lint: static contract checking + a runtime sanitizer mode.

The engine rests on a handful of invariants that no type checker can see —
per-seed determinism through ``SeedSequence`` spawn keys, the
``bump_version()`` invalidation contract behind every version-keyed cache,
the pooled-``Workspace`` allocation discipline of the hot path, and the
shared-memory segment lifecycle.  This package enforces them twice over:

* **Statically** — :mod:`repro.analysis.lint` is an AST-visitor rule
  engine (``python -m repro.analysis.lint src benchmarks examples``)
  whose rules (:data:`repro.analysis.rules.RULES`, ids ``RL001``-``RL007``)
  each guard one named contract and are individually suppressible with a
  ``# repro-lint: disable=RL00X <reason>`` pragma.  See ``CONTRACTS.md``
  at the repo root for the rule-by-rule rationale.
* **Dynamically** — :mod:`repro.analysis.sanitize` (``REPRO_SANITIZE=1``
  or ``--sanitize``) flips published model tensors read-only for the
  duration of each executor round (write-after-publish races raise
  instead of corrupting a running round) and cross-checks every model's
  ``version`` counter against a content fingerprint at cache-read and
  snapshot-publish time (a mutation that skipped ``bump_version()``
  raises :class:`~repro.analysis.sanitize.SanitizerError` instead of
  silently serving stale caches).

The static rules catch the *pattern*; the sanitizer catches what the AST
cannot see (writes through aliased references, third-party strategies,
dynamically constructed code paths).
"""

from .engine import FileReport, LintReport, Linter, lint_paths, lint_source
from .rules import RULES, RULES_BY_ID, Violation

__all__ = [
    "FileReport",
    "LintReport",
    "Linter",
    "lint_paths",
    "lint_source",
    "RULES",
    "RULES_BY_ID",
    "Violation",
]
