"""Command-line front end for repro-lint.

Usage::

    python -m repro.analysis.lint src benchmarks examples
    python -m repro.analysis.lint --list-rules

Exit status is 0 when the tree is clean, 1 when any violation (or
unparseable file) is reported, 2 on usage errors.  Output is one
``path:line:col: RLxxx name: message`` line per violation, sorted by
file, so it drops straight into editors and CI annotations.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .engine import Linter
from .rules import RULES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Check the repo's engine contracts (see CONTRACTS.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to scan (directories recurse over *.py)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line; print violations only",
    )
    return parser


def _list_rules() -> None:
    for rule in RULES:
        print(f"{rule.rule_id}  {rule.rule_name:<18} {rule.summary}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _list_rules()
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try: src benchmarks examples)", file=sys.stderr)
        return 2

    rules = RULES
    if args.select:
        wanted = {r.strip() for r in args.select.split(",") if r.strip()}
        unknown = wanted - {r.rule_id for r in RULES}
        if unknown:
            print(f"error: unknown rule ids: {sorted(unknown)}", file=sys.stderr)
            return 2
        rules = tuple(r for r in RULES if r.rule_id in wanted)

    missing = [p for p in args.paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"error: no such path: {p}", file=sys.stderr)
        return 2

    report = Linter(rules=rules).lint_paths(args.paths)
    for line in report.format_lines():
        print(line)
    if not args.quiet:
        n = len(report.violations)
        print(
            f"repro-lint: {report.files_scanned} files, "
            f"{n} violation{'s' if n != 1 else ''}, "
            f"{report.suppressed} suppressed",
            file=sys.stderr,
        )
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    sys.exit(main())
