"""Crash-consistent file writes: temp file + fsync + ``os.replace``.

A plain ``open(path, "w")`` truncates the destination before the new
bytes land — a crash mid-write leaves a torn file where a good one used
to be.  Every durable artifact in this repo (model ``.npz`` checkpoints,
run-log ``.json`` exports, checkpoint payloads and manifests) goes
through :func:`atomic_write` instead:

1. the bytes are written to a temp file **in the destination directory**
   (same filesystem, so the rename below is atomic);
2. the temp file is flushed and ``fsync``\\ ed (the data is durable
   before the name moves);
3. ``os.replace`` swaps it in — readers see either the old complete file
   or the new complete file, never a mixture;
4. the parent directory is ``fsync``\\ ed so the rename itself survives
   a power cut.

A stale ``*.tmp-*`` file left by a killed process is garbage by
construction — nothing ever reads temp names — and is safe to ignore or
delete.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path

__all__ = ["atomic_write", "fsync_dir"]


def fsync_dir(path: str | os.PathLike) -> None:
    """Flush a directory entry so a completed rename survives a crash."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@contextmanager
def atomic_write(path: str | os.PathLike, mode: str = "wb", encoding: str | None = None):
    """Open a temp file that atomically replaces ``path`` on clean exit.

    ``mode`` is ``"wb"`` (default) or ``"w"`` (pass ``encoding``).  On an
    exception inside the block the temp file is removed and ``path`` is
    left untouched — whatever complete version existed before still
    exists after.
    """
    if mode not in ("wb", "w"):
        raise ValueError(f"atomic_write mode must be 'wb' or 'w', got {mode!r}")
    target = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".tmp-", suffix=""
    )
    try:
        with os.fdopen(fd, mode, encoding=encoding) as f:
            yield f
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, target)
        fsync_dir(target.parent)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
