"""Pluggable round-execution engine: serial, thread-pool, and process-pool.

The coordinator describes a round as *work items* — ``(model_id, client_id,
sub_idx)`` triples for local training, ``(model_ids, client_ids)`` groups
for evaluation — and a :class:`RoundExecutor` decides how they run.  Three
backends ship:

* :class:`SerialExecutor` — the reference implementation; one Python loop,
  zero overhead, the default.
* :class:`ThreadPoolRoundExecutor` — a shared-memory thread pool.  NumPy
  releases the GIL inside BLAS kernels, so matmul-heavy local training
  overlaps across clients without any data copying.
* :class:`ProcessPoolRoundExecutor` — a persistent worker-process pool for
  true multi-core scaling.  The static fleet (client datasets + trainer
  config) ships to each worker exactly once at pool start; per round the
  server models are published once as a versioned read-only snapshot that
  every worker loads at most once per round, so a work item carries only
  ``(model_id, client_id, seed material)`` — never a pickled model.

Shared-memory delta snapshot publishing
---------------------------------------
The process backend publishes *deltas* into a shared-memory arena
(:mod:`~repro.fl.shm`): :meth:`ProcessPoolRoundExecutor._publish` compares
each model's :attr:`~repro.nn.model.CellModel.version` against the
versions it last published and writes only the changed (or new) models'
tensors — raw bytes, written once, no serialization — into a fresh
segment, plus the removed ids in the segment header.  Workers patch their
cached suite by replaying the segment chain from whatever snapshot
version they last loaded, mapping each model's tensors as read-only views
into the shared buffer (a delta is ``(offset, version)`` records, not
pickled bytes); a full snapshot re-compacts the chain every
``FULL_SNAPSHOT_EVERY`` deltas (and on first publish) so the chain a
lagging worker must replay stays short, and workers drop their older
mappings when they rebase onto it.  A publish where *no* version changed
reuses the current snapshot outright — even when the caller passes a
freshly built dict.  This is what keeps the buffered-async engine cheap:
each aggregation step touches at most ``buffer_k`` models, so each
publish ships ``buffer_k`` models, not the whole suite.  The contract is
the model version counter: any code that mutates a model outside
``set_params``/``set_state``/transformations must call ``bump_version()``
or workers will train against stale weights.

Segments are owned by the coordinator process: the chain's segments are
unlinked on compaction, on :meth:`~ProcessPoolRoundExecutor.close`, on a
broken pool (the futures-drain failure path releases the arena — dead
workers hold no mappings worth preserving), and — as a crash backstop —
by a ``weakref.finalize`` hook at interpreter exit.

**Determinism contract.** Every work item derives its RNG as
``np.random.default_rng(SeedSequence(seed, spawn_key=(round, client,
sub)))`` via :func:`derive_client_rng`, results are returned in submission
order, and training mutates only a private clone of the server model.
Because the arithmetic per item is identical and nothing depends on
completion order, serial, thread, and process runs of the same seed produce
bit-identical :class:`~repro.fl.types.TrainingLog` records.
"""

from __future__ import annotations

import concurrent.futures
import logging
import os
import pickle
import secrets
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..analysis import sanitize as _sanitize
from ..nn.compute import compute_dtype_name, set_compute_dtype
from ..nn.losses import accuracy
from ..nn.model import CellModel
from ..stateful import Stateful, check_schema, schema_tag
from . import shm as _shm
from .client import LocalTrainer, LocalTrainerConfig
from .transport import TransportConfig
from .faults import (
    FaultConfig,
    FaultPlan,
    InjectedShmFault,
    ItemFailure,
    RetryPolicy,
    SnapshotChainError,
    fault_kind,
    is_infrastructure_fault,
)
from .types import ClientUpdate, FaultRecord, FLClient

__all__ = [
    "EXECUTOR_BACKENDS",
    "FULL_SNAPSHOT_EVERY",
    "POOL_REBUILD_LIMIT",
    "TrainItem",
    "EvalTask",
    "derive_client_rng",
    "RoundExecutor",
    "SerialExecutor",
    "ThreadPoolRoundExecutor",
    "ProcessPoolRoundExecutor",
    "make_executor",
]

EXECUTOR_BACKENDS = ("serial", "thread", "process")

# Delta chain length cap: a full snapshot is rewritten after this many
# consecutive delta publishes, bounding both the number of live
# shared-memory segments and the replay work of a worker that sat idle for
# many publishes.
FULL_SNAPSHOT_EVERY = 8

# Self-healing bound: how many times the process pool may break (and be
# rebuilt) within a single dispatch wave before the executor gives up and
# propagates the failure.  An injected crash heals in one rebuild (faults
# fire at attempt 0 only); a pool that keeps dying is a real environment
# problem that retrying cannot fix.
POOL_REBUILD_LIMIT = 3


@dataclass(frozen=True)
class TrainItem:
    """One unit of local training: a client trains one assigned model."""

    model_id: str
    client_id: int
    sub_idx: int  # position in the client's multi-model assignment (SplitMix)


@dataclass(frozen=True)
class EvalTask:
    """One batched evaluation group: clients sharing a deployment ensemble.

    All listed clients are evaluated by averaging the logits of
    ``model_ids`` over their concatenated test sets — a few large forward
    passes instead of one per client.
    """

    model_ids: tuple[str, ...]
    client_ids: tuple[int, ...]


def derive_client_rng(
    seed: int, round_idx: int, client_id: int, sub_idx: int
) -> np.random.Generator:
    """The canonical per-work-item RNG.

    ``SeedSequence`` spawn keys guarantee distinct, well-mixed streams for
    distinct ``(round, client, sub)`` triples — unlike the earlier
    hand-rolled ``round*1009 + client*31`` hash, which collided (e.g.
    ``(round=31, client=0)`` vs ``(round=0, client=1009)``) and handed two
    clients identical sampling streams.
    """
    ss = np.random.SeedSequence(seed, spawn_key=(round_idx, client_id, sub_idx))
    return np.random.default_rng(ss)


# ----------------------------------------------------------------------
# shared per-item work functions (every backend funnels through these)
# ----------------------------------------------------------------------
def _train_item(
    models: dict[str, CellModel],
    clients_by_id: dict[int, FLClient],
    trainer: LocalTrainer,
    seed: int,
    round_idx: int,
    item: TrainItem,
) -> ClientUpdate:
    work = models[item.model_id].clone(keep_id=True)
    rng = derive_client_rng(seed, round_idx, item.client_id, item.sub_idx)
    return trainer.train(work, clients_by_id[item.client_id], rng)


def ensemble_accuracies(
    member_logits,
    num_members: int,
    clients_by_id: dict[int, FLClient],
    client_ids: tuple[int, ...],
) -> np.ndarray:
    """Shared tail of ensemble evaluation: average, slice, score per client.

    ``member_logits`` yields each member model's logits over the group's
    concatenated test rows, in ensemble order (an iterable, so callers can
    stream forward passes without holding every member at once).  Both the
    uncached :func:`_eval_task` path and the coordinator's cache-combine
    path run THIS function, which is what makes the cache-on/off
    bit-identity contract structural rather than two hand-mirrored copies.

    A test-less client inside a non-empty group scores 0.0 — accuracy()
    over a zero-length slice would yield NaN and poison the eval's mean.
    """
    logits: np.ndarray | None = None
    for out in member_logits:
        logits = out if logits is None else logits + out
    logits = logits / num_members
    accs = np.zeros(len(client_ids))
    offset = 0
    for j, cid in enumerate(client_ids):
        data = clients_by_id[cid].data
        n = data.num_test
        accs[j] = accuracy(logits[offset : offset + n], data.y_test) if n else 0.0
        offset += n
    return accs


def _eval_task(
    models: dict[str, CellModel],
    clients_by_id: dict[int, FLClient],
    task: EvalTask,
    batch_size: int,
) -> np.ndarray:
    """Per-client accuracies for one deployment group, batched forward.

    Runs on throwaway clones: the thread backend would otherwise race on
    the live server models' layer caches, and any backend would leave the
    group's concatenated activations pinned on them after predict().
    """
    xs = np.concatenate([clients_by_id[cid].data.x_test for cid in task.client_ids])
    if len(xs) == 0:
        # Every client in the group has an empty test set; predict() cannot
        # run on zero samples, and accuracy() defines the score as 0.0.
        return np.zeros(len(task.client_ids))
    return ensemble_accuracies(
        (models[mid].clone(keep_id=True).predict(xs, batch_size) for mid in task.model_ids),
        len(task.model_ids),
        clients_by_id,
        task.client_ids,
    )


def _logits_task(
    models: dict[str, CellModel],
    clients_by_id: dict[int, FLClient],
    task: EvalTask,
    batch_size: int,
) -> np.ndarray:
    """Raw logits of one model over one client chunk's concatenated tests.

    The building block of the coordinator's incremental evaluation cache:
    per-``(model version, chunk)`` logits are computed once and shared
    across every ensemble that contains the model.  The arithmetic is
    *identical* to one member-model pass of :func:`_eval_task` (a clone's
    ``predict`` over the same concatenation), which is what keeps cache-on
    and cache-off evaluations bit-identical.
    """
    if len(task.model_ids) != 1:
        raise ValueError(f"logits tasks carry exactly one model, got {task.model_ids}")
    model = models[task.model_ids[0]]
    xs = np.concatenate([clients_by_id[cid].data.x_test for cid in task.client_ids])
    if len(xs) == 0:
        return np.zeros((0, model.num_classes))
    return model.clone(keep_id=True).predict(xs, batch_size)


# ----------------------------------------------------------------------
# interface
# ----------------------------------------------------------------------
class RoundExecutor(Stateful, ABC):
    """Executes one round's training / evaluation work items.

    The executor is bound to a fleet at construction (client datasets never
    change during a run); server models are passed per call because they do.
    Implementations must return results in submission order — the
    coordinator's aggregation and logs are order-sensitive.

    Executors are :class:`~repro.stateful.Stateful` with empty payloads by
    design: pools, snapshot chains, and publish meters are all *derived*
    runtime state, rebuilt lazily from the models a resumed coordinator
    republishes — a checkpoint carries no executor bytes, which is also
    what lets a run resume under a different backend.  (The fault ledger
    and recovery counters are telemetry, not trajectory: the coordinator
    drains them into the log each round, and the log is what checkpoints.)

    Fault tolerance (:mod:`~repro.fl.faults`): with a ``faults`` config
    the executor injects the plan's deterministic failures into its work
    items; with a ``retry`` policy failed train items are re-run up to
    ``max_attempts`` times (task-level failures charging simulated backoff
    into the item's round time; infrastructure failures charging nothing)
    and an exhausted item returns an :class:`~repro.fl.faults.ItemFailure`
    sentinel in its result slot instead of aborting the round.  With
    ``retry=None`` (the default) the first failure propagates — exactly
    the pre-fault-subsystem behavior.
    """

    backend: str = "abstract"

    def state_dict(self) -> dict:
        return {"schema": schema_tag(type(self).__name__)}

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, schema_tag(type(self).__name__))

    def __init__(
        self,
        clients: list[FLClient],
        trainer_config: LocalTrainerConfig,
        seed: int,
        max_workers: int | None = None,
        *,
        faults: FaultConfig | None = None,
        retry: RetryPolicy | None = None,
        transport: TransportConfig | None = None,
    ):
        self.clients_by_id = {c.client_id: c for c in clients}
        self.trainer_config = trainer_config
        self.trainer = LocalTrainer(trainer_config)
        self.seed = seed
        self.max_workers = max_workers
        self.faults = faults
        self.retry = retry
        # Transport codec config: only the snapshot section matters to an
        # executor (the in-process backends publish nothing, so they just
        # carry it; the process backend run-length encodes delta segments).
        self.transport = transport
        self.fault_plan = (
            FaultPlan(seed, faults)
            if faults is not None and faults.any_enabled()
            else None
        )
        # Recovery telemetry (public: read by the coordinator, benchmarks,
        # and tests).  Guarded by a lock — the thread backend's retry path
        # meters from worker threads.
        self.worker_restarts = 0
        self.retries = 0
        self.failed_items = 0
        self._fault_records: list[FaultRecord] = []
        self._meter_lock = threading.Lock()

    # ------------------------------------------------------------------
    # fault metering + the shared in-process resilient train path
    # ------------------------------------------------------------------
    def _record_fault(
        self,
        round_idx: int,
        kind: str,
        action: str,
        client_id: int | None = None,
        model_id: str | None = None,
        detail: str = "",
        attempts: int = 0,
    ) -> None:
        with self._meter_lock:
            self._fault_records.append(
                FaultRecord(
                    round_idx=round_idx,
                    kind=kind,
                    action=action,
                    client_id=client_id,
                    model_id=model_id,
                    detail=detail,
                    attempts=attempts,
                )
            )
            if action == "pool_rebuild":
                self.worker_restarts += 1
            elif action == "retry":
                self.retries += 1
            elif action == "failed":
                self.failed_items += 1

    def drain_fault_records(self) -> list[FaultRecord]:
        """Hand the accumulated fault ledger to the caller (and reset it)."""
        with self._meter_lock:
            records, self._fault_records = self._fault_records, []
        return records

    def _run_train_item(
        self, round_idx: int, item: TrainItem, models: dict[str, CellModel]
    ) -> ClientUpdate | ItemFailure:
        """One train item with fault injection and bounded retry.

        The in-process backends (serial, thread) funnel through this; the
        process backend mirrors the exact same semantics coordinator-side
        in :meth:`ProcessPoolRoundExecutor._run_wave`, so every backend
        agrees on when a fault fires (attempt 0 only), what a retry costs
        (simulated backoff for task-level failures, nothing for
        infrastructure ones), and when an item fails permanently.
        """
        attempts = 0
        delay = 0.0
        while True:
            decision = (
                self.fault_plan.item_faults(round_idx, item)
                if self.fault_plan is not None and attempts == 0
                else None
            )
            try:
                if decision is not None:
                    decision.fire_pre(worker_side=False)
                update = _train_item(
                    models, self.clients_by_id, self.trainer, self.seed, round_idx, item
                )
                if decision is not None:
                    decision.apply_post(update)
                if delay:
                    update.round_time += delay
                return update
            except Exception as err:
                attempts += 1
                if self.retry is None:
                    raise
                if attempts >= self.retry.max_attempts:
                    self._record_fault(
                        round_idx, fault_kind(err), "failed",
                        client_id=item.client_id, model_id=item.model_id,
                        detail=str(err), attempts=attempts,
                    )
                    return ItemFailure(
                        item.model_id, item.client_id, item.sub_idx, str(err), attempts
                    )
                self._record_fault(
                    round_idx, fault_kind(err), "retry",
                    client_id=item.client_id, model_id=item.model_id,
                    detail=str(err), attempts=attempts,
                )
                if not is_infrastructure_fault(err):
                    delay += self.retry.backoff(attempts)

    @abstractmethod
    def train_round(
        self, round_idx: int, items: list[TrainItem], models: dict[str, CellModel]
    ) -> list[ClientUpdate]:
        """Run local training for every item; results in item order.

        With a retry policy configured, a slot may hold an
        :class:`~repro.fl.faults.ItemFailure` instead of an update.
        """

    @abstractmethod
    def eval_round(
        self, tasks: list[EvalTask], models: dict[str, CellModel], batch_size: int
    ) -> list[np.ndarray]:
        """Per-client accuracies for every group; results in task order."""

    @abstractmethod
    def logits_round(
        self, tasks: list[EvalTask], models: dict[str, CellModel], batch_size: int
    ) -> list[np.ndarray]:
        """Raw per-model logits for every single-model task; in task order."""

    def eval_and_logits_round(
        self,
        eval_tasks: list[EvalTask],
        logits_tasks: list[EvalTask],
        models: dict[str, CellModel],
        batch_size: int,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Run accuracy groups and logits tasks as one wave; two result lists.

        The coordinator's cached evaluation dispatches both kinds per sweep
        (accuracy tasks for single-model groups — per-client accuracies
        over the wire, nothing retained — and member-logits tasks for
        ensembles); a combined wave keeps parallel backends' workers busy
        across both instead of draining two back-to-back barriers.  The
        base implementation runs them sequentially (correct everywhere);
        pooled backends override to interleave.
        """
        return (
            self.eval_round(eval_tasks, models, batch_size),
            self.logits_round(logits_tasks, models, batch_size),
        )

    def close(self) -> None:
        """Release pooled resources (idempotent; pools recreate lazily)."""


class SerialExecutor(RoundExecutor):
    """The reference backend: one in-process loop (previous behavior).

    Round bodies run under :func:`repro.analysis.sanitize.published` (a
    no-op unless the sanitizer is on): while a round is in flight the
    server models are published and must not be written — work items see
    clones or read-only views, and a write from anywhere else is exactly
    the race the guard exists to catch.
    """

    backend = "serial"

    def train_round(self, round_idx, items, models):
        with _sanitize.published(models):
            return [self._run_train_item(round_idx, it, models) for it in items]

    def eval_round(self, tasks, models, batch_size):
        with _sanitize.published(models):
            return [_eval_task(models, self.clients_by_id, t, batch_size) for t in tasks]

    def logits_round(self, tasks, models, batch_size):
        with _sanitize.published(models):
            return [_logits_task(models, self.clients_by_id, t, batch_size) for t in tasks]


class ThreadPoolRoundExecutor(RoundExecutor):
    """Thread-pool backend: shared memory, BLAS-released-GIL parallelism."""

    backend = "thread"

    def __init__(self, clients, trainer_config, seed, max_workers=None, *,
                 faults=None, retry=None, transport=None):
        super().__init__(clients, trainer_config, seed, max_workers,
                         faults=faults, retry=retry, transport=transport)
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            workers = self.max_workers or (os.cpu_count() or 1)
            self._pool = concurrent.futures.ThreadPoolExecutor(max_workers=workers)
        return self._pool

    def train_round(self, round_idx, items, models):
        pool = self._ensure_pool()
        with _sanitize.published(models):
            futures = [
                pool.submit(self._run_train_item, round_idx, it, models)
                for it in items
            ]
            return [f.result() for f in futures]

    def eval_round(self, tasks, models, batch_size):
        pool = self._ensure_pool()
        with _sanitize.published(models):
            futures = [
                pool.submit(_eval_task, models, self.clients_by_id, t, batch_size) for t in tasks
            ]
            return [f.result() for f in futures]

    def logits_round(self, tasks, models, batch_size):
        pool = self._ensure_pool()
        with _sanitize.published(models):
            futures = [
                pool.submit(_logits_task, models, self.clients_by_id, t, batch_size)
                for t in tasks
            ]
            return [f.result() for f in futures]

    def eval_and_logits_round(self, eval_tasks, logits_tasks, models, batch_size):
        pool = self._ensure_pool()
        with _sanitize.published(models):
            efs = [
                pool.submit(_eval_task, models, self.clients_by_id, t, batch_size)
                for t in eval_tasks
            ]
            lfs = [
                pool.submit(_logits_task, models, self.clients_by_id, t, batch_size)
                for t in logits_tasks
            ]
            return [f.result() for f in efs], [f.result() for f in lfs]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def state_dict(self) -> dict:
        # The pool is recreated lazily on first use; nothing to persist.
        return {"schema": schema_tag(type(self).__name__)}

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, schema_tag(type(self).__name__))


# ----------------------------------------------------------------------
# process-pool backend
# ----------------------------------------------------------------------
# Worker-process state, installed once per worker by _proc_init and
# patched forward at most once per snapshot version by _proc_models.
_WORKER: dict = {}


def _proc_init(payload: bytes) -> None:
    clients, trainer_config, seed, dtype, fault_config = pickle.loads(payload)
    set_compute_dtype(dtype)
    _WORKER["clients_by_id"] = {c.client_id: c for c in clients}
    _WORKER["trainer"] = LocalTrainer(trainer_config)
    _WORKER["seed"] = seed
    _WORKER["fault_plan"] = (
        FaultPlan(seed, fault_config) if fault_config is not None else None
    )
    _WORKER["version"] = 0  # published snapshot versions start at 1
    _WORKER["models"] = None
    # name -> SharedMemory: segments whose buffers installed models view
    # into.  Unlinking by the coordinator only removes the name; these
    # mappings stay valid until closed, which happens wholesale when a
    # full snapshot rebases the suite.
    _WORKER["segments"] = {}


def _worker_segment(name: str, chain: tuple = ()):
    seg = _WORKER["segments"].get(name)
    if seg is None:
        try:
            seg = _shm.attach_segment(name)
        except FileNotFoundError:
            expected = [(v, k, n) for v, k, n in chain] if chain else "unknown"
            raise SnapshotChainError(
                f"shared-memory segment {name!r} does not exist; expected "
                f"snapshot chain {expected}, worker has attached "
                f"{sorted(_WORKER['segments'])}. The coordinator unlinks "
                "segments on chain compaction, pool heal, and close() — a "
                "worker asked to replay a retired chain (or a stale future "
                "from before a pool rebuild) hits exactly this."
            ) from None
        _WORKER["segments"][name] = seg
    return seg


_WORKER_LOG = logging.getLogger(__name__ + ".worker")


def _worker_rebase(keep: str) -> None:
    """Close every attached segment except ``keep`` (full-snapshot rebase)."""
    segments = _WORKER["segments"]
    for name in [n for n in segments if n != keep]:
        try:
            segments.pop(name).close()
        except OSError as err:
            # A close() failure leaks one worker-side mapping until process
            # exit — worth a log line, never worth failing the rebase (the
            # segment itself is coordinator-owned and already retired).
            _WORKER_LOG.warning("closing rebased segment %r failed: %s", name, err)


def _proc_models(
    version: int, chain: tuple[tuple[int, str, str], ...]
) -> dict[str, CellModel]:
    """Bring this worker's cached suite up to ``version`` and return it.

    ``chain`` is the server's currently retained snapshot segments,
    ordered by version: one full snapshot first, then the deltas published
    since.  A worker already past the full snapshot replays only the
    deltas newer than its cached version; a worker that lagged behind the
    full snapshot (or never loaded one) rebases on it first — closing its
    older segment mappings, since every model is rebuilt from the full
    segment.  Each segment is mapped at most once per worker, and a
    model's tensors are read-only views into the mapping — replaying a
    delta installs offsets, it never copies tensor bytes.
    """
    if _WORKER["version"] == version:
        return _WORKER["models"]
    models = _WORKER["models"]
    cur = _WORKER["version"]
    base_ver, base_kind, base_name = chain[0]
    if models is None or cur < base_ver:
        if base_kind != "full":
            raise RuntimeError(
                f"snapshot chain must start with a full snapshot, got {base_kind!r}"
            )
        kind, models, _, _ = _shm.read_snapshot_segment(
            _worker_segment(base_name, chain)
        )
        _worker_rebase(keep=base_name)
        cur = base_ver
    for ver, kind, name in chain[1:]:
        if ver <= cur:
            continue
        # Deltas replay in publish order, so the worker's current suite is
        # byte-for-byte the state the coordinator run-length encoded
        # against (when snapshot compression is on; raw deltas ignore it).
        _, changed, removed, all_ids = _shm.read_snapshot_segment(
            _worker_segment(name, chain), prev_models=models
        )
        models.update(changed)
        for rid in removed:
            models.pop(rid, None)
        if set(models) != set(all_ids):
            raise RuntimeError(
                f"snapshot delta v{ver} left an incoherent suite: "
                f"{sorted(set(models) ^ set(all_ids))}"
            )
        cur = ver
    if cur != version:
        raise RuntimeError(
            f"worker could not reach snapshot v{version} (stuck at v{cur})"
        )
    _WORKER["models"] = models
    _WORKER["version"] = version
    return models


def _proc_train(
    version: int, chain: tuple, round_idx: int, item: TrainItem, attempt: int = 0
) -> ClientUpdate:
    """One train item in a worker: faults fire here, on attempt 0 only.

    ``fire_pre`` runs *before* the snapshot replay so an injected SIGKILL
    takes the worker down mid-task exactly as a real crash would — with the
    item's future unresolved and the pool broken.  Retried items arrive
    with ``attempt >= 1`` and run clean (the coordinator owns attempt
    accounting across pool rebuilds).
    """
    plan = _WORKER.get("fault_plan")
    decision = plan.item_faults(round_idx, item) if plan is not None and attempt == 0 else None
    if decision is not None:
        decision.fire_pre(worker_side=True)
    models = _proc_models(version, chain)
    update = _train_item(
        models, _WORKER["clients_by_id"], _WORKER["trainer"], _WORKER["seed"], round_idx, item
    )
    if decision is not None:
        decision.apply_post(update)
    return update


def _proc_eval(version: int, chain: tuple, task: EvalTask, batch_size: int) -> np.ndarray:
    models = _proc_models(version, chain)
    return _eval_task(models, _WORKER["clients_by_id"], task, batch_size)


def _proc_logits(version: int, chain: tuple, task: EvalTask, batch_size: int) -> np.ndarray:
    models = _proc_models(version, chain)
    return _logits_task(models, _WORKER["clients_by_id"], task, batch_size)


class ProcessPoolRoundExecutor(RoundExecutor):
    """Process-pool backend: true multi-core rounds.

    The fleet ships to workers once via the pool initializer; each round's
    models are published once as a versioned shared-memory snapshot that
    workers map lazily (at most one attach per worker per segment), so the
    per-item payload stays a few hundred bytes.  Publishing is
    *incremental*: only models whose
    :attr:`~repro.nn.model.CellModel.version` moved since the last publish
    land in the new segment (see the module docstring).  The public
    ``publish_*`` / ``*_bytes`` counters meter it for benchmarks and
    tests; byte counts are segment payload bytes (header + raw tensors).
    """

    backend = "process"

    def __init__(self, clients, trainer_config, seed, max_workers=None, *,
                 faults=None, retry=None, transport=None):
        super().__init__(clients, trainer_config, seed, max_workers,
                         faults=faults, retry=retry, transport=transport)
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._version = 0
        # (version, "full" | "delta", segment name) of every retained
        # snapshot segment: the latest full snapshot plus the deltas
        # published since it.
        self._chain: list[tuple[int, str, str]] = []
        # Owned shared-memory segments by name; the finalizer holds this
        # dict (not self), so an abandoned executor still unlinks at exit.
        self._segments: dict = {}
        self._arena_prefix = f"repro-{os.getpid()}-{secrets.token_hex(4)}"
        self._finalizer = _shm.make_finalizer(self, self._segments)
        # model_id -> CellModel.version at last publish; None = never published.
        self._published_versions: dict[str, int] | None = None
        # Sanitizer cross-check (no-op unless enabled): a model whose bytes
        # moved but whose version did not would be silently reused by the
        # version-compare below — exactly the bug class RL004 guards
        # statically and this watch catches dynamically.
        self._version_watch = _sanitize.VersionWatch()
        self._deltas_since_full = 0
        # Snapshot transport codec: when the config asks for snapshot rle,
        # delta segments are byte-diffed against the shadow — each tensor's
        # bytes as of its previous publish, exactly the state workers hold
        # when they replay the delta (see shm.write_snapshot_segment).
        self._snapshot_rle = bool(transport is not None and transport.snapshot_rle)
        self._shadow: dict[tuple[str, str, str], bytes] = {}
        # Publish metering (public: read by benchmarks and tests).  Byte
        # counters are on-wire segment payload sizes; the raw counter keeps
        # the uncompressed total so the transport ledger can report both.
        self.publish_count = 0
        self.full_publish_count = 0
        self.delta_publish_count = 0
        self.reused_publish_count = 0
        self.bytes_published_total = 0
        self.raw_bytes_published_total = 0
        self.full_bytes_total = 0
        self.delta_bytes_total = 0
        self.last_publish_bytes = 0

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            payload = pickle.dumps(
                (
                    list(self.clients_by_id.values()),
                    self.trainer_config,
                    self.seed,
                    compute_dtype_name(),
                    # Workers rebuild the same FaultPlan from (seed, config):
                    # worker-side decisions (SIGKILL, task errors, poison)
                    # match the coordinator's replay of the same spawn keys.
                    self.faults if self.fault_plan is not None else None,
                )
            )
            workers = self.max_workers or (os.cpu_count() or 1)
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers, initializer=_proc_init, initargs=(payload,)
            )
        return self._pool

    def _drain(self, futures: list[concurrent.futures.Future]) -> list:
        """Gather results only after *every* future has settled.

        A plain ``[f.result() for f in futures]`` aborts on the first
        failure while later futures are still running — the next
        ``_publish`` would then unlink the snapshot segment those workers
        are attaching mid-load.  Waiting first keeps the snapshot
        lifecycle safe; the first failure still propagates to the caller.
        A *broken pool* (a worker died) additionally releases the arena on
        the spot: the workers are gone, nothing holds the mappings, and a
        crashed run must not leave segments behind.
        """
        concurrent.futures.wait(futures)
        try:
            return [f.result() for f in futures]
        except concurrent.futures.process.BrokenProcessPool:
            self._release_arena()
            raise

    def _release_arena(self) -> None:
        """Unlink every owned segment and reset publish state (idempotent)."""
        _shm.unlink_segments(self._segments)
        self._chain = []
        self._published_versions = None
        self._deltas_since_full = 0
        # Fresh workers rebase on a full (raw) snapshot, so the rle shadow
        # restarts with them — a stale shadow would diff against bytes the
        # new workers never held.
        self._shadow.clear()

    def _publish(
        self, models: dict[str, CellModel], fault_attempt: int = 0
    ) -> tuple[int, tuple[tuple[int, str, str], ...]]:
        """Publish the current suite; returns ``(version, snapshot chain)``.

        Per-model versions decide what (if anything) ships:

        * every version matches the last publish — the snapshot is reused
          outright, even for a freshly built dict (the async engine's many
          dispatch waves between aggregations, and repeated evaluations of
          an idle suite, publish nothing);
        * some versions moved — only those models' tensors land in a delta
          segment appended to the chain;
        * first publish, every model changed, or ``FULL_SNAPSHOT_EVERY``
          deltas accumulated — a full snapshot segment is written and the
          old chain segments are unlinked (safe: train/eval/logits rounds
          drain all futures before returning, including on failure — see
          :meth:`_drain` — so no worker is mid-attach between publishes,
          and workers' existing mappings survive the unlink).
        """
        self._version_watch.check_all(models, where="snapshot publish")
        versions = {mid: m.version for mid, m in models.items()}
        if versions == self._published_versions:
            self.reused_publish_count += 1
            return self._version, tuple(self._chain)
        # Deterministic publish fault: keyed on the ordinal of *real*
        # publishes (reuses never fault, and the counter only advances on
        # success), injected before any state mutates so the retry sees a
        # clean slate.  Attempt 0 only — the retry runs clean.
        if (
            self.fault_plan is not None
            and fault_attempt == 0
            and self.fault_plan.publish_fails(self.publish_count)
        ):
            raise InjectedShmFault(
                f"injected snapshot publish failure (publish ordinal {self.publish_count})"
            )
        prev = self._published_versions
        changed = {
            mid: m
            for mid, m in models.items()
            if prev is None or prev.get(mid) != m.version
        }
        removed = frozenset(prev or ()) - frozenset(models)
        self._version += 1
        full = (
            prev is None
            or len(changed) == len(models)
            or self._deltas_since_full >= FULL_SNAPSHOT_EVERY
        )
        name = f"{self._arena_prefix}-v{self._version}"
        shadow = self._shadow if self._snapshot_rle else None
        if full:
            seg, nbytes, raw_nbytes = _shm.write_snapshot_segment(
                name, "full", dict(models), shadow=shadow
            )
            for _, _, old in self._chain:
                shm_old = self._segments.pop(old, None)
                if shm_old is not None:
                    shm_old.close()
                    shm_old.unlink()
            self._segments[name] = seg
            self._chain = [(self._version, "full", name)]
            self._deltas_since_full = 0
            self.full_publish_count += 1
            self.full_bytes_total += nbytes
        else:
            seg, nbytes, raw_nbytes = _shm.write_snapshot_segment(
                name, "delta", changed, removed, frozenset(models),
                rle=self._snapshot_rle, shadow=shadow,
            )
            self._segments[name] = seg
            self._chain.append((self._version, "delta", name))
            self._deltas_since_full += 1
            self.delta_publish_count += 1
            self.delta_bytes_total += nbytes
        if shadow is not None:
            # The shadow tracks the *current* suite only: retired models'
            # bytes must never anchor a future diff.
            for skey in [k for k in shadow if k[0] not in models]:
                del shadow[skey]
        self._published_versions = versions
        self.publish_count += 1
        self.last_publish_bytes = nbytes
        self.bytes_published_total += nbytes
        self.raw_bytes_published_total += raw_nbytes
        return self._version, tuple(self._chain)

    def _publish_resilient(
        self, models: dict[str, CellModel], round_idx: int
    ) -> tuple[int, tuple[tuple[int, str, str], ...]]:
        """Publish with bounded retry over injected publish failures.

        An :class:`~repro.fl.faults.InjectedShmFault` fires before the
        publish mutates anything, so the retry republishes from a clean
        slate; it is infrastructure (zero simulated time) and attempt 0
        only, so one retry always heals it.  Exhaustion propagates — a
        publish that keeps failing has no sane degraded mode.
        """
        fault_attempt = 0
        while True:
            try:
                return self._publish(models, fault_attempt=fault_attempt)
            except InjectedShmFault as err:
                fault_attempt += 1
                limit = self.retry.max_attempts if self.retry is not None else 2
                if fault_attempt >= limit:
                    raise
                self._record_fault(
                    round_idx, "shm_publish", "retry",
                    detail=str(err), attempts=fault_attempt,
                )

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _heal(self, round_idx: int, err: BaseException) -> None:
        """Recover from a broken pool: rebuild workers, reset the arena.

        The dead workers' shared-memory mappings are gone with them, so the
        arena is released outright; the next publish writes a fresh full
        snapshot, which is how the chain is replayed to the fresh workers.
        """
        self._record_fault(
            round_idx, "worker_crash", "pool_rebuild",
            detail=str(err) or type(err).__name__,
        )
        self._discard_pool()
        self._release_arena()

    def _run_wave(
        self, models: dict[str, CellModel], jobs: list[tuple], round_idx: int
    ) -> list:
        """Dispatch one wave of work with self-healing and bounded retry.

        ``jobs`` is ``[(kind, payload), ...]`` with kind ``"train"``
        (payload: the :class:`TrainItem`) or ``"eval"``/``"logits"``
        (payload: ``(task, batch_size)``); results come back in job order.

        A broken pool (worker SIGKILL — injected or real) triggers
        :meth:`_heal` and re-dispatches only the unfinished items, at most
        ``POOL_REBUILD_LIMIT`` times per wave.  Completed items keep their
        attempt-0 results, and re-dispatched items re-derive the same
        ``(round, client, sub)`` RNG streams, so a healed wave is
        bit-identical to a fault-free one.  When a fault plan is present,
        re-dispatched train items whose plan decision was the crash are
        bumped to attempt 1 (their fault already fired; retries run clean)
        while innocent victims of the shared pool keep attempt 0 so their
        own faults still fire exactly once — cross-backend parity.

        Task-level exceptions follow the same retry semantics as the
        in-process backends (:meth:`RoundExecutor._run_train_item`):
        bounded retries charging simulated backoff, permanent train
        failures degrade to :class:`~repro.fl.faults.ItemFailure`,
        eval/logits failures propagate on exhaustion, and with no retry
        policy the first failure propagates after the wave settles.
        """
        results: list = [None] * len(jobs)
        attempts = [0] * len(jobs)
        delays = [0.0] * len(jobs)
        pending = list(range(len(jobs)))
        rebuilds = 0
        while pending:
            broken: BaseException | None = None
            futures: dict[int, concurrent.futures.Future] = {}
            try:
                pool = self._ensure_pool()
                version, chain = self._publish_resilient(models, round_idx)
                for i in pending:
                    kind, payload = jobs[i]
                    if kind == "train":
                        futures[i] = pool.submit(
                            _proc_train, version, chain, round_idx, payload, attempts[i]
                        )
                    elif kind == "eval":
                        futures[i] = pool.submit(
                            _proc_eval, version, chain, payload[0], payload[1]
                        )
                    else:
                        futures[i] = pool.submit(
                            _proc_logits, version, chain, payload[0], payload[1]
                        )
            except concurrent.futures.process.BrokenProcessPool as err:
                broken = err
            if futures:
                # Settle the whole wave before touching any result: a
                # publish must never unlink segments under a mid-attach
                # worker (see the old _drain contract).
                concurrent.futures.wait(list(futures.values()))
            retry_idx: list[int] = []
            for i in sorted(futures):
                kind, payload = jobs[i]
                try:
                    res = futures[i].result()
                except (
                    concurrent.futures.process.BrokenProcessPool,
                    concurrent.futures.CancelledError,
                ) as err:
                    # Lost to the pool breaking, not to its own failure:
                    # re-dispatch without charging an attempt (the culprit
                    # bump below covers the item whose fault killed the pool).
                    if broken is None:
                        broken = err
                    retry_idx.append(i)
                except Exception as err:
                    attempts[i] += 1
                    if self.retry is None:
                        raise
                    item = payload if kind == "train" else None
                    if attempts[i] >= self.retry.max_attempts:
                        if item is None:
                            raise  # eval work has no degraded mode
                        self._record_fault(
                            round_idx, fault_kind(err), "failed",
                            client_id=item.client_id, model_id=item.model_id,
                            detail=str(err), attempts=attempts[i],
                        )
                        results[i] = ItemFailure(
                            item.model_id, item.client_id, item.sub_idx,
                            str(err), attempts[i],
                        )
                    else:
                        self._record_fault(
                            round_idx, fault_kind(err), "retry",
                            client_id=item.client_id if item else None,
                            model_id=item.model_id if item else None,
                            detail=str(err), attempts=attempts[i],
                        )
                        if not is_infrastructure_fault(err):
                            delays[i] += self.retry.backoff(attempts[i])
                        retry_idx.append(i)
                else:
                    if delays[i] and isinstance(res, ClientUpdate):
                        res.round_time += delays[i]
                    results[i] = res
            pending = sorted(set(retry_idx) | {i for i in pending if i not in futures})
            if broken is not None:
                rebuilds += 1
                if rebuilds > POOL_REBUILD_LIMIT:
                    self._discard_pool()
                    self._release_arena()
                    raise RuntimeError(
                        f"process pool broke {rebuilds} times in one dispatch "
                        f"wave (limit {POOL_REBUILD_LIMIT}); giving up"
                    ) from broken
                self._heal(round_idx, broken)
                if self.fault_plan is not None:
                    for i in pending:
                        kind, payload = jobs[i]
                        if (
                            kind == "train"
                            and attempts[i] == 0
                            and self.fault_plan.item_faults(round_idx, payload).crash
                        ):
                            attempts[i] = 1
        return results

    def train_round(self, round_idx, items, models):
        with _sanitize.published(models):
            return self._run_wave(models, [("train", it) for it in items], round_idx)

    def eval_round(self, tasks, models, batch_size):
        with _sanitize.published(models):
            jobs = [("eval", (t, batch_size)) for t in tasks]
            return self._run_wave(models, jobs, -1)

    def logits_round(self, tasks, models, batch_size):
        with _sanitize.published(models):
            jobs = [("logits", (t, batch_size)) for t in tasks]
            return self._run_wave(models, jobs, -1)

    def eval_and_logits_round(self, eval_tasks, logits_tasks, models, batch_size):
        with _sanitize.published(models):
            jobs = [("eval", (t, batch_size)) for t in eval_tasks] + [
                ("logits", (t, batch_size)) for t in logits_tasks
            ]
            results = self._run_wave(models, jobs, -1)  # one publish per dispatch
            return results[: len(eval_tasks)], results[len(eval_tasks) :]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._release_arena()

    def state_dict(self) -> dict:
        # Pool, snapshot chain, published versions, and publish meters are
        # all rebuilt from the first post-resume publish; persisting them
        # would pin a checkpoint to this backend for no benefit.
        return {"schema": schema_tag(type(self).__name__)}

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, schema_tag(type(self).__name__))


_BACKENDS = {
    "serial": SerialExecutor,
    "thread": ThreadPoolRoundExecutor,
    "process": ProcessPoolRoundExecutor,
}


def make_executor(
    backend: str,
    clients: list[FLClient],
    trainer_config: LocalTrainerConfig,
    seed: int,
    max_workers: int | None = None,
    *,
    faults: FaultConfig | None = None,
    retry: RetryPolicy | None = None,
    transport: TransportConfig | None = None,
) -> RoundExecutor:
    """Instantiate a round executor by backend name."""
    try:
        cls = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown executor backend {backend!r}; choose from {EXECUTOR_BACKENDS}"
        ) from None
    if max_workers is not None and max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    return cls(
        clients, trainer_config, seed, max_workers=max_workers,
        faults=faults, retry=retry, transport=transport,
    )
