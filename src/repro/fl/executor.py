"""Pluggable round-execution engine: serial, thread-pool, and process-pool.

The coordinator describes a round as *work items* — ``(model_id, client_id,
sub_idx)`` triples for local training, ``(model_ids, client_ids)`` groups
for evaluation — and a :class:`RoundExecutor` decides how they run.  Three
backends ship:

* :class:`SerialExecutor` — the reference implementation; one Python loop,
  zero overhead, the default.
* :class:`ThreadPoolRoundExecutor` — a shared-memory thread pool.  NumPy
  releases the GIL inside BLAS kernels, so matmul-heavy local training
  overlaps across clients without any data copying.
* :class:`ProcessPoolRoundExecutor` — a persistent worker-process pool for
  true multi-core scaling.  The static fleet (client datasets + trainer
  config) ships to each worker exactly once at pool start; per round the
  server models are published once as a versioned read-only snapshot file
  that every worker loads at most once per round, so a work item carries
  only ``(model_id, client_id, seed material)`` — never a pickled model.

**Determinism contract.** Every work item derives its RNG as
``np.random.default_rng(SeedSequence(seed, spawn_key=(round, client,
sub)))`` via :func:`derive_client_rng`, results are returned in submission
order, and training mutates only a private clone of the server model.
Because the arithmetic per item is identical and nothing depends on
completion order, serial, thread, and process runs of the same seed produce
bit-identical :class:`~repro.fl.types.TrainingLog` records.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import shutil
import tempfile
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..nn.losses import accuracy
from ..nn.model import CellModel
from .client import LocalTrainer, LocalTrainerConfig
from .types import ClientUpdate, FLClient

__all__ = [
    "EXECUTOR_BACKENDS",
    "TrainItem",
    "EvalTask",
    "derive_client_rng",
    "RoundExecutor",
    "SerialExecutor",
    "ThreadPoolRoundExecutor",
    "ProcessPoolRoundExecutor",
    "make_executor",
]

EXECUTOR_BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class TrainItem:
    """One unit of local training: a client trains one assigned model."""

    model_id: str
    client_id: int
    sub_idx: int  # position in the client's multi-model assignment (SplitMix)


@dataclass(frozen=True)
class EvalTask:
    """One batched evaluation group: clients sharing a deployment ensemble.

    All listed clients are evaluated by averaging the logits of
    ``model_ids`` over their concatenated test sets — a few large forward
    passes instead of one per client.
    """

    model_ids: tuple[str, ...]
    client_ids: tuple[int, ...]


def derive_client_rng(
    seed: int, round_idx: int, client_id: int, sub_idx: int
) -> np.random.Generator:
    """The canonical per-work-item RNG.

    ``SeedSequence`` spawn keys guarantee distinct, well-mixed streams for
    distinct ``(round, client, sub)`` triples — unlike the earlier
    hand-rolled ``round*1009 + client*31`` hash, which collided (e.g.
    ``(round=31, client=0)`` vs ``(round=0, client=1009)``) and handed two
    clients identical sampling streams.
    """
    ss = np.random.SeedSequence(seed, spawn_key=(round_idx, client_id, sub_idx))
    return np.random.default_rng(ss)


# ----------------------------------------------------------------------
# shared per-item work functions (every backend funnels through these)
# ----------------------------------------------------------------------
def _train_item(
    models: dict[str, CellModel],
    clients_by_id: dict[int, FLClient],
    trainer: LocalTrainer,
    seed: int,
    round_idx: int,
    item: TrainItem,
) -> ClientUpdate:
    work = models[item.model_id].clone(keep_id=True)
    rng = derive_client_rng(seed, round_idx, item.client_id, item.sub_idx)
    return trainer.train(work, clients_by_id[item.client_id], rng)


def _eval_task(
    models: dict[str, CellModel],
    clients_by_id: dict[int, FLClient],
    task: EvalTask,
    batch_size: int,
) -> np.ndarray:
    """Per-client accuracies for one deployment group, batched forward.

    Runs on throwaway clones: the thread backend would otherwise race on
    the live server models' layer caches, and any backend would leave the
    group's concatenated activations pinned on them after predict().
    """
    xs = np.concatenate([clients_by_id[cid].data.x_test for cid in task.client_ids])
    if len(xs) == 0:
        # Every client in the group has an empty test set; predict() cannot
        # run on zero samples, and accuracy() defines the score as 0.0.
        return np.zeros(len(task.client_ids))
    logits: np.ndarray | None = None
    for mid in task.model_ids:
        out = models[mid].clone(keep_id=True).predict(xs, batch_size)
        logits = out if logits is None else logits + out
    logits = logits / len(task.model_ids)
    accs = np.zeros(len(task.client_ids))
    offset = 0
    for j, cid in enumerate(task.client_ids):
        data = clients_by_id[cid].data
        n = data.num_test
        # A test-less client inside a non-empty group scores 0.0, same as
        # the all-empty branch above — accuracy() over a zero-length slice
        # would yield NaN and poison the whole eval's mean.
        accs[j] = accuracy(logits[offset : offset + n], data.y_test) if n else 0.0
        offset += n
    return accs


# ----------------------------------------------------------------------
# interface
# ----------------------------------------------------------------------
class RoundExecutor(ABC):
    """Executes one round's training / evaluation work items.

    The executor is bound to a fleet at construction (client datasets never
    change during a run); server models are passed per call because they do.
    Implementations must return results in submission order — the
    coordinator's aggregation and logs are order-sensitive.
    """

    backend: str = "abstract"

    def __init__(
        self,
        clients: list[FLClient],
        trainer_config: LocalTrainerConfig,
        seed: int,
        max_workers: int | None = None,
    ):
        self.clients_by_id = {c.client_id: c for c in clients}
        self.trainer_config = trainer_config
        self.trainer = LocalTrainer(trainer_config)
        self.seed = seed
        self.max_workers = max_workers

    @abstractmethod
    def train_round(
        self, round_idx: int, items: list[TrainItem], models: dict[str, CellModel]
    ) -> list[ClientUpdate]:
        """Run local training for every item; results in item order."""

    @abstractmethod
    def eval_round(
        self, tasks: list[EvalTask], models: dict[str, CellModel], batch_size: int
    ) -> list[np.ndarray]:
        """Per-client accuracies for every group; results in task order."""

    def close(self) -> None:
        """Release pooled resources (idempotent; pools recreate lazily)."""


class SerialExecutor(RoundExecutor):
    """The reference backend: one in-process loop (previous behavior)."""

    backend = "serial"

    def train_round(self, round_idx, items, models):
        return [
            _train_item(models, self.clients_by_id, self.trainer, self.seed, round_idx, it)
            for it in items
        ]

    def eval_round(self, tasks, models, batch_size):
        return [_eval_task(models, self.clients_by_id, t, batch_size) for t in tasks]


class ThreadPoolRoundExecutor(RoundExecutor):
    """Thread-pool backend: shared memory, BLAS-released-GIL parallelism."""

    backend = "thread"

    def __init__(self, clients, trainer_config, seed, max_workers=None):
        super().__init__(clients, trainer_config, seed, max_workers)
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            workers = self.max_workers or (os.cpu_count() or 1)
            self._pool = concurrent.futures.ThreadPoolExecutor(max_workers=workers)
        return self._pool

    def train_round(self, round_idx, items, models):
        pool = self._ensure_pool()
        futures = [
            pool.submit(
                _train_item, models, self.clients_by_id, self.trainer, self.seed, round_idx, it
            )
            for it in items
        ]
        return [f.result() for f in futures]

    def eval_round(self, tasks, models, batch_size):
        pool = self._ensure_pool()
        futures = [
            pool.submit(_eval_task, models, self.clients_by_id, t, batch_size) for t in tasks
        ]
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ----------------------------------------------------------------------
# process-pool backend
# ----------------------------------------------------------------------
# Worker-process state, installed once per worker by _proc_init and
# refreshed at most once per snapshot version by _proc_models.
_WORKER: dict = {}


def _proc_init(payload: bytes) -> None:
    clients, trainer_config, seed = pickle.loads(payload)
    _WORKER["clients_by_id"] = {c.client_id: c for c in clients}
    _WORKER["trainer"] = LocalTrainer(trainer_config)
    _WORKER["seed"] = seed
    _WORKER["version"] = -1
    _WORKER["models"] = None


def _proc_models(version: int, path: str) -> dict[str, CellModel]:
    if _WORKER["version"] != version:
        with open(path, "rb") as f:
            _WORKER["models"] = pickle.load(f)
        _WORKER["version"] = version
    return _WORKER["models"]


def _proc_train(version: int, path: str, round_idx: int, item: TrainItem) -> ClientUpdate:
    models = _proc_models(version, path)
    return _train_item(
        models, _WORKER["clients_by_id"], _WORKER["trainer"], _WORKER["seed"], round_idx, item
    )


def _proc_eval(version: int, path: str, task: EvalTask, batch_size: int) -> np.ndarray:
    models = _proc_models(version, path)
    return _eval_task(models, _WORKER["clients_by_id"], task, batch_size)


class ProcessPoolRoundExecutor(RoundExecutor):
    """Process-pool backend: true multi-core rounds.

    The fleet ships to workers once via the pool initializer; each round's
    models are published once to a versioned snapshot file that workers
    load lazily (at most one read per worker per version), so the per-item
    payload stays a few hundred bytes.
    """

    backend = "process"

    def __init__(self, clients, trainer_config, seed, max_workers=None):
        super().__init__(clients, trainer_config, seed, max_workers)
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._snapdir: str | None = None
        self._version = 0
        self._snapshot_path: str | None = None
        self._snapshot_models: dict[str, CellModel] | None = None

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            payload = pickle.dumps(
                (list(self.clients_by_id.values()), self.trainer_config, self.seed)
            )
            workers = self.max_workers or (os.cpu_count() or 1)
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers, initializer=_proc_init, initargs=(payload,)
            )
            self._snapdir = tempfile.mkdtemp(prefix="repro-executor-")
        return self._pool

    @staticmethod
    def _drain(futures: list[concurrent.futures.Future]) -> list:
        """Gather results only after *every* future has settled.

        A plain ``[f.result() for f in futures]`` aborts on the first
        failure while later futures are still running — the next
        ``_publish`` would then delete the snapshot file those workers are
        reading mid-load.  Waiting first keeps the snapshot lifecycle safe;
        the first failure still propagates to the caller.
        """
        concurrent.futures.wait(futures)
        return [f.result() for f in futures]

    def _publish(self, models: dict[str, CellModel]) -> tuple[int, str]:
        """Write the round's model snapshot; safe to delete the previous one
        because train_round/eval_round drain all futures before returning
        (including on failure — see :meth:`_drain`).

        Passing the *identical* dict object again reuses the published
        snapshot: the caller thereby asserts the models are unchanged since
        that publish.  The sync coordinator builds a fresh dict every round
        (always republished); the async engine dispatches many small waves
        between aggregations and reuses one dict for all of them, so the
        suite is pickled once per aggregation, not once per arrival.
        """
        assert self._snapdir is not None
        if models is self._snapshot_models and self._snapshot_path is not None:
            return self._version, self._snapshot_path
        self._version += 1
        path = os.path.join(self._snapdir, f"models_v{self._version}.pkl")
        with open(path, "wb") as f:
            pickle.dump(models, f, protocol=pickle.HIGHEST_PROTOCOL)
        if self._snapshot_path and os.path.exists(self._snapshot_path):
            os.remove(self._snapshot_path)
        self._snapshot_path = path
        self._snapshot_models = models
        return self._version, path

    def train_round(self, round_idx, items, models):
        pool = self._ensure_pool()
        version, path = self._publish(models)
        futures = [pool.submit(_proc_train, version, path, round_idx, it) for it in items]
        return self._drain(futures)

    def eval_round(self, tasks, models, batch_size):
        pool = self._ensure_pool()
        version, path = self._publish(models)
        futures = [pool.submit(_proc_eval, version, path, t, batch_size) for t in tasks]
        return self._drain(futures)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._snapdir is not None:
            shutil.rmtree(self._snapdir, ignore_errors=True)
            self._snapdir = None
            self._snapshot_path = None
            self._snapshot_models = None


_BACKENDS = {
    "serial": SerialExecutor,
    "thread": ThreadPoolRoundExecutor,
    "process": ProcessPoolRoundExecutor,
}


def make_executor(
    backend: str,
    clients: list[FLClient],
    trainer_config: LocalTrainerConfig,
    seed: int,
    max_workers: int | None = None,
) -> RoundExecutor:
    """Instantiate a round executor by backend name."""
    try:
        cls = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown executor backend {backend!r}; choose from {EXECUTOR_BACKENDS}"
        ) from None
    if max_workers is not None and max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    return cls(clients, trainer_config, seed, max_workers=max_workers)
