"""Federated-learning simulation engine: clients, strategies, coordinator."""

from .async_engine import BufferedAsyncEngine, VirtualClock
from .checkpoint import CheckpointWriter, load_checkpoint
from .client import LocalTrainer, LocalTrainerConfig
from .coordinator import Coordinator, CoordinatorConfig
from .executor import (
    EXECUTOR_BACKENDS,
    EvalTask,
    ProcessPoolRoundExecutor,
    RoundExecutor,
    SerialExecutor,
    ThreadPoolRoundExecutor,
    TrainItem,
    derive_client_rng,
    make_executor,
)
from .export import load_log, log_from_state, log_state_dict, log_to_dict, save_log
from .metrics import RunSummary, iqr, summarize
from .registry import RunRegistry, run_hash
from .scheduling import (
    PACING_POLICIES,
    SELECTOR_POLICIES,
    STRAGGLER_POLICIES,
    ClientSelector,
    ClientStateStore,
    PacingPolicy,
    StragglerPolicy,
    make_pacing,
    make_selector,
    make_straggler,
)
from .scheduling.selectors import uniform_choice
from .strategy import Strategy
from .types import (
    ArrivalRecord,
    ClientUpdate,
    EvalRecord,
    FLClient,
    RoundRecord,
    SchedulerRecord,
    TrainingLog,
)

__all__ = [
    "BufferedAsyncEngine",
    "VirtualClock",
    "LocalTrainer",
    "LocalTrainerConfig",
    "Coordinator",
    "CoordinatorConfig",
    "EXECUTOR_BACKENDS",
    "EvalTask",
    "ProcessPoolRoundExecutor",
    "RoundExecutor",
    "SerialExecutor",
    "ThreadPoolRoundExecutor",
    "TrainItem",
    "derive_client_rng",
    "make_executor",
    "load_log",
    "log_from_state",
    "log_state_dict",
    "log_to_dict",
    "save_log",
    "CheckpointWriter",
    "load_checkpoint",
    "RunRegistry",
    "run_hash",
    "RunSummary",
    "iqr",
    "summarize",
    "uniform_choice",
    "Strategy",
    "ArrivalRecord",
    "ClientUpdate",
    "EvalRecord",
    "FLClient",
    "RoundRecord",
    "SchedulerRecord",
    "TrainingLog",
    "SELECTOR_POLICIES",
    "PACING_POLICIES",
    "STRAGGLER_POLICIES",
    "ClientSelector",
    "PacingPolicy",
    "StragglerPolicy",
    "ClientStateStore",
    "make_selector",
    "make_pacing",
    "make_straggler",
]
