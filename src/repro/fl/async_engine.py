"""Buffered-asynchronous round engine with pluggable scheduling policies.

Synchronous FL pays the straggler tax every round: the barrier waits for
the slowest participant (``round_time = max(client_times)``, the regime the
paper's Table 6 measures).  This engine removes the barrier the way FedBuff
(Nguyen et al.) does, over a simulated event clock:

* A :class:`VirtualClock` orders ``(client, model)`` work completions by
  their ``device/latency.py``-derived finish times.  The *compute* still
  runs through the regular :class:`~repro.fl.executor.RoundExecutor`
  backends (serial/thread/process) in deterministic dispatch waves — only
  the simulated timeline is asynchronous.
* The server keeps ``concurrency`` clients in flight (over-selection: more
  than ``buffer_k``) and fires :meth:`Strategy.aggregate_buffered` on the
  first ``buffer_k`` arrivals.  Updates dispatched against older server
  weights carry a staleness count; the default hook discounts them by
  ``staleness_discount ** staleness``.

Participation, cadence, and straggler handling are policies from
:mod:`~repro.fl.scheduling`, consulted at every dispatch wave:

* the **selector** picks each wave's clients from the not-in-flight pool;
* the **pacing policy** supplies the step's effective ``buffer_k`` and a
  per-client deadline (``static`` reproduces the old global knobs;
  ``adaptive`` rescales the buffer with the observed arrival rate;
  ``quantile`` estimates per-device-class deadlines from completed round
  times) and is fed every arrival's true duration;
* the **straggler policy** sees each dispatch *before* compute runs:
  ``drop`` leaves it alone — an arrival past its deadline is discarded
  with the wasted compute metered (``TrainingLog.dropped_updates`` /
  ``dropped_macs``; the dropped upload never lands, so ``bytes_up`` is not
  charged) — while ``downsize`` re-assigns a predicted-late client the
  largest *compatible smaller* model whose estimated round time fits the
  deadline, so the slot yields a usable update instead of a drop
  (``TrainingLog.downsized_updates``).

**Determinism contract** (same as the sync engine): event ties break on
``(finish_time, dispatch_seq)``, every work item's RNG derives from
``SeedSequence(seed, spawn_key=(wave, client, sub))``, and selection /
assignment / aggregation consume the coordinator RNG in event order — so
async runs are bit-reproducible for a fixed seed across all executor
backends.  The default policy stack (uniform/static/drop) consumes that
RNG in exactly the pre-subsystem order.

``round_time`` semantics differ from sync mode: each
:class:`~repro.fl.types.RoundRecord` covers one buffered aggregation step
and its ``round_time`` is the simulated clock advance since the previous
step, so ``sum(round_time)`` is total simulated time in both modes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..stateful import Stateful, check_schema, schema_tag
from .executor import RoundExecutor, TrainItem
from .faults import ItemFailure, UpdateValidator
from .scheduling import (
    ClientSelector,
    FleetStore,
    make_pacing,
    make_selector,
    make_straggler,
)
from .strategy import Strategy
from .types import (
    ArrivalRecord,
    ClientUpdate,
    FaultRecord,
    FLClient,
    RoundRecord,
    SchedulerRecord,
    TrainingLog,
    client_update_from_state,
    client_update_to_state,
)

__all__ = ["VirtualClock", "BufferedAsyncEngine"]


class VirtualClock(Stateful):
    """A deterministic simulated-time event queue.

    Events are ``(time, dispatch_seq, payload)`` triples popped in
    lexicographic order — the ``dispatch_seq`` tie-break is what keeps runs
    bit-reproducible when two clients finish at the exact same simulated
    instant.  ``now`` only moves forward.
    """

    schema = schema_tag("VirtualClock")

    def __init__(self) -> None:
        self._events: list[tuple[float, int, "_Pending"]] = []
        self.now = 0.0

    def schedule(self, time: float, seq: int, payload: "_Pending") -> None:
        heapq.heappush(self._events, (time, seq, payload))

    def pop(self) -> tuple[float, int, "_Pending"]:
        """Advance to (and return) the next completion event."""
        if not self._events:
            raise RuntimeError("virtual clock has no scheduled events")
        time, seq, payload = heapq.heappop(self._events)
        self.now = max(self.now, time)
        return time, seq, payload

    def __len__(self) -> int:
        return len(self._events)

    def state_dict(self) -> dict:
        # Sorting is safe (and canonical): dispatch_seq is unique, so the
        # (time, seq) prefix always decides and payloads never compare.
        return {
            "schema": self.schema,
            "now": self.now,
            "events": [
                {"time": t, "seq": s, "pending": _pending_to_state(p)}
                for t, s, p in sorted(self._events, key=lambda e: (e[0], e[1]))
            ],
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        self.now = float(payload["now"])
        self._events = [
            (float(e["time"]), int(e["seq"]), _pending_from_state(e["pending"]))
            for e in payload["events"]
        ]
        heapq.heapify(self._events)


@dataclass
class _Pending:
    """One in-flight client: its precomputed updates await their finish time."""

    dispatch_seq: int
    client_id: int
    model_ids: tuple[str, ...]
    dispatch_time: float
    finish_time: float
    version: int  # server aggregation count at dispatch (staleness anchor)
    dropped: bool
    downsized: bool = False
    updates: list[ClientUpdate] = field(default_factory=list)


def _pending_to_state(p: _Pending) -> dict:
    return {
        "dispatch_seq": p.dispatch_seq,
        "client_id": p.client_id,
        "model_ids": list(p.model_ids),
        "dispatch_time": p.dispatch_time,
        "finish_time": p.finish_time,
        "version": p.version,
        "dropped": p.dropped,
        "downsized": p.downsized,
        "updates": [client_update_to_state(u) for u in p.updates],
    }


def _pending_from_state(payload: dict) -> _Pending:
    return _Pending(
        dispatch_seq=int(payload["dispatch_seq"]),
        client_id=int(payload["client_id"]),
        model_ids=tuple(payload["model_ids"]),
        dispatch_time=float(payload["dispatch_time"]),
        finish_time=float(payload["finish_time"]),
        version=int(payload["version"]),
        dropped=bool(payload["dropped"]),
        downsized=bool(payload["downsized"]),
        updates=[client_update_from_state(u) for u in payload["updates"]],
    )


class BufferedAsyncEngine(Stateful):
    """FedBuff-style buffered aggregation over a simulated event clock.

    The coordinator owns the outer loop (eval cadence, convergence,
    logging); this engine replaces ``_run_round``'s barrier with
    :meth:`step`, keeping in-flight work alive across steps.  Costs are
    accounted when an arrival (or drop) event fires, so the ledger matches
    what the simulated server has actually seen at each aggregation.
    """

    def __init__(
        self,
        strategy: Strategy,
        clients: list[FLClient],
        config,  # CoordinatorConfig; untyped to avoid a circular import
        executor: RoundExecutor,
        rng: np.random.Generator,
        selector: ClientSelector | None = None,
        validator: UpdateValidator | None = None,
        transport=None,  # TransportCodec | None (coordinator-owned)
        fleet: FleetStore | None = None,
    ):
        self.strategy = strategy
        self.clients = clients
        self.config = config
        self.executor = executor
        self.rng = rng
        self.validator = validator
        self.transport = transport
        self._devices = {c.client_id: c.device for c in clients}
        self.clock = VirtualClock()
        self.buffer_k = config.buffer_k or max(1, config.clients_per_round // 2)
        self.concurrency = min(
            config.async_concurrency or config.clients_per_round, len(clients)
        )
        self.deadline_s = config.deadline_s
        # The columnar fleet store backs every per-wave decision (candidate
        # views, straggler prescreen, quantile windows); the coordinator
        # shares its instance, a standalone engine builds its own.
        self.fleet = (
            fleet
            if fleet is not None
            else FleetStore(clients, evict_after=getattr(config, "evict_after", None))
        )
        self.selector = selector or make_selector(config.selector, seed=config.seed)
        self.selector.bind_fleet(self.fleet)
        self.pacing = make_pacing(
            config.pacing,
            base_k=self.buffer_k,
            deadline_s=config.deadline_s,
            max_k=self.concurrency,
            clients=clients,
            fleet=self.fleet,
        )
        self.straggler = make_straggler(config.straggler)
        self._in_flight: set[int] = set()
        self._dispatch_seq = 0
        self._wave = 0
        self._version = 0  # completed aggregation steps
        # Per-step scheduling accumulators, reset at each step() entry;
        # _fill_slots (only ever called from step) meters into them.
        self._step_requested = 0
        self._step_selected = 0
        self._step_downsized = 0
        self._step_events: list[str] = []
        # One models dict per aggregation epoch: server models only mutate
        # in aggregate_buffered, so every wave in between reuses the same
        # dict (saves rebuilding it per arrival).  The process executor
        # compares per-model version counters at publish time, so the waves
        # between aggregations publish nothing, and the publish after an
        # aggregation ships a delta of just the <= buffer_k models the step
        # touched — not the whole suite.
        self._models_epoch: dict | None = None

    def _models(self) -> dict:
        if self._models_epoch is None:
            self._models_epoch = self.strategy.models()
        return self._models_epoch

    # ------------------------------------------------------------------
    def _fill_slots(self) -> None:
        """Dispatch fresh work until ``concurrency`` clients are in flight.

        Each call is one *wave*: the selector and assignment draw from the
        coordinator RNG, the straggler policy gets a veto on predicted-late
        dispatches, then the whole wave's training runs through the
        executor against the current server models (this is where
        serial/thread/process parallelism applies).  The wave index doubles
        as the executor's ``round_idx``, so every ``(wave, client, sub)``
        work item gets a unique SeedSequence spawn key — a client is never
        dispatched twice in one wave because it stays in flight until its
        completion (or drop) event fires.
        """
        need = self.concurrency - len(self._in_flight)
        if need <= 0:
            return
        # O(active) candidate pool: an exclusion view over the columnar
        # store (registration order, in-flight rows skipped) instead of
        # rebuilding an O(registered) Python list every wave.  The view
        # presents the exact candidate ordering the list comprehension
        # produced, so selection streams are unchanged (CONTRACTS.md I12).
        available = self.fleet.available_view()
        if not len(available):
            return
        wave = self._wave
        self._wave += 1
        want = min(need, len(available))
        selected = self.selector.select(wave, available, want, self.rng)
        self._step_requested += need
        self._step_selected += len(selected)
        assignments = self.strategy.assign(wave, selected, self.rng)
        models = self._models()
        # Straggler policy: a predicted-late client may be re-assigned a
        # smaller compatible model before any compute is spent.  The whole
        # wave resolves in one call so the policy can batch its predicted-
        # late prescreen over the fleet's device columns.
        deadlines: dict[int, float | None] = {
            client.client_id: self.pacing.deadline_for(client) for client in selected
        }
        resolved = self.straggler.resolve_wave(
            selected,
            assignments,
            deadlines,
            models,
            self.config.trainer,
            self.strategy.compatible_models,
            fleet=self.fleet,
        )
        downsized_ids: set[int] = set()
        for client in selected:
            cid = client.client_id
            revised, downsized = resolved[cid]
            if downsized:
                mids = assignments[cid]
                assignments[cid] = revised
                downsized_ids.add(cid)
                self._step_downsized += 1
                self._step_events.append(
                    f"downsized client {cid}: {mids[0]} -> "
                    f"{revised[0]} to fit deadline {deadlines[cid]:g}s"
                )
        items = [
            TrainItem(model_id, client.client_id, sub_idx)
            for client in selected
            for sub_idx, model_id in enumerate(assignments[client.client_id])
        ]
        results = self.executor.train_round(wave, items, models)
        # Permanent failures (retry budget exhausted): the whole client is
        # excluded from flight — its partial updates are discarded, it is
        # never scheduled on the clock, and the next wave may reselect it.
        # The executor's fault ledger carries the failure; the coordinator
        # drains it into the log after the step.
        failed_ids = {
            it.client_id
            for it, r in zip(items, results)
            if isinstance(r, ItemFailure)
        }
        # Transport encode at *dispatch*: the update crosses the wire
        # against the dispatch-time server models (exactly what ``models``
        # holds — the server may aggregate before this arrival lands), and
        # with ``wire_time`` the re-priced round_time must be known before
        # the finish event is scheduled below.  Item order keeps the
        # error-feedback residual stream deterministic.
        if self.transport is not None and self.transport.config.has_update:
            for item, update in zip(items, results):
                if item.client_id in failed_ids:
                    continue
                self.transport.encode_update(
                    update,
                    models.get(item.model_id),
                    device=self._devices[item.client_id],
                    wire_time=self.config.wire_time,
                )
        per_client: dict[int, list[ClientUpdate]] = {}
        for item, update in zip(items, results):
            if item.client_id not in failed_ids:
                per_client.setdefault(item.client_id, []).append(update)
        for client in selected:
            if client.client_id in failed_ids:
                self._step_events.append(
                    f"client {client.client_id} failed permanently in wave "
                    f"{wave}; slot released"
                )
                continue
            ups = per_client[client.client_id]
            # Sub-models train sequentially on-device (as in sync mode).
            duration = float(sum(u.round_time for u in ups))
            deadline = deadlines[client.client_id]
            dropped = deadline is not None and duration > deadline
            # The server stops waiting at the deadline; the straggler's own
            # finish time is recorded for the log either way.
            event_time = self.clock.now + (
                min(duration, deadline) if dropped else duration
            )
            seq = self._dispatch_seq
            self._dispatch_seq += 1
            self._in_flight.add(client.client_id)
            self.fleet.mark_in_flight(client.client_id)
            self.clock.schedule(
                event_time,
                seq,
                _Pending(
                    dispatch_seq=seq,
                    client_id=client.client_id,
                    model_ids=tuple(assignments[client.client_id]),
                    dispatch_time=self.clock.now,
                    finish_time=self.clock.now + duration,
                    version=self._version,
                    dropped=dropped,
                    downsized=client.client_id in downsized_ids,
                    updates=ups,
                ),
            )

    # ------------------------------------------------------------------
    def step(self, step_idx: int, log: TrainingLog) -> RoundRecord:
        """Run one buffered aggregation step; returns its RoundRecord.

        Collects arrivals (dropping deadline violators) until the pacing
        policy's effective ``buffer_k`` usable updates are buffered, fires
        the strategy's staleness-aware aggregation, and meters every event
        — kept, dropped, or downsized — into the log's cost ledger.
        """
        t_start = self.clock.now
        effective_k = self.pacing.buffer_k(step_idx)
        fallback_before = getattr(self.selector, "offline_fallback_rounds", 0)
        self._step_requested = 0
        self._step_selected = 0
        self._step_downsized = 0
        self._step_events = []
        buffered: list[_Pending] = []
        arrivals: list[ArrivalRecord] = []
        step_macs = 0.0
        bytes_down = 0
        bytes_up = 0
        raw_bytes_up = 0
        consecutive_drops = 0
        consecutive_quarantines = 0
        drop_limit = max(64, 8 * self.concurrency)
        while len(buffered) < effective_k:
            self._fill_slots()
            _, _, pending = self.clock.pop()
            self._in_flight.discard(pending.client_id)
            self.fleet.clear_in_flight(pending.client_id)
            staleness = self._version - pending.version
            self.pacing.observe_arrival(
                pending.client_id,
                pending.finish_time - pending.dispatch_time,
                self.clock.now,
                pending.dropped,
            )
            macs = float(sum(u.macs_spent for u in pending.updates))
            step_macs += macs
            bytes_down += sum(u.bytes_down for u in pending.updates)
            if pending.dropped:
                arrivals.append(
                    ArrivalRecord(
                        dispatch_seq=pending.dispatch_seq,
                        client_id=pending.client_id,
                        model_ids=pending.model_ids,
                        dispatch_time=pending.dispatch_time,
                        finish_time=pending.finish_time,
                        staleness=staleness,
                        dropped=True,
                        downsized=pending.downsized,
                    )
                )
                log.dropped_updates += 1
                log.dropped_macs += macs
                consecutive_drops += 1
                if consecutive_drops > drop_limit:
                    which = (
                        f"per-class deadline quantiles {self.pacing.deadline_quantiles()}"
                        if self.config.pacing == "quantile"
                        else f"deadline_s={self.deadline_s}"
                    )
                    raise RuntimeError(
                        f"{which} dropped {consecutive_drops} arrivals in a row "
                        "— no client can finish inside its deadline; raise it "
                        "(or use the downsize straggler policy)"
                    )
                continue
            consecutive_drops = 0
            # The arrival reached the server: the upload is charged before
            # validation (a quarantined update still crossed the network).
            bytes_up += sum(u.bytes_up for u in pending.updates)
            raw_bytes_up += sum(u.raw_bytes_up for u in pending.updates)
            kept = pending.updates
            if self.validator is not None:
                kept = []
                for u in pending.updates:
                    reason = self.validator.admit(u)
                    if reason is None:
                        kept.append(u)
                        continue
                    log.quarantined_updates += 1
                    log.faults.append(
                        FaultRecord(
                            round_idx=step_idx,
                            kind="update_rejected",
                            action="quarantined",
                            client_id=u.client_id,
                            model_id=u.model_id,
                            detail=reason,
                        )
                    )
                    self._step_events.append(f"quarantined update: {reason}")
            quarantined_all = bool(pending.updates) and not kept
            arrivals.append(
                ArrivalRecord(
                    dispatch_seq=pending.dispatch_seq,
                    client_id=pending.client_id,
                    model_ids=pending.model_ids,
                    dispatch_time=pending.dispatch_time,
                    finish_time=pending.finish_time,
                    staleness=staleness,
                    dropped=False,
                    downsized=pending.downsized,
                    quarantined=quarantined_all,
                )
            )
            if quarantined_all:
                # Buffers nothing: every update failed validation.  Guarded
                # like drops so a fully poisoned fleet cannot spin forever.
                consecutive_quarantines += 1
                if consecutive_quarantines > drop_limit:
                    raise RuntimeError(
                        f"quarantine rejected {consecutive_quarantines} whole "
                        "arrivals in a row — every client's updates are "
                        "failing validation; check the fault spec or widen "
                        "quarantine_norm_mult"
                    )
                continue
            consecutive_quarantines = 0
            pending.updates = kept
            buffered.append(pending)

        updates = [u for p in buffered for u in p.updates]
        staleness_per_update = [
            self._version - p.version for p in buffered for _ in p.updates
        ]
        events = self.strategy.aggregate_buffered(
            step_idx,
            updates,
            staleness_per_update,
            self.rng,
            self.config.staleness_discount,
        )
        self._version += 1
        self._models_epoch = None  # server models changed; next wave re-snapshots
        self.selector.observe_round(step_idx, updates)

        log.total_macs += step_macs
        log.total_bytes_down += bytes_down
        log.total_bytes_up += bytes_up
        log.total_raw_bytes_up += raw_bytes_up
        log.downsized_updates += self._step_downsized
        events = list(events or [])
        events.extend(self._step_events)
        dropped_here = sum(1 for a in arrivals if a.dropped)
        if dropped_here:
            # Only quantile pacing has per-class deadlines; static and
            # adaptive both hold every client to the one global deadline_s.
            deadline_desc = (
                "their per-class deadlines"
                if self.config.pacing == "quantile"
                else f"deadline {self.deadline_s}s"
            )
            events.append(
                f"dropped {dropped_here} straggler arrival(s) past {deadline_desc}"
            )
        counters = self.strategy.scheduler_counters()
        # Selector-state eviction (the fleet's utility columns) joins the
        # strategy-side eviction in one meter; both are 0 unless
        # evict_after is configured.
        evicted = int(counters.get("evicted", 0)) + self.fleet.advance(step_idx)
        log.evicted_clients += evicted
        offline_fallback = (
            getattr(self.selector, "offline_fallback_rounds", 0) - fallback_before
        )
        return RoundRecord(
            round_idx=step_idx,
            participants=[p.client_id for p in buffered],
            assignments={p.client_id: list(p.model_ids) for p in buffered},
            mean_loss=float(np.mean([u.train_loss for u in updates])),
            macs=step_macs,
            bytes_down=bytes_down,
            bytes_up=bytes_up,
            raw_bytes_up=raw_bytes_up,
            round_time=float(self.clock.now - t_start),
            num_models=len(self.strategy.models()),
            events=events,
            arrivals=arrivals,
            scheduler=SchedulerRecord(
                selector=self.config.selector,
                pacing=self.config.pacing,
                straggler=self.config.straggler,
                requested=self._step_requested,
                selected=self._step_selected,
                effective_buffer_k=effective_k,
                deadline_s=self.deadline_s,
                deadline_quantiles=self.pacing.deadline_quantiles(),
                downsized=self._step_downsized,
                dropped=dropped_here,
                evicted=evicted,
                offline_fallback_rounds=offline_fallback,
            ),
        )

    # ------------------------------------------------------------------
    # durability (Stateful)
    # ------------------------------------------------------------------
    schema = schema_tag("BufferedAsyncEngine")

    def state_dict(self) -> dict:
        """Everything live between two :meth:`step` calls.

        Checkpoints are taken at the wave-drain barrier (between steps), so
        the per-step accumulators are known-zero and omitted; what must
        survive is the in-flight work — the clock's pending events carry
        each dispatched client's precomputed update tensors — plus the
        counters that anchor staleness, wave seeding, and dispatch-order
        tie-breaks.  The selector belongs to the coordinator's payload (one
        shared instance); pacing and straggler policies are engine-owned.
        """
        return {
            "schema": self.schema,
            "clock": self.clock.state_dict(),
            "in_flight": sorted(self._in_flight),
            "dispatch_seq": self._dispatch_seq,
            "wave": self._wave,
            "version": self._version,
            "pacing": self.pacing.state_dict(),
            "straggler": self.straggler.state_dict(),
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        self.clock.load_state_dict(payload["clock"])
        self._in_flight = {int(cid) for cid in payload["in_flight"]}
        self.fleet.set_in_flight_ids(self._in_flight)
        self._dispatch_seq = int(payload["dispatch_seq"])
        self._wave = int(payload["wave"])
        self._version = int(payload["version"])
        self.pacing.load_state_dict(payload["pacing"])
        self.straggler.load_state_dict(payload["straggler"])
        self._models_epoch = None
