"""Buffered-asynchronous round engine with a deadline straggler policy.

Synchronous FL pays the straggler tax every round: the barrier waits for
the slowest participant (``round_time = max(client_times)``, the regime the
paper's Table 6 measures).  This engine removes the barrier the way FedBuff
(Nguyen et al.) does, over a simulated event clock:

* A :class:`VirtualClock` orders ``(client, model)`` work completions by
  their ``device/latency.py``-derived finish times.  The *compute* still
  runs through the regular :class:`~repro.fl.executor.RoundExecutor`
  backends (serial/thread/process) in deterministic dispatch waves — only
  the simulated timeline is asynchronous.
* The server keeps ``concurrency`` clients in flight (over-selection: more
  than ``buffer_k``) and fires :meth:`Strategy.aggregate_buffered` on the
  first ``buffer_k`` arrivals.  Updates dispatched against older server
  weights carry a staleness count; the default hook discounts them by
  ``staleness_discount ** staleness``.
* A deadline policy drops any arrival whose simulated duration exceeds
  ``deadline_s``: the server stops waiting at ``dispatch + deadline_s``,
  frees the client's slot, and meters the wasted compute/download in the
  cost ledger (``TrainingLog.dropped_updates`` / ``dropped_macs``; the
  dropped upload never lands, so ``bytes_up`` is not charged).

**Determinism contract** (same as the sync engine): event ties break on
``(finish_time, dispatch_seq)``, every work item's RNG derives from
``SeedSequence(seed, spawn_key=(wave, client, sub))``, and selection /
assignment / aggregation consume the coordinator RNG in event order — so
async runs are bit-reproducible for a fixed seed across all executor
backends.

``round_time`` semantics differ from sync mode: each
:class:`~repro.fl.types.RoundRecord` covers one buffered aggregation step
and its ``round_time`` is the simulated clock advance since the previous
step, so ``sum(round_time)`` is total simulated time in both modes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from .executor import RoundExecutor, TrainItem
from .selection import select_uniform
from .strategy import Strategy
from .types import ArrivalRecord, ClientUpdate, FLClient, RoundRecord, TrainingLog

__all__ = ["VirtualClock", "BufferedAsyncEngine"]


class VirtualClock:
    """A deterministic simulated-time event queue.

    Events are ``(time, dispatch_seq, payload)`` triples popped in
    lexicographic order — the ``dispatch_seq`` tie-break is what keeps runs
    bit-reproducible when two clients finish at the exact same simulated
    instant.  ``now`` only moves forward.
    """

    def __init__(self) -> None:
        self._events: list[tuple[float, int, "_Pending"]] = []
        self.now = 0.0

    def schedule(self, time: float, seq: int, payload: "_Pending") -> None:
        heapq.heappush(self._events, (time, seq, payload))

    def pop(self) -> tuple[float, int, "_Pending"]:
        """Advance to (and return) the next completion event."""
        if not self._events:
            raise RuntimeError("virtual clock has no scheduled events")
        time, seq, payload = heapq.heappop(self._events)
        self.now = max(self.now, time)
        return time, seq, payload

    def __len__(self) -> int:
        return len(self._events)


@dataclass
class _Pending:
    """One in-flight client: its precomputed updates await their finish time."""

    dispatch_seq: int
    client_id: int
    model_ids: tuple[str, ...]
    dispatch_time: float
    finish_time: float
    version: int  # server aggregation count at dispatch (staleness anchor)
    dropped: bool
    updates: list[ClientUpdate] = field(default_factory=list)


class BufferedAsyncEngine:
    """FedBuff-style buffered aggregation over a simulated event clock.

    The coordinator owns the outer loop (eval cadence, convergence,
    logging); this engine replaces ``_run_round``'s barrier with
    :meth:`step`, keeping in-flight work alive across steps.  Costs are
    accounted when an arrival (or drop) event fires, so the ledger matches
    what the simulated server has actually seen at each aggregation.
    """

    def __init__(
        self,
        strategy: Strategy,
        clients: list[FLClient],
        config,  # CoordinatorConfig; untyped to avoid a circular import
        executor: RoundExecutor,
        rng: np.random.Generator,
    ):
        self.strategy = strategy
        self.clients = clients
        self.config = config
        self.executor = executor
        self.rng = rng
        self.clock = VirtualClock()
        self.buffer_k = config.buffer_k or max(1, config.clients_per_round // 2)
        self.concurrency = min(
            config.async_concurrency or config.clients_per_round, len(clients)
        )
        self.deadline_s = config.deadline_s
        self._in_flight: set[int] = set()
        self._dispatch_seq = 0
        self._wave = 0
        self._version = 0  # completed aggregation steps
        # One models dict per aggregation epoch: server models only mutate
        # in aggregate_buffered, so every wave in between reuses the same
        # dict (saves rebuilding it per arrival).  The process executor
        # compares per-model version counters at publish time, so the waves
        # between aggregations publish nothing, and the publish after an
        # aggregation ships a delta of just the <= buffer_k models the step
        # touched — not the whole suite.
        self._models_epoch: dict | None = None

    def _models(self) -> dict:
        if self._models_epoch is None:
            self._models_epoch = self.strategy.models()
        return self._models_epoch

    # ------------------------------------------------------------------
    def _fill_slots(self) -> None:
        """Dispatch fresh work until ``concurrency`` clients are in flight.

        Each call is one *wave*: selection and assignment draw from the
        coordinator RNG, then the whole wave's training runs through the
        executor against the current server models (this is where
        serial/thread/process parallelism applies).  The wave index doubles
        as the executor's ``round_idx``, so every ``(wave, client, sub)``
        work item gets a unique SeedSequence spawn key — a client is never
        dispatched twice in one wave because it stays in flight until its
        completion (or drop) event fires.
        """
        need = self.concurrency - len(self._in_flight)
        if need <= 0:
            return
        available = [c for c in self.clients if c.client_id not in self._in_flight]
        if not available:
            return
        wave = self._wave
        self._wave += 1
        selected = select_uniform(available, min(need, len(available)), self.rng)
        assignments = self.strategy.assign(wave, selected, self.rng)
        models = self._models()
        items = [
            TrainItem(model_id, client.client_id, sub_idx)
            for client in selected
            for sub_idx, model_id in enumerate(assignments[client.client_id])
        ]
        updates = self.executor.train_round(wave, items, models)
        per_client: dict[int, list[ClientUpdate]] = {}
        for item, update in zip(items, updates):
            per_client.setdefault(item.client_id, []).append(update)
        for client in selected:
            ups = per_client[client.client_id]
            # Sub-models train sequentially on-device (as in sync mode).
            duration = float(sum(u.round_time for u in ups))
            dropped = self.deadline_s is not None and duration > self.deadline_s
            # The server stops waiting at the deadline; the straggler's own
            # finish time is recorded for the log either way.
            event_time = self.clock.now + (
                min(duration, self.deadline_s) if dropped else duration
            )
            seq = self._dispatch_seq
            self._dispatch_seq += 1
            self._in_flight.add(client.client_id)
            self.clock.schedule(
                event_time,
                seq,
                _Pending(
                    dispatch_seq=seq,
                    client_id=client.client_id,
                    model_ids=tuple(assignments[client.client_id]),
                    dispatch_time=self.clock.now,
                    finish_time=self.clock.now + duration,
                    version=self._version,
                    dropped=dropped,
                    updates=ups,
                ),
            )

    # ------------------------------------------------------------------
    def step(self, step_idx: int, log: TrainingLog) -> RoundRecord:
        """Run one buffered aggregation step; returns its RoundRecord.

        Collects arrivals (dropping deadline violators) until ``buffer_k``
        usable updates are buffered, fires the strategy's staleness-aware
        aggregation, and meters every event — kept or dropped — into the
        log's cost ledger.
        """
        t_start = self.clock.now
        buffered: list[_Pending] = []
        arrivals: list[ArrivalRecord] = []
        step_macs = 0.0
        bytes_down = 0
        bytes_up = 0
        consecutive_drops = 0
        drop_limit = max(64, 8 * self.concurrency)
        while len(buffered) < self.buffer_k:
            self._fill_slots()
            _, _, pending = self.clock.pop()
            self._in_flight.discard(pending.client_id)
            staleness = self._version - pending.version
            arrivals.append(
                ArrivalRecord(
                    dispatch_seq=pending.dispatch_seq,
                    client_id=pending.client_id,
                    model_ids=pending.model_ids,
                    dispatch_time=pending.dispatch_time,
                    finish_time=pending.finish_time,
                    staleness=staleness,
                    dropped=pending.dropped,
                )
            )
            macs = float(sum(u.macs_spent for u in pending.updates))
            step_macs += macs
            bytes_down += sum(u.bytes_down for u in pending.updates)
            if pending.dropped:
                log.dropped_updates += 1
                log.dropped_macs += macs
                consecutive_drops += 1
                if consecutive_drops > drop_limit:
                    raise RuntimeError(
                        f"deadline_s={self.deadline_s} dropped {consecutive_drops} "
                        "arrivals in a row — no client can finish inside the "
                        "deadline; raise it"
                    )
                continue
            consecutive_drops = 0
            bytes_up += sum(u.bytes_up for u in pending.updates)
            buffered.append(pending)

        updates = [u for p in buffered for u in p.updates]
        staleness_per_update = [
            self._version - p.version for p in buffered for _ in p.updates
        ]
        events = self.strategy.aggregate_buffered(
            step_idx,
            updates,
            staleness_per_update,
            self.rng,
            self.config.staleness_discount,
        )
        self._version += 1
        self._models_epoch = None  # server models changed; next wave re-snapshots

        log.total_macs += step_macs
        log.total_bytes_down += bytes_down
        log.total_bytes_up += bytes_up
        events = list(events or [])
        dropped_here = sum(1 for a in arrivals if a.dropped)
        if dropped_here:
            events.append(
                f"dropped {dropped_here} straggler arrival(s) past "
                f"deadline {self.deadline_s}s"
            )
        return RoundRecord(
            round_idx=step_idx,
            participants=[p.client_id for p in buffered],
            assignments={p.client_id: list(p.model_ids) for p in buffered},
            mean_loss=float(np.mean([u.train_loss for u in updates])),
            macs=step_macs,
            bytes_down=bytes_down,
            bytes_up=bytes_up,
            round_time=float(self.clock.now - t_start),
            num_models=len(self.strategy.models()),
            events=events,
            arrivals=arrivals,
        )
