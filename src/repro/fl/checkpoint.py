"""Crash-consistent run checkpoints (payload file + manifest pointer).

A checkpoint is two files in the run directory:

* ``ckpt-<round>.npz`` — the run's full Stateful payload.  The nested
  dict/list skeleton is stored as JSON (shortest-repr floats round-trip
  exactly) with every ``numpy`` array split out as its own entry, so
  tensors land losslessly and the rest stays human-inspectable.
* ``MANIFEST.json`` — the durability pointer: format version, the run's
  config hash, the ``last_good`` payload file, its round, a ``completed``
  flag, and the sorted list of every schema tag the payload carries
  (CONTRACTS.md I9: all registrants are enumerable from the file alone).

Write order is what makes a kill at *any* instant safe (CONTRACTS.md I9):

1. the payload lands through :func:`repro.atomicio.atomic_write` (temp
   file in the destination directory, fsync, ``os.replace``, directory
   fsync) — a crash mid-write leaves only an ignorable temp file;
2. only after the payload is durable does the manifest move, itself
   atomically — so ``last_good`` never points at a torn or missing file;
3. superseded payload files are pruned only after the pointer moved.

``REPRO_CKPT_CRASH_POINT`` is a test hook: naming a crash point
(``before-payload`` / ``after-payload`` / ``after-manifest``) makes the
writer SIGKILL its own process at that instant, which is how the
torn-write tests exercise every window of the protocol for real instead
of simulating it.
"""

from __future__ import annotations

import json
import os
import signal
from pathlib import Path

import numpy as np

from ..atomicio import atomic_write
from ..stateful import collect_schemas

__all__ = [
    "CHECKPOINT_FORMAT",
    "MANIFEST_NAME",
    "flatten_payload",
    "unflatten_payload",
    "write_payload",
    "read_payload",
    "CheckpointWriter",
    "load_checkpoint",
]

CHECKPOINT_FORMAT = 1
MANIFEST_NAME = "MANIFEST.json"

# Marker objects the flattener substitutes for ndarray leaves.  Payload
# dicts never use this key themselves (Stateful payload convention).
_ARRAY_KEY = "__array__"
_SKELETON_KEY = "__skeleton__"

# Test hook: SIGKILL this process when the writer reaches the named point.
_CRASH_ENV = "REPRO_CKPT_CRASH_POINT"


def _maybe_crash(point: str) -> None:
    if os.environ.get(_CRASH_ENV) == point:
        os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# payload <-> (JSON skeleton, array table)
# ----------------------------------------------------------------------
def flatten_payload(payload: dict) -> tuple[dict, dict[str, np.ndarray]]:
    """Split a nested Stateful payload into a JSON skeleton + array table.

    Every ``ndarray`` leaf is replaced by ``{"__array__": "<slot>"}`` and
    parked in the table; numpy scalars are converted to native Python so
    the skeleton is pure JSON.  Raises on anything else non-serializable —
    a checkpoint that cannot round-trip must fail at write time, not at
    resume time.
    """
    arrays: dict[str, np.ndarray] = {}

    def walk(node):
        if isinstance(node, np.ndarray):
            slot = f"a{len(arrays)}"
            arrays[slot] = node
            return {_ARRAY_KEY: slot}
        if isinstance(node, dict):
            out = {}
            for k, v in node.items():
                if not isinstance(k, str):
                    raise TypeError(
                        f"payload dict keys must be str (owner stringifies), "
                        f"got {k!r}"
                    )
                if k == _ARRAY_KEY:
                    raise TypeError(
                        f"payload dicts must not use the reserved key {k!r}"
                    )
                out[k] = walk(v)
            return out
        if isinstance(node, (list, tuple)):
            return [walk(v) for v in node]
        if isinstance(node, bool) or node is None or isinstance(node, (int, float, str)):
            return node
        if isinstance(node, np.bool_):
            return bool(node)
        if isinstance(node, np.integer):
            return int(node)
        if isinstance(node, np.floating):
            return float(node)
        raise TypeError(
            f"cannot checkpoint a {type(node).__name__} leaf; Stateful "
            "payloads hold JSON scalars and numpy arrays only"
        )

    return walk(payload), arrays


def unflatten_payload(
    skeleton, arrays: dict[str, np.ndarray]
):
    """Inverse of :func:`flatten_payload`."""
    if isinstance(skeleton, dict):
        if set(skeleton) == {_ARRAY_KEY}:
            return arrays[skeleton[_ARRAY_KEY]]
        return {k: unflatten_payload(v, arrays) for k, v in skeleton.items()}
    if isinstance(skeleton, list):
        return [unflatten_payload(v, arrays) for v in skeleton]
    return skeleton


def write_payload(path: str | Path, payload: dict) -> None:
    """Serialize one payload to a single ``.npz``, crash-consistently."""
    skeleton, arrays = flatten_payload(payload)
    arrays[_SKELETON_KEY] = np.frombuffer(
        json.dumps(skeleton).encode(), dtype=np.uint8
    )
    with atomic_write(path) as f:
        np.savez(f, **arrays)


def read_payload(path: str | Path) -> dict:
    """Read back a :func:`write_payload` file."""
    with np.load(path) as data:
        skeleton = json.loads(bytes(data[_SKELETON_KEY]).decode())
        arrays = {k: data[k] for k in data.files if k != _SKELETON_KEY}
    return unflatten_payload(skeleton, arrays)


# ----------------------------------------------------------------------
# writer / loader
# ----------------------------------------------------------------------
class CheckpointWriter:
    """Writes round checkpoints under one run directory.

    ``run_hash`` fingerprints everything trajectory-relevant (strategy,
    config, fleet — see :mod:`repro.fl.registry`); it is stamped into the
    manifest so a resume against a different configuration fails loudly
    instead of silently diverging.
    """

    def __init__(self, directory: str | Path, run_hash: str):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.run_hash = run_hash

    def write(self, round_idx: int, payload: dict, completed: bool) -> Path:
        """Durably record ``payload`` as the run's last good state."""
        name = f"ckpt-{round_idx:06d}.npz"
        path = self.directory / name
        _maybe_crash("before-payload")
        write_payload(path, payload)
        _maybe_crash("after-payload")
        manifest = {
            "format": CHECKPOINT_FORMAT,
            "run_hash": self.run_hash,
            "last_good": name,
            "round": round_idx,
            "completed": completed,
            "schemas": collect_schemas(payload),
        }
        with atomic_write(self.directory / MANIFEST_NAME, "w", encoding="utf-8") as f:
            json.dump(manifest, f, indent=1)
        _maybe_crash("after-manifest")
        # The pointer moved; superseded payloads (and any orphaned temp
        # files from crashed writes) are dead weight.  A crash mid-prune
        # leaves extra files, never a bad pointer.
        for stale in self.directory.glob("ckpt-*.npz"):
            if stale.name != name:
                stale.unlink(missing_ok=True)
        for tmp in self.directory.glob("*.tmp-*"):
            tmp.unlink(missing_ok=True)
        return path


def load_checkpoint(
    directory: str | Path, run_hash: str | None = None
) -> dict | None:
    """Load the last good checkpoint under ``directory``.

    Returns ``{"manifest": ..., "payload": ...}``, or ``None`` when no
    checkpoint has ever completed (no manifest — e.g. a run killed during
    its very first write, which is a valid fresh-start).  Raises when the
    manifest exists but disagrees with ``run_hash`` or its format.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        return None
    with open(manifest_path, encoding="utf-8") as f:
        manifest = json.load(f)
    if manifest.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(
            f"unsupported checkpoint format {manifest.get('format')!r}"
        )
    if run_hash is not None and manifest.get("run_hash") != run_hash:
        raise ValueError(
            "checkpoint belongs to a different run: manifest hash "
            f"{manifest.get('run_hash')!r} != expected {run_hash!r} "
            "(strategy, config, or fleet changed)"
        )
    payload = read_payload(directory / manifest["last_good"])
    return {"manifest": manifest, "payload": payload}
