"""Evaluation metrics and summary helpers for finished runs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .types import TrainingLog

__all__ = ["RunSummary", "summarize", "recovery_summary", "iqr"]


def iqr(values: np.ndarray) -> float:
    """Interquartile range."""
    q75, q25 = np.percentile(values, [75, 25])
    return float(q75 - q25)


@dataclass(frozen=True)
class RunSummary:
    """The Table 2 row for one (method, dataset) run."""

    strategy: str
    accuracy: float  # mean final client accuracy, percent
    accuracy_iqr: float  # IQR of client accuracies, percent
    cost_pmacs: float  # total training MACs / 1e15
    storage_mb: float  # peak server storage
    network_mb: float  # total down+up transfer
    round_time_mean: float  # seconds (Table 6)
    round_time_std: float
    num_models: int
    rounds_run: int

    def row(self) -> dict[str, float | str | int]:
        return {
            "method": self.strategy,
            "accuracy_pct": round(self.accuracy * 100, 2),
            "iqr_pct": round(self.accuracy_iqr * 100, 2),
            "cost_pmacs": self.cost_pmacs,
            "storage_mb": round(self.storage_mb, 3),
            "network_mb": round(self.network_mb, 1),
            "round_time_mean_s": round(self.round_time_mean, 2),
            "round_time_std_s": round(self.round_time_std, 2),
            "num_models": self.num_models,
            "rounds": self.rounds_run,
        }


def summarize(log: TrainingLog) -> RunSummary:
    """Collapse a training log into the paper's headline metrics."""
    final = log.final_eval()
    times = log.round_times()
    return RunSummary(
        strategy=log.strategy,
        accuracy=float(final.mean_accuracy),
        accuracy_iqr=iqr(final.client_accuracy),
        cost_pmacs=log.pmacs(),
        storage_mb=log.storage_mb(),
        network_mb=log.network_mb(),
        round_time_mean=float(times.mean()) if len(times) else 0.0,
        round_time_std=float(times.std()) if len(times) else 0.0,
        num_models=log.rounds[-1].num_models if log.rounds else 1,
        rounds_run=len(log.rounds),
    )


def recovery_summary(log: TrainingLog) -> dict[str, int]:
    """Fault-tolerance counters of a run, as one flat dict.

    Kept separate from :meth:`RunSummary.row` on purpose: the summary row
    feeds the paper tables and must stay identical between a fault-free
    run and a crash-recovered one (CONTRACTS.md I10); recovery telemetry
    is exactly what differs between those two.
    """
    return {
        "worker_restarts": log.worker_restarts,
        "retries": log.retries,
        "failed_updates": log.failed_updates,
        "quarantined_updates": log.quarantined_updates,
        "fault_records": len(log.faults),
    }
