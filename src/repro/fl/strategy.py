"""The Strategy interface: what a server-side FL algorithm must provide.

A strategy owns the model suite, decides which model(s) each participant
trains (``assign`` — SplitMix ships several base nets per client, everyone
else exactly one), merges returned updates (``aggregate``; the async engine
routes buffered, possibly stale batches through ``aggregate_buffered``,
which discounts staleness and delegates here), and defines how
a client is *evaluated* (``client_logits``; by default the single deployed
model named by ``eval_model_for`` — the paper evaluates "each client only
on its compatible models and assign[s] it the model with the highest
utility").

FedTrans and every baseline implement this interface, so the coordinator,
cost accounting, and bench harness are shared across all methods.

Version contract: strategies mutate their suite through
``CellModel.set_params`` / ``set_state`` / the transformation methods,
which bump each model's monotone ``version`` counter.  The coordinator's
incremental evaluation cache and the process executor's delta snapshots
key on those versions — a strategy that writes weights through the live
``params()`` references instead must call ``bump_version()`` on the model
or those consumers will serve stale results.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import replace

import numpy as np

from ..nn.model import CellModel
from ..nn.serialization import model_state_dict
from ..stateful import Stateful, check_schema, schema_tag
from .types import ClientUpdate, FLClient

__all__ = ["Strategy", "compatible_model_ids"]


def compatible_model_ids(
    models: dict[str, CellModel], capacity_macs: float
) -> list[str]:
    """Model ids whose complexity fits a budget (``MAC(M) <= T_c``).

    Falls back to the single cheapest model when the budget is below every
    model — the paper guarantees this cannot happen by construction
    (initial model == weakest client), but bench configs may be looser.
    The single definition of the fit rule: :meth:`Strategy.compatible_models`
    and FedTrans's Eq. 4 compatible-set restriction both delegate here, so
    assignment and utility learning can never disagree about what fits.
    """
    fits = [mid for mid, m in models.items() if m.macs() <= capacity_macs]
    if not fits:
        fits = [min(models, key=lambda mid: models[mid].macs())]
    return fits


class Strategy(Stateful, ABC):
    """Server-side algorithm driving a multi- (or single-) model FL run."""

    name: str = "strategy"

    # ------------------------------------------------------------------
    # durability (Stateful)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Default: the whole suite — specs, tensors, and exact versions.

        Sufficient for every fixed-suite strategy (the suite's *structure*
        is reconstructed from configuration; only weights and versions are
        trajectory).  Strategies that grow or retire models mid-run, or
        hold extra run state (utilities, server optimizers, transformation
        trackers), override both methods and compose this payload.
        """
        return {
            "schema": schema_tag(type(self).__name__),
            "models": {
                mid: model_state_dict(m) for mid, m in self.models().items()
            },
        }

    def load_state_dict(self, payload: dict) -> None:
        """Default: restore weights/state/versions into the live suite.

        The restored checkpoint must name exactly the live model ids —
        fixed-suite strategies rebuilt from the same configuration (with
        the model-id counter restored) always satisfy this; a mismatch
        means the checkpoint belongs to a different construction.
        """
        check_schema(payload, schema_tag(type(self).__name__))
        live = self.models()
        saved = payload["models"]
        if set(saved) != set(live):
            raise ValueError(
                f"checkpoint models {sorted(saved)} do not match this "
                f"strategy's suite {sorted(live)}"
            )
        for mid, mp in saved.items():
            model = live[mid]
            model.set_params({k: np.asarray(v) for k, v in mp["params"].items()})
            if mp["state"]:
                model.set_state({k: np.asarray(v) for k, v in mp["state"].items()})
            model.sync_version(int(mp["version"]))

    @abstractmethod
    def models(self) -> dict[str, CellModel]:
        """Live server models, keyed by model id."""

    @abstractmethod
    def assign(
        self,
        round_idx: int,
        participants: list[FLClient],
        rng: np.random.Generator,
    ) -> dict[int, list[str]]:
        """Model id(s) every participant trains this round."""

    @abstractmethod
    def aggregate(
        self,
        round_idx: int,
        updates: list[ClientUpdate],
        rng: np.random.Generator,
    ) -> list[str]:
        """Merge client updates into the server models.

        Returns human-readable event strings (e.g. transformations) for the
        round log.
        """

    def aggregate_buffered(
        self,
        round_idx: int,
        updates: list[ClientUpdate],
        staleness: list[int],
        rng: np.random.Generator,
        staleness_discount: float = 1.0,
    ) -> list[str]:
        """Merge a buffered-asynchronous batch of (possibly stale) updates.

        ``staleness[i]`` counts the server aggregation steps that fired
        between ``updates[i]``'s dispatch and its arrival — 0 means the
        update trained against the current server weights, exactly the
        synchronous case.

        The default is a FedAsync/FedBuff-style discount that composes with
        *any* :meth:`aggregate` implementation: a stale update's weights and
        non-trainable state (e.g. normalization running stats) are pulled
        toward the current server values of its model with factor
        ``f = staleness_discount ** staleness`` (``f * client + (1 - f) *
        server``) and its gradient is scaled by ``f``, then the regular
        synchronous :meth:`aggregate` runs on the adjusted batch.  A fully
        discounted update therefore degenerates to a no-op contribution
        rather than dragging the suite toward obsolete weights or
        statistics.  Strategies with bespoke staleness handling override
        this hook.
        """
        if staleness_discount >= 1.0 or not any(s > 0 for s in staleness):
            return self.aggregate(round_idx, updates, rng)
        models = self.models()
        adjusted: list[ClientUpdate] = []
        for u, s in zip(updates, staleness):
            server = models.get(u.model_id)
            if s <= 0 or server is None:
                adjusted.append(u)
                continue
            f = staleness_discount**s
            ref = server.params()
            ref_state = server.state()
            params = {k: f * v + (1.0 - f) * ref[k] for k, v in u.params.items()}
            state = {k: f * v + (1.0 - f) * ref_state[k] for k, v in u.state.items()}
            grad = {k: f * g for k, g in u.grad.items()}
            adjusted.append(replace(u, params=params, state=state, grad=grad))
        return self.aggregate(round_idx, adjusted, rng)

    @abstractmethod
    def eval_model_for(self, client: FLClient) -> str:
        """Model id this client deploys (used by the default evaluation)."""

    # ------------------------------------------------------------------
    # evaluation hooks
    # ------------------------------------------------------------------
    def eval_ensemble(self, client: FLClient, model_id: str) -> tuple[str, ...]:
        """Model ids whose *averaged* logits form this client's deployment.

        ``model_id`` is the already-resolved :meth:`eval_model_for` result
        (threaded through so utility re-ranking runs once per client).  The
        default deployment is that single model; ensemble methods
        (SplitMix) override.  The coordinator batches evaluation by this
        key: clients sharing an ensemble share one big forward pass.
        """
        return (model_id,)

    def client_logits(
        self, client: FLClient, x: np.ndarray, model_id: str | None = None
    ) -> np.ndarray:
        """Logits the client's deployment produces on ``x``.

        ``model_id`` lets callers that already resolved
        :meth:`eval_model_for` thread it through instead of re-ranking;
        when omitted it is resolved here.  Overriding this method opts the
        strategy out of the coordinator's batched evaluation path — prefer
        overriding :meth:`eval_ensemble` when the deployment is a plain
        logit average.
        """
        mid = self.eval_model_for(client) if model_id is None else model_id
        models = self.models()
        ids = self.eval_ensemble(client, mid)
        if len(ids) == 1:
            return models[ids[0]].predict(x)
        return np.mean([models[i].predict(x) for i in ids], axis=0)

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def compatible_models(self, client: FLClient) -> list[str]:
        """Model ids whose complexity fits the client's budget (MAC(M) <= T_c).

        Delegates to :func:`compatible_model_ids` (shared with the
        coordinator-side consumers of stored capacities) — see there for
        the too-weak-client fallback.
        """
        return compatible_model_ids(self.models(), client.capacity_macs)

    def storage_bytes(self) -> int:
        """Server-side storage footprint of the whole model suite."""
        return sum(m.nbytes() for m in self.models().values())

    def scheduler_counters(self) -> dict[str, int]:
        """Per-round scheduling counters the strategy wants metered.

        Consumed (and reset) by the coordinator after each aggregation;
        recognized keys land on :class:`~repro.fl.types.SchedulerRecord`
        (currently ``"evicted"`` — sparse utility-store evictions).  The
        default strategy has no scheduler-owned state to report.
        """
        return {}
